"""Table I, vector-based columns: prefix-sum + binary-search sampling.

Each benchmark regenerates the "vector-based t[s]" cell of a Table-I row
where the dense state fits in memory; the MO rows are asserted MO (no
timing possible — that is the datum).

Run:  pytest benchmarks/bench_table1_vector.py --benchmark-only
"""

import numpy as np
import pytest

from repro.core.prefix_sampler import PrefixSampler
from repro.evaluation.memory import MemoryPolicy

from .conftest import SHOTS, cached_state

FITTING = [
    ("qft_16", "qft_16"),
    ("grover_10", "grover_20"),
    ("grover_14", "grover_25"),
    ("shor_33_2", "shor_33_2"),
    ("shor_55_2", "shor_55_2"),
    ("jellium_2x2", "jellium_2x2"),
    ("supremacy_4x4_5", "supremacy_4x4_10"),
]

_PREFIX_CACHE: dict = {}


def _prefix_sampler(name: str) -> PrefixSampler:
    if name not in _PREFIX_CACHE:
        _PREFIX_CACHE[name] = PrefixSampler(cached_state(name).to_statevector())
    return _PREFIX_CACHE[name]


@pytest.mark.parametrize("name,paper_row", FITTING, ids=[c[0] for c in FITTING])
def test_vector_sampling(benchmark, name, paper_row):
    sampler = _prefix_sampler(name)
    rng = np.random.default_rng(0)

    def draw():
        return sampler.sample(SHOTS, rng)

    samples = benchmark(draw)
    assert samples.shape == (SHOTS,)
    benchmark.extra_info["vector_entries"] = sampler.size
    benchmark.extra_info["paper_row"] = paper_row


@pytest.mark.parametrize("name", ["qft_16", "shor_33_2"])
def test_vector_precompute(benchmark, name):
    """The prefix-sum precomputation (O(2^n), the method's bottleneck)."""
    statevector = cached_state(name).to_statevector()

    def precompute():
        return PrefixSampler(statevector)

    sampler = benchmark(precompute)
    assert sampler.size == statevector.size


def test_memory_out_rows_are_mo():
    """qft_32/qft_48 (and paper's grover_35) cannot be benchmarked with
    the vector method: their dense state exceeds the memory cap.  This
    *is* the Table-I datum for those cells."""
    policy = MemoryPolicy()
    assert not policy.vector_fits(32)
    assert not policy.vector_fits(48)
    assert not policy.vector_fits(36)
    assert policy.vector_fits(16)
