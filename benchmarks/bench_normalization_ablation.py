"""Ablation: the paper's L2 normalisation scheme (Section IV-C).

Under the L2 scheme every node's outgoing squared magnitudes sum to 1,
so branch probabilities are read directly off the edge weights and the
downstream-probability traversal disappears.  Under the classic
left-most scheme the sampler must first run the depth-first downstream
pass (O(DD size)) and apply per-node corrections while sampling.

These benchmarks time (a) the sampler precompute and (b) sampling itself
under both schemes on the same quantum state — the measurable benefit
the paper claims for its normalisation scheme.

Run:  pytest benchmarks/bench_normalization_ablation.py --benchmark-only
"""

import numpy as np
import pytest

from repro.algorithms.shor import shor_final_state
from repro.core.dd_sampler import DDSampler
from repro.dd import DDPackage, NormalizationScheme, VectorDD

SHOTS = 100_000


@pytest.fixture(scope="module")
def states():
    statevector, _, _ = shor_final_state(33, 2)
    built = {}
    for scheme in NormalizationScheme:
        package = DDPackage(scheme=scheme)
        built[scheme] = VectorDD.from_statevector(package, statevector)
    return built


@pytest.mark.parametrize("scheme", list(NormalizationScheme), ids=lambda s: s.value)
def test_precompute(benchmark, states, scheme):
    state = states[scheme]

    def precompute():
        sampler = DDSampler(state)
        sampler._build_tables()
        return sampler

    sampler = benchmark(precompute)
    if scheme is NormalizationScheme.L2:
        assert sampler.downstream is None  # traversal skipped entirely
    else:
        assert sampler.downstream is not None
    benchmark.extra_info["dd_nodes"] = state.node_count


@pytest.mark.parametrize("scheme", list(NormalizationScheme), ids=lambda s: s.value)
def test_sampling(benchmark, states, scheme):
    state = states[scheme]
    sampler = DDSampler(state)
    sampler._build_tables()
    rng = np.random.default_rng(0)
    samples = benchmark(lambda: sampler.sample(SHOTS, rng))
    assert samples.shape == (SHOTS,)


def test_l2_forced_downstream_equivalence(benchmark, states):
    """L2 state sampled *without* trusting the normalisation: measures
    what the downstream pass costs even when it is all ones."""
    state = states[NormalizationScheme.L2]

    def precompute():
        return DDSampler(state, trust_l2_normalization=False)

    sampler = benchmark(precompute)
    assert sampler.downstream is not None
    for value in list(sampler.downstream.values())[:100]:
        assert np.isclose(value, 1.0, atol=1e-6)
