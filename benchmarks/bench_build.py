"""Strong-simulation (state build) benchmarks per Table-I family.

Not a Table-I column per se (the paper times sampling after strong
simulation), but the stage that dominates wall clock in this pure-Python
implementation; kept for profiling and regression tracking.

Run:  pytest benchmarks/bench_build.py --benchmark-only
"""

import pytest

from repro.evaluation.catalog import build_state, by_name

CASES = ["qft_16", "qft_48", "grover_10", "jellium_2x2", "supremacy_4x4_5",
         "shor_33_2"]


@pytest.mark.parametrize("name", CASES)
def test_build_final_state(benchmark, name):
    spec = by_name(name)

    def build():
        return build_state(spec)

    state = benchmark.pedantic(build, rounds=1, iterations=1)
    assert state.num_qubits == spec.num_qubits
    benchmark.extra_info["dd_nodes"] = state.node_count
