"""Figures 2 and 4: the running example end to end.

Times the full weak-simulation pipeline on the paper's worked example
(circuit -> DD -> 100k samples) and the figure-data generation itself,
and asserts the figure values while doing so — so a benchmark run also
re-verifies the paper's printed numbers.

Run:  pytest benchmarks/bench_figures.py --benchmark-only
"""

import numpy as np

from repro.algorithms.states import (
    RUNNING_EXAMPLE_PROBABILITIES,
    running_example_circuit,
)
from repro.core import simulate_and_sample
from repro.evaluation.figures import figure2_data, figure3_data, figure4_data


def test_running_example_pipeline_dd(benchmark):
    circuit = running_example_circuit()

    def pipeline():
        return simulate_and_sample(circuit, 100_000, method="dd", seed=0)

    result = benchmark(pipeline)
    assert set(result.counts) == {1, 3, 4, 7}


def test_running_example_pipeline_vector(benchmark):
    circuit = running_example_circuit()

    def pipeline():
        return simulate_and_sample(circuit, 100_000, method="vector", seed=0)

    result = benchmark(pipeline)
    assert set(result.counts) == {1, 3, 4, 7}


def test_figure2_generation(benchmark):
    data = benchmark(figure2_data)
    assert data.sample_at_half == "011"
    assert np.allclose(data.probabilities, RUNNING_EXAMPLE_PROBABILITIES, atol=1e-9)


def test_figure3_generation(benchmark):
    data = benchmark(figure3_data)
    assert data.result_bitstring == "011"


def test_figure4_generation(benchmark):
    data = benchmark(figure4_data)
    assert np.allclose(data.branch_probabilities["q2"], (0.75, 0.25), atol=1e-9)
