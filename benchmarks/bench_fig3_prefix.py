"""Figure 3: biased random selection via prefix sums and binary search.

Benchmarks the two stages of the paper's Fig. 3 across growing vector
sizes, plus the linear-traversal baseline the paper contrasts them with,
and the out-of-core variant for vectors "stored in out-of-memory files".

Expected shape: precompute O(2^n), binary-search sampling O(n) per
sample (flat in practice thanks to vectorised searchsorted), linear scan
O(2^n) per sample.

Run:  pytest benchmarks/bench_fig3_prefix.py --benchmark-only
"""

import numpy as np
import pytest

from repro.core.prefix_sampler import OutOfCorePrefixSampler, PrefixSampler

SIZES = [2**12, 2**16, 2**20]


def _probabilities(size: int) -> np.ndarray:
    rng = np.random.default_rng(size)
    raw = rng.exponential(size=size)
    return raw / raw.sum()


@pytest.mark.parametrize("size", SIZES, ids=[f"2^{s.bit_length()-1}" for s in SIZES])
def test_prefix_precompute(benchmark, size):
    probabilities = _probabilities(size)
    sampler = benchmark(lambda: PrefixSampler(probabilities, is_statevector=False))
    assert sampler.size == size


@pytest.mark.parametrize("size", SIZES, ids=[f"2^{s.bit_length()-1}" for s in SIZES])
def test_binary_search_sampling(benchmark, size):
    sampler = PrefixSampler(_probabilities(size), is_statevector=False)
    rng = np.random.default_rng(0)
    samples = benchmark(lambda: sampler.sample(100_000, rng))
    assert samples.shape == (100_000,)


@pytest.mark.parametrize("size", [2**10, 2**14], ids=["2^10", "2^14"])
def test_linear_scan_sampling(benchmark, size):
    sampler = PrefixSampler(_probabilities(size), is_statevector=False)
    rng = np.random.default_rng(1)
    # O(2^n) per sample: 100 shots is already informative.
    samples = benchmark.pedantic(
        lambda: sampler.sample_linear(100, rng), rounds=2, iterations=1
    )
    assert samples.shape == (100,)


def test_out_of_core_sampling(benchmark, tmp_path):
    probabilities = _probabilities(2**18)
    sampler = OutOfCorePrefixSampler.from_probabilities(
        probabilities, directory=str(tmp_path), block_size=4096
    )
    try:
        rng = np.random.default_rng(2)
        samples = benchmark.pedantic(
            lambda: sampler.sample(100_000, rng), rounds=2, iterations=1
        )
        assert samples.shape == (100_000,)
    finally:
        sampler.close()
