"""Benchmarks for the extended algorithm families (beyond Table I).

Bernstein-Vazirani / Deutsch-Jozsa (DD-friendly, linear-size states),
phase estimation (structured counting register), and quantum-volume
model circuits (the adversarial case: DDs grow toward maximal).  These
situate the paper's families inside the wider landscape: the DD
advantage is structural, not universal.

Run:  pytest benchmarks/bench_extended_families.py --benchmark-only
"""

import numpy as np
import pytest

from repro.algorithms import (
    bernstein_vazirani,
    phase_estimation,
    quantum_volume,
)
from repro.core.dd_sampler import DDSampler
from repro.simulators import DDSimulator

SHOTS = 100_000


@pytest.mark.parametrize("n", [16, 24])
def test_bernstein_vazirani_pipeline(benchmark, n):
    instance = bernstein_vazirani(n, seed=n)

    def pipeline():
        state = DDSimulator().run(instance.circuit)
        sampler = DDSampler(state)
        return sampler.sample(SHOTS, np.random.default_rng(0)), state

    samples, state = benchmark.pedantic(pipeline, rounds=2, iterations=1)
    assert {instance.data_value(int(s)) for s in np.unique(samples)} == {
        instance.secret
    }
    benchmark.extra_info["dd_nodes"] = state.node_count


@pytest.mark.parametrize("precision", [10, 14])
def test_phase_estimation_sampling(benchmark, precision):
    instance = phase_estimation(precision, phase=0.3)
    state = DDSimulator().run(instance.circuit)
    sampler = DDSampler(state)
    sampler._build_tables()
    rng = np.random.default_rng(0)
    samples = benchmark(lambda: sampler.sample(SHOTS, rng))
    assert samples.shape == (SHOTS,)
    benchmark.extra_info["dd_nodes"] = state.node_count


@pytest.mark.parametrize("n", [6, 8])
def test_quantum_volume_build(benchmark, n):
    """The adversarial family: DD near-maximal, the honest limit case."""
    circuit = quantum_volume(n, seed=0)

    def build():
        return DDSimulator().run(circuit)

    state = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["dd_nodes"] = state.node_count
    assert state.node_count > 2 ** (n - 2)  # scrambled, as expected
