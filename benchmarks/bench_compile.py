"""Compile-pipeline benchmarks: rewrite cost and build-phase payoff.

Times :func:`repro.compile.optimize_circuit` itself per benchmark family
and the resulting strong-simulation build with/without the pipeline.
The JSON artifact counterpart is ``make bench-compile``
(:mod:`repro.compile.bench`); this file is for ``pytest --benchmark-only``
exploration.

Run:  pytest benchmarks/bench_compile.py --benchmark-only
"""

import pytest

from repro.algorithms.grover import grover
from repro.algorithms.qft import qft
from repro.algorithms.supremacy import supremacy
from repro.compile import optimize_circuit
from repro.simulators.dd_simulator import DDSimulator

CASES = {
    "qft_16": lambda: qft(16),
    "grover_8": lambda: grover(8, seed=1).circuit,
    "supremacy_4x4_5": lambda: supremacy(4, 4, 5, seed=1),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_pipeline_rewrite(benchmark, name):
    circuit = CASES[name]()

    optimized, stats = benchmark(optimize_circuit, circuit)

    assert optimized.num_operations <= circuit.num_operations
    benchmark.extra_info["ops_before"] = stats.input_operations
    benchmark.extra_info["ops_after"] = stats.output_operations
    benchmark.extra_info["reduction_percent"] = round(
        stats.reduction_percent, 2
    )
    assert stats.reduction_percent >= 25.0


@pytest.mark.parametrize("optimize", [False, True], ids=["raw", "optimized"])
@pytest.mark.parametrize("name", sorted(CASES))
def test_build_with_pipeline(benchmark, name, optimize):
    circuit = CASES[name]()

    def build():
        return DDSimulator(optimize=optimize).run(circuit)

    state = benchmark.pedantic(build, rounds=3, iterations=1)
    assert state.num_qubits == circuit.num_qubits
