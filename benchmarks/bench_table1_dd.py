"""Table I, DD-based columns: sampling time per benchmark family.

Each benchmark regenerates the "DD-based t[s]" cell of one Table-I row
(scaled instances per DESIGN.md): precompute the sampler once, then time
drawing ``SHOTS`` bitstrings from the final-state decision diagram.

Run:  pytest benchmarks/bench_table1_dd.py --benchmark-only
"""

import numpy as np
import pytest

from repro.core.dd_sampler import DDSampler

from .conftest import SHOTS, cached_state

# (catalog name, Table-I row it scales)
CASES = [
    ("qft_16", "qft_16"),
    ("qft_32", "qft_32"),
    ("qft_48", "qft_48"),
    ("grover_10", "grover_20"),
    ("grover_14", "grover_25"),
    ("shor_33_2", "shor_33_2"),
    ("shor_55_2", "shor_55_2"),
    ("jellium_2x2", "jellium_2x2"),
    ("supremacy_4x4_5", "supremacy_4x4_10"),
]


@pytest.mark.parametrize("name,paper_row", CASES, ids=[c[0] for c in CASES])
def test_dd_sampling(benchmark, name, paper_row):
    state = cached_state(name)
    sampler = DDSampler(state)
    sampler._build_tables()
    rng = np.random.default_rng(0)

    def draw():
        return sampler.sample(SHOTS, rng)

    samples = benchmark(draw)
    assert samples.shape == (SHOTS,)
    benchmark.extra_info["dd_nodes"] = state.node_count
    benchmark.extra_info["qubits"] = state.num_qubits
    benchmark.extra_info["paper_row"] = paper_row


@pytest.mark.parametrize(
    "name", ["qft_16", "shor_33_2", "supremacy_4x4_5"]
)
def test_dd_sampler_precompute(benchmark, name):
    """The precompute stage alone (table building, linear in DD size)."""
    state = cached_state(name)

    def precompute():
        sampler = DDSampler(state)
        sampler._build_tables()
        return sampler

    sampler = benchmark(precompute)
    assert sampler is not None
