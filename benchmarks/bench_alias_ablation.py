"""Ablation: prefix-sum/binary-search vs Walker's alias method.

Both are dense vector-based samplers; the alias method trades a slower
table build (Vose's algorithm is Python-loop-bound here) for O(1)
instead of O(n) per sample.  The crossover illustrates why the paper's
baseline chose prefix sums: with NumPy's vectorised ``searchsorted``,
binary search is effectively free at these sizes, and both remain
memory-bound by the exponential vector the DD sampler avoids.

Run:  pytest benchmarks/bench_alias_ablation.py --benchmark-only
"""

import numpy as np
import pytest

from repro.core.alias_sampler import AliasSampler
from repro.core.prefix_sampler import PrefixSampler

SIZES = [2**12, 2**16]
SHOTS = 100_000


def _probabilities(size: int) -> np.ndarray:
    rng = np.random.default_rng(size)
    raw = rng.exponential(size=size)
    return raw / raw.sum()


@pytest.mark.parametrize("size", SIZES, ids=[f"2^{s.bit_length()-1}" for s in SIZES])
def test_alias_build(benchmark, size):
    probabilities = _probabilities(size)
    sampler = benchmark.pedantic(
        lambda: AliasSampler(probabilities, is_statevector=False),
        rounds=2,
        iterations=1,
    )
    assert sampler.size == size


@pytest.mark.parametrize("size", SIZES, ids=[f"2^{s.bit_length()-1}" for s in SIZES])
def test_alias_sampling(benchmark, size):
    sampler = AliasSampler(_probabilities(size), is_statevector=False)
    rng = np.random.default_rng(0)
    samples = benchmark(lambda: sampler.sample(SHOTS, rng))
    assert samples.shape == (SHOTS,)


@pytest.mark.parametrize("size", SIZES, ids=[f"2^{s.bit_length()-1}" for s in SIZES])
def test_prefix_sampling_reference(benchmark, size):
    sampler = PrefixSampler(_probabilities(size), is_statevector=False)
    rng = np.random.default_rng(0)
    samples = benchmark(lambda: sampler.sample(SHOTS, rng))
    assert samples.shape == (SHOTS,)
