"""Bench: stabilizer (CHP) vs decision-diagram weak simulation on
Clifford circuits.

Clifford circuits admit two polynomial weak simulators: the tableau
(Gottesman-Knill, the paper's related work [14]/[15]) and the DD sampler
(Clifford states have small DDs too).  This bench compares both —
strong-simulation and sampling stages — on random Clifford circuits.

Run:  pytest benchmarks/bench_stabilizer.py --benchmark-only
"""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.core.dd_sampler import DDSampler
from repro.simulators import DDSimulator, StabilizerSimulator


def random_clifford(num_qubits: int, num_gates: int, seed: int) -> QuantumCircuit:
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits)
    for _ in range(num_gates):
        r = rng.random()
        q = int(rng.integers(num_qubits))
        if r < 0.3:
            circuit.h(q)
        elif r < 0.5:
            circuit.s(q)
        elif num_qubits >= 2:
            a, b = rng.choice(num_qubits, 2, replace=False)
            circuit.cx(int(a), int(b))
    return circuit


N, GATES, SHOTS = 16, 200, 2_000


@pytest.fixture(scope="module")
def circuit():
    return random_clifford(N, GATES, seed=0)


def test_stabilizer_strong_simulation(benchmark, circuit):
    result = benchmark(lambda: StabilizerSimulator().run(circuit))
    assert result.num_qubits == N


def test_dd_strong_simulation(benchmark, circuit):
    result = benchmark.pedantic(
        lambda: DDSimulator().run(circuit), rounds=2, iterations=1
    )
    benchmark.extra_info["dd_nodes"] = result.node_count


def test_stabilizer_sampling(benchmark, circuit):
    state = StabilizerSimulator().run(circuit)
    rng = np.random.default_rng(0)
    samples = benchmark.pedantic(
        lambda: state.sample(SHOTS, rng), rounds=1, iterations=1
    )
    assert samples.shape == (SHOTS,)


def test_dd_sampling(benchmark, circuit):
    state = DDSimulator().run(circuit)
    sampler = DDSampler(state)
    sampler._build_tables()
    rng = np.random.default_rng(0)
    samples = benchmark(lambda: sampler.sample(SHOTS, rng))
    assert samples.shape == (SHOTS,)
