"""Extension bench: approximate weak simulation (DD pruning).

The paper allows weak simulation "possibly with some error"; this bench
quantifies the size/fidelity trade of pruning low-contribution edges on
a scrambled supremacy state, and the sampling speed on the smaller DD.

Run:  pytest benchmarks/bench_approximation.py --benchmark-only
"""

import numpy as np
import pytest

from repro.algorithms import supremacy
from repro.core.dd_sampler import DDSampler
from repro.dd.approximation import prune_low_contribution
from repro.simulators import DDSimulator


@pytest.fixture(scope="module")
def state():
    return DDSimulator().run(supremacy(4, 4, 10, seed=0))


@pytest.mark.parametrize("budget", [0.01, 0.05, 0.2])
def test_prune(benchmark, state, budget):
    result = benchmark.pedantic(
        lambda: prune_low_contribution(state, budget=budget),
        rounds=2,
        iterations=1,
    )
    assert result.nodes_after <= state.node_count
    benchmark.extra_info["nodes_before"] = result.nodes_before
    benchmark.extra_info["nodes_after"] = result.nodes_after
    benchmark.extra_info["removed_mass"] = round(result.removed_mass, 5)


@pytest.mark.parametrize("budget", [0.0, 0.05])
def test_sampling_after_pruning(benchmark, state, budget):
    if budget:
        target = prune_low_contribution(state, budget=budget).state
    else:
        target = state
    sampler = DDSampler(target)
    sampler._build_tables()
    rng = np.random.default_rng(0)
    samples = benchmark(lambda: sampler.sample(100_000, rng))
    assert samples.shape == (100_000,)
    benchmark.extra_info["dd_nodes"] = target.node_count
