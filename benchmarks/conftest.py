"""Shared fixtures for the benchmark suite.

Final states are expensive to build (strong simulation), so they are
cached per session: every bench that samples from ``qft_32`` reuses one
DD.  Benchmarks measure the *sampling* stage unless explicitly named
``bench_build_*``.
"""

from __future__ import annotations

import pytest

from repro.evaluation.catalog import build_state, by_name

_STATE_CACHE: dict = {}

#: Shots per sampling benchmark.  The paper draws 1M; 100k keeps the
#: whole suite in CPU-minutes while preserving every comparison.
SHOTS = 100_000


def cached_state(name: str):
    """Build (once) and return the final state of a catalog benchmark."""
    if name not in _STATE_CACHE:
        _STATE_CACHE[name] = build_state(by_name(name))
    return _STATE_CACHE[name]


@pytest.fixture(scope="session")
def shots() -> int:
    return SHOTS
