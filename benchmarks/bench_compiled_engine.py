"""Benchmarks for the compiled sampling engine (``repro.perf``).

Measures the stages the CompiledDD refactor separated:

* ``compile`` — flattening the DD into ``(p0, child0, child1)`` arrays
  (paid once per root, then cached),
* ``sample_compiled`` — the vectorised walk over the compiled arrays,
* ``sample_cached`` — end-to-end sampler construction + draw when the
  compiled artifact is already cached (the steady-state cost),
* ``branching`` vs ``per_shot`` — the outcome-branching shot executor
  against the literal per-shot reference on a mid-circuit circuit,
* ``parallel_chunked`` — seed-stable chunked sampling overhead.

Run:  pytest benchmarks/bench_compiled_engine.py --benchmark-only
"""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.core.dd_sampler import DDSampler
from repro.core.shot_executor import ShotExecutor
from repro.perf.compiled_dd import compile_edge
from repro.perf.parallel import sample_chunked

from .conftest import cached_state

SHOTS = 100_000
STATE = "shor_33_2"
MID_CIRCUIT_SHOTS = 100_000


@pytest.fixture(scope="module")
def state():
    return cached_state(STATE)


@pytest.fixture(scope="module")
def compiled(state):
    return DDSampler(state).compiled()


def test_compile_stage(benchmark, state):
    sampler = DDSampler(state)
    compiled = benchmark(
        lambda: compile_edge(sampler._edge, sampler.num_qubits, sampler.downstream)
    )
    assert compiled.size > 0
    benchmark.extra_info["dd_nodes"] = compiled.size


def test_sample_compiled(benchmark, compiled):
    rng = np.random.default_rng(0)
    samples = benchmark(lambda: compiled.sample(SHOTS, rng))
    assert samples.shape == (SHOTS,)


def test_sample_cached_end_to_end(benchmark, state, compiled):
    # Sampler construction + compiled() lookup + draw; the cache makes
    # the flattening a dictionary hit.
    rng = np.random.default_rng(1)

    def draw():
        return DDSampler(state).sample(SHOTS, rng)

    samples = benchmark(draw)
    assert samples.shape == (SHOTS,)


def test_parallel_chunked(benchmark, compiled):
    samples = benchmark(
        lambda: sample_chunked(compiled.sample, SHOTS, seed=2, workers=2)
    )
    assert samples.shape == (SHOTS,)


def _mid_circuit_circuit(num_qubits: int = 6) -> QuantumCircuit:
    circuit = QuantumCircuit(num_qubits)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    circuit.measure(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    circuit.measure(1)
    circuit.h(0)
    circuit.measure_all()
    return circuit


def test_mid_circuit_branching(benchmark):
    executor = ShotExecutor(_mid_circuit_circuit())
    result = benchmark(lambda: executor.run(MID_CIRCUIT_SHOTS, seed=3))
    assert sum(result.counts.values()) == MID_CIRCUIT_SHOTS


def test_mid_circuit_per_shot(benchmark):
    executor = ShotExecutor(_mid_circuit_circuit())
    shots = MID_CIRCUIT_SHOTS // 100  # per-shot DD work; scale down

    def run():
        return executor.run_per_shot(shots, seed=4)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sum(result.counts.values()) == shots
    benchmark.extra_info["shots_scale"] = 100
