"""Ablation: gate-application strategies in the DD simulator.

DESIGN.md routes gates to three strategies (diagonal subspace-phase,
single-qubit descent, generic matrix-DD multiply).  This bench runs the
same circuits with fast paths on and off, quantifying what the routing
buys — and, via the Grover case, what applying a whole iteration as one
operator DD buys over gate-by-gate application.

Run:  pytest benchmarks/bench_engines_ablation.py --benchmark-only
"""

import pytest

from repro.algorithms import grover, qft, supremacy
from repro.simulators import DDSimulator


@pytest.mark.parametrize("fast_paths", [True, False], ids=["fast-paths", "matvec-only"])
def test_qft24_strong_simulation(benchmark, fast_paths):
    circuit = qft(24)

    def run():
        return DDSimulator(use_fast_paths=fast_paths).run(circuit)

    state = benchmark.pedantic(run, rounds=2, iterations=1)
    assert state.node_count == 24


@pytest.mark.parametrize("fast_paths", [True, False], ids=["fast-paths", "matvec-only"])
def test_supremacy_strong_simulation(benchmark, fast_paths):
    circuit = supremacy(3, 3, 8, seed=0)

    def run():
        return DDSimulator(use_fast_paths=fast_paths).run(circuit)

    state = benchmark.pedantic(run, rounds=2, iterations=1)
    assert state.num_qubits == 9


def test_grover_iterated_operator(benchmark):
    instance = grover(12, seed=0)

    def run():
        return DDSimulator().run_iterated(
            instance.init_circuit(),
            instance.iteration_circuit(),
            instance.iterations,
        )

    state = benchmark.pedantic(run, rounds=1, iterations=1)
    assert state.node_count < 100


def test_grover_gate_by_gate(benchmark):
    # Same instance, flat circuit: floating-point noise in the transient
    # mid-diffusion states defeats sharing, so this is much slower (see
    # GroverInstance.iteration_circuit docs).
    instance = grover(12, seed=0)

    def run():
        return DDSimulator().run(instance.circuit)

    state = benchmark.pedantic(run, rounds=1, iterations=1)
    assert state.num_qubits == 13
