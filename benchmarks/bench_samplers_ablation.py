"""Ablation: the four DD sampling strategies against each other.

Quantifies the engineering choices discussed in DESIGN.md on one fixed
mid-size state (the emulated shor_33_2 final state, 18 qubits / ~43k DD
nodes):

* ``dd`` — vectorised per-level batch sampling (production path),
* ``dd-path`` — the paper's one-walk-per-sample algorithm (O(n)/sample,
  but pure-Python constant factors),
* ``dd-multinomial`` — recursive binomial shot splitting,
* ``dd-collapse`` — per-shot sequential measurement collapse (naive
  baseline; run with 100x fewer shots and scaled in the report).

Run:  pytest benchmarks/bench_samplers_ablation.py --benchmark-only
"""

import numpy as np
import pytest

from repro.core.dd_sampler import DDSampler

from .conftest import cached_state

SHOTS = 20_000
STATE = "shor_33_2"


@pytest.fixture(scope="module")
def sampler():
    s = DDSampler(cached_state(STATE))
    s._build_tables()
    return s


def test_dd_vectorised(benchmark, sampler):
    rng = np.random.default_rng(0)
    samples = benchmark(lambda: sampler.sample(SHOTS, rng))
    assert samples.shape == (SHOTS,)


def test_dd_path_per_sample(benchmark, sampler):
    rng = np.random.default_rng(1)
    shots = SHOTS // 10  # pure-Python walks; scale shots down

    def draw():
        return sampler.sample_paths(shots, rng)

    samples = benchmark.pedantic(draw, rounds=3, iterations=1)
    assert samples.shape == (shots,)
    benchmark.extra_info["shots_scale"] = 10


def test_dd_multinomial(benchmark, sampler):
    rng = np.random.default_rng(2)
    counts = benchmark(lambda: sampler.sample_counts_multinomial(SHOTS, rng))
    assert sum(counts.values()) == SHOTS


def test_dd_collapse(benchmark, sampler):
    # n DD-rebuilding collapses per shot on a 43k-node state: by far the
    # slowest method, so it gets 2000x fewer shots (scale in the report).
    rng = np.random.default_rng(3)
    shots = 10

    def draw():
        return sampler.sample_collapse(shots, rng)

    samples = benchmark.pedantic(draw, rounds=1, iterations=1)
    assert samples.shape == (shots,)
    benchmark.extra_info["shots_scale"] = SHOTS // shots
