"""Size and memory accounting for states and state vectors.

Table I of the paper compares the *size* of the sampled representation:
``2^n`` amplitudes for the vector-based method versus the DD node count
for the DD-based method.  These helpers compute both, plus byte estimates
used for memory-out (MO) detection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .node import Edge
from .package import DDPackage

__all__ = [
    "BYTES_PER_AMPLITUDE",
    "BYTES_PER_NODE",
    "vector_bytes",
    "dd_bytes",
    "size_log2",
    "RepresentationSize",
]

#: complex128 amplitude.
BYTES_PER_AMPLITUDE = 16

#: Rough per-node footprint of this Python implementation: node object,
#: two edge tuples, unique-table entry.  (The paper's C++ package uses
#: ~60 B/node; the constant only matters for MO thresholds, which we key
#: off the dense vector anyway.)
BYTES_PER_NODE = 256


def vector_bytes(num_qubits: int) -> int:
    """Bytes needed for a dense complex128 state vector."""
    return BYTES_PER_AMPLITUDE * (2**num_qubits)


def dd_bytes(node_count: int) -> int:
    """Estimated bytes for a DD with ``node_count`` nodes."""
    return BYTES_PER_NODE * node_count


def size_log2(size: int) -> float:
    """``log2(size)`` as the paper's Table I reports DD sizes (≈ 2^x)."""
    if size <= 0:
        return float("-inf")
    return math.log2(size)


@dataclass(frozen=True)
class RepresentationSize:
    """Size of both representations of one final state."""

    num_qubits: int
    dd_nodes: int

    @property
    def vector_entries(self) -> int:
        """Number of amplitudes the dense vector would hold (2^n)."""
        return 2**self.num_qubits

    @property
    def vector_size_bytes(self) -> int:
        """Bytes of the dense complex128 vector."""
        return vector_bytes(self.num_qubits)

    @property
    def dd_size_bytes(self) -> int:
        """Bytes of the DD (nodes + edge weights)."""
        return dd_bytes(self.dd_nodes)

    @property
    def dd_log2(self) -> float:
        """log2 of the DD byte size (Table-I style scale)."""
        return size_log2(self.dd_nodes)

    @property
    def compression_ratio(self) -> float:
        """Dense entries per DD node (≫ 1 when the DD wins)."""
        if self.dd_nodes == 0:
            return float("inf")
        return self.vector_entries / self.dd_nodes

    @classmethod
    def of(cls, package: DDPackage, edge: Edge, num_qubits: int) -> "RepresentationSize":
        """Measure ``edge`` inside ``package`` (the one constructor)."""
        return cls(num_qubits=num_qubits, dd_nodes=package.node_count(edge))
