"""Edge-weight normalisation schemes for vector nodes.

Canonicity of the DD requires a convention fixing how a node's outgoing
weights are scaled (the residual factor moves to the incoming edge).  Two
schemes are implemented:

* :attr:`NormalizationScheme.LEFTMOST` — divide both weights by the first
  nonzero weight (classic QMDD convention, Fig. 4b of the paper).  The
  first nonzero outgoing weight of every node is exactly 1.

* :attr:`NormalizationScheme.L2` — the paper's proposal (Section IV-C,
  Fig. 4d): divide by the 2-norm of the weight pair so the squared
  magnitudes of the outgoing weights sum to 1, matching quantum
  measurement semantics — the probability of descending to the 0/1
  successor while sampling is directly the squared magnitude of the
  corresponding weight.  For canonicity the residual phase of the first
  nonzero weight is also pulled out, making that weight real positive.

Both functions return ``(normalised_weights, common_factor)`` such that
``common_factor * normalised_weights == original weights``.
"""

from __future__ import annotations

import enum
import math
from typing import Sequence, Tuple

__all__ = ["NormalizationScheme", "normalize_weights"]


class NormalizationScheme(enum.Enum):
    """Which edge-weight convention a DD package uses for vector nodes."""

    LEFTMOST = "leftmost"
    L2 = "l2"


def _first_nonzero(weights: Sequence[complex], tolerance: float) -> int:
    for position, weight in enumerate(weights):
        if abs(weight) > tolerance:
            return position
    return -1


def normalize_weights(
    weights: Sequence[complex],
    scheme: NormalizationScheme,
    tolerance: float = 1e-12,
) -> Tuple[Tuple[complex, ...], complex]:
    """Normalise ``weights`` under ``scheme``.

    Returns the normalised weights and the extracted common factor.  An
    all-zero input yields the zero weights and factor 0.
    """
    pivot = _first_nonzero(weights, tolerance)
    if pivot < 0:
        return tuple(0j for _ in weights), 0j

    if scheme is NormalizationScheme.LEFTMOST:
        factor = weights[pivot]
        normalised = tuple(
            (w / factor if abs(w) > tolerance else 0j) for w in weights
        )
        # The pivot becomes exactly 1 by construction; enforce it to avoid
        # round-off drift.
        normalised = (
            normalised[:pivot] + (1.0 + 0j,) + normalised[pivot + 1 :]
        )
        return normalised, factor

    if scheme is NormalizationScheme.L2:
        magnitude = math.sqrt(sum(abs(w) ** 2 for w in weights))
        phase = weights[pivot] / abs(weights[pivot])
        factor = magnitude * phase
        normalised = tuple(
            (w / factor if abs(w) > tolerance else 0j) for w in weights
        )
        # Pivot weight is |w_pivot| / magnitude, real positive by
        # construction; strip numerical imaginary dust.
        pivot_value = complex(abs(weights[pivot]) / magnitude, 0.0)
        normalised = (
            normalised[:pivot] + (pivot_value,) + normalised[pivot + 1 :]
        )
        return normalised, factor

    raise ValueError(f"unknown normalization scheme {scheme!r}")
