"""Expectation values of Pauli observables on decision diagrams.

⟨ψ|P|ψ⟩ for a Pauli string P is computed without densifying: apply P to
the state (X/Y/Z are one traversal each) and take the DD inner product
with the original — cost O(DD size) per term.  A weighted sum of Pauli
strings (:class:`PauliObservable`) models Hamiltonians such as the
jellium energy used in the example applications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Tuple, Union

from ..circuit import gates as g
from ..circuit.operations import Operation
from ..exceptions import DDError
from .apply import GateApplier
from .node import Edge
from .vector_dd import VectorDD

__all__ = [
    "PauliString",
    "PauliObservable",
    "expectation_value",
    "dense_expectation_value",
]

_PAULI_GATES = {
    "X": g.x_gate,
    "Y": g.y_gate,
    "Z": g.z_gate,
    "I": g.identity_gate,
}


@dataclass(frozen=True)
class PauliString:
    """A tensor product of Paulis, e.g. ``PauliString({0: "Z", 3: "X"})``.

    Qubits not listed act as identity.
    """

    paulis: Tuple[Tuple[int, str], ...]

    def __init__(self, paulis: Union[Mapping[int, str], str]):
        if isinstance(paulis, str):
            # "XZI" style, leftmost = most significant qubit.
            width = len(paulis)
            mapping = {
                width - 1 - position: letter.upper()
                for position, letter in enumerate(paulis)
                if letter.upper() != "I"
            }
        else:
            mapping = {int(q): p.upper() for q, p in paulis.items()}
        for qubit, pauli in mapping.items():
            if pauli not in ("X", "Y", "Z"):
                raise DDError(f"unknown Pauli {pauli!r} on qubit {qubit}")
            if qubit < 0:
                raise DDError("negative qubit index in Pauli string")
        object.__setattr__(
            self, "paulis", tuple(sorted(mapping.items()))
        )

    @property
    def max_qubit(self) -> int:
        """Highest qubit index the string acts on (-1 for identity)."""
        return self.paulis[-1][0] if self.paulis else 0

    @property
    def is_identity(self) -> bool:
        """Whether the string has no non-identity factors."""
        return not self.paulis

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if not self.paulis:
            return "I"
        return "*".join(f"{p}{q}" for q, p in self.paulis)


@dataclass(frozen=True)
class PauliObservable:
    """A real-weighted sum of Pauli strings (a Hermitian observable)."""

    terms: Tuple[Tuple[float, PauliString], ...]

    def __init__(self, terms: Iterable[Tuple[float, Union[PauliString, str, Mapping[int, str]]]]):
        normalised: List[Tuple[float, PauliString]] = []
        for coefficient, string in terms:
            if not isinstance(string, PauliString):
                string = PauliString(string)
            normalised.append((float(coefficient), string))
        object.__setattr__(self, "terms", tuple(normalised))

    @property
    def max_qubit(self) -> int:
        """Highest qubit index across all terms (-1 when empty)."""
        return max((s.max_qubit for _, s in self.terms), default=0)


def _apply_pauli_string(
    applier: GateApplier, state: Edge, string: PauliString
) -> Edge:
    for qubit, pauli in string.paulis:
        op = Operation(gate=_PAULI_GATES[pauli](), targets=(qubit,))
        state = applier.apply(state, op)
    return state


def expectation_value(
    state: VectorDD,
    observable: Union[PauliObservable, PauliString, str, Mapping[int, str]],
) -> float:
    """⟨ψ|O|ψ⟩ for a Pauli string or weighted Pauli sum.

    The state must be normalised; the result is real (the imaginary
    residue of floating-point arithmetic is discarded after a sanity
    bound check).
    """
    if isinstance(observable, (str, Mapping)):
        observable = PauliString(observable)
    if isinstance(observable, PauliString):
        observable = PauliObservable([(1.0, observable)])
    if observable.max_qubit >= state.num_qubits:
        raise DDError(
            f"observable touches qubit {observable.max_qubit} outside the "
            f"{state.num_qubits}-qubit state"
        )
    package = state.package
    applier = GateApplier(package, state.num_qubits)
    total = 0j
    for coefficient, string in observable.terms:
        if string.is_identity:
            total += coefficient * package.inner_product(state.edge, state.edge)
            continue
        transformed = _apply_pauli_string(applier, state.edge, string)
        total += coefficient * package.inner_product(state.edge, transformed)
    if abs(total.imag) > 1e-8:
        raise DDError(
            f"expectation value came out complex ({total}); "
            "is the observable Hermitian and the state normalised?"
        )
    return float(total.real)


def dense_expectation_value(
    statevector,
    observable: Union[PauliObservable, PauliString, str, Mapping[int, str]],
) -> float:
    """⟨ψ|O|ψ⟩ on a dense state vector (reference implementation).

    Applies each Pauli by bit manipulation (X flips the axis, Z phases,
    Y both) — used to cross-validate the DD path in the test suite and
    available for callers holding dense states.
    """
    import numpy as np

    vector = np.asarray(statevector, dtype=complex)
    num_qubits = int(round(__import__("math").log2(vector.size)))
    if isinstance(observable, (str, Mapping)):
        observable = PauliString(observable)
    if isinstance(observable, PauliString):
        observable = PauliObservable([(1.0, observable)])
    if observable.max_qubit >= num_qubits:
        raise DDError("observable outside the register")
    total = 0j
    indices = np.arange(vector.size)
    for coefficient, string in observable.terms:
        transformed = vector
        for qubit, pauli in string.paulis:
            bit = (indices >> qubit) & 1
            if pauli == "Z":
                transformed = transformed * np.where(bit, -1.0, 1.0)
            elif pauli == "X":
                transformed = transformed[indices ^ (1 << qubit)]
            else:  # Y = i X Z ... careful: Y|0> = i|1>, Y|1> = -i|0>
                flipped = transformed[indices ^ (1 << qubit)]
                # After flip, position with bit=1 received old bit=0 comp.
                transformed = flipped * np.where(bit, 1j, -1j)
        total += coefficient * np.vdot(vector, transformed)
    if abs(total.imag) > 1e-8:
        raise DDError(f"expectation value came out complex ({total})")
    return float(total.real)
