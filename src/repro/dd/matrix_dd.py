"""Construction of matrix decision diagrams for circuit operations.

A gate on ``k`` qubits embedded into an ``n``-qubit register (with
arbitrary positive and negative controls) becomes a matrix DD with
``O(n * 4^k)`` nodes.  The construction uses the identity

    O  =  U_ext · P + (I - P)  =  (U_ext - I) · P + I,

where ``U_ext`` is the gate extended with identities and ``P`` projects
onto the subspace where every control is satisfied.  The first summand
``A = (U_ext - I) · P`` factorises level by level (controls force the
(1,1) — or (0,0) for anti-controls — successor; non-gate levels are
diagonal), so it is built by a memoised top-down recursion; the identity
is then added back with one DD addition.  This handles controls both above
and below the targets uniformly.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..circuit.operations import DiagonalOperation, Operation
from ..exceptions import DDError
from .node import Edge
from .package import DDPackage

__all__ = ["identity_dd", "operation_dd", "circuit_dd", "OperationDDCache"]


def identity_dd(package: DDPackage, num_qubits: int) -> Edge:
    """The identity matrix DD on ``num_qubits`` qubits."""
    edge = package.terminal_edge(1.0)
    for var in range(num_qubits):
        edge = package.make_matrix_node(
            var, (edge, package.zero_edge, package.zero_edge, edge)
        )
    return edge


def operation_dd(package: DDPackage, op: Operation, num_qubits: int) -> Edge:
    """Build the full ``2^n x 2^n`` operator of ``op`` as a matrix DD."""
    if op.max_qubit >= num_qubits:
        raise DDError(
            f"operation touches qubit {op.max_qubit} outside a "
            f"{num_qubits}-qubit register"
        )
    gate = op.gate.array
    delta = gate - np.eye(gate.shape[0])
    target_bit: Dict[int, int] = {q: b for b, q in enumerate(op.targets)}
    controls = op.controls
    neg_controls = op.neg_controls
    zero = package.zero_edge
    memo: Dict[Tuple[int, int, int], Edge] = {}

    def build(var: int, row_idx: int, col_idx: int) -> Edge:
        """DD of A restricted to the chosen target row/col bits above."""
        if var < 0:
            value = complex(delta[row_idx, col_idx])
            if abs(value) <= package.tolerance:
                return zero
            return package.terminal_edge(value)
        key = (var, row_idx, col_idx)
        cached = memo.get(key)
        if cached is not None:
            return cached
        if var in target_bit:
            bit = target_bit[var]
            children = tuple(
                build(var - 1, row_idx | (r << bit), col_idx | (c << bit))
                for r in range(2)
                for c in range(2)
            )
        elif var in controls:
            sub = build(var - 1, row_idx, col_idx)
            children = (zero, zero, zero, sub)
        elif var in neg_controls:
            sub = build(var - 1, row_idx, col_idx)
            children = (sub, zero, zero, zero)
        else:
            sub = build(var - 1, row_idx, col_idx)
            children = (sub, zero, zero, sub)
        result = package.make_matrix_node(var, children)
        memo[key] = result
        return result

    a_dd = build(num_qubits - 1, 0, 0)
    return package.matrix_add(a_dd, identity_dd(package, num_qubits))


def circuit_dd(package: DDPackage, circuit, num_qubits: int = None) -> Edge:
    """Matrix DD of a whole circuit (product of its operation DDs).

    Measurements and barriers are skipped.  Intended for verification and
    equivalence checking on moderate sizes; simulation applies gates to
    the state one at a time instead.
    """
    if num_qubits is None:
        num_qubits = circuit.num_qubits
    result = identity_dd(package, num_qubits)
    for op in circuit.operations:
        if isinstance(op, DiagonalOperation):
            for lowered in op.to_operations():
                result = package.mat_mat(
                    operation_dd(package, lowered, num_qubits), result
                )
            continue
        result = package.mat_mat(operation_dd(package, op, num_qubits), result)
    return result


class OperationDDCache:
    """Cache of operation DDs keyed by normalised operation content.

    Circuits repeat gates heavily — Grover reuses the same diffusion
    operator hundreds of times — so the DD of each distinct operation is
    built once per package.  The key quantises the gate matrix to the
    package tolerance, so operations whose matrices agree within
    tolerance share one entry regardless of gate name or parameter
    round-off (``z`` and ``p(pi)`` hit the same DD).  Hit/miss counters
    also feed ``DDPackage.stats()``.
    """

    def __init__(self, package: DDPackage, num_qubits: int):
        self.package = package
        self.num_qubits = num_qubits
        self._cache: Dict[tuple, Edge] = {}
        self.hits = 0
        self.misses = 0

    def _key(self, op: Operation) -> tuple:
        """Quantise the matrix so tolerance-equal operations collide."""
        quantum = max(self.package.tolerance, 1e-15)
        matrix = tuple(
            (round(value.real / quantum), round(value.imag / quantum))
            for row in op.gate.matrix
            for value in row
        )
        return (matrix, op.targets, op.controls, op.neg_controls)

    def get(self, op: Operation) -> Edge:
        """Operator DD for ``operation``, built on first use."""
        key = self._key(op)
        edge = self._cache.get(key)
        if edge is None:
            self.misses += 1
            self.package.op_cache_misses += 1
            edge = operation_dd(self.package, op, self.num_qubits)
            self._cache[key] = edge
        else:
            self.hits += 1
            self.package.op_cache_hits += 1
        return edge

    def __len__(self) -> int:
        return len(self._cache)
