"""Decision-diagram nodes and edges.

A node splits a (sub-)vector or (sub-)matrix on one qubit ``var``.  Vector
nodes have two outgoing edges (0-successor, 1-successor); matrix nodes have
four, indexed ``2*row_bit + col_bit``.  Each edge carries a canonical
complex weight; the amplitude of a basis state is the product of the
weights along its root-to-terminal path (paper Section IV-A).

Nonzero edges never skip levels: a nonzero edge from a node at level ``v``
points to a node at level ``v - 1`` (or to the terminal when ``v == 0``).
Zero edges point directly to the terminal with weight 0 ("zero stubs").
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

__all__ = ["Node", "Edge", "TERMINAL", "is_terminal"]


class Node:
    """A hash-consed decision-diagram node.

    Instances are only created by :class:`~repro.dd.unique_table.UniqueTable`
    (via the DD package), which guarantees that structurally equal nodes are
    the *same object*; identity comparison is therefore sufficient and
    nodes carry a unique ``index`` usable as a dictionary key.
    """

    __slots__ = ("var", "edges", "index")

    def __init__(self, var: int, edges: Tuple["Edge", ...], index: int):
        self.var = var
        self.edges = edges
        self.index = index

    @property
    def is_vector_node(self) -> bool:
        """Whether this node has vector arity (two successors)."""
        return len(self.edges) == 2

    @property
    def is_matrix_node(self) -> bool:
        """Whether this node has matrix arity (four successors)."""
        return len(self.edges) == 4

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.var < 0:
            return "Terminal"
        kind = "V" if self.is_vector_node else "M"
        return f"{kind}Node(q{self.var}, #{self.index})"


class Edge(NamedTuple):
    """A weighted edge to a node.

    ``weight`` is always a canonical complex from the package's
    :class:`~repro.dd.complex_table.ComplexTable`.
    """

    node: Node
    weight: complex

    @property
    def is_zero(self) -> bool:
        """Whether this edge represents the zero vector/matrix."""
        return self.weight == 0

    @property
    def is_terminal(self) -> bool:
        """Whether the edge points at the terminal node."""
        return self.node.var < 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Edge({self.node!r}, {self.weight:.4g})"


#: The shared terminal node (level -1, no successors).
TERMINAL = Node(var=-1, edges=(), index=0)


def is_terminal(node: Node) -> bool:
    """Whether ``node`` is the terminal."""
    return node.var < 0
