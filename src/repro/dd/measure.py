"""Measurement on vector decision diagrams.

Provides the *downstream probability* traversal of the paper (Section
IV-B) — the sum of squared-magnitude path products from a node to the
terminal — plus single-qubit outcome probabilities, projective collapse,
and the naive per-shot collapse measurement used as a baseline sampler.

Simulated measurement never mutates the input DD: collapse returns a new
root edge (the paper notes that simulated measurement is read-only and
repeatable, unlike physical measurement).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..exceptions import SamplingError
from .node import Edge, Node, is_terminal
from .package import DDPackage

__all__ = [
    "MIN_COLLAPSE_PROBABILITY",
    "downstream_probabilities",
    "upstream_probabilities",
    "qubit_probability",
    "collapse",
    "measure_all_collapse",
]

#: Outcomes with probability below this are treated as impossible.  The
#: renormalisation divides by ``sqrt(probability)``; letting probabilities
#: of ~1e-30 through would amplify floating-point dust by ~1e15 and
#: NaN-propagate into every later measurement, so :func:`collapse` raises
#: a clear error instead.
MIN_COLLAPSE_PROBABILITY = 1e-12


def downstream_probabilities(edge: Edge) -> Dict[int, float]:
    """Map ``node.index -> D(node)`` for all nodes reachable from ``edge``.

    ``D(node)`` is the total probability mass of the sub-vector the node
    represents, with the node's own incoming weight excluded:
    ``D(terminal) = 1`` and
    ``D(node) = |w0|^2 D(c0) + |w1|^2 D(c1)``.

    Under the paper's L2 normalisation scheme every ``D`` equals 1; under
    left-most normalisation the values carry the per-node correction the
    sampler needs.  Computed iteratively (explicit stack) so deep DDs do
    not hit the Python recursion limit.
    """
    table: Dict[int, float] = {}
    if edge.is_zero or is_terminal(edge.node):
        return table
    stack: List[Node] = [edge.node]
    while stack:
        node = stack[-1]
        if node.index in table:
            stack.pop()
            continue
        pending = [
            child.node
            for child in node.edges
            if not child.is_zero
            and not is_terminal(child.node)
            and child.node.index not in table
        ]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        total = 0.0
        for child in node.edges:
            if child.is_zero:
                continue
            child_mass = 1.0 if is_terminal(child.node) else table[child.node.index]
            total += abs(child.weight) ** 2 * child_mass
        table[node.index] = total
    return table


def upstream_probabilities(
    edge: Edge, downstream: Optional[Dict[int, float]] = None
) -> Dict[int, float]:
    """Map ``node.index -> U(node)``: probability that a sample's path
    passes through the node.

    ``U(root) = 1``; each node passes
    ``U(node) * |w_b|^2 D(c_b) / D(node)`` to child ``b`` (the breadth-
    first traversal of the paper's Section IV-B).  The product
    ``U(node) * |w_b|^2 * D(c_b)`` is the probability of taking edge
    ``b`` out of the node across all samples.
    """
    table: Dict[int, float] = {}
    if edge.is_zero or is_terminal(edge.node):
        return table
    if downstream is None:
        downstream = downstream_probabilities(edge)
    table[edge.node.index] = 1.0
    # Process nodes level by level (top-down), accumulating into children.
    by_level: Dict[int, List[Node]] = {}
    seen = set()
    stack: List[Node] = [edge.node]
    while stack:
        node = stack.pop()
        if is_terminal(node) or node.index in seen:
            continue
        seen.add(node.index)
        by_level.setdefault(node.var, []).append(node)
        for child in node.edges:
            if not child.is_zero:
                stack.append(child.node)
    for var in sorted(by_level, reverse=True):
        for node in by_level[var]:
            u_node = table.get(node.index, 0.0)
            d_node = downstream[node.index]
            if d_node <= 0.0:
                continue
            for child in node.edges:
                if child.is_zero or is_terminal(child.node):
                    continue
                d_child = downstream[child.node.index]
                share = u_node * (abs(child.weight) ** 2) * d_child / d_node
                table[child.node.index] = table.get(child.node.index, 0.0) + share
    return table


def qubit_probability(
    edge: Edge,
    qubit: int,
    num_qubits: int,
    downstream: Optional[Dict[int, float]] = None,
) -> float:
    """Probability that measuring ``qubit`` yields 1.

    Assumes a normalised state (total mass 1 at the root); the result is
    normalised by the root mass so slightly-unnormalised states behave.
    """
    if edge.is_zero:
        raise SamplingError("cannot measure the zero vector")
    if downstream is None:
        downstream = downstream_probabilities(edge)

    # mass_one(node): probability mass within the subtree having
    # ``qubit`` = 1.  Computed bottom-up over the reachable nodes at or
    # above the qubit's level (an explicit post-order stack instead of
    # recursion, so 1000-qubit registers stay within Python limits).
    memo: Dict[int, float] = {}
    if is_terminal(edge.node):
        raise SamplingError("cannot measure a bare terminal state")
    stack: List[Node] = [edge.node]
    while stack:
        node = stack[-1]
        if node.index in memo:
            stack.pop()
            continue
        if node.var == qubit:
            child = node.edges[1]
            if child.is_zero:
                memo[node.index] = 0.0
            else:
                d_child = (
                    1.0 if is_terminal(child.node) else downstream[child.node.index]
                )
                memo[node.index] = abs(child.weight) ** 2 * d_child
            stack.pop()
            continue
        pending = [
            child.node
            for child in node.edges
            if not child.is_zero
            and not is_terminal(child.node)
            and child.node.index not in memo
        ]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        total = 0.0
        for child in node.edges:
            if child.is_zero or is_terminal(child.node):
                continue
            total += abs(child.weight) ** 2 * memo[child.node.index]
        memo[node.index] = total

    root_mass = abs(edge.weight) ** 2 * downstream[edge.node.index]
    if root_mass <= 0.0:
        raise SamplingError("state has zero norm")
    return abs(edge.weight) ** 2 * memo[edge.node.index] / root_mass


def collapse(
    package: DDPackage,
    edge: Edge,
    qubit: int,
    outcome: int,
    num_qubits: int,
    probability: Optional[float] = None,
) -> Edge:
    """Project ``qubit`` onto ``outcome`` and renormalise.

    Returns the post-measurement state as a new DD.  ``probability`` may
    be supplied when already known (to skip recomputation); it is used
    only to reject impossible outcomes early — the renormalisation always
    divides by the projected state's *actual* L2 norm, so both outcome
    branches are rescaled by the same rule and accumulated rounding in a
    caller-computed ``1 - p`` cannot de-normalise the result.

    Raises :class:`~repro.exceptions.SamplingError` (a
    :class:`~repro.exceptions.ReproError`) when the outcome probability
    is below :data:`MIN_COLLAPSE_PROBABILITY`.
    """
    if outcome not in (0, 1):
        raise SamplingError(f"measurement outcome must be 0 or 1, got {outcome}")
    if probability is None:
        p_one = qubit_probability(edge, qubit, num_qubits)
        probability = p_one if outcome == 1 else 1.0 - p_one
    if not probability >= MIN_COLLAPSE_PROBABILITY:  # also rejects NaN
        raise SamplingError(
            f"cannot collapse qubit {qubit} to outcome {outcome}: outcome "
            f"probability {probability!r} is below the tolerance "
            f"{MIN_COLLAPSE_PROBABILITY:g} (numerically impossible outcome)"
        )
    if edge.is_zero:
        raise SamplingError("cannot collapse the zero vector")

    # Rebuild the nodes at or above the qubit's level bottom-up.  Nodes
    # are collected with an explicit stack and processed in ascending
    # level order (children at level v-1 before parents at v), so deep
    # registers never touch the Python recursion limit.
    by_level: Dict[int, List[Node]] = {}
    seen = set()
    stack: List[Node] = [edge.node]
    while stack:
        node = stack.pop()
        if node.index in seen:
            continue
        seen.add(node.index)
        by_level.setdefault(node.var, []).append(node)
        if node.var > qubit:
            for child in node.edges:
                if not child.is_zero and not is_terminal(child.node):
                    stack.append(child.node)

    memo: Dict[int, Edge] = {}
    for var in sorted(by_level):
        for node in by_level[var]:
            if node.var == qubit:
                children = [package.zero_edge, package.zero_edge]
                children[outcome] = node.edges[outcome]
                result = package.make_vector_node(node.var, tuple(children))
            else:
                rebuilt = []
                for child in node.edges:
                    if child.is_zero:
                        rebuilt.append(child)
                    else:
                        rebuilt.append(
                            package.scale(memo[child.node.index], child.weight)
                        )
                result = package.make_vector_node(node.var, tuple(rebuilt))
            memo[node.index] = result

    projected = package.scale(memo[edge.node.index], edge.weight)
    if projected.is_zero:
        raise SamplingError("projection produced the zero vector")
    # Renormalise by the projection's measured L2 norm (|w|^2 · D(root))
    # rather than the predicted ``probability``: under either scheme this
    # returns a unit-norm state for both outcome branches even when the
    # prediction carries rounding error.
    norm_squared = abs(projected.weight) ** 2
    if not is_terminal(projected.node):
        norm_squared *= downstream_probabilities(projected)[projected.node.index]
    if not norm_squared >= MIN_COLLAPSE_PROBABILITY:  # also rejects NaN
        raise SamplingError(
            f"cannot collapse qubit {qubit} to outcome {outcome}: projected "
            f"state norm² {norm_squared!r} is below the tolerance "
            f"{MIN_COLLAPSE_PROBABILITY:g}"
        )
    return package.scale(projected, 1.0 / np.sqrt(norm_squared))


def measure_all_collapse(
    package: DDPackage,
    edge: Edge,
    num_qubits: int,
    rng: np.random.Generator,
) -> int:
    """Draw one full-register sample by sequential collapse (baseline).

    Measures qubits from the most significant down, collapsing after each
    outcome — the textbook procedure a physical machine implements.  Much
    slower than path sampling (each collapse rebuilds the DD) but useful
    as an independent correctness oracle.
    """
    result = 0
    state = edge
    for qubit in range(num_qubits - 1, -1, -1):
        p_one = qubit_probability(state, qubit, num_qubits)
        outcome = 1 if rng.random() < p_one else 0
        probability = p_one if outcome else 1.0 - p_one
        state = collapse(package, state, qubit, outcome, num_qubits, probability)
        result |= outcome << qubit
    return result
