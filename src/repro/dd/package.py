"""The decision-diagram package: tables plus core recursive operations.

A :class:`DDPackage` owns the complex table, the unique table, and the
compute tables, and provides the operations every higher layer builds on:

* canonical node construction (:meth:`make_vector_node`,
  :meth:`make_matrix_node`) under the configured normalisation scheme,
* vector addition, matrix-vector and matrix-matrix multiplication,
  Kronecker products, scalar multiplication,
* conversions between dense NumPy arrays and DDs,
* structural queries (node counts, amplitudes, inner products).

All operations are non-destructive: DDs are immutable DAGs and every
operation returns a new root edge, sharing unchanged sub-structures.  This
matches the paper's observation that *simulated* measurement is read-only
and repeatable (Section IV-B).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry as _telemetry
from ..exceptions import DDError
from .complex_table import DEFAULT_TOLERANCE, ComplexTable
from .compute_table import ComputeTable
from .node import TERMINAL, Edge, Node, is_terminal
from .normalization import NormalizationScheme, normalize_weights
from .unique_table import UniqueTable

__all__ = ["DDPackage"]


class DDPackage:
    """Owner of all DD state for one simulation context."""

    def __init__(
        self,
        scheme: NormalizationScheme = NormalizationScheme.L2,
        tolerance: float = DEFAULT_TOLERANCE,
        compute_table_max_entries: Optional[int] = None,
        relative_tolerance: float = 0.0,
    ):
        self.scheme = scheme
        self.tolerance = tolerance
        self.complex_table = ComplexTable(tolerance, relative_tolerance)
        self.unique_table = UniqueTable()
        bound = compute_table_max_entries
        self._add_table = ComputeTable("add", max_entries=bound)
        self._matvec_table = ComputeTable("matvec", max_entries=bound)
        self._matmat_table = ComputeTable("matmat", max_entries=bound)
        self._kron_table = ComputeTable("kron", max_entries=bound)
        self._inner_table = ComputeTable("inner", max_entries=bound)
        # Aggregated OperationDDCache traffic (all appliers on this package).
        self.op_cache_hits = 0
        self.op_cache_misses = 0

    # ------------------------------------------------------------------
    # Elementary edges
    # ------------------------------------------------------------------

    @property
    def zero_edge(self) -> Edge:
        """The zero vector/matrix (terminal with weight 0)."""
        return Edge(TERMINAL, 0j)

    def terminal_edge(self, weight: complex) -> Edge:
        """A scalar: terminal node with the given canonical weight.

        A nonzero scalar the complex table would snap to zero keeps its
        raw value: terminal weights are relative to the (unbounded, under
        left-most normalisation) edge weights above them, so an absolute
        snap-to-zero can delete O(1) matrix content.
        """
        value = complex(weight)
        if value == 0:
            return Edge(TERMINAL, 0j)
        interned = self.complex_table.lookup(value)
        if interned == 0:
            return Edge(TERMINAL, value)
        return Edge(TERMINAL, interned)

    def basis_state(self, num_qubits: int, index: int = 0) -> Edge:
        """The computational basis state ``|index⟩`` on ``num_qubits``.

        Bit ``k`` of ``index`` is the value of qubit ``k``.
        """
        if not 0 <= index < 2**num_qubits:
            raise DDError(f"basis index {index} out of range for {num_qubits} qubits")
        edge = self.terminal_edge(1.0)
        for var in range(num_qubits):
            bit = (index >> var) & 1
            children = [self.zero_edge, self.zero_edge]
            children[bit] = edge
            edge = self.make_vector_node(var, tuple(children))
        return edge

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def make_vector_node(self, var: int, edges: Tuple[Edge, Edge]) -> Edge:
        """Create the canonical vector node for ``var`` with successors.

        Applies the package's normalisation scheme, interns weights, and
        hash-conses the node.  An all-zero node collapses to the zero edge.
        """
        if len(edges) != 2:
            raise DDError("vector nodes have exactly two successors")
        weights = [edges[0].weight, edges[1].weight]
        normalised, factor = normalize_weights(weights, self.scheme, self.tolerance)
        factor = self.complex_table.lookup(factor)
        if factor == 0:
            return self.zero_edge
        children = []
        for edge, weight in zip(edges, normalised):
            weight = self.complex_table.lookup(weight)
            if weight == 0:
                children.append(Edge(TERMINAL, 0j))
            else:
                children.append(Edge(edge.node, weight))
        node = self.unique_table.get_node(var, tuple(children))
        return Edge(node, factor)

    def make_matrix_node(self, var: int, edges: Tuple[Edge, Edge, Edge, Edge]) -> Edge:
        """Create the canonical matrix node (successors ordered 00,01,10,11).

        Matrix nodes always use left-most normalisation; the L2 scheme is a
        vector-sampling concern (paper Section IV-C).
        """
        if len(edges) != 4:
            raise DDError("matrix nodes have exactly four successors")
        weights = [e.weight for e in edges]
        # Matrix successors are normalised with an exact-zero test rather
        # than the package tolerance: left-most normalisation stores
        # subtree entries relative to the first nonzero weight, so a
        # child weight far below its siblings can still scale O(1)
        # content — dropping it on magnitude alone is unsound (found by
        # the differential fuzzer on the near-zero-amplitude family).
        normalised, factor = normalize_weights(
            weights, NormalizationScheme.LEFTMOST, 0.0
        )
        if factor == 0:
            return self.zero_edge
        interned_factor = self.complex_table.lookup(factor)
        if interned_factor != 0:
            factor = interned_factor
        children = []
        for edge, weight in zip(edges, normalised):
            if weight == 0:
                children.append(Edge(TERMINAL, 0j))
                continue
            interned = self.complex_table.lookup(weight)
            if interned == 0:
                children.append(Edge(edge.node, weight))
            else:
                children.append(Edge(edge.node, interned))
        node = self.unique_table.get_node(var, tuple(children))
        return Edge(node, factor)

    # ------------------------------------------------------------------
    # Scalar operations
    # ------------------------------------------------------------------

    def scale(self, edge: Edge, factor: complex) -> Edge:
        """Multiply a DD by a scalar (weight adjustment only).

        A nonzero product that the complex table would snap to zero is
        kept at its raw value instead: under left-most normalisation the
        subtree entries below an edge are unbounded (each level stores
        children relative to its first nonzero weight), so a root weight
        below the absolute tolerance can still scale O(1) matrix
        content — snapping it to zero deletes that content outright.
        This exact bug was found by the differential fuzzer on the
        near-zero-amplitude family (equivalence products of circuits
        with 1e-6-scale rotations).
        """
        raw = edge.weight * factor
        if raw == 0:
            return self.zero_edge
        product = self.complex_table.lookup(raw)
        if product == 0:
            return Edge(edge.node, raw)
        return Edge(edge.node, product)

    # ------------------------------------------------------------------
    # Vector addition
    # ------------------------------------------------------------------

    def add(self, left: Edge, right: Edge) -> Edge:
        """Pointwise sum of two vector DDs (same register level)."""
        if left.is_zero:
            return right
        if right.is_zero:
            return left
        if is_terminal(left.node) and is_terminal(right.node):
            return self.terminal_edge(left.weight + right.weight)
        if is_terminal(left.node) or is_terminal(right.node):
            raise DDError("cannot add vector DDs of mismatched depth")
        if left.node.var != right.node.var:
            raise DDError(
                f"cannot add nodes at levels {left.node.var} and {right.node.var}"
            )
        # Canonical key: order operands so a+b and b+a share an entry.
        ka = (left.node.index, left.weight.real, left.weight.imag)
        kb = (right.node.index, right.weight.real, right.weight.imag)
        if kb < ka:
            left, right, ka, kb = right, left, kb, ka
        key = ka + kb
        cached = self._add_table.lookup(key)
        if cached is not None:
            return cached
        children = tuple(
            self.add(
                self.scale(left.node.edges[b], left.weight),
                self.scale(right.node.edges[b], right.weight),
            )
            for b in range(2)
        )
        result = self.make_vector_node(left.node.var, children)
        return self._add_table.insert(key, result)

    def matrix_add(self, left: Edge, right: Edge) -> Edge:
        """Pointwise sum of two matrix DDs."""
        if left.is_zero:
            return right
        if right.is_zero:
            return left
        if is_terminal(left.node) and is_terminal(right.node):
            return self.terminal_edge(left.weight + right.weight)
        if is_terminal(left.node) or is_terminal(right.node):
            raise DDError("cannot add matrix DDs of mismatched depth")
        if left.node.var != right.node.var:
            raise DDError("matrix addition at mismatched levels")
        ka = (left.node.index, left.weight.real, left.weight.imag)
        kb = (right.node.index, right.weight.real, right.weight.imag)
        if kb < ka:
            left, right, ka, kb = right, left, kb, ka
        if self.complex_table.relative_tolerance <= 0.0:
            # Absolute-window interning is not scale-invariant: computing
            # the sum at a normalised scale and re-interning the scaled
            # result can snap a small weight to a relatively-distant
            # neighbour.  Keep the legacy absolute-weight memo key, which
            # evaluates every sum at its true scale.
            key = ("M",) + ka + kb
            cached = self._add_table.lookup(key)
            if cached is not None:
                return cached
            children = tuple(
                self.matrix_add(
                    self.scale(left.node.edges[i], left.weight),
                    self.scale(right.node.edges[i], right.weight),
                )
                for i in range(4)
            )
            result = self.make_matrix_node(left.node.var, children)
            return self._add_table.insert(key, result)
        # Addition is jointly homogeneous — wA*A + wB*B = wA*(A + r*B)
        # with r = wB/wA — so under relative-guarded interning (which IS
        # scale-invariant) the memo key needs only the weight *ratio*.
        # Keying on absolute weights looks equivalent but is catastrophic
        # for Kraus sums: the recursion re-scales the operands at every
        # level, every accumulated scale becomes a distinct key, and a
        # 10-node product-state density DD explodes into a full 4^n-path
        # enumeration with zero cache hits.
        ratio = right.weight / left.weight
        key = ("M", left.node.index, right.node.index, ratio.real, ratio.imag)
        cached = self._add_table.lookup(key)
        if cached is not None:
            return self.scale(cached, left.weight)
        children = tuple(
            self.matrix_add(
                left.node.edges[i],
                self.scale(right.node.edges[i], ratio),
            )
            for i in range(4)
        )
        result = self.make_matrix_node(left.node.var, children)
        self._add_table.insert(key, result)
        return self.scale(result, left.weight)

    # ------------------------------------------------------------------
    # Multiplication
    # ------------------------------------------------------------------

    def mat_vec(self, matrix: Edge, vector: Edge) -> Edge:
        """Apply a matrix DD to a vector DD (both rooted at the same level)."""
        if matrix.is_zero or vector.is_zero:
            return self.zero_edge
        if is_terminal(matrix.node) and is_terminal(vector.node):
            return self.terminal_edge(matrix.weight * vector.weight)
        if is_terminal(matrix.node) or is_terminal(vector.node):
            raise DDError("matrix and vector DDs have mismatched depth")
        if matrix.node.var != vector.node.var:
            raise DDError(
                f"matrix at level {matrix.node.var} applied to vector at "
                f"level {vector.node.var}"
            )
        key = (matrix.node.index, vector.node.index)
        cached = self._matvec_table.lookup(key)
        if cached is not None:
            return self.scale(cached, matrix.weight * vector.weight)
        var = matrix.node.var
        children = []
        for row in range(2):
            terms = [
                self.mat_vec(matrix.node.edges[2 * row + col], vector.node.edges[col])
                for col in range(2)
            ]
            children.append(self.add(terms[0], terms[1]))
        result = self.make_vector_node(var, tuple(children))
        self._matvec_table.insert(key, result)
        return self.scale(result, matrix.weight * vector.weight)

    def mat_mat(self, left: Edge, right: Edge) -> Edge:
        """Multiply two matrix DDs (``left @ right``)."""
        if left.is_zero or right.is_zero:
            return self.zero_edge
        if is_terminal(left.node) and is_terminal(right.node):
            return self.terminal_edge(left.weight * right.weight)
        if is_terminal(left.node) or is_terminal(right.node):
            raise DDError("matrix DDs have mismatched depth")
        if left.node.var != right.node.var:
            raise DDError("matrix product at mismatched levels")
        key = (left.node.index, right.node.index)
        cached = self._matmat_table.lookup(key)
        if cached is not None:
            return self.scale(cached, left.weight * right.weight)
        var = left.node.var
        children = []
        for row in range(2):
            for col in range(2):
                terms = [
                    self.mat_mat(
                        left.node.edges[2 * row + k], right.node.edges[2 * k + col]
                    )
                    for k in range(2)
                ]
                children.append(self.matrix_add(terms[0], terms[1]))
        result = self.make_matrix_node(var, tuple(children))
        self._matmat_table.insert(key, result)
        return self.scale(result, left.weight * right.weight)

    # ------------------------------------------------------------------
    # Kronecker products
    # ------------------------------------------------------------------

    def vector_kron(self, top: Edge, bottom: Edge) -> Edge:
        """Tensor product placing ``top`` on the more significant qubits.

        ``bottom`` keeps its variable indices; ``top``'s variables must
        already be shifted above them by the caller.
        """
        if top.is_zero or bottom.is_zero:
            return self.zero_edge
        if is_terminal(top.node):
            return self.scale(bottom, top.weight)
        key = (top.node.index, bottom.node.index, bottom.weight)
        cached = self._kron_table.lookup(key)
        if cached is not None:
            return self.scale(cached, top.weight)
        children = tuple(
            self.vector_kron(top.node.edges[b], bottom) for b in range(2)
        )
        result = self.make_vector_node(top.node.var, children)
        self._kron_table.insert(key, result)
        return self.scale(result, top.weight)

    # ------------------------------------------------------------------
    # Dense conversions
    # ------------------------------------------------------------------

    def from_statevector(self, vector: Sequence[complex]) -> Edge:
        """Build a vector DD from a dense state vector.

        The length must be a power of two; qubit ``n - 1`` is the most
        significant bit of the index (the first split, as in Fig. 4a).
        """
        array = np.asarray(vector, dtype=np.complex128)
        if array.ndim != 1 or array.size == 0 or array.size & (array.size - 1):
            raise DDError("state vector length must be a power of two")
        num_qubits = int(round(math.log2(array.size)))

        def build(offset: int, size: int, var: int) -> Edge:
            if size == 1:
                value = complex(array[offset])
                if abs(value) <= self.tolerance:
                    return self.zero_edge
                return self.terminal_edge(value)
            half = size // 2
            low = build(offset, half, var - 1)
            high = build(offset + half, half, var - 1)
            return self.make_vector_node(var, (low, high))

        return build(0, array.size, num_qubits - 1)

    def to_statevector(self, edge: Edge, num_qubits: int) -> np.ndarray:
        """Expand a vector DD to a dense array of ``2^num_qubits`` entries."""
        result = np.zeros(2**num_qubits, dtype=np.complex128)
        if edge.is_zero:
            return result
        cache: Dict[int, np.ndarray] = {}

        def expand(node: Node, var: int) -> np.ndarray:
            if is_terminal(node):
                return np.ones(1, dtype=np.complex128)
            sub = cache.get(node.index)
            if sub is not None:
                return sub
            size = 2**node.var
            sub = np.zeros(2 * size, dtype=np.complex128)
            for b in range(2):
                child = node.edges[b]
                if child.is_zero:
                    continue
                sub[b * size : (b + 1) * size] = child.weight * expand(
                    child.node, node.var - 1
                )
            cache[node.index] = sub
            return sub

        if is_terminal(edge.node):
            if num_qubits != 0:
                raise DDError("terminal edge cannot represent a multi-qubit state")
            return np.array([edge.weight], dtype=np.complex128)
        if edge.node.var != num_qubits - 1:
            raise DDError(
                f"DD rooted at level {edge.node.var} is not a "
                f"{num_qubits}-qubit state"
            )
        return edge.weight * expand(edge.node, edge.node.var)

    def matrix_from_array(self, matrix: np.ndarray) -> Edge:
        """Build a matrix DD from a dense unitary (verification-sized)."""
        matrix = np.asarray(matrix, dtype=np.complex128)
        dim = matrix.shape[0]
        if matrix.shape != (dim, dim) or dim & (dim - 1) or dim == 0:
            raise DDError("matrix must be square with power-of-two dimension")
        num_qubits = int(round(math.log2(dim)))

        def build(rows: Tuple[int, int], cols: Tuple[int, int], var: int) -> Edge:
            if rows[1] - rows[0] == 1:
                value = complex(matrix[rows[0], cols[0]])
                if abs(value) <= self.tolerance:
                    return self.zero_edge
                return self.terminal_edge(value)
            row_mid = (rows[0] + rows[1]) // 2
            col_mid = (cols[0] + cols[1]) // 2
            children = (
                build((rows[0], row_mid), (cols[0], col_mid), var - 1),
                build((rows[0], row_mid), (col_mid, cols[1]), var - 1),
                build((row_mid, rows[1]), (cols[0], col_mid), var - 1),
                build((row_mid, rows[1]), (col_mid, cols[1]), var - 1),
            )
            return self.make_matrix_node(var, children)

        return build((0, dim), (0, dim), num_qubits - 1)

    def matrix_to_array(self, edge: Edge, num_qubits: int) -> np.ndarray:
        """Expand a matrix DD to a dense array (verification-sized)."""
        dim = 2**num_qubits
        if edge.is_zero:
            return np.zeros((dim, dim), dtype=np.complex128)
        cache: Dict[int, np.ndarray] = {}

        def expand(node: Node) -> np.ndarray:
            if is_terminal(node):
                return np.ones((1, 1), dtype=np.complex128)
            sub = cache.get(node.index)
            if sub is not None:
                return sub
            half = 2**node.var
            sub = np.zeros((2 * half, 2 * half), dtype=np.complex128)
            for row in range(2):
                for col in range(2):
                    child = node.edges[2 * row + col]
                    if child.is_zero:
                        continue
                    block = child.weight * expand(child.node)
                    sub[
                        row * half : (row + 1) * half,
                        col * half : (col + 1) * half,
                    ] = block
            cache[node.index] = sub
            return sub

        if is_terminal(edge.node):
            if num_qubits != 0:
                raise DDError("terminal edge is not a multi-qubit matrix")
            return np.array([[edge.weight]], dtype=np.complex128)
        if edge.node.var != num_qubits - 1:
            raise DDError("matrix DD level does not match num_qubits")
        return edge.weight * expand(edge.node)

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------

    def amplitude(self, edge: Edge, index: int, num_qubits: int) -> complex:
        """Amplitude of basis state ``index``: product of path weights.

        This is the path-following rule of Example 9 in the paper.
        """
        value = edge.weight
        node = edge.node
        var = num_qubits - 1
        while not is_terminal(node):
            if node.var != var:
                raise DDError("level mismatch while following a path")
            bit = (index >> var) & 1
            child = node.edges[bit]
            value *= child.weight
            if value == 0:
                return 0j
            node = child.node
            var -= 1
        return value

    def node_count(self, edge: Edge) -> int:
        """Number of non-terminal nodes reachable from ``edge``.

        This is the "size" column reported for DD-based sampling in
        Table I of the paper.
        """
        seen = set()

        def visit(node: Node) -> None:
            if is_terminal(node) or node.index in seen:
                return
            seen.add(node.index)
            for child in node.edges:
                visit(child.node)

        visit(edge.node)
        return len(seen)

    def nodes_per_level(self, edge: Edge) -> Dict[int, int]:
        """Histogram of node counts per qubit level."""
        seen = set()
        histogram: Dict[int, int] = {}

        def visit(node: Node) -> None:
            if is_terminal(node) or node.index in seen:
                return
            seen.add(node.index)
            histogram[node.var] = histogram.get(node.var, 0) + 1
            for child in node.edges:
                visit(child.node)

        visit(edge.node)
        return histogram

    def count_nonzero_paths(self, edge: Edge) -> int:
        """Number of basis states with nonzero amplitude (exact).

        Computed by dynamic programming over the DAG in O(size) — no
        path enumeration — so it works for states whose support is
        exponential (e.g. 2^48 for qft_48).
        """
        if edge.is_zero:
            return 0
        memo: Dict[int, int] = {}

        def count(node: Node) -> int:
            if is_terminal(node):
                return 1
            cached = memo.get(node.index)
            if cached is not None:
                return cached
            total = sum(
                count(child.node) for child in node.edges if not child.is_zero
            )
            memo[node.index] = total
            return total

        return count(edge.node)

    def inner_product(self, left: Edge, right: Edge) -> complex:
        """⟨left|right⟩ over two vector DDs at the same level."""
        if left.is_zero or right.is_zero:
            return 0j
        if is_terminal(left.node) and is_terminal(right.node):
            return left.weight.conjugate() * right.weight
        if is_terminal(left.node) or is_terminal(right.node):
            raise DDError("inner product of mismatched depths")
        if left.node.var != right.node.var:
            raise DDError("inner product at mismatched levels")
        key = (left.node.index, right.node.index)
        cached = self._inner_table.lookup(key)
        if cached is not None:
            return left.weight.conjugate() * right.weight * cached.weight
        total = 0j
        for b in range(2):
            lc, rc = left.node.edges[b], right.node.edges[b]
            if lc.is_zero or rc.is_zero:
                continue
            total += self.inner_product(lc, rc)
        self._inner_table.insert(key, self.terminal_edge(total))
        return left.weight.conjugate() * right.weight * total

    def norm_squared(self, edge: Edge) -> float:
        """⟨ψ|ψ⟩ — should be 1 for a physical state."""
        return float(self.inner_product(edge, edge).real)

    def fidelity(self, left: Edge, right: Edge) -> float:
        """|⟨left|right⟩|² between two vector DDs."""
        return float(abs(self.inner_product(left, right)) ** 2)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def compact(self, roots: Sequence[Edge]) -> List[Edge]:
        """Garbage-collect: keep only nodes reachable from ``roots``.

        Long simulations (e.g. hundreds of Grover iterations) retain every
        intermediate node in the unique table; this rebuilds the table
        from the live roots and clears the compute tables, bounding
        memory.  Returns the rebuilt root edges (same states, possibly
        different node objects).  Each collection is traced as a
        ``dd.compact`` span (with before/after table sizes) when a
        telemetry session is active.
        """
        with _telemetry.span("dd.compact", roots=len(roots)) as span:
            span.set_attr("nodes_before", len(self.unique_table))
            old_nodes: Dict[int, Node] = {}

            def snapshot(node: Node) -> None:
                if is_terminal(node) or node.index in old_nodes:
                    return
                old_nodes[node.index] = node
                for child in node.edges:
                    snapshot(child.node)

            for root in roots:
                snapshot(root.node)
            self.unique_table.clear()
            self.clear_compute_tables()
            rebuilt: Dict[int, Node] = {}

            def rebuild(node: Node) -> Node:
                if is_terminal(node):
                    return node
                cached = rebuilt.get(node.index)
                if cached is not None:
                    return cached
                edges = tuple(
                    Edge(rebuild(child.node), child.weight) for child in node.edges
                )
                new_node = self.unique_table.get_node(node.var, edges)
                rebuilt[node.index] = new_node
                return new_node

            results = [Edge(rebuild(root.node), root.weight) for root in roots]
            span.set_attr("nodes_after", len(self.unique_table))
            session = _telemetry.active()
            if session is not None:
                session.registry.counter("dd.compactions").inc()
        return results

    def clear_compute_tables(self) -> None:
        """Drop memoisation tables (e.g. between unrelated simulations)."""
        for table in (
            self._add_table,
            self._matvec_table,
            self._matmat_table,
            self._kron_table,
            self._inner_table,
        ):
            table.clear()

    def statistics(self) -> Dict[str, int]:
        """Table sizes and hit counters, for diagnostics and benches."""
        stats = {
            "unique_nodes": len(self.unique_table),
            "unique_hits": self.unique_table.hits,
            "unique_misses": self.unique_table.misses,
            "complex_entries": len(self.complex_table),
            "op_cache_hits": self.op_cache_hits,
            "op_cache_misses": self.op_cache_misses,
        }
        for table in (
            self._add_table,
            self._matvec_table,
            self._matmat_table,
            self._kron_table,
            self._inner_table,
        ):
            stats[f"{table.name}_entries"] = len(table)
            stats[f"{table.name}_hit_rate"] = round(table.hit_rate(), 4)
            stats[f"{table.name}_clears"] = table.clears
        return stats

    def stats(self) -> Dict[str, int]:
        """Alias for :meth:`statistics` (the short name benches use)."""
        return self.statistics()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DDPackage(scheme={self.scheme.value}, "
            f"nodes={len(self.unique_table)})"
        )
