"""High-level handle for a quantum state stored as a decision diagram.

:class:`VectorDD` bundles a root edge with its package and register width
and exposes the queries users need — amplitudes, probabilities, dense
export, node counts, fidelity — without dealing in raw edges.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..exceptions import DDError
from .measure import qubit_probability
from .node import Edge, is_terminal
from .package import DDPackage

__all__ = ["VectorDD"]


class VectorDD:
    """An ``num_qubits``-qubit quantum state as an edge-weighted DD."""

    def __init__(self, package: DDPackage, edge: Edge, num_qubits: int):
        if num_qubits < 1:
            raise DDError("a state needs at least one qubit")
        if not edge.is_zero and not is_terminal(edge.node):
            if edge.node.var != num_qubits - 1:
                raise DDError(
                    f"root at level {edge.node.var} does not match "
                    f"{num_qubits} qubits"
                )
        self.package = package
        self.edge = edge
        self.num_qubits = num_qubits

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def zero_state(
        cls, package: DDPackage, num_qubits: int
    ) -> "VectorDD":
        """|0...0⟩."""
        return cls(package, package.basis_state(num_qubits, 0), num_qubits)

    @classmethod
    def basis_state(
        cls, package: DDPackage, num_qubits: int, index: int
    ) -> "VectorDD":
        """|index⟩ with bit ``k`` of ``index`` the value of qubit ``k``."""
        return cls(package, package.basis_state(num_qubits, index), num_qubits)

    @classmethod
    def from_statevector(
        cls, package: DDPackage, vector
    ) -> "VectorDD":
        """Compress a dense state vector into a DD."""
        array = np.asarray(vector, dtype=np.complex128)
        num_qubits = int(round(np.log2(array.size)))
        edge = package.from_statevector(array)
        return cls(package, edge, num_qubits)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def amplitude(self, index: int) -> complex:
        """Amplitude of basis state ``index``."""
        if not 0 <= index < 2**self.num_qubits:
            raise DDError(f"basis index {index} out of range")
        return self.package.amplitude(self.edge, index, self.num_qubits)

    def amplitude_of(self, bitstring: str) -> complex:
        """Amplitude of a bitstring written ``q_{n-1} ... q_0``."""
        if len(bitstring) != self.num_qubits:
            raise DDError(
                f"bitstring {bitstring!r} does not have {self.num_qubits} bits"
            )
        return self.amplitude(int(bitstring, 2))

    def probability(self, index: int) -> float:
        """Measurement probability of basis state ``index``."""
        return float(abs(self.amplitude(index)) ** 2)

    def to_statevector(self) -> np.ndarray:
        """Dense export (2^n entries — use only at verification sizes)."""
        return self.package.to_statevector(self.edge, self.num_qubits)

    def probabilities(self) -> np.ndarray:
        """Dense probability vector (2^n entries)."""
        vector = self.to_statevector()
        return (vector.conj() * vector).real

    @property
    def node_count(self) -> int:
        """DD size — the quantity in the paper's Table I ("size" column)."""
        return self.package.node_count(self.edge)

    def nodes_per_level(self) -> Dict[int, int]:
        """Node count per qubit level, top-down."""
        return self.package.nodes_per_level(self.edge)

    def norm_squared(self) -> float:
        """<psi|psi> of the represented state."""
        return self.package.norm_squared(self.edge)

    def fidelity(self, other: "VectorDD") -> float:
        """|<self|other>|^2 against another state DD."""
        if other.num_qubits != self.num_qubits:
            raise DDError("fidelity of states with different register sizes")
        return self.package.fidelity(self.edge, other.edge)

    def qubit_probability(self, qubit: int) -> float:
        """Probability of measuring ``qubit`` as 1."""
        if not 0 <= qubit < self.num_qubits:
            raise DDError(f"qubit {qubit} out of range")
        return qubit_probability(self.edge, qubit, self.num_qubits)

    # ------------------------------------------------------------------
    # Path iteration
    # ------------------------------------------------------------------

    def nonzero_paths(self, limit: Optional[int] = None) -> Iterator[Tuple[int, complex]]:
        """Yield ``(basis_index, amplitude)`` for nonzero amplitudes.

        The number of paths can be exponential; pass ``limit`` to stop
        early.  Paths are yielded in increasing basis-index order.
        """
        if self.edge.is_zero:
            return
        count = 0

        def walk(edge: Edge, var: int, prefix: int, weight: complex):
            nonlocal count
            if limit is not None and count >= limit:
                return
            if edge.is_zero:
                return
            weight = weight * edge.weight
            if is_terminal(edge.node):
                yield (prefix, weight)
                count += 1
                return
            node = edge.node
            for bit in range(2):
                yield from walk(
                    node.edges[bit], var - 1, prefix | (bit << node.var), weight
                )

        yield from walk(self.edge, self.num_qubits - 1, 0, 1.0 + 0j)

    def support_size(self) -> int:
        """Number of basis states with nonzero amplitude.

        Exact and O(DD size) — counts paths by dynamic programming, so a
        2^48-support state answers instantly.
        """
        return self.package.count_nonzero_paths(self.edge)

    def format_bitstring(self, index: int) -> str:
        """Render a basis index as ``q_{n-1} ... q_0``."""
        return format(index, f"0{self.num_qubits}b")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VectorDD(qubits={self.num_qubits}, nodes={self.node_count}, "
            f"scheme={self.package.scheme.value})"
        )
