"""Dynamic variable reordering (sifting) for vector decision diagrams.

DD size is hypersensitive to the variable order: two qubits that are
entangled but live at distant levels force every level in between to
enumerate their joint support, so moving them adjacent can shrink the
diagram exponentially (the minimal-size-QDD literature, arXiv:2606.24789,
treats exactly this local search).  This module provides the two
primitives and the driver:

* :func:`swap_adjacent` — interchange two adjacent DD levels in place
  (an O(affected-size) rebuild of the two unique-table levels and their
  ancestors).  Every rebuilt node goes back through
  :meth:`~repro.dd.package.DDPackage.make_vector_node`, the canonical
  construction path, so weights stay interned in the ComplexTable and
  the swapped diagram is **bit-compatible with a fresh build at the
  swapped order** — hash-consing makes them literally the same nodes.
* :func:`sift` — Rudell-style sifting adapted to immutable DDs: each
  variable is greedily moved to its locally optimal level, one adjacent
  swap at a time, keeping a swap **iff the total node count shrinks**
  (candidates that fail the test are simply dropped — DDs are immutable,
  so "undo" is free).  A configurable budget bounds the number of swap
  attempts per call.
* :class:`ReorderConfig` — the end-to-end contract threaded through
  ``DDSimulator(reorder=)``, ``simulate_and_sample``, the CLI and the
  service, mirroring :class:`~repro.dd.approximation.ApproximationConfig`
  (a disabled config is ``None`` everywhere; an enabled one is folded
  into the artifact cache key).

Reordering changes which *qubit* lives at which *level*: the result of a
reordered build is a DD whose level ``l`` holds original qubit
``level_to_qubit[l]``.  Samples drawn from it are in level space;
:func:`unpermute_index` (and its vectorised sibling
:func:`unpermute_samples`) move them back to original qubit order.  The
permutation is recorded in ``SimulationStats.level_to_qubit`` and in the
service artifact metadata so warm cache hits unpermute without
rebuilding (see ``docs/reordering.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry as _telemetry
from ..exceptions import DDError
from .node import Edge, Node, is_terminal
from .package import DDPackage

__all__ = [
    "DEFAULT_SIFT_BUDGET",
    "DEFAULT_REORDER_INTERVAL",
    "DEFAULT_MIN_NODES",
    "ReorderConfig",
    "SiftResult",
    "swap_adjacent",
    "sift",
    "is_identity_permutation",
    "invert_permutation",
    "unpermute_index",
    "unpermute_samples",
    "unpermute_counts",
]

#: Maximum adjacent-swap *attempts* a sifting run may spend.  Each
#: attempt is an O(affected-size) rebuild plus a node count, so the
#: budget bounds reordering overhead no matter how large the DD grows.
DEFAULT_SIFT_BUDGET = 256

#: Gates between dynamic sifting rounds.  Matches the approximation /
#: node-limit / telemetry-probe cadence (25) so the node-count traversal
#: that motivates a round is the one the probes already pay for.
DEFAULT_REORDER_INTERVAL = 25

#: Minimum live node count before a dynamic round fires.  Sifting a
#: diagram smaller than this costs more than it can ever recover.
DEFAULT_MIN_NODES = 64


@dataclass(frozen=True)
class ReorderConfig:
    """Whether and how a DD build reorders its variables.

    ``enabled = False`` (the default) disables reordering entirely and is
    treated as ``None`` everywhere in the stack — CLI, service,
    scheduler — exactly like a disabled
    :class:`~repro.dd.approximation.ApproximationConfig`.

    ``budget`` bounds the total adjacent-swap attempts the run may spend
    across all dynamic sifting rounds.  ``interval`` is the dynamic
    cadence in applied gates; ``min_nodes`` gates a round on the live
    node count so small diagrams are never sifted.  ``static`` also
    derives an initial order from circuit connectivity before the build
    (the :mod:`repro.compile.layout` pass); ``dynamic`` runs sifting
    rounds during the build.  Disabling both knobs while ``enabled``
    is rejected — such a config could never reorder anything.
    """

    enabled: bool = False
    budget: int = DEFAULT_SIFT_BUDGET
    interval: int = DEFAULT_REORDER_INTERVAL
    min_nodes: int = DEFAULT_MIN_NODES
    static: bool = True
    dynamic: bool = True

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise DDError(
                f"reorder budget must be >= 0, got {self.budget}"
            )
        if self.interval < 1:
            raise DDError(
                f"reorder interval must be >= 1, got {self.interval}"
            )
        if self.min_nodes < 1:
            raise DDError(
                f"reorder min_nodes must be >= 1, got {self.min_nodes}"
            )
        if self.enabled and not (self.static or self.dynamic):
            raise DDError(
                "an enabled reorder config needs at least one of "
                "'static' or 'dynamic'"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the service's ``reorder`` request field)."""
        payload: Dict[str, Any] = {"enabled": self.enabled}
        if self.budget != DEFAULT_SIFT_BUDGET:
            payload["budget"] = self.budget
        if self.interval != DEFAULT_REORDER_INTERVAL:
            payload["interval"] = self.interval
        if self.min_nodes != DEFAULT_MIN_NODES:
            payload["min_nodes"] = self.min_nodes
        if not self.static:
            payload["static"] = False
        if not self.dynamic:
            payload["dynamic"] = False
        return payload

    @classmethod
    def from_value(cls, value: Any) -> "ReorderConfig":
        """Parse a request field: a bool, a budget, or an object.

        ``True`` enables reordering with the defaults, ``False`` (and
        ``0``) disables it; a positive integer enables it with that swap
        budget; a mapping may set any field (``enabled`` defaults to
        ``True`` there — sending the object at all is opting in).
        """
        if isinstance(value, ReorderConfig):
            return value
        if isinstance(value, bool):
            return cls(enabled=value)
        if isinstance(value, int):
            if value < 0:
                raise DDError(f"reorder budget must be >= 0, got {value}")
            return cls(enabled=value > 0, budget=value or DEFAULT_SIFT_BUDGET)
        if isinstance(value, dict):
            known = {
                "enabled", "budget", "interval", "min_nodes", "static",
                "dynamic",
            }
            unknown = set(value) - known
            if unknown:
                raise DDError(
                    f"unknown reorder fields {sorted(unknown)}; "
                    f"expected a subset of {sorted(known)}"
                )
            return cls(
                enabled=bool(value.get("enabled", True)),
                budget=int(value.get("budget", DEFAULT_SIFT_BUDGET)),
                interval=int(value.get("interval", DEFAULT_REORDER_INTERVAL)),
                min_nodes=int(value.get("min_nodes", DEFAULT_MIN_NODES)),
                static=bool(value.get("static", True)),
                dynamic=bool(value.get("dynamic", True)),
            )
        raise DDError(
            "reorder must be a bool, a swap budget, or an object with "
            f"'enabled'/'budget'/..., got {type(value).__name__}"
        )


@dataclass(frozen=True)
class SiftResult:
    """Outcome of one :func:`sift` call."""

    edge: Edge
    #: ``level_to_qubit[l]`` is the qubit (in the caller's labelling)
    #: occupying DD level ``l`` after the call.
    level_to_qubit: Tuple[int, ...]
    swaps_attempted: int
    swaps_kept: int
    nodes_before: int
    nodes_after: int

    @property
    def changed(self) -> bool:
        """Whether any swap survived the shrink test."""
        return self.swaps_kept > 0


def _swap_node(package: DDPackage, node: Node, level: int) -> Edge:
    """The core level interchange for one node at ``level + 1``.

    For outer edges ``w_a`` to level-``level`` nodes with inner edges
    ``u_{a,b}`` to subtrees ``S_{a,b}``, the swapped node selects ``b``
    first: its child for bit ``b`` is a level-``level`` node over ``a``
    with edges ``w_a * u_{a,b} -> S_{a,b}``.  The untouched subtrees are
    shared, and both new layers go through ``make_vector_node`` so the
    result is canonical.
    """
    grid = [
        [package.zero_edge, package.zero_edge],
        [package.zero_edge, package.zero_edge],
    ]
    for a, child in enumerate(node.edges):
        if child.is_zero:
            continue
        inner = child.node
        if is_terminal(inner) or inner.var != level:
            # Vector DDs built by this package never skip levels: a
            # nonzero edge from level+1 lands exactly at `level`.
            raise DDError(
                f"cannot swap levels {level}/{level + 1}: edge from a "
                f"level-{node.var} node skips level {level}"
            )
        for b, sub in enumerate(inner.edges):
            if not sub.is_zero:
                grid[a][b] = package.scale(sub, child.weight)
    inner_nodes = tuple(
        package.make_vector_node(level, (grid[0][b], grid[1][b]))
        for b in range(2)
    )
    return package.make_vector_node(level + 1, inner_nodes)


def swap_adjacent(package: DDPackage, edge: Edge, level: int) -> Edge:
    """Interchange DD levels ``level`` and ``level + 1`` of ``edge``.

    Returns a new root edge for the same amplitudes read with the two
    levels' bit positions exchanged: if the input's level ``l`` holds
    qubit ``q_l``, the output's holds ``q_{level+1}`` at ``level`` and
    ``q_{level}`` at ``level + 1``.  Nodes strictly below ``level`` are
    shared untouched; nodes at the two affected levels and all their
    ancestors are rebuilt canonically (memoised, O(affected size)).
    """
    if edge.is_zero or is_terminal(edge.node):
        return edge
    top = edge.node.var
    if not 0 <= level < top:
        raise DDError(
            f"cannot swap levels {level}/{level + 1} of a DD rooted at "
            f"level {top}"
        )
    memo: Dict[int, Edge] = {}

    def rebuild(node: Node) -> Edge:
        cached = memo.get(node.index)
        if cached is not None:
            return cached
        if node.var == level + 1:
            result = _swap_node(package, node, level)
        else:
            children: List[Edge] = []
            for child in node.edges:
                if child.is_zero or is_terminal(child.node):
                    children.append(child)
                elif child.node.var <= level - 1:
                    children.append(child)
                else:
                    children.append(
                        package.scale(rebuild(child.node), child.weight)
                    )
            result = package.make_vector_node(node.var, tuple(children))
        memo[node.index] = result
        return result

    return package.scale(rebuild(edge.node), edge.weight)


def sift(
    package: DDPackage,
    edge: Edge,
    num_qubits: int,
    budget: int = DEFAULT_SIFT_BUDGET,
    level_to_qubit: Optional[Sequence[int]] = None,
) -> SiftResult:
    """Sift every variable to its locally optimal level under ``budget``.

    Greedy hill climbing in the classic sifting spirit, adapted to
    immutable DDs: variables are visited densest level first; each is
    pushed down, then up, one adjacent swap at a time, and a swap is
    kept **iff the total node count strictly shrinks** (rejected
    candidates cost their rebuild but change nothing — immutability
    makes the revert free).  Passes repeat until a full pass keeps no
    swap or the attempt budget is exhausted.  ``level_to_qubit`` seeds
    the permutation bookkeeping (identity by default); the result's
    permutation composes any kept swaps on top of it.

    Runs under a ``reorder.sift`` telemetry span with ``reorder.swaps``
    / ``reorder.swaps_kept`` counters and a ``reorder.nodes`` gauge when
    a session is active.
    """
    perm: List[int] = list(
        range(num_qubits) if level_to_qubit is None else level_to_qubit
    )
    if len(perm) != num_qubits or sorted(perm) != list(range(num_qubits)):
        raise DDError(
            f"level_to_qubit must be a permutation of 0..{num_qubits - 1}"
        )
    nodes_before = package.node_count(edge)
    done = SiftResult(
        edge=edge,
        level_to_qubit=tuple(perm),
        swaps_attempted=0,
        swaps_kept=0,
        nodes_before=nodes_before,
        nodes_after=nodes_before,
    )
    if (
        budget <= 0
        or num_qubits < 2
        or edge.is_zero
        or is_terminal(edge.node)
    ):
        return done
    with _telemetry.span(
        "reorder.sift", num_qubits=num_qubits, budget=budget
    ) as span:
        span.set_attr("nodes_before", nodes_before)
        current = edge
        best_count = nodes_before
        position = {qubit: lvl for lvl, qubit in enumerate(perm)}
        attempted = kept = 0

        def try_swap(lower_level: int) -> bool:
            """Attempt one adjacent swap; keep it iff the DD shrinks."""
            nonlocal current, best_count, attempted, kept
            candidate = swap_adjacent(package, current, lower_level)
            attempted += 1
            count = package.node_count(candidate)
            if count >= best_count:
                return False
            current, best_count = candidate, count
            qubit_low, qubit_high = perm[lower_level], perm[lower_level + 1]
            perm[lower_level], perm[lower_level + 1] = qubit_high, qubit_low
            position[qubit_low], position[qubit_high] = (
                lower_level + 1,
                lower_level,
            )
            kept += 1
            return True

        improved = True
        while improved and attempted < budget:
            improved = False
            histogram = package.nodes_per_level(current)
            order = sorted(
                range(num_qubits),
                key=lambda lvl: (-histogram.get(lvl, 0), lvl),
            )
            for qubit in [perm[lvl] for lvl in order]:
                while attempted < budget and position[qubit] > 0:
                    if not try_swap(position[qubit] - 1):
                        break
                    improved = True
                while (
                    attempted < budget and position[qubit] < num_qubits - 1
                ):
                    if not try_swap(position[qubit]):
                        break
                    improved = True
                if attempted >= budget:
                    break
        span.set_attr("nodes_after", best_count)
        span.set_attr("swaps_attempted", attempted)
        span.set_attr("swaps_kept", kept)
        session = _telemetry.active()
        if session is not None:
            session.registry.counter("reorder.swaps").inc(attempted)
            session.registry.counter("reorder.swaps_kept").inc(kept)
            session.registry.gauge("reorder.nodes").set(best_count)
    return SiftResult(
        edge=current,
        level_to_qubit=tuple(perm),
        swaps_attempted=attempted,
        swaps_kept=kept,
        nodes_before=nodes_before,
        nodes_after=best_count,
    )


# ----------------------------------------------------------------------
# Permutation plumbing
# ----------------------------------------------------------------------


def is_identity_permutation(permutation: Sequence[int]) -> bool:
    """Whether ``permutation`` maps every position to itself."""
    return all(index == value for index, value in enumerate(permutation))


def invert_permutation(permutation: Sequence[int]) -> Tuple[int, ...]:
    """The inverse mapping: ``invert(p)[p[i]] == i``."""
    inverse = [0] * len(permutation)
    for index, value in enumerate(permutation):
        inverse[value] = index
    return tuple(inverse)


def unpermute_index(index: int, level_to_qubit: Sequence[int]) -> int:
    """Move one level-space basis index back to original qubit order.

    Bit ``l`` of a sample drawn from a reordered DD is the value of
    original qubit ``level_to_qubit[l]``.
    """
    out = 0
    for level, qubit in enumerate(level_to_qubit):
        out |= ((index >> level) & 1) << qubit
    return out


def unpermute_samples(
    samples: np.ndarray, level_to_qubit: Sequence[int]
) -> np.ndarray:
    """Vectorised :func:`unpermute_index` over an array of basis indices."""
    array = np.asarray(samples)
    out = np.zeros_like(array)
    for level, qubit in enumerate(level_to_qubit):
        out |= ((array >> level) & 1) << qubit
    return out


def unpermute_counts(
    counts: Dict[int, int], level_to_qubit: Sequence[int]
) -> Dict[int, int]:
    """Re-key a counts dict from level space to original qubit order.

    The permutation is a bijection on basis indices, so no two keys
    collide and the shot total is preserved exactly.
    """
    return {
        unpermute_index(index, level_to_qubit): count
        for index, count in counts.items()
    }
