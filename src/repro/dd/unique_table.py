"""Hash-consing of decision-diagram nodes.

The unique table guarantees canonicity: for a given variable and tuple of
(successor, weight) pairs there is exactly one :class:`Node` object.  This
is what turns the recursive vector decomposition of the paper's Section
IV-A into a DAG with shared sub-structures instead of a tree.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .node import Edge, Node

__all__ = ["UniqueTable"]


class UniqueTable:
    """Node store keyed by (var, successors-with-weights)."""

    def __init__(self) -> None:
        self._table: Dict[tuple, Node] = {}
        self._next_index = 1  # index 0 is the terminal
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._table)

    def get_node(self, var: int, edges: Tuple[Edge, ...]) -> Node:
        """Return the canonical node for ``(var, edges)``.

        ``edges`` must already be normalised (weights canonicalised, the
        scheme-specific weight convention applied); the unique table only
        deduplicates.
        """
        key = (var, len(edges)) + tuple(
            item for edge in edges for item in (edge.node.index, edge.weight)
        )
        node = self._table.get(key)
        if node is not None:
            self.hits += 1
            return node
        self.misses += 1
        node = Node(var=var, edges=edges, index=self._next_index)
        self._next_index += 1
        self._table[key] = node
        return node

    def clear(self) -> None:
        """Drop all entries.

        The index counter is *not* reset: node indexes are unique for the
        package lifetime, so nodes created before a
        :meth:`~repro.dd.package.DDPackage.compact` can safely coexist
        with (and be keyed against) nodes created afterwards.
        """
        self._table.clear()
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UniqueTable(nodes={len(self)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
