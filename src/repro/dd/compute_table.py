"""Memoisation tables for recursive decision-diagram operations.

Addition, multiplication, inner products, and gate construction are all
recursive over node pairs; without memoisation their cost would be the
number of *paths* instead of the number of *nodes*.  A compute table maps
operation-specific keys to result edges.

Keys embed node ``index`` values (stable unique identifiers) and canonical
weights, so equal sub-problems collide reliably.

Growth can be bounded with ``max_entries``: when an insert would exceed
the bound the table is cleared wholesale (CUDD-style), trading re-derived
results for a hard memory ceiling.  ``hit_rate()`` and the ``clears``
counter make the trade-off observable through ``DDPackage.stats()``.
"""

from __future__ import annotations

from typing import Dict, Optional

from .node import Edge

__all__ = ["ComputeTable"]


class ComputeTable:
    """A single operation's memo table with hit/miss statistics."""

    def __init__(self, name: str, max_entries: Optional[int] = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive when given")
        self.name = name
        self.max_entries = max_entries
        self._table: Dict[tuple, Edge] = {}
        self.hits = 0
        self.misses = 0
        #: Clear-on-overflow events since the last explicit ``clear()``.
        self.clears = 0

    def __len__(self) -> int:
        return len(self._table)

    def lookup(self, key: tuple) -> Optional[Edge]:
        """Cached result for ``key``, or ``None`` on a miss."""
        result = self._table.get(key)
        if result is not None:
            self.hits += 1
        else:
            self.misses += 1
        return result

    def insert(self, key: tuple, result: Edge) -> Edge:
        """Memoise ``result`` under ``key`` (evicts on collision)."""
        if (
            self.max_entries is not None
            and len(self._table) >= self.max_entries
            and key not in self._table
        ):
            # CUDD-style overflow handling: drop everything rather than
            # tracking per-entry age.  Hit/miss counters keep running so
            # hit_rate() reflects the whole session.
            self._table.clear()
            self.clears += 1
        self._table[key] = result
        return result

    def hit_rate(self) -> float:
        """Fraction of lookups answered from the table (0.0 when unused)."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def clear(self) -> None:
        """Drop every entry (keeps the hit/miss counters)."""
        self._table.clear()
        self.hits = 0
        self.misses = 0
        self.clears = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ComputeTable({self.name!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
