"""Memoisation tables for recursive decision-diagram operations.

Addition, multiplication, inner products, and gate construction are all
recursive over node pairs; without memoisation their cost would be the
number of *paths* instead of the number of *nodes*.  A compute table maps
operation-specific keys to result edges.

Keys embed node ``index`` values (stable unique identifiers) and canonical
weights, so equal sub-problems collide reliably.
"""

from __future__ import annotations

from typing import Dict, Optional

from .node import Edge

__all__ = ["ComputeTable"]


class ComputeTable:
    """A single operation's memo table with hit/miss statistics."""

    def __init__(self, name: str):
        self.name = name
        self._table: Dict[tuple, Edge] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._table)

    def lookup(self, key: tuple) -> Optional[Edge]:
        result = self._table.get(key)
        if result is not None:
            self.hits += 1
        else:
            self.misses += 1
        return result

    def insert(self, key: tuple, result: Edge) -> Edge:
        self._table[key] = result
        return result

    def clear(self) -> None:
        self._table.clear()
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ComputeTable({self.name!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
