"""Edge-weighted decision diagrams for quantum states and operators.

The data structure of the paper's Section IV: quantum states compressed
into DAGs with canonical complex edge weights.  Key entry points:

* :class:`~repro.dd.package.DDPackage` — owns all tables and provides the
  recursive operations,
* :class:`~repro.dd.vector_dd.VectorDD` — a user-facing state handle,
* :class:`~repro.dd.apply.GateApplier` — applies circuit operations,
* :mod:`~repro.dd.measure` — downstream/upstream probability traversals
  and projective collapse,
* :class:`~repro.dd.normalization.NormalizationScheme` — LEFTMOST vs the
  paper's L2 scheme.
"""

from .apply import GateApplier, apply_operation
from .approximation import (
    DEFAULT_PRUNE_INTERVAL,
    ApproximationConfig,
    ApproximationResult,
    Approximator,
    edge_contributions,
    prune_low_contribution,
    prune_to_node_budget,
)
from .complex_table import DEFAULT_TOLERANCE, ComplexTable
from .compute_table import ComputeTable
from .density import (
    DensityMatrixDD,
    apply_kraus_dds,
    apply_superoperator,
    diagonal_edge,
    matrix_adjoint,
    matrix_trace,
    outer_product,
)
from .dot import to_dot
from .matrix_dd import OperationDDCache, circuit_dd, identity_dd, operation_dd
from .measure import (
    collapse,
    downstream_probabilities,
    measure_all_collapse,
    qubit_probability,
    upstream_probabilities,
)
from .node import TERMINAL, Edge, Node, is_terminal
from .normalization import NormalizationScheme, normalize_weights
from .observables import PauliObservable, PauliString, expectation_value
from .package import DDPackage
from .reorder import (
    DEFAULT_SIFT_BUDGET,
    ReorderConfig,
    SiftResult,
    invert_permutation,
    is_identity_permutation,
    sift,
    swap_adjacent,
    unpermute_counts,
    unpermute_index,
    unpermute_samples,
)
from .serialize import load_state, save_state, state_from_dict, state_to_dict
from .stats import (
    BYTES_PER_AMPLITUDE,
    BYTES_PER_NODE,
    RepresentationSize,
    dd_bytes,
    size_log2,
    vector_bytes,
)
from .unique_table import UniqueTable
from .vector_dd import VectorDD

__all__ = [
    "DDPackage",
    "VectorDD",
    "GateApplier",
    "apply_operation",
    "NormalizationScheme",
    "normalize_weights",
    "ComplexTable",
    "ComputeTable",
    "UniqueTable",
    "DEFAULT_TOLERANCE",
    "Edge",
    "Node",
    "TERMINAL",
    "is_terminal",
    "identity_dd",
    "operation_dd",
    "circuit_dd",
    "OperationDDCache",
    "DensityMatrixDD",
    "matrix_adjoint",
    "matrix_trace",
    "outer_product",
    "diagonal_edge",
    "apply_superoperator",
    "apply_kraus_dds",
    "downstream_probabilities",
    "upstream_probabilities",
    "qubit_probability",
    "collapse",
    "measure_all_collapse",
    "to_dot",
    "DEFAULT_PRUNE_INTERVAL",
    "ApproximationConfig",
    "ApproximationResult",
    "Approximator",
    "edge_contributions",
    "prune_low_contribution",
    "prune_to_node_budget",
    "DEFAULT_SIFT_BUDGET",
    "ReorderConfig",
    "SiftResult",
    "sift",
    "swap_adjacent",
    "is_identity_permutation",
    "invert_permutation",
    "unpermute_index",
    "unpermute_samples",
    "unpermute_counts",
    "PauliString",
    "PauliObservable",
    "expectation_value",
    "save_state",
    "load_state",
    "state_to_dict",
    "state_from_dict",
    "RepresentationSize",
    "vector_bytes",
    "dd_bytes",
    "size_log2",
    "BYTES_PER_AMPLITUDE",
    "BYTES_PER_NODE",
]
