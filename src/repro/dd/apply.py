"""Application of circuit operations to vector decision diagrams.

The :class:`GateApplier` routes every operation to the cheapest correct
strategy:

* **Diagonal gates** (Z, S, T, P, RZ, CZ, CP, MCZ/MCP, RZZ, …) are applied
  as a sequence of *subspace phases*: one traversal per non-unit diagonal
  entry, multiplying a phase onto every path through the selected
  computational subspace.  No additions, no new structure — this covers
  the entanglers of the QFT, Grover, and the supremacy circuits.
* **Single-qubit gates whose controls all sit above the target** use a
  direct memoised descent that linearly combines the target node's two
  successors (one DD addition per touched node).
* **X-target gates with a control below the target, and SWAPs** are
  decomposed into the two fast strategies above: ``C…C-X(t)`` is
  ``H(t) · C…C-Z · H(t)`` (the controlled-Z is a single subspace phase),
  and ``SWAP(a, b)`` is three CNOTs.  This keeps the QFT's bit-reversal
  swaps and Grover's down-pointing CNOTs off the generic matrix path.
* **Everything else** falls back to a generic matrix-DD × vector-DD
  multiplication with a per-operation DD cache.

All strategies produce identical states (tested against each other); the
routing exists because the fast paths dominate the benchmark families.
:meth:`GateApplier.classify` exposes the routing decision so alternative
engines (the vectorized SoA kernel in :mod:`repro.perf.kernel`) apply
the *same* strategy per operation and stay bit-identical to this one.
"""

from __future__ import annotations

import cmath

from functools import lru_cache
from typing import Dict, Iterable

import numpy as np

from ..circuit.gates import h_gate
from ..circuit.operations import DiagonalOperation, Operation
from ..exceptions import DDError
from .matrix_dd import OperationDDCache
from .node import Edge, is_terminal
from .package import DDPackage

__all__ = ["GateApplier", "apply_operation"]

# Gates are frozen (hashable) and heavily repeated — a circuit is a few
# distinct gates applied hundreds of times — so the per-gate structural
# tests below are memoised and loop over the stored matrix tuples (no
# NumPy array construction on the per-operation path).


@lru_cache(maxsize=None)
def _gate_is_diagonal(gate, tolerance: float) -> bool:
    """Memoised entry-wise off-diagonal test (``Gate.is_diagonal``)."""
    for row, values in enumerate(gate.matrix):
        for col, value in enumerate(values):
            if row != col and abs(value) > tolerance:
                return False
    return True


@lru_cache(maxsize=None)
def _is_x_matrix(gate, tolerance: float) -> bool:
    """Exact structural test for the 2x2 Pauli-X matrix."""
    if gate.num_qubits != 1:
        return False
    (a00, a01), (a10, a11) = gate.matrix
    return (
        abs(a00) <= tolerance
        and abs(a11) <= tolerance
        and abs(a01 - 1.0) <= tolerance
        and abs(a10 - 1.0) <= tolerance
    )


@lru_cache(maxsize=None)
def _is_swap_matrix(gate, tolerance: float) -> bool:
    """Exact structural test for the 4x4 SWAP matrix."""
    if gate.num_qubits != 2:
        return False
    expect = ((1, 0, 0, 0), (0, 0, 1, 0), (0, 1, 0, 0), (0, 0, 0, 1))
    for values, expected in zip(gate.matrix, expect):
        for value, target in zip(values, expected):
            if abs(value - target) > tolerance:
                return False
    return True


class GateApplier:
    """Applies operations to vector DDs within one package/register."""

    def __init__(
        self,
        package: DDPackage,
        num_qubits: int,
        use_fast_paths: bool = True,
    ):
        self.package = package
        self.num_qubits = num_qubits
        self.use_fast_paths = use_fast_paths
        self._op_dds = OperationDDCache(package, num_qubits)
        # Strategy counters for diagnostics and the engine ablation bench.
        self.diagonal_applications = 0
        self.descent_applications = 0
        self.decompose_applications = 0
        self.matvec_applications = 0
        # Subspace-phase traversals performed inside coalesced diagonal
        # blocks (each block counts once in ``diagonal_applications``).
        self.diagonal_term_applications = 0

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------

    def classify(self, op) -> str:
        """Name the strategy :meth:`apply` will route ``op`` to.

        One of ``"diagonal"``, ``"descent"``, ``"decompose"``, or
        ``"matvec"``.  The vectorized SoA kernel consults this so both
        engines make the same per-operation choice (a prerequisite for
        bit-identical states).
        """
        if isinstance(op, DiagonalOperation):
            return "diagonal"
        if not self.use_fast_paths:
            return "matvec"
        if _gate_is_diagonal(op.gate, self.package.tolerance):
            return "diagonal"
        if (
            op.gate.num_qubits == 1
            and all(c > op.targets[0] for c in op.controls)
            and all(c > op.targets[0] for c in op.neg_controls)
        ):
            return "descent"
        if self.decomposition_steps(op) is not None:
            return "decompose"
        return "matvec"

    def apply(self, state: Edge, op) -> Edge:
        """Return ``op`` applied to ``state``.

        Accepts plain :class:`Operation` instructions and coalesced
        :class:`DiagonalOperation` blocks from the compile pipeline.
        """
        if op.max_qubit >= self.num_qubits:
            raise DDError(
                f"operation touches qubit {op.max_qubit} outside the "
                f"{self.num_qubits}-qubit register"
            )
        if state.is_zero:
            return state
        strategy = self.classify(op)
        if strategy == "diagonal":
            self.diagonal_applications += 1
            if isinstance(op, DiagonalOperation):
                return self._apply_diagonal_block(state, op)
            return self._apply_diagonal(state, op)
        if strategy == "descent":
            self.descent_applications += 1
            return self._apply_single_qubit_descent(state, op)
        if strategy == "decompose":
            self.decompose_applications += 1
            for kind, *payload in self.decomposition_steps(op):
                if kind == "op":
                    state = self._apply_single_qubit_descent(state, payload[0])
                else:
                    ones, zeros, phase = payload
                    state = self.apply_subspace_phase(state, ones, zeros, phase)
            return state
        self.matvec_applications += 1
        return self.package.mat_vec(self._op_dds.get(op), state)

    # ------------------------------------------------------------------
    # Decomposition fast path
    # ------------------------------------------------------------------

    def decomposition_steps(self, op):
        """Expansion of ``op`` into descent/phase steps, or ``None``.

        Covers the two remaining bench-hot shapes that the descent and
        diagonal strategies miss: X-target gates with a control *below*
        the target (Grover's down-pointing CNOTs) and uncontrolled SWAPs
        (the QFT's bit reversal).  Each step is either
        ``("op", Operation)`` — a single-qubit gate with controls above
        its target, eligible for :meth:`_apply_single_qubit_descent` —
        or ``("phase", ones, zeros, phase)`` for
        :meth:`apply_subspace_phase`.  Both engines replay the same
        steps, so the decomposition preserves bit-identity.
        """
        tolerance = self.package.tolerance
        gate = op.gate
        if (
            _is_x_matrix(gate, tolerance)
            and (op.controls or op.neg_controls)
        ):
            return self._x_steps(op.targets[0], op.controls, op.neg_controls)
        if (
            gate.num_qubits == 2
            and not op.controls
            and not op.neg_controls
            and _is_swap_matrix(gate, tolerance)
        ):
            a, b = op.targets
            steps = []
            for control, target in ((a, b), (b, a), (a, b)):
                if control > target:
                    steps.append(self._cx_descent_step(control, target))
                else:
                    steps.extend(
                        self._x_steps(target, frozenset({control}), frozenset())
                    )
            return tuple(steps)
        return None

    @staticmethod
    def _cx_descent_step(control: int, target: int):
        """A CNOT whose control sits above the target: plain descent."""
        from ..circuit.gates import x_gate

        return (
            "op",
            Operation(x_gate(), (target,), controls=frozenset({control})),
        )

    @staticmethod
    def _x_steps(target, controls, neg_controls):
        """``C…C-X(t)`` as ``H(t) · C…C-Z(t, controls) · H(t)``."""
        h = Operation(h_gate(), (target,))
        return (
            ("op", h),
            (
                "phase",
                frozenset(controls) | {target},
                frozenset(neg_controls),
                -1.0 + 0j,
            ),
            ("op", h),
        )

    # ------------------------------------------------------------------
    # Diagonal fast path
    # ------------------------------------------------------------------

    def _apply_diagonal(self, state: Edge, op: Operation) -> Edge:
        """Decompose a diagonal gate into subspace-phase traversals."""
        diag = np.diag(op.gate.array)
        for pattern, value in enumerate(diag):
            value = complex(value)
            if abs(value - 1.0) <= self.package.tolerance:
                continue
            ones = set(op.controls)
            zeros = set(op.neg_controls)
            for bit, qubit in enumerate(op.targets):
                if (pattern >> bit) & 1:
                    ones.add(qubit)
                else:
                    zeros.add(qubit)
            state = self.apply_subspace_phase(state, ones, zeros, value)
        return state

    def _apply_diagonal_block(self, state: Edge, op: DiagonalOperation) -> Edge:
        """Apply a coalesced diagonal block: one traversal per phase term."""
        for term in op.terms:
            self.diagonal_term_applications += 1
            state = self.apply_subspace_phase(
                state, term.ones, term.zeros, cmath.exp(1j * term.angle)
            )
        return state

    def apply_subspace_phase(
        self,
        state: Edge,
        ones: Iterable[int],
        zeros: Iterable[int],
        phase: complex,
    ) -> Edge:
        """Multiply ``phase`` onto amplitudes of the subspace where every
        qubit in ``ones`` is |1⟩ and every qubit in ``zeros`` is |0⟩."""
        package = self.package
        relevant = sorted(set(ones) | set(zeros), reverse=True)
        if not relevant:
            return package.scale(state, phase)
        ones = set(ones)
        zeros_set = set(zeros)
        lowest = relevant[-1]
        memo: Dict[int, Edge] = {}

        def walk(edge: Edge, var: int) -> Edge:
            if edge.is_zero:
                return edge
            if var < lowest:
                return package.scale(edge, phase)
            node = edge.node
            cached = memo.get(node.index)
            if cached is not None:
                return package.scale(cached, edge.weight)
            c0, c1 = node.edges
            if var in ones:
                children = (c0, walk(c1, var - 1))
            elif var in zeros_set:
                children = (walk(c0, var - 1), c1)
            else:
                children = (walk(c0, var - 1), walk(c1, var - 1))
            result = package.make_vector_node(var, children)
            memo[node.index] = result
            return package.scale(result, edge.weight)

        if is_terminal(state.node):
            raise DDError("cannot apply a phase on a terminal-only state")
        return walk(state, state.node.var)

    # ------------------------------------------------------------------
    # Single-qubit descent fast path
    # ------------------------------------------------------------------

    def _apply_single_qubit_descent(self, state: Edge, op: Operation) -> Edge:
        """Apply a 1-qubit gate whose controls all lie above the target."""
        package = self.package
        target = op.targets[0]
        controls = op.controls
        neg_controls = op.neg_controls
        (u00, u01), (u10, u11) = op.gate.matrix
        memo: Dict[int, Edge] = {}

        def walk(edge: Edge, var: int) -> Edge:
            if edge.is_zero:
                return edge
            node = edge.node
            if var == target:
                cached = memo.get(node.index)
                if cached is not None:
                    return package.scale(cached, edge.weight)
                c0, c1 = node.edges
                n0 = package.add(package.scale(c0, u00), package.scale(c1, u01))
                n1 = package.add(package.scale(c0, u10), package.scale(c1, u11))
                result = package.make_vector_node(var, (n0, n1))
                memo[node.index] = result
                return package.scale(result, edge.weight)
            cached = memo.get(node.index)
            if cached is not None:
                return package.scale(cached, edge.weight)
            c0, c1 = node.edges
            if var in controls:
                children = (c0, walk(c1, var - 1))
            elif var in neg_controls:
                children = (walk(c0, var - 1), c1)
            else:
                children = (walk(c0, var - 1), walk(c1, var - 1))
            result = package.make_vector_node(var, children)
            memo[node.index] = result
            return package.scale(result, edge.weight)

        if is_terminal(state.node):
            raise DDError("state has no qubits to apply a gate to")
        return walk(state, state.node.var)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def strategy_counts(self) -> Dict[str, int]:
        """How many operations each application strategy handled."""
        return {
            "diagonal": self.diagonal_applications,
            "descent": self.descent_applications,
            "decompose": self.decompose_applications,
            "matvec": self.matvec_applications,
        }


def apply_operation(
    package: DDPackage, state: Edge, op: Operation, num_qubits: int
) -> Edge:
    """One-shot convenience wrapper around :class:`GateApplier`."""
    return GateApplier(package, num_qubits).apply(state, op)
