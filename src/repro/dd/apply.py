"""Application of circuit operations to vector decision diagrams.

The :class:`GateApplier` routes every operation to the cheapest correct
strategy:

* **Diagonal gates** (Z, S, T, P, RZ, CZ, CP, MCZ/MCP, RZZ, …) are applied
  as a sequence of *subspace phases*: one traversal per non-unit diagonal
  entry, multiplying a phase onto every path through the selected
  computational subspace.  No additions, no new structure — this covers
  the entanglers of the QFT, Grover, and the supremacy circuits.
* **Single-qubit gates whose controls all sit above the target** use a
  direct memoised descent that linearly combines the target node's two
  successors (one DD addition per touched node).
* **Everything else** falls back to a generic matrix-DD × vector-DD
  multiplication with a per-operation DD cache.

All strategies produce identical states (tested against each other); the
routing exists because the fast paths dominate the benchmark families.
"""

from __future__ import annotations

import cmath

from typing import Dict, Iterable

import numpy as np

from ..circuit.operations import DiagonalOperation, Operation
from ..exceptions import DDError
from .matrix_dd import OperationDDCache
from .node import Edge, is_terminal
from .package import DDPackage

__all__ = ["GateApplier", "apply_operation"]


class GateApplier:
    """Applies operations to vector DDs within one package/register."""

    def __init__(
        self,
        package: DDPackage,
        num_qubits: int,
        use_fast_paths: bool = True,
    ):
        self.package = package
        self.num_qubits = num_qubits
        self.use_fast_paths = use_fast_paths
        self._op_dds = OperationDDCache(package, num_qubits)
        # Strategy counters for diagnostics and the engine ablation bench.
        self.diagonal_applications = 0
        self.descent_applications = 0
        self.matvec_applications = 0
        # Subspace-phase traversals performed inside coalesced diagonal
        # blocks (each block counts once in ``diagonal_applications``).
        self.diagonal_term_applications = 0

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------

    def apply(self, state: Edge, op) -> Edge:
        """Return ``op`` applied to ``state``.

        Accepts plain :class:`Operation` instructions and coalesced
        :class:`DiagonalOperation` blocks from the compile pipeline.
        """
        if isinstance(op, DiagonalOperation):
            if op.max_qubit >= self.num_qubits:
                raise DDError(
                    f"operation touches qubit {op.max_qubit} outside the "
                    f"{self.num_qubits}-qubit register"
                )
            if state.is_zero:
                return state
            self.diagonal_applications += 1
            return self._apply_diagonal_block(state, op)
        if op.max_qubit >= self.num_qubits:
            raise DDError(
                f"operation touches qubit {op.max_qubit} outside the "
                f"{self.num_qubits}-qubit register"
            )
        if state.is_zero:
            return state
        if self.use_fast_paths and op.gate.is_diagonal(self.package.tolerance):
            self.diagonal_applications += 1
            return self._apply_diagonal(state, op)
        if (
            self.use_fast_paths
            and op.gate.num_qubits == 1
            and all(c > op.targets[0] for c in op.controls)
            and all(c > op.targets[0] for c in op.neg_controls)
        ):
            self.descent_applications += 1
            return self._apply_single_qubit_descent(state, op)
        self.matvec_applications += 1
        return self.package.mat_vec(self._op_dds.get(op), state)

    # ------------------------------------------------------------------
    # Diagonal fast path
    # ------------------------------------------------------------------

    def _apply_diagonal(self, state: Edge, op: Operation) -> Edge:
        """Decompose a diagonal gate into subspace-phase traversals."""
        diag = np.diag(op.gate.array)
        for pattern, value in enumerate(diag):
            value = complex(value)
            if abs(value - 1.0) <= self.package.tolerance:
                continue
            ones = set(op.controls)
            zeros = set(op.neg_controls)
            for bit, qubit in enumerate(op.targets):
                if (pattern >> bit) & 1:
                    ones.add(qubit)
                else:
                    zeros.add(qubit)
            state = self.apply_subspace_phase(state, ones, zeros, value)
        return state

    def _apply_diagonal_block(self, state: Edge, op: DiagonalOperation) -> Edge:
        """Apply a coalesced diagonal block: one traversal per phase term."""
        for term in op.terms:
            self.diagonal_term_applications += 1
            state = self.apply_subspace_phase(
                state, term.ones, term.zeros, cmath.exp(1j * term.angle)
            )
        return state

    def apply_subspace_phase(
        self,
        state: Edge,
        ones: Iterable[int],
        zeros: Iterable[int],
        phase: complex,
    ) -> Edge:
        """Multiply ``phase`` onto amplitudes of the subspace where every
        qubit in ``ones`` is |1⟩ and every qubit in ``zeros`` is |0⟩."""
        package = self.package
        relevant = sorted(set(ones) | set(zeros), reverse=True)
        if not relevant:
            return package.scale(state, phase)
        ones = set(ones)
        zeros_set = set(zeros)
        lowest = relevant[-1]
        memo: Dict[int, Edge] = {}

        def walk(edge: Edge, var: int) -> Edge:
            if edge.is_zero:
                return edge
            if var < lowest:
                return package.scale(edge, phase)
            node = edge.node
            cached = memo.get(node.index)
            if cached is not None:
                return package.scale(cached, edge.weight)
            c0, c1 = node.edges
            if var in ones:
                children = (c0, walk(c1, var - 1))
            elif var in zeros_set:
                children = (walk(c0, var - 1), c1)
            else:
                children = (walk(c0, var - 1), walk(c1, var - 1))
            result = package.make_vector_node(var, children)
            memo[node.index] = result
            return package.scale(result, edge.weight)

        if is_terminal(state.node):
            raise DDError("cannot apply a phase on a terminal-only state")
        return walk(state, state.node.var)

    # ------------------------------------------------------------------
    # Single-qubit descent fast path
    # ------------------------------------------------------------------

    def _apply_single_qubit_descent(self, state: Edge, op: Operation) -> Edge:
        """Apply a 1-qubit gate whose controls all lie above the target."""
        package = self.package
        target = op.targets[0]
        controls = op.controls
        neg_controls = op.neg_controls
        matrix = op.gate.array
        u00, u01 = complex(matrix[0, 0]), complex(matrix[0, 1])
        u10, u11 = complex(matrix[1, 0]), complex(matrix[1, 1])
        memo: Dict[int, Edge] = {}

        def walk(edge: Edge, var: int) -> Edge:
            if edge.is_zero:
                return edge
            node = edge.node
            if var == target:
                cached = memo.get(node.index)
                if cached is not None:
                    return package.scale(cached, edge.weight)
                c0, c1 = node.edges
                n0 = package.add(package.scale(c0, u00), package.scale(c1, u01))
                n1 = package.add(package.scale(c0, u10), package.scale(c1, u11))
                result = package.make_vector_node(var, (n0, n1))
                memo[node.index] = result
                return package.scale(result, edge.weight)
            cached = memo.get(node.index)
            if cached is not None:
                return package.scale(cached, edge.weight)
            c0, c1 = node.edges
            if var in controls:
                children = (c0, walk(c1, var - 1))
            elif var in neg_controls:
                children = (walk(c0, var - 1), c1)
            else:
                children = (walk(c0, var - 1), walk(c1, var - 1))
            result = package.make_vector_node(var, children)
            memo[node.index] = result
            return package.scale(result, edge.weight)

        if is_terminal(state.node):
            raise DDError("state has no qubits to apply a gate to")
        return walk(state, state.node.var)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def strategy_counts(self) -> Dict[str, int]:
        """How many operations each application strategy handled."""
        return {
            "diagonal": self.diagonal_applications,
            "descent": self.descent_applications,
            "matvec": self.matvec_applications,
        }


def apply_operation(
    package: DDPackage, state: Edge, op: Operation, num_qubits: int
) -> Edge:
    """One-shot convenience wrapper around :class:`GateApplier`."""
    return GateApplier(package, num_qubits).apply(state, op)
