"""Density matrices as decision diagrams: the noisy-simulation substrate.

A density matrix on ``n`` qubits is just an ``n``-level *matrix* DD —
the same 4-successor nodes :mod:`repro.dd.matrix_dd` builds for gates
(the QuIDD construction of Viamontes/Markov/Hayes, quant-ph/0403114).
Everything here reuses :class:`~repro.dd.package.DDPackage` machinery:

* unitary evolution is two matrix products, ``U · rho · U†``
  (:func:`apply_superoperator`), with the adjoint built once per
  operator by :func:`matrix_adjoint`;
* a Kraus channel is a sum of such conjugations
  (:func:`apply_kraus_dds`), non-unitary operators included —
  :func:`~repro.dd.matrix_dd.operation_dd` never assumed unitarity;
* sampling needs only the diagonal: :func:`diagonal_edge` projects
  ``rho`` onto a *probability vector* DD (L1 path-product semantics,
  entries ``rho_ii``), which
  :func:`repro.perf.compiled_dd.compile_probability_edge` flattens into
  the standard :class:`~repro.perf.compiled_dd.CompiledDD` artifact —
  so the whole compiled shot path (vectorised sampling, serialisation,
  artifact store, warm serving) works on noisy states unchanged.

:class:`DensityMatrixDD` is the user-facing handle, mirroring
:class:`~repro.dd.vector_dd.VectorDD`.  Cost note: a mixed state's
matrix DD can approach the *square* of the corresponding pure-state DD
size, which is why the density path runs on the python engine only and
is gated behind explicit noise configs (see ``docs/noise.md``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from ..exceptions import DDError
from .node import Edge, is_terminal
from .package import DDPackage
from .vector_dd import VectorDD

__all__ = [
    "DensityMatrixDD",
    "matrix_adjoint",
    "matrix_trace",
    "outer_product",
    "diagonal_edge",
    "apply_superoperator",
    "apply_kraus_dds",
]


def matrix_adjoint(package: DDPackage, edge: Edge) -> Edge:
    """The conjugate transpose of a matrix DD.

    Recursively swaps the off-diagonal successors (``01`` ↔ ``10``) and
    conjugates every weight; sub-DAG sharing is preserved through a
    per-node memo.
    """
    memo: Dict[int, Edge] = {}

    def adjoint(sub: Edge) -> Edge:
        if sub.is_zero:
            return package.zero_edge
        if is_terminal(sub.node):
            return package.terminal_edge(sub.weight.conjugate())
        cached = memo.get(sub.node.index)
        if cached is None:
            children = sub.node.edges
            cached = package.make_matrix_node(
                sub.node.var,
                (
                    adjoint(children[0]),
                    adjoint(children[2]),
                    adjoint(children[1]),
                    adjoint(children[3]),
                ),
            )
            memo[sub.node.index] = cached
        return package.scale(cached, sub.weight.conjugate())

    return adjoint(edge)


def matrix_trace(package: DDPackage, edge: Edge, num_qubits: int) -> complex:
    """The trace of a matrix DD, by DP over the diagonal successors."""
    memo: Dict[int, complex] = {}

    def trace(sub: Edge, var: int) -> complex:
        if sub.is_zero:
            return 0j
        if is_terminal(sub.node):
            if var >= 0:
                raise DDError("matrix DD skips a level on a diagonal path")
            return sub.weight
        if sub.node.var != var:
            raise DDError("matrix DD level mismatch while tracing")
        cached = memo.get(sub.node.index)
        if cached is None:
            children = sub.node.edges
            cached = trace(children[0], var - 1) + trace(children[3], var - 1)
            memo[sub.node.index] = cached
        return sub.weight * cached

    return trace(edge, num_qubits - 1)


def outer_product(package: DDPackage, state: Edge) -> Edge:
    """``|ψ⟩⟨ψ|`` of a vector DD, as a matrix DD.

    Built by a memoised double recursion over (row, column) node pairs:
    the matrix block at ``(r, c)`` is the outer product of the vector's
    ``r`` successor with the conjugate of its ``c`` successor.
    """
    memo: Dict[Tuple[int, int], Edge] = {}

    def outer(row: Edge, col: Edge) -> Edge:
        if row.is_zero or col.is_zero:
            return package.zero_edge
        factor = row.weight * col.weight.conjugate()
        if is_terminal(row.node) and is_terminal(col.node):
            return package.terminal_edge(factor)
        if is_terminal(row.node) or is_terminal(col.node):
            raise DDError("outer product of mismatched depths")
        if row.node.var != col.node.var:
            raise DDError("outer product at mismatched levels")
        key = (row.node.index, col.node.index)
        cached = memo.get(key)
        if cached is None:
            r0, r1 = row.node.edges
            c0, c1 = col.node.edges
            cached = package.make_matrix_node(
                row.node.var,
                (outer(r0, c0), outer(r0, c1), outer(r1, c0), outer(r1, c1)),
            )
            memo[key] = cached
        return package.scale(cached, factor)

    return outer(state, state)


def diagonal_edge(package: DDPackage, edge: Edge, num_qubits: int) -> Edge:
    """Project a matrix DD onto its diagonal, as a *probability* vector DD.

    The result's path products are the diagonal entries ``rho_ii`` — an
    L1 (probability) convention, **not** the L2 amplitude convention of
    state DDs, so it must be flattened with
    :func:`repro.perf.compiled_dd.compile_probability_edge` (never the
    amplitude-based :func:`~repro.perf.compiled_dd.compile_edge`).
    """
    memo: Dict[int, Edge] = {}

    def diagonal(sub: Edge, var: int) -> Edge:
        if sub.is_zero:
            return package.zero_edge
        if is_terminal(sub.node):
            if var >= 0:
                raise DDError("matrix DD skips a level on a diagonal path")
            return package.terminal_edge(sub.weight)
        if sub.node.var != var:
            raise DDError("matrix DD level mismatch while projecting")
        cached = memo.get(sub.node.index)
        if cached is None:
            children = sub.node.edges
            cached = package.make_vector_node(
                var,
                (
                    diagonal(children[0], var - 1),
                    diagonal(children[3], var - 1),
                ),
            )
            memo[sub.node.index] = cached
        return package.scale(cached, sub.weight)

    return diagonal(edge, num_qubits - 1)


def apply_superoperator(
    package: DDPackage, rho: Edge, operator: Edge, operator_adjoint: Edge
) -> Edge:
    """``rho -> O rho O†`` for an arbitrary (not necessarily unitary) O."""
    return package.mat_mat(operator, package.mat_mat(rho, operator_adjoint))


def apply_kraus_dds(
    package: DDPackage, rho: Edge, kraus_pairs: Iterable[Tuple[Edge, Edge]]
) -> Edge:
    """``rho -> sum_i K_i rho K_i†`` over pre-built ``(K, K†)`` DD pairs."""
    total = package.zero_edge
    for operator, adjoint in kraus_pairs:
        term = apply_superoperator(package, rho, operator, adjoint)
        total = package.matrix_add(total, term)
    return total


class DensityMatrixDD:
    """An ``n``-qubit density matrix as an edge-weighted matrix DD."""

    def __init__(self, package: DDPackage, edge: Edge, num_qubits: int):
        if num_qubits < 1:
            raise DDError("a density matrix needs at least one qubit")
        if not edge.is_zero and not is_terminal(edge.node):
            if edge.node.var != num_qubits - 1:
                raise DDError(
                    f"root at level {edge.node.var} does not match "
                    f"{num_qubits} qubits"
                )
        self.package = package
        self.edge = edge
        self.num_qubits = num_qubits

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def basis_state(
        cls, package: DDPackage, num_qubits: int, index: int = 0
    ) -> "DensityMatrixDD":
        """The pure state ``|index⟩⟨index|``."""
        return cls.from_pure(
            VectorDD.basis_state(package, num_qubits, index)
        )

    @classmethod
    def from_pure(cls, state: VectorDD) -> "DensityMatrixDD":
        """``|ψ⟩⟨ψ|`` from a pure-state DD."""
        return cls(
            state.package,
            outer_product(state.package, state.edge),
            state.num_qubits,
        )

    @classmethod
    def from_dense(cls, package: DDPackage, matrix) -> "DensityMatrixDD":
        """Compress a dense density matrix into a DD (verification-sized)."""
        array = np.asarray(matrix, dtype=np.complex128)
        num_qubits = int(round(np.log2(array.shape[0])))
        return cls(package, package.matrix_from_array(array), num_qubits)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Dense ``2^n x 2^n`` export (verification sizes only)."""
        return self.package.matrix_to_array(self.edge, self.num_qubits)

    def trace(self) -> float:
        """``tr(rho)`` — 1 for a physical state (up to float drift)."""
        return float(
            matrix_trace(self.package, self.edge, self.num_qubits).real
        )

    def purity(self) -> float:
        """``tr(rho²)`` — 1 for pure states, ``1/2^n`` when maximally mixed."""
        squared = self.package.mat_mat(self.edge, self.edge)
        return float(
            matrix_trace(self.package, squared, self.num_qubits).real
        )

    def fidelity_with_pure(self, state: VectorDD) -> float:
        """``⟨ψ|rho|ψ⟩`` against a pure reference state."""
        if state.num_qubits != self.num_qubits:
            raise DDError("fidelity of states with different register sizes")
        image = self.package.mat_vec(self.edge, state.edge)
        if image.is_zero:
            return 0.0
        return float(self.package.inner_product(state.edge, image).real)

    def diagonal(self) -> Edge:
        """The diagonal as a probability vector DD (see :func:`diagonal_edge`)."""
        return diagonal_edge(self.package, self.edge, self.num_qubits)

    def probabilities(self) -> np.ndarray:
        """Dense measurement distribution ``rho_ii`` (verification sizes).

        Negative floating-point dust is clipped and the vector is
        renormalised to sum to one — the same contract as the compiled
        sampling path.
        """
        diagonal = self.diagonal()
        if diagonal.is_zero:
            raise DDError("zero density matrix has no distribution")
        values = self.package.to_statevector(diagonal, self.num_qubits)
        probabilities = np.clip(values.real, 0.0, None)
        total = probabilities.sum()
        if total <= 0.0:
            raise DDError("density matrix has non-positive trace")
        return probabilities / total

    @property
    def node_count(self) -> int:
        """Matrix-DD size (the memory driver for the noisy path)."""
        return self.package.node_count(self.edge)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DensityMatrixDD(qubits={self.num_qubits}, "
            f"nodes={self.node_count})"
        )
