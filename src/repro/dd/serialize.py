"""Serialisation of vector decision diagrams.

A compiled final state is expensive (strong simulation) but its DD is
tiny; saving it lets a sampling service draw bitstrings later — or on
another machine — without re-simulating.  The format is a plain JSON
document listing nodes bottom-up:

.. code-block:: json

    {"format": "repro-dd", "version": 1, "num_qubits": 3,
     "scheme": "l2",
     "root": {"node": 4, "weight": [0.0, -1.0]},
     "nodes": [
        {"id": 0, "var": 0,
         "edges": [{"node": -1, "weight": [0.0, 0.0]},
                   {"node": -1, "weight": [1.0, 0.0]}]},
        ...]}

``node: -1`` denotes the terminal.  Loading re-normalises through
:meth:`DDPackage.make_vector_node`, so a file produced under one
normalisation scheme loads correctly into a package using the other.
"""

from __future__ import annotations

import gzip
import json
import os
import tempfile
from typing import Dict, List, Optional

from ..exceptions import DDError
from .node import Edge, Node, is_terminal
from .package import DDPackage
from .vector_dd import VectorDD

__all__ = [
    "state_to_dict",
    "state_from_dict",
    "save_state",
    "load_state",
    "atomic_write_bytes",
]

_FORMAT = "repro-dd"
_VERSION = 1


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` so readers never observe a torn file.

    The bytes land in a temp file in the target directory, then
    :func:`os.replace` installs them — atomic on POSIX, so a crash mid
    write leaves either the old content or nothing, never a prefix.
    Shared by the state files here and the artifact store of
    :mod:`repro.service.store`, whose corruption detection relies on
    partial writes being impossible through this path.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    handle, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=".tmp-", suffix=".part"
    )
    try:
        with os.fdopen(handle, "wb") as tmp:
            tmp.write(data)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def state_to_dict(state: VectorDD) -> dict:
    """Serialise a :class:`VectorDD` into a JSON-compatible dict."""
    order: List[Node] = []
    seen = set()

    def topo(node: Node) -> None:
        if is_terminal(node) or node.index in seen:
            return
        seen.add(node.index)
        for child in node.edges:
            topo(child.node)
        order.append(node)  # children first

    ids: Dict[int, int] = {}
    nodes_payload = []
    if not state.edge.is_zero and not is_terminal(state.edge.node):
        topo(state.edge.node)
        for compact, node in enumerate(order):
            ids[node.index] = compact
        for node in order:
            edges = []
            for child in node.edges:
                target = -1 if is_terminal(child.node) else ids[child.node.index]
                edges.append(
                    {
                        "node": target,
                        "weight": [child.weight.real, child.weight.imag],
                    }
                )
            nodes_payload.append(
                {"id": ids[node.index], "var": node.var, "edges": edges}
            )
    root_target = (
        -1 if is_terminal(state.edge.node) else ids[state.edge.node.index]
    )
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "num_qubits": state.num_qubits,
        "scheme": state.package.scheme.value,
        "root": {
            "node": root_target,
            "weight": [state.edge.weight.real, state.edge.weight.imag],
        },
        "nodes": nodes_payload,
    }


def state_from_dict(payload: dict, package: Optional[DDPackage] = None) -> VectorDD:
    """Rebuild a :class:`VectorDD` from :func:`state_to_dict` output."""
    if payload.get("format") != _FORMAT:
        raise DDError("not a repro-dd document")
    if payload.get("version") != _VERSION:
        raise DDError(f"unsupported repro-dd version {payload.get('version')!r}")
    if package is None:
        package = DDPackage()
    num_qubits = int(payload["num_qubits"])
    rebuilt: Dict[int, Edge] = {}

    def edge_of(entry: dict) -> Edge:
        weight = complex(entry["weight"][0], entry["weight"][1])
        if entry["node"] == -1:
            if abs(weight) <= package.tolerance:
                return package.zero_edge
            return package.terminal_edge(weight)
        child = rebuilt[entry["node"]]
        return package.scale(child, weight)

    for node_payload in payload["nodes"]:
        edges = tuple(edge_of(e) for e in node_payload["edges"])
        if len(edges) != 2:
            raise DDError("vector DD nodes must have two successors")
        rebuilt[node_payload["id"]] = package.make_vector_node(
            int(node_payload["var"]), edges
        )
    root = edge_of(payload["root"])
    return VectorDD(package, root, num_qubits)


def save_state(state: VectorDD, path: str) -> None:
    """Write a state to ``path`` (gzip-compressed when it ends in .gz).

    Writes are atomic (:func:`atomic_write_bytes`): a crash never leaves
    a truncated state file behind.
    """
    payload = state_to_dict(state)
    text = json.dumps(payload)
    if path.endswith(".gz"):
        atomic_write_bytes(path, gzip.compress(text.encode("utf-8")))
    else:
        atomic_write_bytes(path, text.encode("utf-8"))


def load_state(path: str, package: Optional[DDPackage] = None) -> VectorDD:
    """Read a state written by :func:`save_state`."""
    if path.endswith(".gz"):
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    return state_from_dict(payload, package)
