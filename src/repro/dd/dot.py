"""Graphviz DOT export of decision diagrams.

Renders vector DDs in the style of the paper's Fig. 4: one box per node
labelled with its qubit, solid edges for the 1-successor and dashed edges
for the 0-successor, weights on edge labels.  Optionally annotates each
edge with its branch probability (Fig. 4c).
"""

from __future__ import annotations

from typing import Dict, Optional

from .measure import downstream_probabilities
from .node import Edge, Node, is_terminal

__all__ = ["to_dot"]


def _format_weight(weight: complex) -> str:
    real, imag = weight.real, weight.imag
    if abs(imag) < 1e-12:
        return f"{real:.3g}"
    if abs(real) < 1e-12:
        return f"{imag:.3g}i"
    sign = "+" if imag >= 0 else "-"
    return f"{real:.3g}{sign}{abs(imag):.3g}i"


def to_dot(
    edge: Edge,
    num_qubits: int,
    show_probabilities: bool = False,
    graph_name: str = "dd",
) -> str:
    """Serialise a vector DD as a Graphviz DOT document."""
    lines = [
        f"digraph {graph_name} {{",
        "  rankdir=TB;",
        '  root [shape=point, label=""];',
        '  terminal [shape=box, label="1"];',
    ]
    probabilities: Optional[Dict[int, float]] = None
    if show_probabilities:
        probabilities = downstream_probabilities(edge)

    def edge_label(parent: Optional[Node], child: Edge) -> str:
        if probabilities is not None and parent is not None:
            mass = (
                1.0
                if is_terminal(child.node)
                else probabilities.get(child.node.index, 0.0)
            )
            siblings = 0.0
            for sibling in parent.edges:
                if sibling.is_zero:
                    continue
                sibling_mass = (
                    1.0
                    if is_terminal(sibling.node)
                    else probabilities.get(sibling.node.index, 0.0)
                )
                siblings += abs(sibling.weight) ** 2 * sibling_mass
            if siblings > 0:
                branch = abs(child.weight) ** 2 * mass / siblings
                return f"{branch:.4g}"
        return _format_weight(child.weight)

    emitted = set()

    def visit(node: Node) -> None:
        if is_terminal(node) or node.index in emitted:
            return
        emitted.add(node.index)
        lines.append(f'  n{node.index} [shape=circle, label="q{node.var}"];')
        for bit, child in enumerate(node.edges):
            style = "dashed" if bit == 0 else "solid"
            if child.is_zero:
                lines.append(
                    f'  z{node.index}_{bit} [shape=point, label="", width=0.05];'
                )
                lines.append(
                    f'  n{node.index} -> z{node.index}_{bit} '
                    f'[style={style}, label="0"];'
                )
                continue
            target = (
                "terminal" if is_terminal(child.node) else f"n{child.node.index}"
            )
            label = edge_label(node, child)
            lines.append(
                f'  n{node.index} -> {target} [style={style}, label="{label}"];'
            )
            visit(child.node)

    if edge.is_zero:
        lines.append('  root -> terminal [label="0"];')
    elif is_terminal(edge.node):
        lines.append(f'  root -> terminal [label="{_format_weight(edge.weight)}"];')
    else:
        lines.append(
            f'  root -> n{edge.node.index} '
            f'[label="{_format_weight(edge.weight)}"];'
        )
        visit(edge.node)
    lines.append("}")
    return "\n".join(lines) + "\n"
