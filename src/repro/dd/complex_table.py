"""Canonical storage of complex edge weights.

Decision diagrams only compact well when amplitudes that are *numerically*
equal are recognised as *structurally* equal — for instance, the 48-qubit
QFT state collapses to 48 nodes only if the many occurrences of 1/sqrt(2)
produced along different arithmetic routes unify.  Following the approach
of Zulehner, Hillmich, Wille ("How to efficiently handle complex values?",
ICCAD 2019 — reference [24] of the paper), every weight is interned through
a :class:`ComplexTable` that performs tolerance-based lookup: values within
``tolerance`` of an existing entry are replaced by that entry.

The table buckets values on a grid of side ``tolerance`` and checks the
neighbouring buckets, so lookup is O(1) and two values within tolerance of
each other land at most one bucket apart per axis.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

__all__ = ["ComplexTable", "DEFAULT_TOLERANCE"]

DEFAULT_TOLERANCE = 1e-10


class ComplexTable:
    """Interning table for complex numbers with tolerance-based lookup."""

    def __init__(
        self,
        tolerance: float = DEFAULT_TOLERANCE,
        relative_tolerance: float = 0.0,
    ):
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if relative_tolerance < 0:
            raise ValueError("relative_tolerance must be non-negative")
        self.tolerance = tolerance
        self.relative_tolerance = relative_tolerance
        self._buckets: Dict[Tuple[int, int], complex] = {}
        self.hits = 0
        self.misses = 0
        #: Monotonic insert counter.  Canonical entries are never removed
        #: and are pairwise further than ``tolerance`` apart, so a lookup
        #: result can only change when a *new* entry is inserted; caches
        #: layered over this table (the SoA kernel's intern front-cache)
        #: stay valid exactly as long as ``version`` is unchanged.  The
        #: counter survives :meth:`clear` so stale caches never revalidate.
        self.version = getattr(self, "version", 0)
        # Seed the exact constants that appear in virtually every circuit,
        # so they are always the canonical representatives.
        for seed in (
            0.0,
            1.0,
            -1.0,
            1j,
            -1j,
            complex(math.sqrt(0.5), 0.0),
            complex(-math.sqrt(0.5), 0.0),
            complex(0.0, math.sqrt(0.5)),
            complex(0.0, -math.sqrt(0.5)),
            0.5 + 0.0j,
            -0.5 + 0.0j,
        ):
            self.lookup(complex(seed))

    def __len__(self) -> int:
        return len(self._buckets)

    def _key(self, value: complex) -> Tuple[int, int]:
        return (
            int(math.floor(value.real / self.tolerance + 0.5)),
            int(math.floor(value.imag / self.tolerance + 0.5)),
        )

    def lookup(self, value: complex) -> complex:
        """Return the canonical representative for ``value``.

        If an entry within ``tolerance`` (Chebyshev distance) exists, the
        *nearest* such entry is returned; otherwise ``value`` becomes a new
        canonical entry.  ``-0.0`` components are normalised to ``+0.0``
        first so the zero is unique.  With a nonzero
        ``relative_tolerance``, a nonzero value additionally unifies only
        with entries within ``relative_tolerance * max(|a|, |b|)`` —
        tiny weights never alias to relatively-distant neighbours (they
        may still snap to exact zero, which is governed by the absolute
        window alone).

        A value sitting within tolerance of two canonical entries (they can
        be up to ``2 * tolerance`` apart, one bucket to each side) resolves
        to the nearest one by Euclidean distance; exact distance ties break
        on the lexicographically smaller ``(real, imag)`` pair.  This makes
        the result a pure function of the value and the canonical set —
        independent of bucket-scan order and of the insertion order that
        placed the entries — so boundary values canonicalise identically
        in every run.
        """
        value = complex(
            value.real if value.real != 0.0 else 0.0,
            value.imag if value.imag != 0.0 else 0.0,
        )
        key = self._key(value)
        # Check the home bucket and its eight neighbours, keeping the best
        # in-tolerance candidate rather than the first one scanned.
        best: complex | None = None
        best_rank: Tuple[float, float, float] | None = None
        for dr in (0, -1, 1):
            for di in (0, -1, 1):
                candidate = self._buckets.get((key[0] + dr, key[1] + di))
                if candidate is None or not self._close(candidate, value):
                    continue
                rank = (
                    abs(candidate - value),
                    candidate.real,
                    candidate.imag,
                )
                if best_rank is None or rank < best_rank:
                    best, best_rank = candidate, rank
        if best is not None:
            self.hits += 1
            return best
        self._buckets[key] = value
        self.misses += 1
        self.version += 1
        return value

    def probe(self, value: complex) -> "complex | None":
        """Like :meth:`lookup` but read-only: ``None`` when no entry is
        within tolerance (the value would become a new canonical entry).

        Used by the SoA kernel's batched sweeps to defer inserts until a
        whole gate application is known to be insert-order independent.
        The scan mirrors :meth:`lookup` (kept separate so the reference
        engine's hot path stays a single call).
        """
        value = complex(
            value.real if value.real != 0.0 else 0.0,
            value.imag if value.imag != 0.0 else 0.0,
        )
        key = self._key(value)
        best: complex | None = None
        best_rank: Tuple[float, float, float] | None = None
        for dr in (0, -1, 1):
            for di in (0, -1, 1):
                candidate = self._buckets.get((key[0] + dr, key[1] + di))
                if candidate is None or not self._close(candidate, value):
                    continue
                rank = (
                    abs(candidate - value),
                    candidate.real,
                    candidate.imag,
                )
                if best_rank is None or rank < best_rank:
                    best, best_rank = candidate, rank
        return best

    def _close(self, a: complex, b: complex) -> bool:
        if (
            abs(a.real - b.real) > self.tolerance
            or abs(a.imag - b.imag) > self.tolerance
        ):
            return False
        if self.relative_tolerance <= 0.0:
            return True
        # Relative guard: a nonzero weight may only unify with an entry
        # that is close *relative to its magnitude*.  Under left-most
        # normalisation a tiny top weight divides the O(1) subtree below
        # it, so an absolute-window snap (fine for O(1) amplitudes)
        # becomes an O(tolerance / |w|) relative error amplified through
        # the whole branch.  Zero stays an absolute snap: unifying with
        # exact zero *drops* the branch instead of rescaling it, which
        # costs only the snapped magnitude itself.
        if a == 0.0 or b == 0.0:
            return True
        return abs(a - b) <= self.relative_tolerance * max(abs(a), abs(b))

    def is_zero(self, value: complex) -> bool:
        """Whether ``value`` canonicalises to zero."""
        return abs(value.real) <= self.tolerance and abs(value.imag) <= self.tolerance

    def is_one(self, value: complex) -> bool:
        """Whether ``value`` canonicalises to one."""
        return (
            abs(value.real - 1.0) <= self.tolerance
            and abs(value.imag) <= self.tolerance
        )

    def clear(self) -> None:
        """Drop all entries (and re-seed the standard constants)."""
        self._buckets.clear()
        self.hits = 0
        self.misses = 0
        self.__init__(self.tolerance)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ComplexTable(entries={len(self)}, hits={self.hits}, "
            f"misses={self.misses}, tol={self.tolerance:g})"
        )
