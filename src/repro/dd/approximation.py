"""Approximate decision diagrams: trading fidelity for size.

The paper defines weak simulation as mimicking a quantum computer
"possibly with some error".  This module implements the natural DD
realisation of that allowance (the direction of the authors' follow-up
work, arXiv:2012.05615): prune the edges that carry the least
probability mass, renormalise, and sample from the smaller diagram.

Two layers live here:

* **Primitives** — :func:`edge_contributions` scores every edge by the
  probability mass that flows through it; :func:`prune_low_contribution`
  removes the cheapest edges up to a mass budget;
  :func:`prune_to_node_budget` removes just enough of them to fit a node
  budget.  Each returns an :class:`ApproximationResult` carrying the
  pruned state and the exact mass removed.
* **The driver** — :class:`Approximator` strings pruning rounds through
  a simulation under an :class:`ApproximationConfig`: either on a fixed
  cadence (the *fidelity-driven* strategy) or whenever the live node
  count exceeds a budget (the *memory-driven* strategy).  It tracks a
  rigorous lower bound on the final state fidelity and never spends more
  than the configured ``epsilon``.

The bound is tracked in Fubini–Study *angle* space: one prune that
removes mass ``m`` rotates the state by ``asin(sqrt(m))``, unitary gates
preserve angles, and angles obey the triangle inequality — so the sum of
per-round angles bounds the total rotation, giving

* ``fidelity >= cos^2(sum of angles)``  (the reported ``fidelity_bound``)
* ``TVD(exact, approx) <= sin(sum of angles) = sqrt(1 - fidelity_bound)``

both of which hold for any interleaving of prunes and gates (see
``docs/approximation.md`` for the derivation and its limits).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from ..exceptions import DDError
from .measure import downstream_probabilities, upstream_probabilities
from .node import Edge, Node, is_terminal
from .package import DDPackage
from .vector_dd import VectorDD

__all__ = [
    "DEFAULT_PRUNE_INTERVAL",
    "ApproximationConfig",
    "ApproximationResult",
    "Approximator",
    "edge_contributions",
    "prune_low_contribution",
    "prune_to_node_budget",
]

#: Gates between pruning rounds (and node-budget checks).  Matches the
#: telemetry prober's cadence (``repro.telemetry.probes``), so the
#: memory-driven strategy fires on the same schedule as the node-count
#: probes that motivate it.
DEFAULT_PRUNE_INTERVAL = 25


@dataclass(frozen=True)
class ApproximationConfig:
    """How much error a run may spend, and how to spend it.

    ``epsilon`` is the total infidelity allowance: the run's tracked
    ``fidelity_bound`` never drops below ``1 - epsilon``, which caps the
    sampling total-variation distance at ``sqrt(epsilon)``.
    ``epsilon = 0`` disables approximation entirely (the run is exact),
    everywhere in the stack — CLI, service, scheduler.

    ``node_budget`` switches from the fidelity-driven strategy (prune on
    a fixed cadence, spending the allowance evenly) to the memory-driven
    strategy (prune only when the live DD exceeds ``node_budget`` nodes,
    and then only enough to fit).  The budget is best-effort: the
    ``epsilon`` contract always wins, so a round stops early rather than
    overspend the allowance.

    ``interval`` is the cadence in applied gates for both strategies.
    """

    epsilon: float = 0.0
    interval: int = DEFAULT_PRUNE_INTERVAL
    node_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.epsilon < 1.0:
            raise DDError(
                f"approximation epsilon must be in [0, 1), got {self.epsilon}"
            )
        if self.interval < 1:
            raise DDError(
                f"approximation interval must be >= 1, got {self.interval}"
            )
        if self.node_budget is not None and self.node_budget < 1:
            raise DDError(
                f"approximation node budget must be >= 1, got {self.node_budget}"
            )

    @property
    def enabled(self) -> bool:
        """Whether this configuration approximates at all (``epsilon > 0``)."""
        return self.epsilon > 0.0

    @property
    def strategy(self) -> str:
        """``"memory"`` when a node budget drives pruning, else ``"fidelity"``."""
        return "memory" if self.node_budget is not None else "fidelity"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the service's ``approximation`` request field)."""
        payload: Dict[str, Any] = {"epsilon": self.epsilon}
        if self.interval != DEFAULT_PRUNE_INTERVAL:
            payload["interval"] = self.interval
        if self.node_budget is not None:
            payload["node_budget"] = self.node_budget
        return payload

    @classmethod
    def from_value(cls, value: Any) -> "ApproximationConfig":
        """Parse a request field: a bare number or ``{"epsilon": ...}``."""
        if isinstance(value, ApproximationConfig):
            return value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return cls(epsilon=float(value))
        if isinstance(value, dict):
            known = {"epsilon", "interval", "node_budget"}
            unknown = set(value) - known
            if unknown:
                raise DDError(
                    f"unknown approximation fields {sorted(unknown)}; "
                    f"expected a subset of {sorted(known)}"
                )
            return cls(
                epsilon=float(value.get("epsilon", 0.0)),
                interval=int(value.get("interval", DEFAULT_PRUNE_INTERVAL)),
                node_budget=(
                    None
                    if value.get("node_budget") is None
                    else int(value["node_budget"])
                ),
            )
        raise DDError(
            "approximation must be a number (epsilon) or an object "
            f"with 'epsilon', got {type(value).__name__}"
        )


@dataclass(frozen=True)
class ApproximationResult:
    """Outcome of one approximation pass."""

    state: VectorDD
    removed_mass: float
    removed_edges: int
    nodes_before: int
    nodes_after: int

    @property
    def expected_fidelity(self) -> float:
        """Exact fidelity of this single pass: ``1 - removed mass``."""
        return max(0.0, 1.0 - self.removed_mass)


def edge_contributions(state: VectorDD) -> Dict[Tuple[int, int], float]:
    """Probability mass flowing through each (node.index, bit) edge.

    The contribution of an edge is ``upstream(node) * |w|^2 *
    downstream(child) / downstream(node)`` — the probability that a
    sample's root-to-terminal path traverses it.  The traversal is
    iterative (explicit stack), like the measure-layer walks, so deep
    registers do not hit the recursion limit.
    """
    edge = state.edge
    if edge.is_zero or is_terminal(edge.node):
        return {}
    downstream = downstream_probabilities(edge)
    upstream = upstream_probabilities(edge, downstream)
    contributions: Dict[Tuple[int, int], float] = {}
    seen: Set[int] = set()
    stack: List[Node] = [edge.node]
    while stack:
        node = stack.pop()
        if is_terminal(node) or node.index in seen:
            continue
        seen.add(node.index)
        u_node = upstream.get(node.index, 0.0)
        d_node = downstream[node.index]
        for bit, child in enumerate(node.edges):
            if child.is_zero:
                continue
            d_child = (
                1.0 if is_terminal(child.node) else downstream[child.node.index]
            )
            # Share of the node's own mass taken by this branch, times
            # the probability of reaching the node at all.
            branch = abs(child.weight) ** 2 * d_child
            contributions[(node.index, bit)] = (
                u_node * branch / d_node if d_node > 0 else 0.0
            )
            if not is_terminal(child.node):
                stack.append(child.node)
    return contributions


def _rebuild_without(
    edge: Edge, doomed: Set[Tuple[int, int]], package: DDPackage
) -> Edge:
    """Rebuild ``edge``'s DD with the ``doomed`` (node, bit) edges zeroed.

    Every surviving node goes back through
    :meth:`~repro.dd.package.DDPackage.make_vector_node` — the unique
    table's canonical construction path — so the result has interned
    weights and no duplicate nodes (the canonicality contract pinned by
    ``tests/test_approximation.py``).  Iterative post-order traversal;
    may return the zero edge when everything was pruned.
    """
    if edge.is_zero:
        return package.zero_edge
    if is_terminal(edge.node):
        return package.terminal_edge(edge.weight)
    memo: Dict[int, Edge] = {}
    stack: List[Node] = [edge.node]
    while stack:
        node = stack[-1]
        if node.index in memo:
            stack.pop()
            continue
        pending = [
            child.node
            for bit, child in enumerate(node.edges)
            if not child.is_zero
            and (node.index, bit) not in doomed
            and not is_terminal(child.node)
            and child.node.index not in memo
        ]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        children: List[Edge] = []
        for bit, child in enumerate(node.edges):
            if child.is_zero or (node.index, bit) in doomed:
                children.append(package.zero_edge)
            elif is_terminal(child.node):
                children.append(package.terminal_edge(child.weight))
            else:
                children.append(
                    package.scale(memo[child.node.index], child.weight)
                )
        memo[node.index] = package.make_vector_node(node.var, tuple(children))
    return package.scale(memo[edge.node.index], edge.weight)


def _finish(
    state: VectorDD,
    pruned: Edge,
    package: DDPackage,
    removed_mass: float,
    removed_edges: int,
    nodes_before: int,
) -> ApproximationResult:
    """Renormalise a pruned root edge and wrap it as a result."""
    if pruned.is_zero:
        raise DDError("approximation removed the entire state")
    norm_sq = package.norm_squared(pruned)
    if norm_sq <= 0.0:
        raise DDError("pruned state has zero norm")
    pruned = package.scale(pruned, 1.0 / math.sqrt(norm_sq))
    approximated = VectorDD(package, pruned, state.num_qubits)
    return ApproximationResult(
        state=approximated,
        removed_mass=removed_mass,
        removed_edges=removed_edges,
        nodes_before=nodes_before,
        nodes_after=approximated.node_count,
    )


def prune_low_contribution(
    state: VectorDD,
    budget: float,
    package: Optional[DDPackage] = None,
) -> ApproximationResult:
    """Remove the least-contributing edges up to ``budget`` total mass.

    ``budget`` is the maximum probability mass allowed to be discarded
    (e.g. 0.01 keeps ~99% fidelity).  The pruned state is renormalised
    to unit norm; sampling from it is weak simulation "with some error"
    bounded by the removed mass (in total variation).
    """
    if not 0.0 <= budget < 1.0:
        raise DDError("approximation budget must be in [0, 1)")
    package = package or state.package
    contributions = edge_contributions(state)
    # Cheapest edges first; edges carrying no mass are always free to
    # drop, and the scan stops at the first edge whose removal would
    # exceed the budget.
    doomed: Set[Tuple[int, int]] = set()
    removed_mass = 0.0
    for (node_index, bit), mass in sorted(
        contributions.items(), key=lambda kv: kv[1]
    ):
        if mass <= 0.0:
            doomed.add((node_index, bit))
            continue
        if removed_mass + mass > budget:
            break
        removed_mass += mass
        doomed.add((node_index, bit))

    nodes_before = state.node_count
    if not doomed:
        return ApproximationResult(
            state=state,
            removed_mass=0.0,
            removed_edges=0,
            nodes_before=nodes_before,
            nodes_after=nodes_before,
        )
    pruned = _rebuild_without(state.edge, doomed, package)
    return _finish(
        state, pruned, package, removed_mass, len(doomed), nodes_before
    )


def prune_to_node_budget(
    state: VectorDD,
    node_budget: int,
    max_removed_mass: float = 0.5,
    package: Optional[DDPackage] = None,
) -> ApproximationResult:
    """Prune just enough low-contribution edges to fit ``node_budget`` nodes.

    Edges are considered cheapest-first; a bisection over the sorted
    prefix finds the smallest removal whose rebuilt diagram has at most
    ``node_budget`` nodes.  ``max_removed_mass`` caps the total mass the
    call may discard — the fidelity contract always wins, so when the
    budget is unreachable within the cap the call removes what the cap
    allows and returns the (over-budget) best effort instead of raising.

    A state already within budget comes back untouched with zero
    removed mass.
    """
    if node_budget < 1:
        raise DDError(f"node budget must be >= 1, got {node_budget}")
    if not 0.0 <= max_removed_mass < 1.0:
        raise DDError("max_removed_mass must be in [0, 1)")
    package = package or state.package
    nodes_before = state.node_count
    untouched = ApproximationResult(
        state=state,
        removed_mass=0.0,
        removed_edges=0,
        nodes_before=nodes_before,
        nodes_after=nodes_before,
    )
    if nodes_before <= node_budget:
        return untouched
    ranked = sorted(edge_contributions(state).items(), key=lambda kv: kv[1])
    # Largest usable prefix: cumulative mass must stay within the cap.
    cumulative: List[float] = [0.0]
    for _, mass in ranked:
        total = cumulative[-1] + max(0.0, mass)
        if total > max_removed_mass:
            break
        cumulative.append(total)
    limit = len(cumulative) - 1
    if limit == 0:
        return untouched

    rebuilt: Dict[int, Edge] = {}

    def attempt(count: int) -> Edge:
        if count not in rebuilt:
            doomed = {key for key, _ in ranked[:count]}
            rebuilt[count] = _rebuild_without(state.edge, doomed, package)
        return rebuilt[count]

    def fits(count: int) -> bool:
        pruned = attempt(count)
        if pruned.is_zero:
            return False  # over-pruned; bisection must back off
        return package.node_count(pruned) <= node_budget

    low, high = 1, limit
    while low < high:
        mid = (low + high) // 2
        if fits(mid):
            high = mid
        else:
            low = mid + 1
    count = low
    pruned = attempt(count)
    while pruned.is_zero and count > 0:
        count -= 1
        pruned = attempt(count)
    if count == 0:
        return untouched
    return _finish(
        state, pruned, package, cumulative[count], count, nodes_before
    )


class Approximator:
    """Drives pruning rounds through a simulation under a config.

    One instance accompanies one :meth:`DDSimulator.run
    <repro.simulators.dd_simulator.DDSimulator.run>`: the simulator calls
    :meth:`due` after each applied gate and :meth:`prune` on the rounds
    it flags (plus a final round on the finished state).  The instance
    accumulates the spent Fubini–Study angle across rounds;
    :attr:`fidelity_bound` and :attr:`tvd_bound` are derived from it and
    are rigorous for any interleaving of prunes and unitary gates.

    The *fidelity-driven* strategy (no node budget) spends the allowance
    on a linear angle schedule over the expected number of rounds, so
    early rounds cannot starve late ones.  The *memory-driven* strategy
    prunes only when the state exceeds ``node_budget`` nodes, spending
    as little of the remaining allowance as fitting requires.
    """

    def __init__(
        self,
        config: ApproximationConfig,
        total_operations: int,
        package: Optional[DDPackage] = None,
    ):
        if not config.enabled:
            raise DDError("Approximator needs an enabled config (epsilon > 0)")
        self.config = config
        self.package = package
        #: Expected pruning rounds: one per interval, plus the final one.
        self.total_rounds = max(
            1, math.ceil(max(0, total_operations) / config.interval)
        )
        #: Total Fubini–Study angle the run may spend.
        self.angle_budget = math.asin(math.sqrt(config.epsilon))
        self.angle_spent = 0.0
        self.rounds = 0
        self.removed_edges = 0
        self.removed_mass = 0.0
        self._round_index = 0
        self.last_result: Optional[ApproximationResult] = None

    @property
    def fidelity_bound(self) -> float:
        """Rigorous lower bound on the fidelity of the approximated state."""
        return math.cos(self.angle_spent) ** 2

    @property
    def tvd_bound(self) -> float:
        """Rigorous bound on sampling TVD: ``sqrt(1 - fidelity_bound)``."""
        return math.sin(self.angle_spent)

    def due(self, operations: int) -> bool:
        """Whether a pruning round should run after ``operations`` gates."""
        return operations > 0 and operations % self.config.interval == 0

    def _allowance(self, final: bool) -> float:
        """Mass this round may remove without breaking the angle schedule."""
        if self.config.node_budget is not None or final:
            # Memory-driven rounds (and the final fidelity round) may
            # draw on the full remaining allowance.
            headroom = self.angle_budget - self.angle_spent
        else:
            schedule = min(self._round_index, self.total_rounds)
            target = self.angle_budget * (schedule / self.total_rounds)
            headroom = target - self.angle_spent
        if headroom <= 0.0:
            return 0.0
        return math.sin(headroom) ** 2

    def prune(self, state: VectorDD, final: bool = False) -> VectorDD:
        """Run one pruning round; returns the (possibly smaller) state."""
        self._round_index += 1
        package = self.package or state.package
        budget = self.config.node_budget
        if budget is not None and state.node_count <= budget:
            return state
        allowance = self._allowance(final)
        if allowance <= 0.0 and budget is None:
            return state
        if budget is not None:
            result = prune_to_node_budget(
                state, budget, max_removed_mass=allowance, package=package
            )
        else:
            result = prune_low_contribution(state, allowance, package=package)
        if result.removed_edges == 0:
            return state
        if result.removed_mass > 0.0:
            self.angle_spent += math.asin(
                math.sqrt(min(1.0, result.removed_mass))
            )
        self.rounds += 1
        self.removed_edges += result.removed_edges
        self.removed_mass += result.removed_mass
        self.last_result = result
        return result.state

    def summary(self) -> Dict[str, Any]:
        """JSON-ready account of the run (lands in result/service meta)."""
        return {
            "epsilon": self.config.epsilon,
            "strategy": self.config.strategy,
            "interval": self.config.interval,
            "node_budget": self.config.node_budget,
            "rounds": self.rounds,
            "removed_edges": self.removed_edges,
            "removed_mass": self.removed_mass,
            "fidelity_bound": self.fidelity_bound,
            "tvd_bound": self.tvd_bound,
        }
