"""Approximate decision diagrams: trading fidelity for size.

The paper defines weak simulation as mimicking a quantum computer
"possibly with some error".  This module implements the natural DD
realisation of that allowance (the direction explored by the authors'
follow-up work): prune the edges that carry the least probability mass,
renormalise, and sample from the smaller diagram.

The contribution of an edge is its total sampled mass
``upstream(node) * |w|^2 * downstream(child)`` — the probability that a
sample's path traverses it.  :func:`prune_low_contribution` removes the
cheapest edges until the requested mass budget is reached; the fidelity
of the approximated state is approximately ``1 - removed mass``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..exceptions import DDError
from .measure import downstream_probabilities, upstream_probabilities
from .node import Edge, Node, is_terminal
from .package import DDPackage
from .vector_dd import VectorDD

__all__ = ["ApproximationResult", "edge_contributions", "prune_low_contribution"]


@dataclass(frozen=True)
class ApproximationResult:
    """Outcome of an approximation pass."""

    state: VectorDD
    removed_mass: float
    removed_edges: int
    nodes_before: int
    nodes_after: int

    @property
    def expected_fidelity(self) -> float:
        """First-order fidelity estimate ``1 - removed mass``."""
        return max(0.0, 1.0 - self.removed_mass)


def edge_contributions(state: VectorDD) -> Dict[Tuple[int, int], float]:
    """Probability mass flowing through each (node.index, bit) edge."""
    edge = state.edge
    if edge.is_zero or is_terminal(edge.node):
        return {}
    downstream = downstream_probabilities(edge)
    upstream = upstream_probabilities(edge, downstream)
    contributions: Dict[Tuple[int, int], float] = {}
    seen = set()

    def visit(node: Node) -> None:
        if is_terminal(node) or node.index in seen:
            return
        seen.add(node.index)
        u_node = upstream.get(node.index, 0.0)
        d_node = downstream[node.index]
        for bit, child in enumerate(node.edges):
            if child.is_zero:
                continue
            d_child = (
                1.0 if is_terminal(child.node) else downstream[child.node.index]
            )
            # Share of the node's own mass taken by this branch, times
            # the probability of reaching the node at all.
            branch = abs(child.weight) ** 2 * d_child
            contributions[(node.index, bit)] = (
                u_node * branch / d_node if d_node > 0 else 0.0
            )
            visit(child.node)

    visit(edge.node)
    return contributions


def prune_low_contribution(
    state: VectorDD,
    budget: float,
    package: Optional[DDPackage] = None,
) -> ApproximationResult:
    """Remove the least-contributing edges up to ``budget`` total mass.

    ``budget`` is the maximum probability mass allowed to be discarded
    (e.g. 0.01 keeps ~99% fidelity).  The pruned state is renormalised
    to unit norm; sampling from it is weak simulation "with some error"
    bounded by the removed mass (in total variation).
    """
    if not 0.0 <= budget < 1.0:
        raise DDError("approximation budget must be in [0, 1)")
    package = package or state.package
    contributions = edge_contributions(state)
    # Cheapest edges first; never remove an edge whose sibling is
    # already gone (that would zero a whole node unexpectedly) — the
    # rebuild handles node collapse naturally, but we simply skip edges
    # whose removal would exceed the budget.
    doomed: set = set()
    removed_mass = 0.0
    for (node_index, bit), mass in sorted(contributions.items(), key=lambda kv: kv[1]):
        if mass <= 0.0:
            doomed.add((node_index, bit))
            continue
        if removed_mass + mass > budget:
            break
        removed_mass += mass
        doomed.add((node_index, bit))

    nodes_before = state.node_count
    if not doomed:
        return ApproximationResult(
            state=state,
            removed_mass=0.0,
            removed_edges=0,
            nodes_before=nodes_before,
            nodes_after=nodes_before,
        )

    memo: Dict[int, Edge] = {}

    def rebuild(edge: Edge, from_node: Optional[int], bit: Optional[int]) -> Edge:
        if edge.is_zero:
            return package.zero_edge
        if from_node is not None and (from_node, bit) in doomed:
            return package.zero_edge
        node = edge.node
        if is_terminal(node):
            return package.terminal_edge(edge.weight)
        cached = memo.get(node.index)
        if cached is None:
            children = tuple(
                rebuild(node.edges[b], node.index, b) for b in range(2)
            )
            cached = package.make_vector_node(node.var, children)
            memo[node.index] = cached
        return package.scale(cached, edge.weight)

    pruned = rebuild(state.edge, None, None)
    if pruned.is_zero:
        raise DDError("approximation removed the entire state")
    norm_sq = package.norm_squared(pruned)
    if norm_sq <= 0.0:
        raise DDError("pruned state has zero norm")
    pruned = package.scale(pruned, 1.0 / math.sqrt(norm_sq))
    approximated = VectorDD(package, pruned, state.num_qubits)
    return ApproximationResult(
        state=approximated,
        removed_mass=removed_mass,
        removed_edges=len(doomed),
        nodes_before=nodes_before,
        nodes_after=approximated.node_count,
    )
