"""Regeneration of the paper's worked figures (Figs. 2, 3, 4).

The paper's only quantitative artefacts besides Table I are the running
example's numbers, which are exact and therefore *checkable*:

* **Fig. 2** — the amplitudes/probabilities of the 3-qubit running
  example and the sample drawn at p̂ = 1/2,
* **Fig. 3** — the prefix array [0, 3/8, 3/8, 6/8, 7/8, 7/8, 7/8, 1] and
  the binary-search result |011⟩ for p̂ = 1/2,
* **Fig. 4b** — the left-most-normalised DD with root weight −0.612i and
  q2-node weights (1, 0.578i),
* **Fig. 4c** — branch probabilities (3/4, 1/4) at the root and
  (1/2, 1/2) below,
* **Fig. 4d** — the L2-normalised DD whose outgoing squared magnitudes
  sum to 1 at every node.

Each function returns plain data structures; ``render_figures`` prints a
human-readable report.  The same values are asserted by
``tests/test_figures.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..algorithms.states import (
    RUNNING_EXAMPLE_PROBABILITIES,
    running_example_circuit,
    running_example_statevector,
)
from ..core.dd_sampler import DDSampler
from ..core.prefix_sampler import PrefixSampler
from ..dd.normalization import NormalizationScheme
from ..dd.package import DDPackage
from ..simulators.dd_simulator import DDSimulator

__all__ = [
    "figure2_data",
    "figure3_data",
    "figure4_data",
    "render_figures",
]


@dataclass(frozen=True)
class Figure2Data:
    """The running example's amplitudes and probabilities (paper Fig. 2)."""
    amplitudes: Tuple[complex, ...]
    probabilities: Tuple[float, ...]
    sample_at_half: str  # the measurement outcome for p-hat = 1/2


def figure2_data() -> Figure2Data:
    """Amplitudes, probabilities, and the p̂ = 1/2 sample (Fig. 2)."""
    state = DDSimulator().run(running_example_circuit())
    amplitudes = tuple(state.to_statevector())
    probabilities = tuple(float(abs(a) ** 2) for a in amplitudes)
    sampler = PrefixSampler(np.asarray(probabilities), is_statevector=False)
    index = int(np.searchsorted(sampler.prefix, 0.5, side="right"))
    return Figure2Data(
        amplitudes=amplitudes,
        probabilities=probabilities,
        sample_at_half=format(index, "03b"),
    )


@dataclass(frozen=True)
class Figure3Data:
    """Prefix array and binary-search trace for one sample (paper Fig. 3)."""
    probabilities: Tuple[float, ...]
    prefix: Tuple[float, ...]
    probe: float
    result_index: int
    result_bitstring: str


def figure3_data(probe: float = 0.5) -> Figure3Data:
    """The prefix array and binary-search sample of Fig. 3."""
    sampler = PrefixSampler(
        np.asarray(RUNNING_EXAMPLE_PROBABILITIES), is_statevector=False
    )
    index = int(np.searchsorted(sampler.prefix, probe, side="right"))
    return Figure3Data(
        probabilities=tuple(sampler.probabilities),
        prefix=tuple(sampler.prefix),
        probe=probe,
        result_index=index,
        result_bitstring=format(index, "03b"),
    )


@dataclass(frozen=True)
class Figure4Data:
    """DD forms of the running example (paper Fig. 4a-4d)."""
    leftmost_root_weight: complex  # Fig. 4b: −0.612i
    leftmost_q2_weights: Tuple[complex, complex]  # Fig. 4b: (1, 0.578i)
    branch_probabilities: Dict[str, Tuple[float, float]]  # Fig. 4c
    l2_weight_magnitudes: Dict[str, Tuple[float, float]]  # Fig. 4d
    l2_node_count: int
    leftmost_node_count: int


def figure4_data() -> Figure4Data:
    """The decision diagrams of Fig. 4 under both normalisation schemes."""
    statevector = running_example_statevector()

    # Fig. 4b: left-most normalisation.
    left_package = DDPackage(scheme=NormalizationScheme.LEFTMOST)
    left_state = left_package.from_statevector(statevector)
    root = left_state.node
    leftmost_q2 = (root.edges[0].weight, root.edges[1].weight)

    # Fig. 4c: branch probabilities on the same DD.
    from ..dd.vector_dd import VectorDD

    sampler = DDSampler(
        VectorDD(left_package, left_state, 3), trust_l2_normalization=False
    )
    branch: Dict[str, Tuple[float, float]] = {}
    branch["q2"] = sampler.branch_probabilities(root)
    for bit, label in ((0, "q1_left"), (1, "q1_right")):
        child = root.edges[bit].node
        branch[label] = sampler.branch_probabilities(child)

    # Fig. 4d: the paper's L2 scheme.
    l2_package = DDPackage(scheme=NormalizationScheme.L2)
    l2_state = l2_package.from_statevector(statevector)
    l2_root = l2_state.node
    magnitudes: Dict[str, Tuple[float, float]] = {
        "q2": (abs(l2_root.edges[0].weight), abs(l2_root.edges[1].weight))
    }
    for bit, label in ((0, "q1_left"), (1, "q1_right")):
        child = l2_root.edges[bit].node
        magnitudes[label] = (
            abs(child.edges[0].weight),
            abs(child.edges[1].weight),
        )

    return Figure4Data(
        leftmost_root_weight=left_state.weight,
        leftmost_q2_weights=leftmost_q2,
        branch_probabilities=branch,
        l2_weight_magnitudes=magnitudes,
        l2_node_count=l2_package.node_count(l2_state),
        leftmost_node_count=left_package.node_count(left_state),
    )


def render_figures() -> str:
    """Human-readable report of Figs. 2-4, paper values alongside."""
    lines: List[str] = []
    fig2 = figure2_data()
    lines.append("Figure 2 — running example")
    lines.append("  amplitudes (paper: 0, -0.612i, 0, -0.612i, 0.354, 0, 0, 0.354):")
    lines.append(
        "    " + ", ".join(f"{a.real:+.3f}{a.imag:+.3f}i" for a in fig2.amplitudes)
    )
    lines.append("  probabilities (paper: 0, 3/8, 0, 3/8, 1/8, 0, 0, 1/8):")
    lines.append("    " + ", ".join(f"{p:.4f}" for p in fig2.probabilities))
    lines.append(f"  sample at p-hat = 1/2 (paper: |011>): |{fig2.sample_at_half}>")

    fig3 = figure3_data()
    lines.append("")
    lines.append("Figure 3 — prefix array and binary search")
    lines.append(
        "  prefix (paper: 0, 3/8, 3/8, 6/8, 7/8, 7/8, 7/8, 1): "
        + ", ".join(f"{r:.4f}" for r in fig3.prefix)
    )
    lines.append(
        f"  binary search for {fig3.probe} -> index {fig3.result_index} "
        f"= |{fig3.result_bitstring}> (paper: |011>)"
    )

    fig4 = figure4_data()
    lines.append("")
    lines.append("Figure 4 — decision diagrams")
    lines.append(
        f"  4b root weight (paper: -0.612i): "
        f"{fig4.leftmost_root_weight:.4f}; q2 weights (paper: 1, 0.578i): "
        + ", ".join(f"{w:.4f}" for w in fig4.leftmost_q2_weights)
    )
    p0, p1 = fig4.branch_probabilities["q2"]
    lines.append(f"  4c root branch probabilities (paper: 3/4, 1/4): {p0:.4f}, {p1:.4f}")
    mags = fig4.l2_weight_magnitudes["q2"]
    lines.append(
        f"  4d root |weights| (paper: sqrt(3)/2, 1/2): {mags[0]:.4f}, {mags[1]:.4f}"
    )
    lines.append(
        f"  node counts: leftmost={fig4.leftmost_node_count}, "
        f"l2={fig4.l2_node_count} (the paper draws 6 nodes; two of its "
        "q0 nodes are identical and share in the canonical DD)"
    )
    return "\n".join(lines)
