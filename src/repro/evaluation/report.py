"""Text rendering of Table-I rows (paper format, plus reference columns)."""

from __future__ import annotations

import math
from typing import List, Optional

from .table1 import Table1Row

__all__ = ["format_table1", "format_row_markdown", "format_table1_markdown"]


def _fmt_time(seconds: Optional[float]) -> str:
    if seconds is None:
        return "MO"
    if seconds < 0.0005:
        return "<1ms"
    return f"{seconds:.2f}"


def _fmt_size(size: int) -> str:
    return f"2^{int(round(math.log2(size)))}" if size else "0"


def _fmt_nodes(nodes: int) -> str:
    if nodes <= 0:
        return "0"
    return f"{nodes} (~2^{math.log2(nodes):.1f})"


def format_table1(rows: List[Table1Row], shots: Optional[int] = None) -> str:
    """Render measured rows in the layout of the paper's Table I."""
    header = (
        f"{'benchmark':<18} {'qubits':>6} | {'vec size':>8} {'vec t[s]':>9} "
        f"| {'dd size':>18} {'dd t[s]':>8} | {'paper vec':>9} {'paper dd':>10}"
    )
    lines = []
    if shots is not None:
        lines.append(f"Sampling {shots} bitstrings per benchmark (error-free).")
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        vec_time = (
            None
            if row.vector_mo or row.vector_precompute_s is None
            else row.vector_total_s
        )
        vec_cell = "MO" if row.vector_mo else _fmt_time(vec_time)
        paper_vec = "MO" if row.paper_vector_mo else _fmt_time(row.paper_vector_time_s)
        paper_dd = (
            f"{row.paper_dd_nodes}/{_fmt_time(row.paper_dd_time_s)}"
            if row.paper_dd_nodes is not None
            else "-"
        )
        lines.append(
            f"{row.name:<18} {row.qubits:>6} | {_fmt_size(row.vector_entries):>8} "
            f"{vec_cell:>9} | {_fmt_nodes(row.dd_nodes):>18} "
            f"{_fmt_time(row.dd_total_s):>8} | {paper_vec:>9} {paper_dd:>10}"
        )
    return "\n".join(lines)


def format_row_markdown(row: Table1Row) -> str:
    """One Table-I row as a markdown table line."""
    vec_cell = "MO" if row.vector_mo else _fmt_time(row.vector_total_s)
    paper_vec = "MO" if row.paper_vector_mo else _fmt_time(row.paper_vector_time_s)
    return (
        f"| {row.name} | {row.qubits} | {_fmt_size(row.vector_entries)} | "
        f"{vec_cell} | {row.dd_nodes} | {_fmt_time(row.dd_total_s)} | "
        f"{paper_vec} | {row.paper_dd_nodes or '-'} / "
        f"{_fmt_time(row.paper_dd_time_s)} |"
    )


def format_table1_markdown(rows: List[Table1Row]) -> str:
    """Markdown rendering for EXPERIMENTS.md."""
    lines = [
        "| benchmark | qubits | vec size | vec t[s] | dd nodes | dd t[s] "
        "| paper vec t[s] | paper dd nodes/t[s] |",
        "|---|---|---|---|---|---|---|---|",
    ]
    lines.extend(format_row_markdown(row) for row in rows)
    return "\n".join(lines)
