"""Benchmark catalog mirroring Table I of the paper.

Every entry knows how to produce its final quantum state (circuit + DD
simulation, or — for the paper-scale Shor instances — the emulated final
state compressed into a DD) and carries the numbers the paper reports so
the harness can print paper-vs-measured comparisons.

Tiers (this implementation is pure Python; see DESIGN.md substitutions):

* ``quick`` — scaled instances of every family, sized for seconds-to-
  minutes total runtime.  This is the default for tests and benches.
* ``full`` — the heavier instances that still complete in pure Python
  (tens of minutes in aggregate).
* ``paper`` — the exact Table-I instances.  All are *constructible*;
  the largest (supremacy_5x5_10) needs hours and several GiB in pure
  Python, which is why they are opt-in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..algorithms.grover import grover
from ..algorithms.jellium import jellium
from ..algorithms.qft import qft
from ..algorithms.shor import shor_final_state
from ..algorithms.supremacy import supremacy
from ..dd.normalization import NormalizationScheme
from ..dd.package import DDPackage
from ..dd.vector_dd import VectorDD
from ..simulators.dd_simulator import DDSimulator

__all__ = ["BenchmarkSpec", "PaperRow", "PAPER_TABLE", "catalog", "build_state"]


@dataclass(frozen=True)
class PaperRow:
    """One row of the paper's Table I (reference values)."""

    name: str
    qubits: int
    vector_time_s: Optional[float]  # None == MO
    dd_nodes: int
    dd_time_s: float

    @property
    def vector_mo(self) -> bool:
        """Whether the paper reports memory-out for the vector method."""
        return self.vector_time_s is None


#: The paper's Table I, verbatim.
PAPER_TABLE: Tuple[PaperRow, ...] = (
    PaperRow("qft_16", 16, 0.12, 16, 0.22),
    PaperRow("qft_32", 32, None, 32, 0.43),
    PaperRow("qft_48", 48, None, 48, 0.63),
    PaperRow("grover_20", 21, 0.70, 40, 0.23),
    PaperRow("grover_25", 26, 17.91, 50, 0.27),
    PaperRow("grover_30", 31, 993.99, 60, 0.29),
    PaperRow("grover_35", 36, None, 70, 0.43),
    PaperRow("shor_33_2", 18, 0.15, 48_793, 0.20),
    PaperRow("shor_55_2", 18, 0.16, 93_478, 0.21),
    PaperRow("shor_69_4", 21, 0.62, 196_382, 0.26),
    PaperRow("shor_221_4", 24, 3.72, 1_048_574, 0.27),
    PaperRow("shor_247_4", 24, 3.81, 1_376_221, 0.31),
    PaperRow("jellium_2x2", 8, 0.04, 117, 0.09),
    PaperRow("jellium_3x3", 18, 0.17, 59_475, 0.22),
    PaperRow("supremacy_4x4_10", 16, 0.11, 65_070, 0.39),
    PaperRow("supremacy_5x4_10", 20, 0.66, 486_503, 0.82),
    PaperRow("supremacy_5x5_10", 25, 12.04, 16_779_617, 4.28),
)

_PAPER_BY_NAME: Dict[str, PaperRow] = {row.name: row for row in PAPER_TABLE}


@dataclass(frozen=True)
class BenchmarkSpec:
    """A runnable benchmark instance."""

    name: str
    family: str
    num_qubits: int
    tier: str  # "quick" | "full" | "paper"
    builder: Callable[[], object] = field(repr=False)
    #: "circuit" builders return a QuantumCircuit to simulate; "state"
    #: builders return a dense statevector (emulated Shor); "iterated"
    #: builders return (init, iteration, repetitions) simulated via
    #: :meth:`~repro.simulators.DDSimulator.run_iterated` (Grover).
    kind: str = "circuit"
    paper_row: Optional[str] = None  # Table-I row this instance scales

    @property
    def paper(self) -> Optional[PaperRow]:
        """The paper's Table-I row for this benchmark, if it has one."""
        if self.paper_row is None:
            return None
        return _PAPER_BY_NAME[self.paper_row]


def _spec(name, family, qubits, tier, builder, kind="circuit", paper_row=None):
    return BenchmarkSpec(
        name=name,
        family=family,
        num_qubits=qubits,
        tier=tier,
        builder=builder,
        kind=kind,
        paper_row=paper_row,
    )


def _shor_builder(modulus: int, base: int):
    def build():
        statevector, _, _ = shor_final_state(modulus, base)
        return statevector

    return build


def _grover_builder(num_data_qubits: int, seed: int):
    def build():
        instance = grover(num_data_qubits, seed=seed)
        return (
            instance.init_circuit(),
            instance.iteration_circuit(),
            instance.iterations,
        )

    return build


def _all_specs() -> List[BenchmarkSpec]:
    specs: List[BenchmarkSpec] = []
    # ---- QFT: trivial at every scale (product intermediate states). ----
    specs.append(_spec("qft_16", "qft", 16, "quick", lambda: qft(16), paper_row="qft_16"))
    specs.append(_spec("qft_32", "qft", 32, "quick", lambda: qft(32), paper_row="qft_32"))
    specs.append(_spec("qft_48", "qft", 48, "quick", lambda: qft(48), paper_row="qft_48"))
    # ---- Grover: iterations grow as sqrt(2^n); scaled sizes for Python.
    specs.append(
        _spec("grover_10", "grover", 11, "quick", _grover_builder(10, 10),
              kind="iterated", paper_row="grover_20")
    )
    specs.append(
        _spec("grover_14", "grover", 15, "quick", _grover_builder(14, 14),
              kind="iterated", paper_row="grover_25")
    )
    specs.append(
        _spec("grover_16", "grover", 17, "full", _grover_builder(16, 16),
              kind="iterated", paper_row="grover_30")
    )
    specs.append(
        _spec("grover_18", "grover", 19, "full", _grover_builder(18, 18),
              kind="iterated", paper_row="grover_35")
    )
    specs.append(
        _spec("grover_20", "grover", 21, "paper", _grover_builder(20, 20),
              kind="iterated", paper_row="grover_20")
    )
    # ---- Shor (emulated final state; qubit counts match Table I). ----
    specs.append(
        _spec("shor_33_2", "shor", 18, "quick", _shor_builder(33, 2), kind="state",
              paper_row="shor_33_2")
    )
    specs.append(
        _spec("shor_55_2", "shor", 18, "quick", _shor_builder(55, 2), kind="state",
              paper_row="shor_55_2")
    )
    specs.append(
        _spec("shor_69_4", "shor", 21, "full", _shor_builder(69, 4), kind="state",
              paper_row="shor_69_4")
    )
    specs.append(
        _spec("shor_221_4", "shor", 24, "paper", _shor_builder(221, 4), kind="state",
              paper_row="shor_221_4")
    )
    specs.append(
        _spec("shor_247_4", "shor", 24, "paper", _shor_builder(247, 4), kind="state",
              paper_row="shor_247_4")
    )
    # ---- Jellium. ----
    specs.append(
        _spec("jellium_2x2", "jellium", 8, "quick", lambda: jellium(2),
              paper_row="jellium_2x2")
    )
    specs.append(
        _spec("jellium_3x3", "jellium", 18, "full", lambda: jellium(3),
              paper_row="jellium_3x3")
    )
    # ---- Supremacy. ----
    specs.append(
        _spec("supremacy_4x4_5", "supremacy", 16, "quick",
              lambda: supremacy(4, 4, 5, seed=0), paper_row="supremacy_4x4_10")
    )
    specs.append(
        _spec("supremacy_4x4_10", "supremacy", 16, "full",
              lambda: supremacy(4, 4, 10, seed=0), paper_row="supremacy_4x4_10")
    )
    specs.append(
        _spec("supremacy_5x4_10", "supremacy", 20, "paper",
              lambda: supremacy(5, 4, 10, seed=0), paper_row="supremacy_5x4_10")
    )
    specs.append(
        _spec("supremacy_5x5_10", "supremacy", 25, "paper",
              lambda: supremacy(5, 5, 10, seed=0), paper_row="supremacy_5x5_10")
    )
    return specs


_TIER_ORDER = {"quick": 0, "full": 1, "paper": 2}


def catalog(tier: str = "quick", families: Optional[List[str]] = None) -> List[BenchmarkSpec]:
    """Benchmark specs up to and including ``tier``.

    ``tier="full"`` includes quick+full; ``tier="paper"`` includes all.
    Optionally filter to specific ``families``.
    """
    if tier not in _TIER_ORDER:
        raise ValueError(f"unknown tier {tier!r}; pick quick, full, or paper")
    limit = _TIER_ORDER[tier]
    specs = [s for s in _all_specs() if _TIER_ORDER[s.tier] <= limit]
    if families is not None:
        wanted = set(families)
        specs = [s for s in specs if s.family in wanted]
    return specs


def by_name(name: str) -> BenchmarkSpec:
    """Look up one benchmark spec by name."""
    for spec in _all_specs():
        if spec.name == name:
            return spec
    raise KeyError(f"unknown benchmark {name!r}")


def build_state(
    spec: BenchmarkSpec,
    package: Optional[DDPackage] = None,
    scheme: NormalizationScheme = NormalizationScheme.L2,
) -> VectorDD:
    """Produce the final state of ``spec`` as a decision diagram."""
    if package is None:
        package = DDPackage(scheme=scheme)
    built = spec.builder()
    if spec.kind == "state":
        return VectorDD.from_statevector(package, built)
    simulator = DDSimulator(package=package)
    if spec.kind == "iterated":
        init, iteration, repetitions = built
        return simulator.run_iterated(init, iteration, repetitions)
    return simulator.run(built)
