"""Memory accounting and MO (memory-out) policy for the evaluation.

The paper's Table I reports "MO" where the dense vector-based method
exceeded 32 GiB RAM + 32 GiB swap.  This harness applies a configurable
byte cap to the dense representation: rows whose state vector would not
fit are reported as MO without attempting the allocation — the decision
is analytic (``16 * 2^n`` bytes), exactly like the real failure mode.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dd.stats import dd_bytes, vector_bytes
from ..simulators.statevector import DEFAULT_MEMORY_CAP

__all__ = ["MemoryPolicy", "format_bytes"]


def format_bytes(count: int) -> str:
    """Human-readable byte count."""
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB", "PiB"):
        if value < 1024.0 or unit == "PiB":
            return f"{value:.3g} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


@dataclass(frozen=True)
class MemoryPolicy:
    """Decides which representations fit in memory."""

    cap_bytes: int = DEFAULT_MEMORY_CAP

    def vector_fits(self, num_qubits: int) -> bool:
        """Whether a dense complex128 state vector fits under the cap."""
        return vector_bytes(num_qubits) <= self.cap_bytes

    def vector_verdict(self, num_qubits: int) -> str:
        """"ok" or "MO" for the vector-based method."""
        return "ok" if self.vector_fits(num_qubits) else "MO"

    def dd_fits(self, node_count: int) -> bool:
        """Whether a DD of ``node_count`` nodes fits under the cap."""
        return dd_bytes(node_count) <= self.cap_bytes

    def describe(self) -> str:
        """Human-readable cap description for report headers."""
        return f"memory cap {format_bytes(self.cap_bytes)}"
