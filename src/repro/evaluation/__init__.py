"""Evaluation harness: benchmark catalog, Table-I and figure regeneration."""

from .catalog import PAPER_TABLE, BenchmarkSpec, PaperRow, build_state, by_name, catalog
from .figures import figure2_data, figure3_data, figure4_data, render_figures
from .memory import MemoryPolicy, format_bytes
from .report import format_table1, format_table1_markdown
from .shape_checks import ShapeCheck, render_shape_report, run_shape_checks
from .table1 import Table1Row, run_row, run_table1

__all__ = [
    "catalog",
    "by_name",
    "build_state",
    "BenchmarkSpec",
    "PaperRow",
    "PAPER_TABLE",
    "MemoryPolicy",
    "format_bytes",
    "run_table1",
    "run_row",
    "Table1Row",
    "format_table1",
    "format_table1_markdown",
    "figure2_data",
    "figure3_data",
    "figure4_data",
    "render_figures",
    "ShapeCheck",
    "run_shape_checks",
    "render_shape_report",
]
