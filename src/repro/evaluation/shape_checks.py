"""Programmatic checks of the paper's qualitative ("shape") claims.

Absolute times depend on hardware and language; what a reproduction must
preserve is the *shape* of the evaluation.  Each check below encodes one
claim from the paper as an executable assertion on freshly computed data:

1. ``qft_n`` final states have exactly ``n`` DD nodes (Table I).
2. ``grover_n`` final states have O(n) DD nodes (Table I: 2n-ish).
3. Shor final-state DDs grow into the 10^4-10^6 node range and track the
   paper's counts within a factor of ~1.3 (Table I).
4. The vector-based method memory-outs exactly on the paper's MO rows
   under the paper's 32 GiB RAM budget (Table I).
5. DD-based per-sample cost is O(n): time per sample grows far slower
   than state-vector size across the QFT family.
6. The paper's Fig. 2/3/4 worked-example numbers are reproduced exactly.
7. Both samplers produce output statistically indistinguishable from the
   exact distribution (the paper's core claim).

``run_shape_checks`` returns a list of (name, passed, detail) tuples and
is wired to ``repro-eval shapes``; the same checks run in the test suite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..algorithms.grover import grover
from ..algorithms.qft import qft
from ..algorithms.shor import shor_final_state
from ..algorithms.states import RUNNING_EXAMPLE_PROBABILITIES
from ..core.dd_sampler import DDSampler
from ..core.indistinguishability import chi_square_gof
from ..core.weak_sim import simulate_and_sample
from ..dd.package import DDPackage
from ..dd.vector_dd import VectorDD
from ..simulators.dd_simulator import DDSimulator
from .catalog import PAPER_TABLE
from .figures import figure2_data, figure3_data, figure4_data
from .memory import MemoryPolicy

__all__ = ["ShapeCheck", "run_shape_checks", "render_shape_report"]


@dataclass
class ShapeCheck:
    """One qualitative paper claim checked programmatically."""
    name: str
    passed: bool
    detail: str


def _check_qft_sizes() -> ShapeCheck:
    sizes = {}
    for n in (8, 16, 32):
        sizes[n] = DDSimulator().run(qft(n)).node_count
    passed = all(sizes[n] == n for n in sizes)
    return ShapeCheck(
        "qft DD size == n (Table I)",
        passed,
        ", ".join(f"qft_{n}: {count}" for n, count in sizes.items()),
    )


def _check_grover_sizes() -> ShapeCheck:
    sizes = {}
    for n in (8, 10, 12):
        instance = grover(n, seed=n)
        state = DDSimulator().run_iterated(
            instance.init_circuit(),
            instance.iteration_circuit(),
            instance.iterations,
        )
        sizes[n] = state.node_count
    passed = all(count <= 3 * (n + 1) for n, count in sizes.items())
    return ShapeCheck(
        "grover DD size == O(n) (Table I: ~2n)",
        passed,
        ", ".join(f"grover_{n}: {count}" for n, count in sizes.items()),
    )


def _check_shor_sizes() -> ShapeCheck:
    reference = {"shor_33_2": (33, 2, 48_793), "shor_55_2": (55, 2, 93_478)}
    details = []
    passed = True
    for name, (modulus, base, paper_nodes) in reference.items():
        statevector, _, _ = shor_final_state(modulus, base)
        package = DDPackage()
        nodes = VectorDD.from_statevector(package, statevector).node_count
        ratio = nodes / paper_nodes
        details.append(f"{name}: {nodes} vs paper {paper_nodes} (x{ratio:.2f})")
        passed = passed and 0.7 < ratio < 1.3
    return ShapeCheck("shor DD sizes track Table I", passed, "; ".join(details))


def _check_mo_pattern() -> ShapeCheck:
    policy = MemoryPolicy(cap_bytes=32 * 1024**3)  # the paper's RAM
    mismatches = [
        row.name
        for row in PAPER_TABLE
        if policy.vector_fits(row.qubits) == row.vector_mo
    ]
    return ShapeCheck(
        "vector MO pattern matches Table I at 32 GiB",
        not mismatches,
        "mismatches: " + (", ".join(mismatches) if mismatches else "none"),
    )


def _check_per_sample_scaling() -> ShapeCheck:
    # DD per-sample cost across qft_8..qft_32: vector size grows 2^24x,
    # per-sample time must grow by only a small constant (O(n)).
    times = {}
    for n in (8, 32):
        state = DDSimulator().run(qft(n))
        sampler = DDSampler(state)
        sampler._build_tables()
        rng = np.random.default_rng(0)
        start = time.perf_counter()
        sampler.sample(200_000, rng)
        times[n] = time.perf_counter() - start
    growth = times[32] / max(times[8], 1e-9)
    return ShapeCheck(
        "DD per-sample cost is O(n), not O(2^n)",
        growth < 32,  # generous bound; 2^24 would mean exponential cost
        f"qft_8: {times[8]*1e3:.1f} ms, qft_32: {times[32]*1e3:.1f} ms "
        f"for 200k samples (x{growth:.1f}; vector grew x2^24)",
    )


def _check_figures() -> ShapeCheck:
    fig2 = figure2_data()
    fig3 = figure3_data()
    fig4 = figure4_data()
    conditions = [
        np.allclose(fig2.probabilities, RUNNING_EXAMPLE_PROBABILITIES, atol=1e-9),
        fig2.sample_at_half == "011",
        np.allclose(fig3.prefix, [0, 3/8, 3/8, 6/8, 7/8, 7/8, 7/8, 1], atol=1e-12),
        fig3.result_bitstring == "011",
        np.isclose(fig4.leftmost_root_weight, -0.6124j, atol=5e-4),
        np.allclose(fig4.branch_probabilities["q2"], (0.75, 0.25), atol=1e-9),
        np.allclose(
            fig4.l2_weight_magnitudes["q2"], (np.sqrt(3) / 2, 0.5), atol=1e-9
        ),
    ]
    return ShapeCheck(
        "Figs. 2-4 worked-example numbers exact",
        all(conditions),
        f"{sum(bool(c) for c in conditions)}/{len(conditions)} conditions hold",
    )


def _check_statistical_faithfulness() -> ShapeCheck:
    from ..algorithms.states import running_example_circuit

    circuit = running_example_circuit()
    exact = np.asarray(RUNNING_EXAMPLE_PROBABILITIES)
    p_values = {}
    for method in ("dd", "vector"):
        result = simulate_and_sample(circuit, 50_000, method=method, seed=11)
        p_values[method] = chi_square_gof(result, exact).p_value
    passed = all(p > 1e-3 for p in p_values.values())
    return ShapeCheck(
        "samplers statistically indistinguishable from exact",
        passed,
        ", ".join(f"{m}: p={p:.3f}" for m, p in p_values.items()),
    )


_CHECKS: List[Callable[[], ShapeCheck]] = [
    _check_qft_sizes,
    _check_grover_sizes,
    _check_shor_sizes,
    _check_mo_pattern,
    _check_per_sample_scaling,
    _check_figures,
    _check_statistical_faithfulness,
]


def run_shape_checks() -> List[ShapeCheck]:
    """Run every shape check; never raises (failures are reported)."""
    results = []
    for check in _CHECKS:
        try:
            results.append(check())
        except Exception as error:  # pragma: no cover - defensive
            results.append(
                ShapeCheck(check.__name__, False, f"crashed: {error!r}")
            )
    return results


def render_shape_report(checks: Optional[List[ShapeCheck]] = None) -> str:
    """Human-readable pass/fail report."""
    checks = checks if checks is not None else run_shape_checks()
    lines = ["Shape checks (the paper's qualitative claims):"]
    for check in checks:
        status = "PASS" if check.passed else "FAIL"
        lines.append(f"  [{status}] {check.name}")
        lines.append(f"         {check.detail}")
    passed = sum(1 for c in checks if c.passed)
    lines.append(f"{passed}/{len(checks)} checks passed")
    return "\n".join(lines)
