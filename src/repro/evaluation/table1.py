"""Regeneration of the paper's Table I.

For every catalog benchmark the runner produces one row holding both
methods' results:

* vector-based: state-vector size, prefix-sum precompute time, and
  sampling time — or "MO" when the dense vector exceeds the memory cap
  (decided analytically, like the paper's 32-GiB machine),
* DD-based: node count, sampling-precompute time, and sampling time.

Both methods sample from the *same* final state (the DD is expanded to
the dense vector where it fits), so any statistical difference between
their outputs is attributable to the samplers — which the
``verify_agreement`` option checks with a two-sample chi-square test.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.dd_sampler import DDSampler
from ..core.indistinguishability import two_sample_chi_square
from ..core.prefix_sampler import PrefixSampler
from ..core.results import SampleResult
from ..dd.normalization import NormalizationScheme
from ..dd.package import DDPackage
from .catalog import BenchmarkSpec, build_state, catalog
from .memory import MemoryPolicy

__all__ = ["Table1Row", "run_row", "run_table1"]

#: Practical ceiling for actually materialising the dense vector in this
#: harness (2^26 amplitudes = 1 GiB): above it the row is still *reported*
#: against the memory policy, but we refuse to expand even if the policy
#: would allow it, to keep the harness snappy.
_EXPAND_LIMIT_QUBITS = 26


@dataclass
class Table1Row:
    """One measured row of Table I (plus paper reference values)."""

    name: str
    qubits: int
    vector_entries: int
    vector_mo: bool
    vector_precompute_s: Optional[float]
    vector_sampling_s: Optional[float]
    dd_nodes: int
    dd_precompute_s: float
    dd_sampling_s: float
    build_s: float
    shots: int
    paper_vector_time_s: Optional[float] = None
    paper_vector_mo: bool = False
    paper_dd_nodes: Optional[int] = None
    paper_dd_time_s: Optional[float] = None
    agreement_p_value: Optional[float] = None

    @property
    def vector_total_s(self) -> Optional[float]:
        """Vector-method build + sampling seconds (None on MO)."""
        if self.vector_mo or self.vector_precompute_s is None:
            return None
        return self.vector_precompute_s + self.vector_sampling_s

    @property
    def dd_total_s(self) -> float:
        """DD-method build + sampling seconds."""
        return self.dd_precompute_s + self.dd_sampling_s

    @property
    def mo_matches_paper(self) -> bool:
        """Whether this row reproduces the paper's MO verdict."""
        return self.vector_mo == self.paper_vector_mo


def run_row(
    spec: BenchmarkSpec,
    shots: int = 1_000_000,
    policy: Optional[MemoryPolicy] = None,
    seed: int = 0,
    verify_agreement: bool = False,
    scheme: NormalizationScheme = NormalizationScheme.L2,
) -> Table1Row:
    """Measure one benchmark with both sampling methods."""
    policy = policy or MemoryPolicy()
    rng = np.random.default_rng(seed)

    start = time.perf_counter()
    package = DDPackage(scheme=scheme)
    state = build_state(spec, package=package)
    build_s = time.perf_counter() - start

    # ---- DD-based sampling (Section IV). ----
    start = time.perf_counter()
    sampler = DDSampler(state)
    sampler._build_tables()
    dd_precompute_s = time.perf_counter() - start
    start = time.perf_counter()
    dd_samples = sampler.sample(shots, rng)
    dd_sampling_s = time.perf_counter() - start
    dd_nodes = state.node_count

    # ---- Vector-based sampling (Section III). ----
    vector_mo = not policy.vector_fits(spec.num_qubits)
    vector_precompute_s = vector_sampling_s = None
    agreement_p = None
    if not vector_mo and spec.num_qubits <= _EXPAND_LIMIT_QUBITS:
        statevector = state.to_statevector()
        start = time.perf_counter()
        prefix = PrefixSampler(statevector)
        vector_precompute_s = time.perf_counter() - start
        start = time.perf_counter()
        vector_samples = prefix.sample(shots, rng)
        vector_sampling_s = time.perf_counter() - start
        if verify_agreement:
            first = SampleResult.from_samples(spec.num_qubits, dd_samples)
            second = SampleResult.from_samples(spec.num_qubits, vector_samples)
            agreement_p = two_sample_chi_square(first, second).p_value

    paper = spec.paper
    return Table1Row(
        name=spec.name,
        qubits=spec.num_qubits,
        vector_entries=2**spec.num_qubits,
        vector_mo=vector_mo,
        vector_precompute_s=vector_precompute_s,
        vector_sampling_s=vector_sampling_s,
        dd_nodes=dd_nodes,
        dd_precompute_s=dd_precompute_s,
        dd_sampling_s=dd_sampling_s,
        build_s=build_s,
        shots=shots,
        paper_vector_time_s=paper.vector_time_s if paper else None,
        paper_vector_mo=paper.vector_mo if paper else False,
        paper_dd_nodes=paper.dd_nodes if paper else None,
        paper_dd_time_s=paper.dd_time_s if paper else None,
        agreement_p_value=agreement_p,
    )


def run_table1(
    tier: str = "quick",
    shots: int = 100_000,
    policy: Optional[MemoryPolicy] = None,
    seed: int = 0,
    families: Optional[List[str]] = None,
    verify_agreement: bool = False,
) -> List[Table1Row]:
    """Run every catalog benchmark of ``tier`` and return the rows."""
    return [
        run_row(
            spec,
            shots=shots,
            policy=policy,
            seed=seed,
            verify_agreement=verify_agreement,
        )
        for spec in catalog(tier=tier, families=families)
    ]
