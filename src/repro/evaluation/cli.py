"""Command-line entry point: ``repro-eval`` / ``python -m repro.evaluation``.

Subcommands:

* ``table1`` — regenerate the paper's Table I on a chosen tier,
* ``figures`` — regenerate the running-example figures (Figs. 2-4),
* ``list`` — list the benchmark catalog.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .catalog import catalog
from .figures import render_figures
from .memory import MemoryPolicy, format_bytes
from .report import format_table1
from .table1 import run_table1

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-eval",
        description="Regenerate the evaluation of 'Just Like the Real Thing: "
        "Fast Weak Simulation of Quantum Computation' (DAC 2020).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table = sub.add_parser("table1", help="regenerate Table I")
    table.add_argument(
        "--tier",
        choices=("quick", "full", "paper"),
        default="quick",
        help="benchmark scale (quick: seconds; full: minutes; paper: hours)",
    )
    table.add_argument("--shots", type=int, default=100_000, help="samples per row")
    table.add_argument(
        "--family",
        action="append",
        dest="families",
        help="restrict to a family (repeatable): qft, grover, shor, jellium, supremacy",
    )
    table.add_argument(
        "--memory-cap-gib",
        type=float,
        default=4.0,
        help="memory cap for the vector-based method (MO beyond this)",
    )
    table.add_argument("--seed", type=int, default=0)
    table.add_argument(
        "--verify-agreement",
        action="store_true",
        help="two-sample chi-square test between the two samplers per row",
    )
    table.add_argument(
        "--markdown",
        action="store_true",
        help="emit the table as markdown (for EXPERIMENTS.md)",
    )
    table.add_argument(
        "--output",
        help="also write the report to this file",
    )
    table.add_argument(
        "--trace",
        metavar="FILE",
        help="record a telemetry trace of the whole table run and write it "
        "as JSONL to FILE (render with 'python -m repro.telemetry.report')",
    )

    sub.add_parser("figures", help="regenerate the running-example figures")

    sub.add_parser(
        "shapes", help="check the paper's qualitative claims programmatically"
    )

    listing = sub.add_parser("list", help="list the benchmark catalog")
    listing.add_argument("--tier", choices=("quick", "full", "paper"), default="paper")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-eval``; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "figures":
        print(render_figures())
        return 0
    if args.command == "shapes":
        from .shape_checks import render_shape_report, run_shape_checks

        checks = run_shape_checks()
        print(render_shape_report(checks))
        return 0 if all(c.passed for c in checks) else 1
    if args.command == "list":
        print(f"{'name':<20} {'family':<10} {'qubits':>6} {'tier':<6}")
        for spec in catalog(tier=args.tier):
            print(f"{spec.name:<20} {spec.family:<10} {spec.num_qubits:>6} {spec.tier:<6}")
        return 0
    # table1
    policy = MemoryPolicy(cap_bytes=int(args.memory_cap_gib * 1024**3))
    print(
        f"Regenerating Table I (tier={args.tier}, shots={args.shots}, "
        f"{policy.describe()})"
    )
    session = None
    if args.trace:
        from ..telemetry import Telemetry

        session = Telemetry()
    from .. import telemetry as _telemetry

    # Activating here is enough: every instrumented layer below
    # (compile pipeline, simulators, samplers) finds the session via
    # telemetry.active(), so each table row contributes its spans.
    with _telemetry.activate(session):
        rows = run_table1(
            tier=args.tier,
            shots=args.shots,
            policy=policy,
            seed=args.seed,
            families=args.families,
            verify_agreement=args.verify_agreement,
        )
    if session is not None:
        records = session.export(args.trace)
        print(
            f"trace: {records} records -> {args.trace} "
            f"(render: python -m repro.telemetry.report {args.trace})"
        )
    if args.markdown:
        from .report import format_table1_markdown

        report = format_table1_markdown(rows)
    else:
        report = format_table1(rows, shots=args.shots)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    if args.verify_agreement:
        print()
        for row in rows:
            if row.agreement_p_value is not None:
                verdict = "ok" if row.agreement_p_value > 1e-3 else "FAIL"
                print(
                    f"  {row.name}: samplers agree (chi-square p = "
                    f"{row.agreement_p_value:.3f}) [{verdict}]"
                )
    mo_ok = all(row.mo_matches_paper for row in rows if row.paper_dd_nodes)
    print()
    print(f"MO pattern matches the paper's rows: {mo_ok}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
