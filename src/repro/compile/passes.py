"""The individual rewrite passes of the compile pipeline.

Every pass implements ``run(circuit) -> (circuit, counters)`` where
``counters`` is a flat ``{str: int}`` dict of rewrite statistics.  Passes
never mutate their input circuit, treat :class:`Measurement` and
:class:`Barrier` instructions as hard fences, and preserve the circuit
unitary *exactly* (up to the package tolerance) — including global phase,
which matters when an optimised circuit is later placed under control.
"""

from __future__ import annotations

import cmath
import math
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import Gate, gphase_gate
from ..circuit.operations import (
    Barrier,
    BaseOperation,
    DiagonalOperation,
    Measurement,
    Operation,
    PhaseTerm,
)
from ..circuit.transforms import zyz_angles
from ..dd.complex_table import DEFAULT_TOLERANCE

__all__ = [
    "CancelInversePairs",
    "CommuteDiagonals",
    "SingleQubitFusion",
    "DiagonalCoalescing",
    "is_diagonal_instruction",
    "diagonal_phase_terms",
]


# ---------------------------------------------------------------------------
# Shared predicates
# ---------------------------------------------------------------------------
#
# Gates are frozen (hashable) and heavily repeated — a Grover circuit is a
# few distinct gates applied hundreds of times — so every per-gate
# predicate is memoised.  Matrices are 2x2 or 4x4; direct scalar loops
# beat ``np.allclose`` (which dominates pipeline profiles otherwise).


def _is_identity(matrix, tolerance: float) -> bool:
    """Entry-wise identity check on a tuple matrix or small ndarray."""
    for i, row in enumerate(matrix):
        for j, value in enumerate(row):
            target = 1.0 if i == j else 0.0
            if abs(value - target) > tolerance:
                return False
    return True


@lru_cache(maxsize=None)
def _gate_array(gate: Gate) -> np.ndarray:
    array = gate.array
    array.setflags(write=False)
    return array


@lru_cache(maxsize=None)
def _gate_is_diagonal(gate: Gate, tolerance: float) -> bool:
    return all(
        abs(value) <= tolerance
        for i, row in enumerate(gate.matrix)
        for j, value in enumerate(row)
        if i != j
    )


@lru_cache(maxsize=None)
def _gate_is_identity(gate: Gate, tolerance: float) -> bool:
    return _is_identity(gate.matrix, tolerance)


@lru_cache(maxsize=None)
def _gates_cancel(first: Gate, second: Gate, tolerance: float) -> bool:
    """Is ``second @ first`` the identity (``first`` applied first)?"""
    if first.num_qubits != second.num_qubits:
        return False
    return _is_identity(_gate_array(second) @ _gate_array(first), tolerance)


def is_diagonal_instruction(instruction, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """``True`` for instructions that act diagonally on every qubit.

    A controlled gate with a diagonal base matrix is fully diagonal:
    controls enter as projectors onto computational subspaces.
    """
    if isinstance(instruction, DiagonalOperation):
        return True
    return isinstance(instruction, Operation) and _gate_is_diagonal(
        instruction.gate, tolerance
    )


def _wrap_angle(angle: float) -> float:
    """Reduce to the principal branch [-pi, pi]."""
    return math.remainder(angle, math.tau)


@lru_cache(maxsize=None)
def _monomial_angles(gate: Gate) -> Tuple[float, ...]:
    """Möbius-transformed diagonal phases of a diagonal gate's matrix."""
    size = 1 << gate.num_qubits
    coefficients = [cmath.phase(gate.matrix[i][i]) for i in range(size)]
    for bit in range(gate.num_qubits):
        mask = 1 << bit
        for pattern in range(size):
            if pattern & mask:
                coefficients[pattern] -= coefficients[pattern ^ mask]
    return tuple(coefficients)


def diagonal_phase_terms(
    instruction, tolerance: float = DEFAULT_TOLERANCE
) -> Optional[List[PhaseTerm]]:
    """Phase-polynomial decomposition of a diagonal instruction.

    A diagonal gate ``diag(e^{i phi_p})`` over ``k`` target qubits equals
    the product of subspace phases with monomial coefficients obtained by
    the Möbius (inclusion-exclusion) transform over target subsets::

        c_S = sum_{p subset of S} (-1)^{|S| - |p|} phi_p

    Positive controls fold into every term's ``ones`` set, anti-controls
    into ``zeros``.  Returns ``None`` for non-diagonal instructions.
    """
    if isinstance(instruction, DiagonalOperation):
        return list(instruction.terms)
    if not isinstance(instruction, Operation):
        return None
    if not _gate_is_diagonal(instruction.gate, tolerance):
        return None
    coefficients = _monomial_angles(instruction.gate)
    k = len(instruction.targets)
    size = 1 << k
    base_ones = frozenset(instruction.controls)
    zeros = frozenset(instruction.neg_controls)
    terms: List[PhaseTerm] = []
    for pattern in range(size):
        angle = _wrap_angle(float(coefficients[pattern]))
        if abs(angle) <= tolerance:
            continue
        ones = base_ones | frozenset(
            instruction.targets[bit] for bit in range(k) if (pattern >> bit) & 1
        )
        terms.append(PhaseTerm(ones=ones, zeros=zeros, angle=angle))
    return terms


def _commutes_with_diagonal(diagonal, other, tolerance: float) -> bool:
    """Does ``diagonal`` commute with ``other``?

    True when the operations touch disjoint qubits, when both are
    diagonal, or when every shared qubit enters ``other`` as a control —
    controls act diagonally, so the shared support commutes.
    """
    shared = diagonal.qubits & other.qubits
    if not shared:
        return True
    if is_diagonal_instruction(other, tolerance):
        return True
    if isinstance(other, Operation):
        return shared <= (other.controls | other.neg_controls)
    return False


_EYE2 = np.eye(2, dtype=np.complex128)
_EYE2.setflags(write=False)


def _fresh(circuit: QuantumCircuit, instructions) -> QuantumCircuit:
    result = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for instruction in instructions:
        result.append(instruction)
    return result


# ---------------------------------------------------------------------------
# Pass 1: inverse-pair and identity cancellation
# ---------------------------------------------------------------------------


class CancelInversePairs:
    """Remove identity gates and adjacent mutually-inverse pairs.

    Tracks the last live operation on every wire; when a new operation
    shares *exactly* the qubit roles of that operation and their gate
    product is the identity within tolerance, both disappear.  Removal
    re-exposes earlier operations, so chains like H·X·X·H cancel fully.
    """

    name = "cancel"

    def __init__(self, tolerance: float = DEFAULT_TOLERANCE):
        self.tolerance = tolerance

    def run(self, circuit: QuantumCircuit) -> Tuple[QuantumCircuit, Dict[str, int]]:
        """Remove identity gates and adjacent inverse pairs (one sweep)."""
        out: List[object] = []
        alive: List[bool] = []
        stacks: Dict[int, List[int]] = {}
        counters = {"pairs_cancelled": 0, "identities_removed": 0}

        def fence(qubits) -> None:
            touched = qubits if qubits else list(stacks)
            for qubit in touched:
                stacks.pop(qubit, None)

        def push(instruction) -> None:
            out.append(instruction)
            alive.append(True)
            index = len(out) - 1
            for qubit in instruction.qubits:
                stacks.setdefault(qubit, []).append(index)

        for instruction in circuit:
            if isinstance(instruction, (Measurement, Barrier)):
                fence(instruction.qubits)
                out.append(instruction)
                alive.append(True)
                continue
            if isinstance(instruction, Operation):
                if _gate_is_identity(instruction.gate, self.tolerance):
                    counters["identities_removed"] += 1
                    continue
                tops = {
                    stacks[qubit][-1] if stacks.get(qubit) else None
                    for qubit in instruction.qubits
                }
                if len(tops) == 1:
                    (index,) = tops
                    if index is not None:
                        previous = out[index]
                        if (
                            isinstance(previous, Operation)
                            and previous.targets == instruction.targets
                            and previous.controls == instruction.controls
                            and previous.neg_controls == instruction.neg_controls
                        ):
                            if _gates_cancel(
                                previous.gate, instruction.gate, self.tolerance
                            ):
                                alive[index] = False
                                for qubit in previous.qubits:
                                    stacks[qubit].pop()
                                counters["pairs_cancelled"] += 1
                                continue
            push(instruction)

        kept = [instr for instr, keep in zip(out, alive) if keep]
        return _fresh(circuit, kept), counters


# ---------------------------------------------------------------------------
# Pass 2: commutation-aware reordering of diagonal gates
# ---------------------------------------------------------------------------


class CommuteDiagonals:
    """Slide diagonal gates left past commuting neighbours.

    Each diagonal instruction bubbles towards the front of the list until
    it meets a fence, a non-commuting operation, or another diagonal
    instruction (at which point it has joined a run for the coalescing
    pass).  A move is only committed when it lands the instruction next
    to another diagonal — gratuitous reordering would perturb the
    intermediate DD sizes of the simulation for no coalescing gain.  The
    transformation only ever exchanges commuting pairs, so the circuit
    unitary is untouched.
    """

    name = "reorder"

    def __init__(self, tolerance: float = DEFAULT_TOLERANCE):
        self.tolerance = tolerance

    def run(self, circuit: QuantumCircuit) -> Tuple[QuantumCircuit, Dict[str, int]]:
        """Bubble diagonal gates left past commuting neighbours (one sweep)."""
        out: List[object] = []
        moves = 0
        for instruction in circuit:
            if isinstance(instruction, (Measurement, Barrier)):
                out.append(instruction)
                continue
            if not is_diagonal_instruction(instruction, self.tolerance):
                out.append(instruction)
                continue
            position = len(out)
            landed_on_diagonal = False
            while position > 0:
                previous = out[position - 1]
                if isinstance(previous, (Measurement, Barrier)):
                    break
                if is_diagonal_instruction(previous, self.tolerance):
                    landed_on_diagonal = True
                    break
                if not _commutes_with_diagonal(
                    instruction, previous, self.tolerance
                ):
                    break
                position -= 1
            if position != len(out) and landed_on_diagonal:
                moves += 1
                out.insert(position, instruction)
            else:
                out.append(instruction)
        return _fresh(circuit, out), {"moves": moves}


# ---------------------------------------------------------------------------
# Pass 3: single-qubit fusion
# ---------------------------------------------------------------------------


class SingleQubitFusion:
    """Fuse runs of adjacent uncontrolled single-qubit gates.

    A run of two or more gates on one wire becomes a single ``u3``-named
    gate carrying the *exact* product matrix (its params are the OpenQASM
    u3 angles, which reproduce the matrix up to global phase for QASM
    round-trips).  Near-identity products are dropped; products that are a
    pure phase become a ``gphase`` gate so later passes can absorb them.
    Runs of length one are left untouched.
    """

    name = "fuse"

    def __init__(self, tolerance: float = DEFAULT_TOLERANCE):
        self.tolerance = tolerance

    def _emit(self, out: List[object], qubit: int, matrix: np.ndarray,
              run: List[Operation], counters: Dict[str, int]) -> None:
        if len(run) == 1:
            out.append(run[0])
            return
        if _is_identity(matrix, self.tolerance):
            counters["gates_eliminated"] += len(run)
            return
        counters["runs_fused"] += 1
        counters["gates_eliminated"] += len(run) - 1
        if (
            abs(matrix[0, 1]) <= self.tolerance
            and abs(matrix[1, 0]) <= self.tolerance
            and abs(matrix[1, 1] - matrix[0, 0]) <= self.tolerance
        ):
            gate = gphase_gate(cmath.phase(complex(matrix[0, 0])))
        else:
            alpha, b, c, d = zyz_angles(matrix)
            gate = Gate(
                name="u3",
                num_qubits=1,
                matrix=tuple(tuple(complex(v) for v in row) for row in matrix),
                params=(c, b, d),
            )
        out.append(Operation(gate=gate, targets=(qubit,)))

    def run(self, circuit: QuantumCircuit) -> Tuple[QuantumCircuit, Dict[str, int]]:
        """Fuse runs of single-qubit gates into exact ``u3`` products."""
        out: List[object] = []
        pending: Dict[int, Tuple[np.ndarray, List[Operation]]] = {}
        counters = {"runs_fused": 0, "gates_eliminated": 0}

        def flush(qubit: int) -> None:
            entry = pending.pop(qubit, None)
            if entry is not None:
                self._emit(out, qubit, entry[0], entry[1], counters)

        for instruction in circuit:
            if isinstance(instruction, (Measurement, Barrier)):
                touched = instruction.qubits or sorted(pending)
                for qubit in sorted(touched):
                    flush(qubit)
                out.append(instruction)
                continue
            if (
                isinstance(instruction, Operation)
                and instruction.gate.num_qubits == 1
                and not instruction.is_controlled
            ):
                qubit = instruction.targets[0]
                matrix, run = pending.get(qubit, (_EYE2, []))
                pending[qubit] = (
                    _gate_array(instruction.gate) @ matrix,
                    run + [instruction],
                )
                continue
            for qubit in sorted(instruction.qubits):
                flush(qubit)
            out.append(instruction)
        for qubit in sorted(pending):
            flush(qubit)
        return _fresh(circuit, out), counters


# ---------------------------------------------------------------------------
# Pass 4: diagonal coalescing
# ---------------------------------------------------------------------------


class DiagonalCoalescing:
    """Merge adjacent diagonal instructions into one phase block.

    A maximal run of two or more consecutive diagonal instructions (they
    all commute, and need not share qubits) is converted to phase
    polynomials, like terms are summed modulo 2π, vanished terms are
    dropped, and the remainder is emitted as a single
    :class:`DiagonalOperation` — which the DD applier walks once per term
    instead of once per original gate.  A lone diagonal *gate* is left
    unchanged; a lone block is re-normalised (kept idempotent).
    """

    name = "coalesce"

    def __init__(self, tolerance: float = DEFAULT_TOLERANCE):
        self.tolerance = tolerance

    def _merge(self, run: List[object], counters: Dict[str, int]) -> List[object]:
        if len(run) == 1 and isinstance(run[0], Operation):
            return run
        raw_terms = 0
        merged: Dict[Tuple[frozenset, frozenset], float] = {}
        for instruction in run:
            for term in diagonal_phase_terms(instruction, self.tolerance) or []:
                raw_terms += 1
                key = (term.ones, term.zeros)
                merged[key] = merged.get(key, 0.0) + term.angle
        terms: List[PhaseTerm] = []
        for (ones, zeros), angle in merged.items():
            angle = _wrap_angle(angle)
            if abs(angle) <= self.tolerance:
                counters["phases_cancelled"] += 1
                continue
            terms.append(PhaseTerm(ones=ones, zeros=zeros, angle=angle))
        terms.sort(key=lambda t: (tuple(sorted(t.ones)), tuple(sorted(t.zeros))))
        counters["phases_merged"] += raw_terms - len(merged)
        if len(run) >= 2:
            counters["runs_coalesced"] += 1
            counters["gates_coalesced"] += len(run) - (1 if terms else 0)
        if not terms:
            return []
        return [DiagonalOperation(terms=tuple(terms))]

    def run(self, circuit: QuantumCircuit) -> Tuple[QuantumCircuit, Dict[str, int]]:
        """Coalesce adjacent diagonal gates into one phase block."""
        out: List[object] = []
        buffer: List[object] = []
        counters = {
            "runs_coalesced": 0,
            "gates_coalesced": 0,
            "phases_merged": 0,
            "phases_cancelled": 0,
        }

        def flush() -> None:
            if buffer:
                out.extend(self._merge(list(buffer), counters))
                buffer.clear()

        for instruction in circuit:
            if isinstance(instruction, BaseOperation) and is_diagonal_instruction(
                instruction, self.tolerance
            ):
                buffer.append(instruction)
                continue
            flush()
            out.append(instruction)
        flush()
        return _fresh(circuit, out), counters
