"""Circuit compilation: pass-based optimisation before simulation.

The strong-simulation *build* phase costs one DD (or dense) traversal per
applied operation, so the cheapest gate is the one never applied.  This
package rewrites a :class:`~repro.circuit.circuit.QuantumCircuit` into an
equivalent circuit with fewer, cheaper operations:

* :class:`~repro.compile.passes.CancelInversePairs` — adjacent
  self-inverting pairs (H·H, CX·CX, P(θ)·P(−θ)) and identity gates vanish,
* :class:`~repro.compile.passes.CommuteDiagonals` — diagonal gates slide
  left past commuting neighbours to lengthen fusable runs,
* :class:`~repro.compile.passes.SingleQubitFusion` — runs of adjacent
  single-qubit gates collapse into one exact 2×2 unitary,
* :class:`~repro.compile.passes.DiagonalCoalescing` — runs of diagonal
  gates merge into one
  :class:`~repro.circuit.operations.DiagonalOperation` block of subspace
  phases.

:func:`optimize_circuit` runs the default pipeline; the simulators invoke
it automatically unless constructed with ``optimize=False``.

:mod:`repro.compile.layout` additionally offers a connectivity-driven
initial qubit ordering (:func:`~repro.compile.layout.apply_initial_order`)
used by DD reordering; it is *not* part of the default pipeline because
relabelling changes the meaning of sampled bitstrings.
"""

from .layout import apply_initial_order, interaction_order
from .passes import (
    CancelInversePairs,
    CommuteDiagonals,
    DiagonalCoalescing,
    SingleQubitFusion,
    diagonal_phase_terms,
    is_diagonal_instruction,
)
from .pipeline import CompilePipeline, CompileStats, optimize_circuit

__all__ = [
    "apply_initial_order",
    "interaction_order",
    "CancelInversePairs",
    "CommuteDiagonals",
    "DiagonalCoalescing",
    "SingleQubitFusion",
    "CompilePipeline",
    "CompileStats",
    "optimize_circuit",
    "diagonal_phase_terms",
    "is_diagonal_instruction",
]
