"""Pipeline driver: pass ordering, fixpoint iteration, rewrite stats.

The default pipeline is

    cancel  →  reorder  →  fuse  →  coalesce

run to a fixpoint (bounded): cancellation first so dead gates never reach
the later passes, reordering next so diagonal gates line up into runs,
fusion before coalescing so a fused diagonal product can still join a
phase block.  Adding a pass means implementing
``run(circuit) -> (circuit, counters)`` with a ``name`` attribute and
inserting it into the sequence — see ``docs/architecture.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.circuit import QuantumCircuit
from ..dd.complex_table import DEFAULT_TOLERANCE
from .passes import (
    CancelInversePairs,
    CommuteDiagonals,
    DiagonalCoalescing,
    SingleQubitFusion,
)

__all__ = ["CompilePipeline", "CompileStats", "optimize_circuit"]


@dataclass
class CompileStats:
    """Aggregated rewrite counters for one pipeline run."""

    input_operations: int = 0
    output_operations: int = 0
    iterations: int = 0
    passes: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def operations_removed(self) -> int:
        return self.input_operations - self.output_operations

    @property
    def reduction_percent(self) -> float:
        if self.input_operations == 0:
            return 0.0
        return 100.0 * self.operations_removed / self.input_operations

    def to_dict(self) -> Dict:
        return {
            "input_operations": self.input_operations,
            "output_operations": self.output_operations,
            "operations_removed": self.operations_removed,
            "reduction_percent": round(self.reduction_percent, 2),
            "iterations": self.iterations,
            "passes": {name: dict(c) for name, c in self.passes.items()},
        }


class CompilePipeline:
    """Runs an ordered sequence of rewrite passes to a fixpoint."""

    def __init__(
        self,
        passes: Optional[Sequence] = None,
        tolerance: float = DEFAULT_TOLERANCE,
        max_iterations: int = 3,
    ):
        if passes is None:
            passes = (
                CancelInversePairs(tolerance),
                CommuteDiagonals(tolerance),
                SingleQubitFusion(tolerance),
                DiagonalCoalescing(tolerance),
            )
        self.passes = tuple(passes)
        self.max_iterations = max_iterations

    def run(self, circuit: QuantumCircuit) -> Tuple[QuantumCircuit, CompileStats]:
        stats = CompileStats(input_operations=circuit.num_operations)
        current = circuit
        for _ in range(self.max_iterations):
            stats.iterations += 1
            before = list(current)
            for compile_pass in self.passes:
                current, counters = compile_pass.run(current)
                merged = stats.passes.setdefault(compile_pass.name, {})
                for key, value in counters.items():
                    merged[key] = merged.get(key, 0) + value
            if list(current) == before:
                break
        stats.output_operations = current.num_operations
        return current, stats


def optimize_circuit(
    circuit: QuantumCircuit,
    tolerance: float = DEFAULT_TOLERANCE,
    pipeline: Optional[CompilePipeline] = None,
) -> Tuple[QuantumCircuit, CompileStats]:
    """Optimise ``circuit`` with the default (or a custom) pipeline.

    Returns the rewritten circuit and the rewrite statistics.  The result
    is exactly unitarily equivalent to the input — measurements, barriers,
    and global phase included.
    """
    if pipeline is None:
        pipeline = CompilePipeline(tolerance=tolerance)
    return pipeline.run(circuit)
