"""Pipeline driver: pass ordering, fixpoint iteration, rewrite stats.

The default pipeline is

    cancel  →  reorder  →  fuse  →  coalesce

run to a fixpoint (bounded): cancellation first so dead gates never reach
the later passes, reordering next so diagonal gates line up into runs,
fusion before coalescing so a fused diagonal product can still join a
phase block.  Adding a pass means implementing
``run(circuit) -> (circuit, counters)`` with a ``name`` attribute and
inserting it into the sequence — see ``docs/architecture.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..circuit.circuit import QuantumCircuit
from ..dd.complex_table import DEFAULT_TOLERANCE
from .passes import (
    CancelInversePairs,
    CommuteDiagonals,
    DiagonalCoalescing,
    SingleQubitFusion,
)

__all__ = ["CompilePipeline", "CompileStats", "optimize_circuit"]


@dataclass
class CompileStats:
    """Aggregated rewrite counters for one pipeline run."""

    input_operations: int = 0
    output_operations: int = 0
    iterations: int = 0
    passes: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def operations_removed(self) -> int:
        """Net operation count removed by the rewrite."""
        return self.input_operations - self.output_operations

    @property
    def reduction_percent(self) -> float:
        """Removed operations as a percentage of the input size."""
        if self.input_operations == 0:
            return 0.0
        return 100.0 * self.operations_removed / self.input_operations

    def to_dict(self) -> Dict:
        """The stats as one JSON-ready dict (CLI ``--stats``, telemetry)."""
        return {
            "input_operations": self.input_operations,
            "output_operations": self.output_operations,
            "operations_removed": self.operations_removed,
            "reduction_percent": round(self.reduction_percent, 2),
            "iterations": self.iterations,
            "passes": {name: dict(c) for name, c in self.passes.items()},
        }


class CompilePipeline:
    """Runs an ordered sequence of rewrite passes to a fixpoint."""

    def __init__(
        self,
        passes: Optional[Sequence] = None,
        tolerance: float = DEFAULT_TOLERANCE,
        max_iterations: int = 3,
    ):
        if passes is None:
            passes = (
                CancelInversePairs(tolerance),
                CommuteDiagonals(tolerance),
                SingleQubitFusion(tolerance),
                DiagonalCoalescing(tolerance),
            )
        self.passes = tuple(passes)
        self.max_iterations = max_iterations

    def run(self, circuit: QuantumCircuit) -> Tuple[QuantumCircuit, CompileStats]:
        """Rewrite ``circuit`` to a fixpoint; returns (circuit, stats).

        When a telemetry session is active, the run is traced as one
        ``compile`` span with a ``compile.pass`` child per pass
        execution, and the rewrite counters are absorbed into the
        metrics registry.
        """
        stats = CompileStats(input_operations=circuit.num_operations)
        current = circuit
        with telemetry.span("compile", input_operations=stats.input_operations) as root:
            for _ in range(self.max_iterations):
                stats.iterations += 1
                before = list(current)
                for compile_pass in self.passes:
                    with telemetry.span(
                        "compile.pass",
                        name=compile_pass.name,
                        iteration=stats.iterations,
                    ):
                        current, counters = compile_pass.run(current)
                    merged = stats.passes.setdefault(compile_pass.name, {})
                    for key, value in counters.items():
                        merged[key] = merged.get(key, 0) + value
                if list(current) == before:
                    break
            stats.output_operations = current.num_operations
            root.set_attr("output_operations", stats.output_operations)
            root.set_attr("iterations", stats.iterations)
        session = telemetry.active()
        if session is not None:
            session.registry.record_compile(stats.to_dict())
        return current, stats


def optimize_circuit(
    circuit: QuantumCircuit,
    tolerance: float = DEFAULT_TOLERANCE,
    pipeline: Optional[CompilePipeline] = None,
) -> Tuple[QuantumCircuit, CompileStats]:
    """Optimise ``circuit`` with the default (or a custom) pipeline.

    Returns the rewritten circuit and the rewrite statistics.  The result
    is exactly unitarily equivalent to the input — measurements, barriers,
    and global phase included.
    """
    if pipeline is None:
        pipeline = CompilePipeline(tolerance=tolerance)
    return pipeline.run(circuit)
