"""Connectivity-driven initial qubit ordering for DD builds.

A DD build pays for the *distance* between interacting qubits: a
two-qubit gate spanning levels ``l`` and ``l + k`` forces every level in
between to distinguish the pair's joint support, so circuits whose
entangling gates cross the register (``cx q[0], q[8]`` on 16 qubits)
blow up under the natural order while a relabelled version stays tiny.
This pass derives an initial order from the circuit's interaction graph
— the weighted adjacency of qubits that share multi-qubit operations —
and relabels the circuit through
:func:`~repro.circuit.transforms.permute_qubits` so that strongly
coupled qubits land on adjacent DD levels *before* the build starts.

It deliberately lives outside the default :func:`optimize_circuit`
pipeline: relabelling changes the meaning of sampled bitstrings, so it
only runs when reordering is requested (``ReorderConfig.static``) and
the caller records the returned permutation for unpermutation (see
``docs/reordering.md``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..circuit.circuit import QuantumCircuit
from ..circuit.transforms import permute_qubits

__all__ = ["interaction_order", "apply_initial_order"]


def interaction_order(circuit: QuantumCircuit) -> Tuple[int, ...]:
    """Greedy connectivity placement: ``order[level] = original qubit``.

    Builds the interaction graph (edge weight = number of multi-qubit
    instructions touching both qubits), seeds the order with the qubit
    of maximum total weight, then repeatedly appends the unplaced qubit
    most strongly connected to the placed set (ties broken by total
    weight, then qubit index, so the order is deterministic).  Qubits
    never touched by a multi-qubit operation keep their relative order
    at the end.  Returns the identity for circuits with no multi-qubit
    structure.
    """
    n = circuit.num_qubits
    weight: Dict[Tuple[int, int], int] = {}
    total = [0] * n
    for instruction in circuit.instructions:
        qubits = sorted(instruction.qubits)
        if len(qubits) < 2:
            continue
        for i, a in enumerate(qubits):
            for b in qubits[i + 1 :]:
                weight[(a, b)] = weight.get((a, b), 0) + 1
                total[a] += 1
                total[b] += 1
    if not weight:
        return tuple(range(n))

    def coupling(a: int, b: int) -> int:
        return weight.get((a, b) if a < b else (b, a), 0)

    placed: List[int] = []
    remaining = set(range(n))
    seed = max(remaining, key=lambda q: (total[q], -q))
    placed.append(seed)
    remaining.discard(seed)
    while remaining:
        # Untouched qubits (total weight 0) fall through to the
        # index tie-break, preserving their natural relative order.
        best = max(
            remaining,
            key=lambda q: (
                sum(coupling(q, p) for p in placed),
                total[q],
                -q,
            ),
        )
        placed.append(best)
        remaining.discard(best)
    return tuple(placed)


def apply_initial_order(
    circuit: QuantumCircuit,
) -> Tuple[QuantumCircuit, Tuple[int, ...]]:
    """Relabel ``circuit`` onto its interaction order.

    Returns ``(relabelled, level_to_qubit)`` where DD level ``l`` of a
    build of ``relabelled`` holds original qubit ``level_to_qubit[l]``.
    When the interaction order is the identity the input circuit is
    returned unchanged (no copy).
    """
    order = interaction_order(circuit)
    if order == tuple(range(circuit.num_qubits)):
        return circuit, order
    # permute_qubits maps original label q -> new label mapping[q]; we
    # want original qubit order[l] to become label (= level) l.
    mapping = [0] * circuit.num_qubits
    for level, qubit in enumerate(order):
        mapping[qubit] = level
    return permute_qubits(circuit, mapping), order
