"""Compile-pipeline harness: emits ``BENCH_build.json``.

Quantifies what the circuit optimizer buys the DD build phase.  For each
benchmark family (QFT, Grover, supremacy-style random circuits) one run
records

* **operation counts** before and after the pipeline (the acceptance bar
  is a >= 25% reduction on every family),
* **build wall time** with and without optimisation — strong simulation
  of the raw circuit versus pipeline + strong simulation of the rewrite,
* **per-pass rewrite counters** (fusions, coalesced runs, cancelled
  pairs, commutation moves),
* **indistinguishability** — a two-sample chi-square test between shots
  drawn from the optimised and unoptimised simulations, proving the
  rewrite does not move the output distribution.

Run it with::

    python -m repro.compile.bench --out BENCH_build.json
    python -m repro.compile.bench --smoke          # toy sizes, seconds
    python -m repro.compile.bench --validate BENCH_build.json

The JSON layout is versioned and checked by :func:`validate_payload`;
``make bench-compile`` and the tier-1 suite fail on schema drift.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from typing import Dict, List, Optional

from ..algorithms.grover import grover
from ..algorithms.qft import qft
from ..algorithms.supremacy import supremacy
from ..circuit.circuit import QuantumCircuit
from ..core.indistinguishability import two_sample_chi_square
from ..core.weak_sim import simulate_and_sample
from ..simulators.dd_simulator import DDSimulator
from .pipeline import optimize_circuit

__all__ = ["FORMAT", "VERSION", "run_harness", "validate_payload", "main"]

FORMAT = "repro-bench-build"
VERSION = 1

#: Minimum applied-operation reduction (percent) each family must show.
REDUCTION_FLOOR = 25.0

#: Top-level keys every payload must carry, with the per-section keys.
_SCHEMA: Dict[str, List[str]] = {
    "cases": [
        "name",
        "num_qubits",
        "ops_before",
        "ops_after",
        "reduction_percent",
        "build_seconds_unoptimized",
        "build_seconds_optimized",
        "build_speedup",
        "passes",
    ],
    "sampling": [
        "circuit",
        "shots",
        "distributions_consistent",
    ],
}


def _families(smoke: bool) -> List[tuple]:
    """(name, circuit) per benchmark family; sizes scale with ``smoke``."""
    if smoke:
        return [
            ("qft_8", qft(8)),
            ("grover_5", grover(5, seed=1).circuit),
            ("supremacy_3x3_5", supremacy(3, 3, 5, seed=1)),
        ]
    return [
        ("qft_16", qft(16)),
        ("grover_8", grover(8, seed=1).circuit),
        ("supremacy_4x4_5", supremacy(4, 4, 5, seed=1)),
    ]


def _bench_case(name: str, circuit: QuantumCircuit, repeats: int = 3) -> Dict:
    unoptimized = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        DDSimulator(optimize=False).run(circuit)
        unoptimized = min(unoptimized, time.perf_counter() - start)
    # The optimised timing includes the pipeline itself: what a user pays
    # end to end, not just the cheaper simulation.
    optimized = math.inf
    for _ in range(repeats):
        simulator = DDSimulator(optimize=True)
        start = time.perf_counter()
        simulator.run(circuit)
        optimized = min(optimized, time.perf_counter() - start)
    rewrite = simulator.stats.compile_stats
    before = rewrite["input_operations"]
    after = rewrite["output_operations"]
    return {
        "name": name,
        "num_qubits": circuit.num_qubits,
        "ops_before": before,
        "ops_after": after,
        "reduction_percent": rewrite["reduction_percent"],
        "build_seconds_unoptimized": round(unoptimized, 6),
        "build_seconds_optimized": round(optimized, 6),
        "build_speedup": round(unoptimized / max(optimized, 1e-9), 2),
        "passes": rewrite["passes"],
    }


def run_harness(shots: int = 50_000, seed: int = 7, smoke: bool = False) -> Dict:
    """Execute all harness sections and return the payload dict."""
    if smoke:
        shots = min(shots, 4_000)
    payload: Dict = {
        "format": FORMAT,
        "version": VERSION,
        "config": {"shots": shots, "seed": seed, "smoke": smoke},
        "cases": [],
    }
    families = _families(smoke)
    for name, circuit in families:
        payload["cases"].append(_bench_case(name, circuit))

    # -- indistinguishability ---------------------------------------------
    # Different seeds on purpose: identical streams would make the test
    # degenerate (identical counts regardless of the rewrite).
    chi_name, chi_circuit = families[0]
    optimized = simulate_and_sample(
        chi_circuit, shots, seed=seed, optimize=True
    )
    verbatim = simulate_and_sample(
        chi_circuit, shots, seed=seed + 1, optimize=False
    )
    consistent = bool(
        two_sample_chi_square(optimized.counts, verbatim.counts).consistent
    )
    payload["sampling"] = {
        "circuit": chi_name,
        "shots": shots,
        "distributions_consistent": consistent,
    }
    return payload


def validate_payload(payload: Dict) -> None:
    """Raise ``ValueError`` when ``payload`` drifts from the schema."""
    if payload.get("format") != FORMAT:
        raise ValueError(f"format must be {FORMAT!r}")
    if payload.get("version") != VERSION:
        raise ValueError(f"version must be {VERSION}")
    if "config" not in payload:
        raise ValueError("missing section 'config'")
    for section, keys in _SCHEMA.items():
        if section not in payload:
            raise ValueError(f"missing section {section!r}")
        entries = payload[section]
        if section == "cases":
            if not isinstance(entries, list) or not entries:
                raise ValueError("'cases' must be a non-empty list")
        else:
            entries = [entries]
        for entry in entries:
            missing = [key for key in keys if key not in entry]
            if missing:
                raise ValueError(f"section {section!r} missing keys {missing}")
    for case in payload["cases"]:
        if case["reduction_percent"] < REDUCTION_FLOOR:
            raise ValueError(
                f"case {case['name']!r} reduction "
                f"{case['reduction_percent']}% below the "
                f"{REDUCTION_FLOOR}% floor"
            )
    if not payload["sampling"]["distributions_consistent"]:
        raise ValueError("optimised sampling distribution drifted")


def _build_parser() -> argparse.ArgumentParser:
    """The bench CLI's argument parser (importable for the docs checker)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench-build",
        description="Benchmark the compile pipeline and emit "
        "BENCH_build.json.",
    )
    parser.add_argument(
        "--out", default="BENCH_build.json", help="output JSON path"
    )
    parser.add_argument(
        "--shots",
        type=int,
        default=50_000,
        help="shots for the indistinguishability check",
    )
    parser.add_argument("--seed", type=int, default=7, help="harness RNG seed")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="toy sizes: exercises every section in seconds",
    )
    parser.add_argument(
        "--validate",
        metavar="FILE",
        help="validate an existing payload against the schema and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.compile.bench``."""
    args = _build_parser().parse_args(argv)

    if args.validate:
        with open(args.validate, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        try:
            validate_payload(payload)
        except ValueError as error:
            print(f"schema drift: {error}", file=sys.stderr)
            return 1
        print(f"{args.validate}: schema ok (version {payload['version']})")
        return 0

    payload = run_harness(shots=args.shots, seed=args.seed, smoke=args.smoke)
    validate_payload(payload)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    worst = min(case["reduction_percent"] for case in payload["cases"])
    print(
        f"wrote {args.out}: {len(payload['cases'])} families, "
        f"worst reduction {worst}%, distributions consistent: "
        f"{payload['sampling']['distributions_consistent']}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
