"""Compile-pipeline harness: emits ``BENCH_build.json``.

Quantifies what the circuit optimizer buys the DD build phase.  For each
benchmark family (QFT, Grover, supremacy-style random circuits) one run
records

* **operation counts** before and after the pipeline (the acceptance bar
  is a >= 25% reduction on every family),
* **build wall time** with and without optimisation — strong simulation
  of the raw circuit versus pipeline + strong simulation of the rewrite,
* **per-pass rewrite counters** (fusions, coalesced runs, cancelled
  pairs, commutation moves),
* **indistinguishability** — a two-sample chi-square test between shots
  drawn from the optimised and unoptimised simulations, proving the
  rewrite does not move the output distribution.

Since version 2 the payload also carries a ``reordering`` section: a
crossing-pair circuit (the worst case for the natural variable order) is
built fixed and reordered, and the peak-node reduction, equal-seed
determinism, and exactness of the permutation round-trip are recorded
and gated (see ``docs/reordering.md``).

Run it with::

    python -m repro.compile.bench --out BENCH_build.json
    python -m repro.compile.bench --smoke          # toy sizes, seconds
    python -m repro.compile.bench --reorder-smoke  # 'make bench-reorder' gate
    python -m repro.compile.bench --validate BENCH_build.json

The JSON layout is versioned and checked by :func:`validate_payload`;
``make bench-compile`` and the tier-1 suite fail on schema drift.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from ..algorithms.grover import grover
from ..algorithms.qft import qft
from ..algorithms.supremacy import supremacy
from ..circuit.circuit import QuantumCircuit
from ..core.indistinguishability import two_sample_chi_square
from ..core.weak_sim import sample_dd, simulate_and_sample
from ..dd.reorder import ReorderConfig, unpermute_counts
from ..simulators.dd_simulator import DDSimulator
from .pipeline import optimize_circuit

__all__ = [
    "FORMAT",
    "VERSION",
    "run_harness",
    "run_reorder_section",
    "validate_payload",
    "main",
]

FORMAT = "repro-bench-build"
VERSION = 2

#: Minimum applied-operation reduction (percent) each family must show.
REDUCTION_FLOOR = 25.0

#: The ``make bench-reorder`` gate: reordering must shrink the peak node
#: count of the crossing-pair circuit by at least this factor.
REORDER_NODE_REDUCTION_FLOOR = 1.5

#: Top-level keys every payload must carry, with the per-section keys.
_SCHEMA: Dict[str, List[str]] = {
    "cases": [
        "name",
        "num_qubits",
        "ops_before",
        "ops_after",
        "reduction_percent",
        "build_seconds_unoptimized",
        "build_seconds_optimized",
        "build_speedup",
        "passes",
    ],
    "sampling": [
        "circuit",
        "shots",
        "distributions_consistent",
    ],
    "reordering": [
        "circuit",
        "num_qubits",
        "peak_nodes_fixed",
        "peak_nodes_reordered",
        "node_reduction_factor",
        "level_to_qubit",
        "swaps_kept",
        "deterministic_at_equal_seed",
        "permutation_roundtrip_exact",
        "distribution_exact",
    ],
}


def _families(smoke: bool) -> List[tuple]:
    """(name, circuit) per benchmark family; sizes scale with ``smoke``."""
    if smoke:
        return [
            ("qft_8", qft(8)),
            ("grover_5", grover(5, seed=1).circuit),
            ("supremacy_3x3_5", supremacy(3, 3, 5, seed=1)),
        ]
    return [
        ("qft_16", qft(16)),
        ("grover_8", grover(8, seed=1).circuit),
        ("supremacy_4x4_5", supremacy(4, 4, 5, seed=1)),
    ]


def _bench_case(name: str, circuit: QuantumCircuit, repeats: int = 3) -> Dict:
    unoptimized = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        DDSimulator(optimize=False).run(circuit)
        unoptimized = min(unoptimized, time.perf_counter() - start)
    # The optimised timing includes the pipeline itself: what a user pays
    # end to end, not just the cheaper simulation.
    optimized = math.inf
    for _ in range(repeats):
        simulator = DDSimulator(optimize=True)
        start = time.perf_counter()
        simulator.run(circuit)
        optimized = min(optimized, time.perf_counter() - start)
    rewrite = simulator.stats.compile_stats
    before = rewrite["input_operations"]
    after = rewrite["output_operations"]
    return {
        "name": name,
        "num_qubits": circuit.num_qubits,
        "ops_before": before,
        "ops_after": after,
        "reduction_percent": rewrite["reduction_percent"],
        "build_seconds_unoptimized": round(unoptimized, 6),
        "build_seconds_optimized": round(optimized, 6),
        "build_speedup": round(unoptimized / max(optimized, 1e-9), 2),
        "passes": rewrite["passes"],
    }


def _crossing_circuit(num_qubits: int, seed: int) -> QuantumCircuit:
    """Crossing-pair circuit: the natural order's worst case.

    Random single-qubit rotations followed by ``cx(i, i + n/2)``
    entanglers: every interaction spans half the register, so under the
    natural variable order the DD pays for correlations between maximally
    distant levels.  Reordering can move the partners adjacent and
    collapse the peak node count — the effect the gate quantifies.
    """
    rng = np.random.default_rng(seed)
    half = num_qubits // 2
    circuit = QuantumCircuit(num_qubits, name=f"crossing_{num_qubits}")
    for layer in range(2):
        for qubit in range(num_qubits):
            theta, phi, lam = (
                float(v) for v in rng.uniform(0, 2 * np.pi, size=3)
            )
            circuit.u3(theta, phi, lam, qubit)
        for low in range(half):
            circuit.cx(low, low + half)
    return circuit


def run_reorder_section(
    smoke: bool = False, seed: int = 7, shots: int = 4_000
) -> Dict:
    """The ``reordering`` payload section (and ``make bench-reorder`` body).

    Builds the crossing-pair circuit twice — fixed order and with
    :class:`~repro.dd.reorder.ReorderConfig` enabled — and records

    * the peak-node reduction (gated at
      :data:`REORDER_NODE_REDUCTION_FLOOR`),
    * equal-seed determinism of reordered sampling,
    * the permutation round-trip: level-space samples re-keyed through
      the recorded ``level_to_qubit`` must be *bit-identical* to the
      counts the public API reports,
    * exact distribution equality against the fixed-order build after
      accounting for the permutation.
    """
    # 12 qubits is the sweet spot for this gate: the crossing pattern
    # reliably gives ~2.4x at n=12, while at n=14 the mid-build states
    # are near-dense in *every* variable order and no reordering helps.
    num_qubits = 10 if smoke else 12
    circuit = _crossing_circuit(num_qubits, seed)

    fixed = DDSimulator()
    fixed_state = fixed.run(circuit)
    peak_fixed = fixed.stats.peak_dd_nodes

    config = ReorderConfig(enabled=True)
    reordered = DDSimulator(reorder=config)
    reordered_state = reordered.run(circuit)
    peak_reordered = reordered.stats.peak_dd_nodes
    perm = reordered.stats.level_to_qubit or tuple(range(num_qubits))

    first = simulate_and_sample(circuit, shots, seed=seed, reorder=config)
    second = simulate_and_sample(circuit, shots, seed=seed, reorder=config)
    deterministic = first.counts == second.counts

    # Permutation metadata round-trip: sampling the reordered state
    # directly yields level-space values; re-keying them through the
    # recorded permutation must reproduce the reported counts exactly.
    level_result = sample_dd(reordered_state, shots, method="dd", seed=seed)
    roundtrip_exact = (
        unpermute_counts(level_result.counts, perm) == first.counts
    )

    # Amplitude exactness: sifting moves levels, never amplitudes.
    level_probs = reordered_state.probabilities()
    indices = np.arange(1 << num_qubits)
    targets = np.zeros_like(indices)
    for level, qubit in enumerate(perm):
        targets |= ((indices >> level) & 1) << qubit
    mapped = np.zeros_like(level_probs)
    mapped[targets] = level_probs[indices]
    distribution_exact = bool(
        np.abs(mapped - fixed_state.probabilities()).max() <= 1e-9
    )

    return {
        "circuit": circuit.name,
        "num_qubits": num_qubits,
        "peak_nodes_fixed": int(peak_fixed),
        "peak_nodes_reordered": int(peak_reordered),
        "node_reduction_factor": round(
            peak_fixed / max(peak_reordered, 1), 2
        ),
        "level_to_qubit": list(perm),
        "swaps_kept": int(reordered.stats.reorder_swaps_kept),
        "deterministic_at_equal_seed": bool(deterministic),
        "permutation_roundtrip_exact": bool(roundtrip_exact),
        "distribution_exact": distribution_exact,
    }


def run_harness(shots: int = 50_000, seed: int = 7, smoke: bool = False) -> Dict:
    """Execute all harness sections and return the payload dict."""
    if smoke:
        shots = min(shots, 4_000)
    payload: Dict = {
        "format": FORMAT,
        "version": VERSION,
        "config": {"shots": shots, "seed": seed, "smoke": smoke},
        "cases": [],
    }
    families = _families(smoke)
    for name, circuit in families:
        payload["cases"].append(_bench_case(name, circuit))

    # -- indistinguishability ---------------------------------------------
    # Different seeds on purpose: identical streams would make the test
    # degenerate (identical counts regardless of the rewrite).
    chi_name, chi_circuit = families[0]
    optimized = simulate_and_sample(
        chi_circuit, shots, seed=seed, optimize=True
    )
    verbatim = simulate_and_sample(
        chi_circuit, shots, seed=seed + 1, optimize=False
    )
    consistent = bool(
        two_sample_chi_square(optimized.counts, verbatim.counts).consistent
    )
    payload["sampling"] = {
        "circuit": chi_name,
        "shots": shots,
        "distributions_consistent": consistent,
    }
    payload["reordering"] = run_reorder_section(
        smoke=smoke, seed=seed, shots=min(shots, 4_000)
    )
    return payload


def validate_payload(payload: Dict) -> None:
    """Raise ``ValueError`` when ``payload`` drifts from the schema."""
    if payload.get("format") != FORMAT:
        raise ValueError(f"format must be {FORMAT!r}")
    if payload.get("version") != VERSION:
        raise ValueError(f"version must be {VERSION}")
    if "config" not in payload:
        raise ValueError("missing section 'config'")
    for section, keys in _SCHEMA.items():
        if section not in payload:
            raise ValueError(f"missing section {section!r}")
        entries = payload[section]
        if section == "cases":
            if not isinstance(entries, list) or not entries:
                raise ValueError("'cases' must be a non-empty list")
        else:
            entries = [entries]
        for entry in entries:
            missing = [key for key in keys if key not in entry]
            if missing:
                raise ValueError(f"section {section!r} missing keys {missing}")
    for case in payload["cases"]:
        if case["reduction_percent"] < REDUCTION_FLOOR:
            raise ValueError(
                f"case {case['name']!r} reduction "
                f"{case['reduction_percent']}% below the "
                f"{REDUCTION_FLOOR}% floor"
            )
    if not payload["sampling"]["distributions_consistent"]:
        raise ValueError("optimised sampling distribution drifted")
    reordering = payload["reordering"]
    if reordering["node_reduction_factor"] < REORDER_NODE_REDUCTION_FLOOR:
        raise ValueError(
            f"reordering peak-node reduction "
            f"{reordering['node_reduction_factor']}x below the "
            f"{REORDER_NODE_REDUCTION_FLOOR}x floor"
        )
    if not reordering["deterministic_at_equal_seed"]:
        raise ValueError("reordered sampling is not seed-deterministic")
    if not reordering["permutation_roundtrip_exact"]:
        raise ValueError(
            "level-space samples re-keyed through level_to_qubit do not "
            "match the reported counts"
        )
    if not reordering["distribution_exact"]:
        raise ValueError(
            "reordered distribution differs from the fixed-order build"
        )


def _build_parser() -> argparse.ArgumentParser:
    """The bench CLI's argument parser (importable for the docs checker)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench-build",
        description="Benchmark the compile pipeline and emit "
        "BENCH_build.json.",
    )
    parser.add_argument(
        "--out", default="BENCH_build.json", help="output JSON path"
    )
    parser.add_argument(
        "--shots",
        type=int,
        default=50_000,
        help="shots for the indistinguishability check",
    )
    parser.add_argument("--seed", type=int, default=7, help="harness RNG seed")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="toy sizes: exercises every section in seconds",
    )
    parser.add_argument(
        "--reorder-smoke",
        action="store_true",
        help="run only the reordering gate: >= 1.5x peak-node reduction "
        "on the crossing-pair circuit with an exact permutation "
        "round-trip ('make bench-reorder')",
    )
    parser.add_argument(
        "--validate",
        metavar="FILE",
        help="validate an existing payload against the schema and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.compile.bench``."""
    args = _build_parser().parse_args(argv)

    if args.reorder_smoke:
        section = run_reorder_section(smoke=True, seed=args.seed)
        line = (
            f"reorder gate: peak {section['peak_nodes_fixed']} -> "
            f"{section['peak_nodes_reordered']} nodes "
            f"({section['node_reduction_factor']}x, floor "
            f"{REORDER_NODE_REDUCTION_FLOOR}x), "
            f"deterministic={section['deterministic_at_equal_seed']}, "
            f"roundtrip_exact={section['permutation_roundtrip_exact']}, "
            f"distribution_exact={section['distribution_exact']}"
        )
        ok = (
            section["node_reduction_factor"] >= REORDER_NODE_REDUCTION_FLOOR
            and section["deterministic_at_equal_seed"]
            and section["permutation_roundtrip_exact"]
            and section["distribution_exact"]
        )
        print(line)
        if not ok:
            print("reorder gate FAILED", file=sys.stderr)
            return 1
        return 0

    if args.validate:
        with open(args.validate, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        try:
            validate_payload(payload)
        except ValueError as error:
            print(f"schema drift: {error}", file=sys.stderr)
            return 1
        print(f"{args.validate}: schema ok (version {payload['version']})")
        return 0

    payload = run_harness(shots=args.shots, seed=args.seed, smoke=args.smoke)
    validate_payload(payload)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    worst = min(case["reduction_percent"] for case in payload["cases"])
    print(
        f"wrote {args.out}: {len(payload['cases'])} families, "
        f"worst reduction {worst}%, distributions consistent: "
        f"{payload['sampling']['distributions_consistent']}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
