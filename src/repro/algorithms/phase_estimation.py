"""Quantum phase estimation (QPE) and quantum-volume-style circuits.

* :func:`phase_estimation` — textbook QPE for a diagonal-phase unitary:
  ``t`` counting qubits estimate the eigenphase of ``P(2*pi*phi)`` on an
  eigenstate ``|1⟩``.  The output distribution is the well-known
  sinc-squared kernel peaked at ``round(phi * 2^t)`` — an analytically
  checkable workload for the samplers (the generalisation of Shor's
  counting register).

* :func:`quantum_volume` — square random-SU(4) circuits in the style of
  the quantum-volume benchmark: per layer, a random qubit permutation and
  random two-qubit unitaries on adjacent pairs.  These scramble hard
  (DDs grow toward maximal) and complement the structured families: they
  are the *worst case* for DD-based simulation, exhibiting the method's
  limits honestly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import Gate
from ..exceptions import CircuitError

__all__ = [
    "PhaseEstimationInstance",
    "phase_estimation",
    "phase_estimation_distribution",
    "quantum_volume",
]


@dataclass(frozen=True)
class PhaseEstimationInstance:
    """A QPE circuit with its ground-truth phase."""

    circuit: QuantumCircuit
    precision: int
    phase: float  # in [0, 1)

    def counting_value(self, sample: int) -> int:
        """The counting-register readout (top bits, above the eigenstate)."""
        return sample >> 1

    @property
    def best_estimate(self) -> int:
        """The counting value QPE is most likely to report."""
        return int(round(self.phase * 2**self.precision)) % 2**self.precision


def phase_estimation(precision: int, phase: float) -> PhaseEstimationInstance:
    """QPE of ``U = P(2*pi*phase)`` on its eigenstate |1⟩.

    Register layout: qubit 0 holds the eigenstate, qubits 1..precision
    are the counting register (LSB first).
    """
    if precision < 1:
        raise CircuitError("need at least one counting qubit")
    phase %= 1.0
    circuit = QuantumCircuit(precision + 1, name=f"qpe_{precision}")
    circuit.x(0)  # eigenstate |1⟩
    counting = list(range(1, precision + 1))
    for qubit in counting:
        circuit.h(qubit)
    for position, qubit in enumerate(counting):
        angle = 2.0 * math.pi * phase * (2**position)
        circuit.cp(angle, qubit, 0)
    from .qft import apply_inverse_qft

    apply_inverse_qft(circuit, counting)
    circuit.measure_all()
    return PhaseEstimationInstance(
        circuit=circuit, precision=precision, phase=phase
    )


def phase_estimation_distribution(precision: int, phase: float) -> np.ndarray:
    """Exact output distribution of the counting register.

    ``P(w) = |2^{-t} * sum_x e^{2 pi i x (phi - w / 2^t)}|^2`` — the
    squared Dirichlet kernel, equal to a delta when ``phi`` is an exact
    ``t``-bit fraction.
    """
    t = precision
    big_t = 2**t
    w = np.arange(big_t)
    delta = phase - w / big_t
    numerator = np.sin(math.pi * big_t * delta) ** 2
    denominator = big_t**2 * np.sin(math.pi * delta) ** 2
    with np.errstate(divide="ignore", invalid="ignore"):
        probabilities = np.where(
            np.isclose(np.sin(math.pi * delta), 0.0),
            1.0,
            numerator / np.where(denominator == 0, 1.0, denominator),
        )
    return probabilities / probabilities.sum()


def _random_su4(rng: np.random.Generator) -> Gate:
    """A Haar-ish random two-qubit unitary as an opaque gate."""
    raw = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
    q, r = np.linalg.qr(raw)
    q = q * (np.diagonal(r) / np.abs(np.diagonal(r)))
    return Gate(
        name="su4",
        num_qubits=2,
        matrix=tuple(tuple(complex(v) for v in row) for row in q),
    )


def quantum_volume(
    num_qubits: int,
    depth: Optional[int] = None,
    seed: Union[int, np.random.Generator, None] = 0,
) -> QuantumCircuit:
    """A quantum-volume-style model circuit (square by default)."""
    if num_qubits < 2:
        raise CircuitError("quantum volume needs at least two qubits")
    depth = depth if depth is not None else num_qubits
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"qv_{num_qubits}_{depth}")
    for _ in range(depth):
        permutation = rng.permutation(num_qubits)
        for pair in range(num_qubits // 2):
            a = int(permutation[2 * pair])
            b = int(permutation[2 * pair + 1])
            circuit.apply(_random_su4(rng), (a, b))
    circuit.measure_all()
    return circuit
