"""Uniform-electron-gas (jellium) Trotter circuits (``jellium_AxA``).

The paper simulates circuits for the uniform electron gas from Babbush et
al., "Low-depth quantum simulation of materials" (PRX 8, 011044).  The
original circuit files are not redistributable, so this module implements
the same *structure*: a plane-wave-dual-basis split-operator Trotter step
on an ``A x A`` site grid with two spin species (hence ``2 * A^2`` qubits,
matching the paper's counts: jellium_2x2 → 8, jellium_3x3 → 18).

Per Trotter step:

* on-site single-qubit Z rotations (kinetic diagonal + external
  potential),
* density-density interactions as controlled-phase gates between the two
  spins of a site and between neighbouring sites (Coulomb, ~1/r),
* hopping between nearest-neighbour sites of equal spin as fSim(θ, 0)
  gates, laid out brickwork-style (even then odd bonds, rows then
  columns).

The initial state is a half-filled checkerboard (X gates), preceded by a
Hadamard layer on the up-spin sublattice so the state is genuinely
entangled superposition rather than a single determinant.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..circuit.circuit import QuantumCircuit
from ..exceptions import CircuitError

__all__ = ["jellium", "jellium_qubit", "jellium_bonds"]


def jellium_qubit(row: int, col: int, spin: int, size: int) -> int:
    """Qubit index of grid site ``(row, col)`` with ``spin`` in {0, 1}.

    Spin-down modes occupy the upper half of the register.
    """
    if not (0 <= row < size and 0 <= col < size):
        raise CircuitError("site outside the grid")
    if spin not in (0, 1):
        raise CircuitError("spin must be 0 or 1")
    return spin * size * size + row * size + col


def jellium_bonds(size: int) -> List[Tuple[Tuple[int, int], Tuple[int, int]]]:
    """Nearest-neighbour site pairs, horizontal bonds then vertical."""
    bonds = []
    for row in range(size):
        for col in range(size - 1):
            bonds.append(((row, col), (row, col + 1)))
    for row in range(size - 1):
        for col in range(size):
            bonds.append(((row, col), (row + 1, col)))
    return bonds


def _coulomb_angle(dt: float, distance: float) -> float:
    """Interaction phase for two densities at ``distance`` (1/r law)."""
    return dt / max(distance, 1e-9)


def jellium(size: int, steps: int = 2, dt: float = 0.15) -> QuantumCircuit:
    """Build ``jellium_{size}x{size}``: ``2 * size^2`` qubits.

    ``steps`` Trotter steps of duration ``dt``.  Angles follow the
    plane-wave-dual Hamiltonian shape (uniform hopping, 1/r density
    interaction, on-site repulsion between spins).
    """
    if size < 2:
        raise CircuitError("jellium grid needs size >= 2")
    num_sites = size * size
    circuit = QuantumCircuit(2 * num_sites, name=f"jellium_{size}x{size}")

    # Initial state: half filling on a checkerboard (up spins on even
    # sites, down spins on odd sites), then a number-conserving layer of
    # partial hops (fSim at theta = pi/4) to delocalise the particles so
    # the Trotter evolution starts from a superposition within the fixed
    # particle-number sector.
    for row in range(size):
        for col in range(size):
            if (row + col) % 2 == 0:
                circuit.x(jellium_qubit(row, col, 0, size))
            else:
                circuit.x(jellium_qubit(row, col, 1, size))
    for (site_a, site_b) in jellium_bonds(size):
        for spin in (0, 1):
            circuit.fsim(
                math.pi / 4,
                0.0,
                jellium_qubit(site_a[0], site_a[1], spin, size),
                jellium_qubit(site_b[0], site_b[1], spin, size),
            )

    hopping_angle = dt  # uniform tunnelling amplitude t = 1
    onsite_angle = 2.0 * dt  # Hubbard-like U = 2
    bonds = jellium_bonds(size)

    for _ in range(steps):
        # (1) Diagonal single-qubit terms: kinetic self-energy + chemical
        # potential; site-dependent through the squared momentum proxy.
        for spin in (0, 1):
            for row in range(size):
                for col in range(size):
                    k_sq = (row - size / 2.0) ** 2 + (col - size / 2.0) ** 2
                    angle = dt * (0.5 * k_sq / max(size, 1) + 0.25)
                    circuit.rz(angle, jellium_qubit(row, col, spin, size))
        # (2) On-site spin-up/spin-down repulsion.
        for row in range(size):
            for col in range(size):
                circuit.cp(
                    onsite_angle,
                    jellium_qubit(row, col, 0, size),
                    jellium_qubit(row, col, 1, size),
                )
        # (3) Neighbour density-density Coulomb tail (both spin pairs).
        for (site_a, site_b) in bonds:
            angle = _coulomb_angle(dt, 1.0)
            for spin_a in (0, 1):
                for spin_b in (0, 1):
                    circuit.cp(
                        angle * 0.25,
                        jellium_qubit(site_a[0], site_a[1], spin_a, size),
                        jellium_qubit(site_b[0], site_b[1], spin_b, size),
                    )
        # (4) Hopping: brickwork over bonds, separately per spin.
        for parity in (0, 1):
            for index, (site_a, site_b) in enumerate(bonds):
                if index % 2 != parity:
                    continue
                for spin in (0, 1):
                    circuit.fsim(
                        hopping_angle,
                        0.0,
                        jellium_qubit(site_a[0], site_a[1], spin, size),
                        jellium_qubit(site_b[0], site_b[1], spin, size),
                    )
    return circuit
