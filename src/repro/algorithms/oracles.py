"""Oracle-style textbook algorithms: Bernstein-Vazirani and Deutsch-Jozsa.

Both produce highly structured final states (a single basis state, or a
basis state distinguishing constant from balanced oracles), so their
decision diagrams are linear in the qubit count — more members of the
"DD-friendly" benchmark class the paper's evaluation draws from, and
crisp end-to-end demonstrations: the *answer* of the algorithm is read
directly off weak-simulation samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..exceptions import CircuitError

__all__ = [
    "BernsteinVaziraniInstance",
    "bernstein_vazirani",
    "DeutschJozsaInstance",
    "deutsch_jozsa",
]


@dataclass(frozen=True)
class BernsteinVaziraniInstance:
    """A Bernstein-Vazirani circuit and its hidden string."""

    circuit: QuantumCircuit
    num_data_qubits: int
    secret: int

    def data_value(self, sample: int) -> int:
        """Strip the ancilla (top qubit) from a measured sample."""
        return sample & ((1 << self.num_data_qubits) - 1)


def bernstein_vazirani(
    num_data_qubits: int,
    secret: Optional[int] = None,
    seed: Union[int, np.random.Generator, None] = None,
) -> BernsteinVaziraniInstance:
    """Find a hidden string ``s`` from one query to ``f(x) = s·x mod 2``.

    Register: ``num_data_qubits`` data qubits + one ancilla on top.  The
    final data-register state is exactly ``|s⟩`` — every measurement
    shot reveals the secret.
    """
    if num_data_qubits < 1:
        raise CircuitError("need at least one data qubit")
    if secret is None:
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        secret = int(rng.integers(2**num_data_qubits))
    if not 0 <= secret < 2**num_data_qubits:
        raise CircuitError(f"secret {secret} out of range")
    ancilla = num_data_qubits
    circuit = QuantumCircuit(num_data_qubits + 1, name=f"bv_{num_data_qubits}")
    circuit.x(ancilla)
    circuit.h(ancilla)
    for qubit in range(num_data_qubits):
        circuit.h(qubit)
    # Oracle: CNOT from every secret bit into the ancilla.
    for qubit in range(num_data_qubits):
        if (secret >> qubit) & 1:
            circuit.cx(qubit, ancilla)
    for qubit in range(num_data_qubits):
        circuit.h(qubit)
    circuit.measure_all()
    return BernsteinVaziraniInstance(
        circuit=circuit, num_data_qubits=num_data_qubits, secret=secret
    )


@dataclass(frozen=True)
class DeutschJozsaInstance:
    """A Deutsch-Jozsa circuit and whether its oracle is constant."""

    circuit: QuantumCircuit
    num_data_qubits: int
    is_constant: bool

    def data_value(self, sample: int) -> int:
        """The hidden bit pattern the oracle encodes."""
        return sample & ((1 << self.num_data_qubits) - 1)

    def verdict(self, data_value: int) -> str:
        """Interpret a measured data value (all-zero => constant)."""
        return "constant" if data_value == 0 else "balanced"


def deutsch_jozsa(
    num_data_qubits: int,
    constant: bool,
    seed: Union[int, np.random.Generator, None] = None,
) -> DeutschJozsaInstance:
    """Decide whether an oracle is constant or balanced in one query.

    For ``constant=True`` the oracle is ``f(x) = c`` (random c); for
    ``constant=False`` it is the balanced inner-product oracle
    ``f(x) = s·x`` for a random nonzero ``s``.  The data register
    measures all-zero iff the oracle is constant.
    """
    if num_data_qubits < 1:
        raise CircuitError("need at least one data qubit")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    ancilla = num_data_qubits
    circuit = QuantumCircuit(num_data_qubits + 1, name=f"dj_{num_data_qubits}")
    circuit.x(ancilla)
    circuit.h(ancilla)
    for qubit in range(num_data_qubits):
        circuit.h(qubit)
    if constant:
        if rng.random() < 0.5:  # f(x) = 1: flip the ancilla unconditionally
            circuit.x(ancilla)
    else:
        secret = int(rng.integers(1, 2**num_data_qubits))
        for qubit in range(num_data_qubits):
            if (secret >> qubit) & 1:
                circuit.cx(qubit, ancilla)
    for qubit in range(num_data_qubits):
        circuit.h(qubit)
    circuit.measure_all()
    return DeutschJozsaInstance(
        circuit=circuit, num_data_qubits=num_data_qubits, is_constant=constant
    )
