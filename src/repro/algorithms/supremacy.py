"""Random circuits for quantum-supremacy benchmarking (``supremacy_AxB_C``).

Implements the circuit-generation rules of Boixo et al., "Characterizing
quantum supremacy in near-term devices" (Nature Physics 14, 2018 —
reference [27] of the paper).  The original GRCS files require network
access; the published rules are reproduced here (see DESIGN.md):

1. Start with a cycle of Hadamards on every qubit.
2. Each subsequent cycle applies one of eight controlled-Z layouts that
   tile the ``rows x cols`` grid with staggered horizontal/vertical
   neighbour pairs, cycling through the layouts in order.
3. In every CZ cycle, a qubit that is *not* part of a CZ this cycle but
   participated in a CZ the previous cycle receives a single-qubit gate:
   a ``T`` the first time it gets one, otherwise a uniformly random
   choice from {√X, √Y, T} different from its previous single-qubit gate.

``depth`` counts the CZ cycles (the ``_C`` suffix of the benchmark
names).  The generator is fully seeded and deterministic.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple, Union

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..exceptions import CircuitError

__all__ = ["supremacy", "cz_layout", "NUM_LAYOUTS"]

NUM_LAYOUTS = 8


def _qubit(row: int, col: int, cols: int) -> int:
    return row * cols + col


#: Cycle order of the eight layouts: alternating horizontal / vertical
#: diagonal stripes, as in Boixo et al. Fig. 6.
_LAYOUT_SEQUENCE = (
    ("h", 0),
    ("v", 0),
    ("h", 2),
    ("v", 2),
    ("h", 1),
    ("v", 1),
    ("h", 3),
    ("v", 3),
)


def cz_layout(
    layout_index: int, rows: int, cols: int
) -> List[Tuple[int, int]]:
    """Qubit pairs receiving CZ in layout ``layout_index`` (mod 8).

    Each layout activates one diagonal stripe class of bonds: horizontal
    bonds ``(r, c)-(r, c+1)`` with ``(c + 2r) mod 4 == k`` or vertical
    bonds ``(r, c)-(r+1, c)`` with ``(r + 2c) mod 4 == k``, so roughly a
    quarter of the bonds fire per cycle and every bond fires once per
    eight cycles — the staggered tiling of Boixo et al., Fig. 6.
    """
    direction, stripe = _LAYOUT_SEQUENCE[layout_index % NUM_LAYOUTS]
    pairs: List[Tuple[int, int]] = []
    if direction == "h":
        for row in range(rows):
            for col in range(cols - 1):
                if (col + 2 * row) % 4 == stripe:
                    pairs.append(
                        (_qubit(row, col, cols), _qubit(row, col + 1, cols))
                    )
    else:
        for row in range(rows - 1):
            for col in range(cols):
                if (row + 2 * col) % 4 == stripe:
                    pairs.append(
                        (_qubit(row, col, cols), _qubit(row + 1, col, cols))
                    )
    return pairs


def supremacy(
    rows: int,
    cols: int,
    depth: int,
    seed: Union[int, np.random.Generator, None] = 0,
) -> QuantumCircuit:
    """Build ``supremacy_{rows}x{cols}_{depth}``.

    ``depth`` is the number of CZ cycles after the initial Hadamard
    layer.  ``seed`` controls the single-qubit gate choices.
    """
    if rows < 2 or cols < 2:
        raise CircuitError("supremacy grids need at least 2x2 qubits")
    if depth < 1:
        raise CircuitError("depth must be at least 1")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    num_qubits = rows * cols
    circuit = QuantumCircuit(num_qubits, name=f"supremacy_{rows}x{cols}_{depth}")
    for qubit in range(num_qubits):
        circuit.h(qubit)

    last_gate: List[Optional[str]] = [None] * num_qubits  # per-qubit history
    in_previous_cz: Set[int] = set()
    choices = ("sx", "sy", "t")

    for cycle in range(depth):
        pairs = cz_layout(cycle, rows, cols)
        in_current_cz = {q for pair in pairs for q in pair}
        for qubit in range(num_qubits):
            if qubit in in_current_cz or qubit not in in_previous_cz:
                continue
            if last_gate[qubit] is None:
                gate = "t"
            else:
                gate = last_gate[qubit]
                while gate == last_gate[qubit]:
                    gate = choices[int(rng.integers(len(choices)))]
            last_gate[qubit] = gate
            if gate == "sx":
                circuit.sx(qubit)
            elif gate == "sy":
                circuit.sy(qubit)
            else:
                circuit.t(qubit)
        for control, target in pairs:
            circuit.cz(control, target)
        in_previous_cz = in_current_cz
    return circuit
