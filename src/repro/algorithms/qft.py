"""Quantum Fourier Transform circuits (the paper's ``qft_A`` family).

Convention: qubit ``k`` is bit ``k`` of the register value (qubit ``n-1``
most significant).  ``qft(n)`` maps
``|v⟩ -> 2^{-n/2} * sum_w exp(2*pi*i*v*w / 2^n) |w⟩``
including the final qubit-reversal swaps, so input and output use the
same bit ordering.
"""

from __future__ import annotations

import math

from ..circuit.circuit import QuantumCircuit

__all__ = ["qft", "apply_qft", "inverse_qft", "apply_inverse_qft"]


def apply_qft(
    circuit: QuantumCircuit,
    qubits,
    include_swaps: bool = True,
    inverse: bool = False,
) -> QuantumCircuit:
    """Append a QFT on ``qubits`` (ascending significance) to ``circuit``.

    With ``inverse=True`` the adjoint transform is appended.
    """
    qubits = list(qubits)
    n = len(qubits)
    operations = []  # (kind, params)
    for j in range(n - 1, -1, -1):
        operations.append(("h", qubits[j]))
        for k in range(j - 1, -1, -1):
            angle = math.pi / (2 ** (j - k))
            operations.append(("cp", angle, qubits[k], qubits[j]))
    if include_swaps:
        for j in range(n // 2):
            operations.append(("swap", qubits[j], qubits[n - 1 - j]))
    if inverse:
        operations.reverse()
    for entry in operations:
        if entry[0] == "h":
            circuit.h(entry[1])
        elif entry[0] == "cp":
            angle = -entry[1] if inverse else entry[1]
            circuit.cp(angle, entry[2], entry[3])
        else:
            circuit.swap(entry[1], entry[2])
    return circuit


def apply_inverse_qft(
    circuit: QuantumCircuit, qubits, include_swaps: bool = True
) -> QuantumCircuit:
    """Append the inverse QFT on ``qubits``."""
    return apply_qft(circuit, qubits, include_swaps=include_swaps, inverse=True)


def qft(num_qubits: int, include_swaps: bool = True) -> QuantumCircuit:
    """The ``qft_A`` benchmark circuit on ``num_qubits`` qubits."""
    circuit = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    apply_qft(circuit, range(num_qubits), include_swaps=include_swaps)
    return circuit


def inverse_qft(num_qubits: int, include_swaps: bool = True) -> QuantumCircuit:
    """The adjoint QFT circuit."""
    circuit = QuantumCircuit(num_qubits, name=f"iqft_{num_qubits}")
    apply_inverse_qft(circuit, range(num_qubits), include_swaps=include_swaps)
    return circuit
