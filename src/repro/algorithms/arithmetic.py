"""Quantum arithmetic in Fourier space (substrate for Shor's algorithm).

Implements the Draper/Beauregard construction: addition of classical
constants as single-qubit phases on a QFT-transformed register, modular
addition with one ancilla, controlled modular multiplication, and the
controlled modular-multiplication-by-``a`` unitary ``c-U_a`` that Shor's
phase estimation exponentiates.

Register convention: a register is a list of qubit indices in ascending
significance (``qubits[0]`` is the least significant bit).  ``Φ(v)``
denotes the QFT of ``|v⟩`` (with the same bit ordering, i.e. the QFT of
:mod:`repro.algorithms.qft` including swaps).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from ..circuit.circuit import QuantumCircuit
from ..exceptions import CircuitError
from .qft import apply_inverse_qft, apply_qft

__all__ = [
    "egcd",
    "modinv",
    "phi_add_const",
    "add_const",
    "phi_add_const_mod",
    "cmult_mod",
    "controlled_modular_multiplier",
]

_TWO_PI = 2.0 * math.pi


def egcd(a: int, b: int):
    """Extended Euclid: returns (g, x, y) with a*x + b*y = g = gcd(a, b)."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
        old_t, t = t, old_t - quotient * t
    return old_r, old_s, old_t


def modinv(a: int, modulus: int) -> int:
    """Modular inverse of ``a`` mod ``modulus`` (raises if not coprime)."""
    g, x, _ = egcd(a % modulus, modulus)
    if g != 1:
        raise CircuitError(f"{a} has no inverse modulo {modulus}")
    return x % modulus


def phi_add_const(
    circuit: QuantumCircuit,
    qubits: Sequence[int],
    constant: int,
    controls: Iterable[int] = (),
) -> None:
    """``Φ(v) -> Φ(v + constant mod 2^m)`` — phases only, no entanglers.

    Adding in Fourier space needs one phase gate per register qubit:
    qubit ``k`` receives ``P(2*pi*constant*2^k / 2^m)``.  Negative
    constants subtract.
    """
    m = len(qubits)
    controls = tuple(controls)
    constant %= 1 << m
    for k, qubit in enumerate(qubits):
        angle = _TWO_PI * ((constant << k) % (1 << m)) / (1 << m)
        if abs(angle) < 1e-15 or abs(angle - _TWO_PI) < 1e-15:
            continue
        if controls:
            circuit.mcp(angle, controls, qubit)
        else:
            circuit.p(angle, qubit)


def add_const(
    circuit: QuantumCircuit,
    qubits: Sequence[int],
    constant: int,
    controls: Iterable[int] = (),
) -> None:
    """Plain-basis adder: QFT, phase ladder, inverse QFT."""
    apply_qft(circuit, qubits)
    phi_add_const(circuit, qubits, constant, controls)
    apply_inverse_qft(circuit, qubits)


def phi_add_const_mod(
    circuit: QuantumCircuit,
    qubits: Sequence[int],
    constant: int,
    modulus: int,
    ancilla: int,
    controls: Iterable[int] = (),
) -> None:
    """``Φ(v) -> Φ((v + constant) mod modulus)`` (Beauregard Fig. 5).

    ``qubits`` must hold ``n + 1`` bits for an ``n``-bit modulus (the
    extra most-significant bit catches the transient overflow) and the
    incoming value must satisfy ``v < modulus``.  ``ancilla`` must be
    |0⟩ and is returned to |0⟩.
    """
    m = len(qubits)
    if modulus >> (m - 1):
        raise CircuitError("register too small: need bits(modulus) + 1 qubits")
    constant %= modulus
    controls = tuple(controls)
    msb = qubits[-1]

    phi_add_const(circuit, qubits, constant, controls)
    phi_add_const(circuit, qubits, -modulus)
    apply_inverse_qft(circuit, qubits)
    circuit.cx(msb, ancilla)
    apply_qft(circuit, qubits)
    phi_add_const(circuit, qubits, modulus, (ancilla,))
    phi_add_const(circuit, qubits, -constant, controls)
    apply_inverse_qft(circuit, qubits)
    circuit.x(msb)
    circuit.cx(msb, ancilla)
    circuit.x(msb)
    apply_qft(circuit, qubits)
    phi_add_const(circuit, qubits, constant, controls)


def cmult_mod(
    circuit: QuantumCircuit,
    control: int,
    x_qubits: Sequence[int],
    b_qubits: Sequence[int],
    a: int,
    modulus: int,
    ancilla: int,
) -> None:
    """``|c⟩|x⟩|b⟩ -> |c⟩|x⟩|b + a*x mod modulus⟩`` when ``c`` is set.

    ``b_qubits`` must hold ``n + 1`` bits (plain basis in and out).
    """
    apply_qft(circuit, b_qubits)
    for j, x_qubit in enumerate(x_qubits):
        phi_add_const_mod(
            circuit,
            b_qubits,
            (a << j) % modulus,
            modulus,
            ancilla,
            controls=(control, x_qubit),
        )
    apply_inverse_qft(circuit, b_qubits)


def controlled_modular_multiplier(
    circuit: QuantumCircuit,
    control: int,
    x_qubits: Sequence[int],
    b_qubits: Sequence[int],
    a: int,
    modulus: int,
    ancilla: int,
) -> None:
    """``c-U_a``: ``|x⟩ -> |a*x mod modulus⟩`` when ``control`` is set.

    Requires ``gcd(a, modulus) = 1`` and the helper register
    ``b_qubits`` (``n + 1`` bits) in |0⟩; it is returned to |0⟩.
    Implements multiply-accumulate, controlled swap, then the inverse
    multiply-accumulate with ``a^{-1}`` (Beauregard Fig. 6).
    """
    a %= modulus
    inverse = modinv(a, modulus)
    cmult_mod(circuit, control, x_qubits, b_qubits, a, modulus, ancilla)
    for x_qubit, b_qubit in zip(x_qubits, b_qubits):
        circuit.cswap(control, x_qubit, b_qubit)
    # Inverse of cmult_mod with a^{-1}: build it separately and append
    # its adjoint.
    scratch = QuantumCircuit(circuit.num_qubits, name="cmult_inverse")
    cmult_mod(scratch, control, x_qubits, b_qubits, inverse, modulus, ancilla)
    circuit.compose(scratch.inverse())
