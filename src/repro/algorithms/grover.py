"""Grover's search with a random oracle (the paper's ``grover_A`` family).

``grover_A`` uses ``A`` data qubits plus one oracle ancilla (matching the
paper's qubit counts: grover_20 has 21 qubits).  The oracle marks a single
random basis state; phase kickback is realised by a multi-controlled X
onto the ancilla prepared in |−⟩.

The final state concentrates almost all probability on the marked
element, so its decision diagram has ~2A nodes regardless of A — which is
why DD-based sampling shines on this family (Table I).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..exceptions import CircuitError

__all__ = ["grover", "GroverInstance", "optimal_iterations", "success_probability"]


def optimal_iterations(num_data_qubits: int) -> int:
    """Number of Grover iterations maximising the success probability."""
    space = 2**num_data_qubits
    return max(1, int(math.floor(math.pi / 4 * math.sqrt(space))))


def success_probability(num_data_qubits: int, iterations: int) -> float:
    """Analytic probability of measuring the marked element."""
    space = 2**num_data_qubits
    theta = math.asin(1.0 / math.sqrt(space))
    return math.sin((2 * iterations + 1) * theta) ** 2


@dataclass(frozen=True)
class GroverInstance:
    """A Grover circuit together with its ground truth."""

    circuit: QuantumCircuit
    num_data_qubits: int
    marked: int
    iterations: int

    @property
    def num_qubits(self) -> int:
        """Data qubits plus the oracle ancilla."""
        return self.num_data_qubits + 1

    @property
    def expected_success_probability(self) -> float:
        """sin^2((2k+1) theta) for k iterations."""
        return success_probability(self.num_data_qubits, self.iterations)

    def data_value(self, sample: int) -> int:
        """Strip the ancilla (the top qubit) off a measured sample."""
        return sample & ((1 << self.num_data_qubits) - 1)

    def init_circuit(self) -> QuantumCircuit:
        """State preparation: ancilla to |−⟩, data to uniform."""
        circuit = QuantumCircuit(self.num_qubits, name="grover_init")
        ancilla = self.num_data_qubits
        circuit.x(ancilla)
        circuit.h(ancilla)
        for qubit in range(self.num_data_qubits):
            circuit.h(qubit)
        return circuit

    def iteration_circuit(self) -> QuantumCircuit:
        """One Grover iteration (oracle + diffusion).

        For DD simulation, prefer
        :meth:`repro.simulators.DDSimulator.run_iterated` with this
        circuit: applying the iteration as one reusable operator DD keeps
        the state canonical across hundreds of iterations, whereas
        gate-by-gate application lets floating-point noise accumulate in
        the intermediate (mid-diffusion) states and the DD bloats.
        """
        circuit = QuantumCircuit(self.num_qubits, name="grover_iteration")
        _oracle(circuit, self.marked, self.num_data_qubits, self.num_data_qubits)
        _diffusion(circuit, self.num_data_qubits)
        return circuit


def _oracle(circuit: QuantumCircuit, marked: int, num_data: int, ancilla: int) -> None:
    """Flip the ancilla iff the data register equals ``marked``."""
    zero_bits = [q for q in range(num_data) if not (marked >> q) & 1]
    for qubit in zero_bits:
        circuit.x(qubit)
    circuit.mcx(list(range(num_data)), ancilla)
    for qubit in zero_bits:
        circuit.x(qubit)


def _diffusion(circuit: QuantumCircuit, num_data: int) -> None:
    """Inversion about the mean on the data register."""
    for qubit in range(num_data):
        circuit.h(qubit)
        circuit.x(qubit)
    circuit.mcz(list(range(num_data - 1)), num_data - 1)
    for qubit in range(num_data):
        circuit.x(qubit)
        circuit.h(qubit)


def grover(
    num_data_qubits: int,
    marked: Optional[int] = None,
    iterations: Optional[int] = None,
    seed: Union[int, np.random.Generator, None] = None,
) -> GroverInstance:
    """Build ``grover_A`` for ``A = num_data_qubits``.

    ``marked`` defaults to a random basis state drawn with ``seed`` (the
    paper's "random oracle").  ``iterations`` defaults to the optimum.
    """
    if num_data_qubits < 2:
        raise CircuitError("Grover needs at least two data qubits")
    if marked is None:
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        marked = int(rng.integers(2**num_data_qubits))
    if not 0 <= marked < 2**num_data_qubits:
        raise CircuitError(f"marked element {marked} out of range")
    if iterations is None:
        iterations = optimal_iterations(num_data_qubits)
    ancilla = num_data_qubits
    circuit = QuantumCircuit(num_data_qubits + 1, name=f"grover_{num_data_qubits}")
    # Ancilla to |−⟩ for phase kickback; data register to uniform.
    circuit.x(ancilla)
    circuit.h(ancilla)
    for qubit in range(num_data_qubits):
        circuit.h(qubit)
    for _ in range(iterations):
        _oracle(circuit, marked, num_data_qubits, ancilla)
        _diffusion(circuit, num_data_qubits)
    return GroverInstance(
        circuit=circuit,
        num_data_qubits=num_data_qubits,
        marked=marked,
        iterations=iterations,
    )
