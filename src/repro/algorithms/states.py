"""Utility state-preparation circuits, including the paper's running example.

:func:`running_example_circuit` prepares the exact 3-qubit state of the
paper's Fig. 2/3/4:

    |ψ⟩ = -i*sqrt(3/8) (|001⟩ + |011⟩) + sqrt(1/8) (|100⟩ + |111⟩),

with amplitudes [0, -0.612i, 0, -0.612i, 0.354, 0, 0, 0.354] and
probabilities [0, 3/8, 0, 3/8, 1/8, 0, 0, 1/8] — the ground truth for the
figure-reproduction tests and the evaluation harness.
"""

from __future__ import annotations

import math

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import h_gate, x_gate
from ..circuit.operations import Operation
from ..exceptions import CircuitError

__all__ = [
    "bell_pair",
    "ghz",
    "w_state",
    "uniform_superposition",
    "running_example_circuit",
    "running_example_statevector",
    "RUNNING_EXAMPLE_PROBABILITIES",
]

#: Exact output distribution of the running example (paper Fig. 2 right).
RUNNING_EXAMPLE_PROBABILITIES = (0.0, 3 / 8, 0.0, 3 / 8, 1 / 8, 0.0, 0.0, 1 / 8)


def bell_pair() -> QuantumCircuit:
    """(|00⟩ + |11⟩)/√2 (Example 2 of the paper)."""
    circuit = QuantumCircuit(2, name="bell")
    circuit.h(1)
    circuit.cx(1, 0)
    return circuit


def ghz(num_qubits: int) -> QuantumCircuit:
    """(|0...0⟩ + |1...1⟩)/√2."""
    if num_qubits < 2:
        raise CircuitError("GHZ needs at least two qubits")
    circuit = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(num_qubits - 1)
    for qubit in range(num_qubits - 1, 0, -1):
        circuit.cx(qubit, qubit - 1)
    return circuit


def w_state(num_qubits: int) -> QuantumCircuit:
    """The W state: equal superposition of all weight-1 bitstrings.

    Built by cascaded controlled rotations: qubit ``n-1`` carries the
    excitation first, then it is distributed downward.
    """
    if num_qubits < 2:
        raise CircuitError("W state needs at least two qubits")
    circuit = QuantumCircuit(num_qubits, name=f"w_{num_qubits}")
    circuit.x(num_qubits - 1)
    for k in range(num_qubits - 1, 0, -1):
        # Move amplitude from qubit k to qubit k-1 with the right share.
        theta = 2 * math.acos(math.sqrt(1.0 / (k + 1)))
        circuit.cry(theta, k, k - 1)
        circuit.cx(k - 1, k)
    return circuit


def uniform_superposition(num_qubits: int) -> QuantumCircuit:
    """H on every qubit."""
    circuit = QuantumCircuit(num_qubits, name=f"uniform_{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    return circuit


def running_example_circuit() -> QuantumCircuit:
    """The 3-qubit running example of the paper (Fig. 2).

    Construction: ``RX(2π/3)`` followed by ``X`` puts q2 into
    ``-i*sqrt(3)/2 |0⟩ + 1/2 |1⟩``; conditioned on q2 = 0 the lower
    qubits become |+⟩|1⟩, conditioned on q2 = 1 they form a Bell pair.
    The result is exactly the state with amplitudes
    [0, -0.612i, 0, -0.612i, 0.354, 0, 0, 0.354].
    """
    circuit = QuantumCircuit(3, name="running_example")
    circuit.rx(2 * math.pi / 3, 2)
    circuit.x(2)
    # q2 = 0 branch: H on q1, X on q0 (anti-controlled).
    circuit.append(
        Operation(gate=h_gate(), targets=(1,), neg_controls=frozenset({2}))
    )
    circuit.append(
        Operation(gate=x_gate(), targets=(0,), neg_controls=frozenset({2}))
    )
    # q2 = 1 branch: Bell pair on (q1, q0).
    circuit.ch(2, 1)
    circuit.append(
        Operation(gate=x_gate(), targets=(0,), controls=frozenset({2, 1}))
    )
    return circuit


def running_example_statevector() -> np.ndarray:
    """The exact amplitudes of the running example (paper Fig. 2 middle)."""
    a = -1j * math.sqrt(3 / 8)
    b = math.sqrt(1 / 8)
    return np.array([0, a, 0, a, b, 0, 0, b], dtype=np.complex128)
