"""Benchmark circuit generators for the paper's evaluation families."""

from .arithmetic import (
    add_const,
    cmult_mod,
    controlled_modular_multiplier,
    egcd,
    modinv,
    phi_add_const,
    phi_add_const_mod,
)
from .grover import GroverInstance, grover, optimal_iterations, success_probability
from .oracles import (
    BernsteinVaziraniInstance,
    DeutschJozsaInstance,
    bernstein_vazirani,
    deutsch_jozsa,
)
from .phase_estimation import (
    PhaseEstimationInstance,
    phase_estimation,
    phase_estimation_distribution,
    quantum_volume,
)
from .jellium import jellium, jellium_bonds, jellium_qubit
from .qft import apply_inverse_qft, apply_qft, inverse_qft, qft
from .shor import (
    ShorLayout,
    factor_from_order,
    multiplicative_order,
    recover_period,
    shor_circuit,
    shor_classical_reference,
    shor_final_state,
)
from .states import (
    RUNNING_EXAMPLE_PROBABILITIES,
    bell_pair,
    ghz,
    running_example_circuit,
    running_example_statevector,
    uniform_superposition,
    w_state,
)
from .supremacy import NUM_LAYOUTS, cz_layout, supremacy

__all__ = [
    "qft",
    "inverse_qft",
    "apply_qft",
    "apply_inverse_qft",
    "grover",
    "GroverInstance",
    "bernstein_vazirani",
    "BernsteinVaziraniInstance",
    "deutsch_jozsa",
    "DeutschJozsaInstance",
    "phase_estimation",
    "PhaseEstimationInstance",
    "phase_estimation_distribution",
    "quantum_volume",
    "optimal_iterations",
    "success_probability",
    "egcd",
    "modinv",
    "phi_add_const",
    "add_const",
    "phi_add_const_mod",
    "cmult_mod",
    "controlled_modular_multiplier",
    "shor_circuit",
    "shor_final_state",
    "ShorLayout",
    "multiplicative_order",
    "recover_period",
    "factor_from_order",
    "shor_classical_reference",
    "jellium",
    "jellium_qubit",
    "jellium_bonds",
    "supremacy",
    "cz_layout",
    "NUM_LAYOUTS",
    "bell_pair",
    "ghz",
    "w_state",
    "uniform_superposition",
    "running_example_circuit",
    "running_example_statevector",
    "RUNNING_EXAMPLE_PROBABILITIES",
]
