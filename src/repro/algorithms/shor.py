"""Shor's algorithm (the paper's ``shor_N_a`` family).

Two constructions are provided:

* :func:`shor_circuit` — the complete gate-level circuit: a ``t``-qubit
  phase-estimation register, an ``n``-qubit work register, and the
  Beauregard modular-arithmetic helpers (``n + 1`` helper bits + 1
  ancilla).  Exact but expensive: the full circuit for ``N = 15`` already
  has thousands of gates.  Used to validate the emulated construction.

* :func:`shor_final_state` — the *emulated* final state
  ``(QFT_t ⊗ I) * 2^{-t/2} * sum_x |x⟩ |a^x mod N⟩``, computed via
  classical modular exponentiation and an FFT per residue class.  This is
  the identical quantum state the circuit produces before measurement
  (see DESIGN.md, substitutions), and is how the paper-scale instances
  (``shor_221_4``: 24 qubits) stay tractable in pure Python.  With
  ``t = 2 * bits(N)`` the qubit counts match the paper's Table I rows
  exactly (shor_33_2 → 18, shor_69_4 → 21, shor_221_4 → 24).

Classical post-processing (:func:`recover_period`, :func:`factor_from_order`)
turns weak-simulation samples into factors — exercised end to end by
``examples/shor_factoring.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Tuple

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..exceptions import CircuitError
from .arithmetic import controlled_modular_multiplier
from .qft import apply_inverse_qft

__all__ = [
    "ShorLayout",
    "shor_circuit",
    "shor_final_state",
    "multiplicative_order",
    "recover_period",
    "factor_from_order",
    "shor_classical_reference",
]


@dataclass(frozen=True)
class ShorLayout:
    """Qubit layout of a gate-level Shor circuit."""

    num_bits: int  # n: bits of N
    precision: int  # t: counting qubits
    x_qubits: Tuple[int, ...]
    b_qubits: Tuple[int, ...]
    ancilla: int
    counting_qubits: Tuple[int, ...]

    @property
    def num_qubits(self) -> int:
        """Total register width: counting + work + ancilla qubits."""
        return self.precision + 2 * self.num_bits + 2

    def counting_value(self, sample: int) -> int:
        """Extract the phase-estimation readout from a full-register sample."""
        value = 0
        for position, qubit in enumerate(self.counting_qubits):
            value |= ((sample >> qubit) & 1) << position
        return value


def shor_circuit(
    modulus: int, base: int, precision: Optional[int] = None
) -> Tuple[QuantumCircuit, ShorLayout]:
    """Gate-level order-finding circuit for ``base`` modulo ``modulus``.

    Layout (ascending qubit index): work register ``x`` (``n`` bits,
    initialised |1⟩), helper ``b`` (``n + 1`` bits), one ancilla, then
    the ``t`` counting qubits on top — so the counting result occupies
    the most significant bits of a measured sample.
    """
    if modulus < 3 or modulus % 2 == 0:
        raise CircuitError("modulus must be odd and >= 3")
    if math.gcd(base, modulus) != 1:
        raise CircuitError("base must be coprime to the modulus")
    n = modulus.bit_length()
    t = precision if precision is not None else 2 * n
    if t < 1:
        raise CircuitError("need at least one counting qubit")
    x_qubits = tuple(range(n))
    b_qubits = tuple(range(n, 2 * n + 1))
    ancilla = 2 * n + 1
    counting = tuple(range(2 * n + 2, 2 * n + 2 + t))
    layout = ShorLayout(
        num_bits=n,
        precision=t,
        x_qubits=x_qubits,
        b_qubits=b_qubits,
        ancilla=ancilla,
        counting_qubits=counting,
    )
    circuit = QuantumCircuit(layout.num_qubits, name=f"shor_{modulus}_{base}")
    circuit.x(x_qubits[0])  # |x⟩ = |1⟩
    for qubit in counting:
        circuit.h(qubit)
    power = base % modulus
    for control in counting:
        controlled_modular_multiplier(
            circuit, control, x_qubits, b_qubits, power, modulus, ancilla
        )
        power = (power * power) % modulus
    apply_inverse_qft(circuit, counting)
    return circuit, layout


def shor_final_state(
    modulus: int, base: int, precision: Optional[int] = None
) -> Tuple[np.ndarray, int, int]:
    """Emulated final state ``(QFT_t ⊗ I) Σ_x |x⟩|base^x mod modulus⟩``.

    Returns ``(statevector, t, n_out)`` where the register layout is
    ``t`` counting qubits (most significant) above ``n_out`` function
    bits; the total register has ``t + n_out`` qubits.  With the default
    ``t = 2 * bits(modulus)`` the sizes match the paper's Table I.
    """
    if math.gcd(base, modulus) != 1:
        raise CircuitError("base must be coprime to the modulus")
    n_out = modulus.bit_length()
    t = precision if precision is not None else 2 * n_out
    big_t = 1 << t
    # Indicator matrix M[x, f] = 1 iff base^x = f (mod modulus); the
    # counting-register QFT is an inverse DFT along axis 0.
    values = np.empty(big_t, dtype=np.int64)
    value = 1
    for x in range(big_t):
        values[x] = value
        value = (value * base) % modulus
    matrix = np.zeros((big_t, 1 << n_out), dtype=np.complex128)
    matrix[np.arange(big_t), values] = 1.0
    transformed = np.fft.ifft(matrix, axis=0)
    return transformed.reshape(-1), t, n_out


# ---------------------------------------------------------------------------
# Classical post-processing
# ---------------------------------------------------------------------------


def multiplicative_order(base: int, modulus: int) -> int:
    """Smallest ``r > 0`` with ``base^r = 1 (mod modulus)``."""
    if math.gcd(base, modulus) != 1:
        raise CircuitError("order undefined: base shares a factor with modulus")
    value = base % modulus
    order = 1
    while value != 1:
        value = (value * base) % modulus
        order += 1
    return order


def recover_period(
    measured: int, precision: int, modulus: int, base: int
) -> Optional[int]:
    """Continued-fraction recovery of the order from one measurement.

    ``measured / 2^precision ≈ s / r``; returns the smallest candidate
    ``r`` (or a small multiple) that actually satisfies
    ``base^r = 1 (mod modulus)``, else ``None``.
    """
    if measured == 0:
        return None
    fraction = Fraction(measured, 1 << precision).limit_denominator(modulus)
    candidate = fraction.denominator
    if candidate == 0:
        return None
    for multiple in range(1, 9):
        r = candidate * multiple
        if r >= modulus * 2:
            break
        if pow(base, r, modulus) == 1:
            return r
    return None


def factor_from_order(modulus: int, base: int, order: int) -> Optional[Tuple[int, int]]:
    """Derive a nontrivial factor pair of ``modulus`` from the order.

    Returns the factors sorted ascending, or ``None`` when the order is
    odd or ``base^{order/2} = -1 (mod modulus)`` (Shor retries with a
    fresh base in those cases).
    """
    if order % 2:
        return None
    half = pow(base, order // 2, modulus)
    if half == modulus - 1:
        return None
    for candidate in (math.gcd(half - 1, modulus), math.gcd(half + 1, modulus)):
        if 1 < candidate < modulus:
            return tuple(sorted((candidate, modulus // candidate)))  # type: ignore[return-value]
    return None


def shor_classical_reference(modulus: int, base: int) -> Optional[Tuple[int, int]]:
    """Ground-truth factorisation via the classically computed order."""
    return factor_from_order(modulus, base, multiplicative_order(base, modulus))
