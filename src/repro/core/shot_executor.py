"""Execution of circuits with mid-circuit measurement.

The samplers in this package assume all measurements sit at the end of
the circuit (the weak-simulation setting of the paper).  Real programs
sometimes measure *during* the computation and keep evolving the
collapsed state.  :class:`ShotExecutor` handles that general case:

* the circuit is split into unitary segments at measurement boundaries,
* the state up to the first measurement is simulated **once** (it is
  shot-independent),
* the shot count is **binomially split** at every measured qubit — the
  two collapsed branches each continue with their share of the shots —
  so DD work scales with the number of *distinct measurement-outcome
  prefixes* instead of ``shots × segments``.  The joint distribution of
  the resulting counts equals that of independent per-shot runs (the
  same argument as multinomial shot splitting in the sampler).

:meth:`ShotExecutor.run_per_shot` keeps the literal one-shot-at-a-time
loop as the statistical reference the branching path is tested against.
When the circuit has no mid-circuit measurement, the executor simply
defers to the fast samplers (one strong simulation, then batch
sampling).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import telemetry as _telemetry
from ..circuit.circuit import QuantumCircuit
from ..circuit.operations import Barrier, Measurement, Operation
from ..dd.apply import GateApplier
from ..dd.measure import MIN_COLLAPSE_PROBABILITY, collapse, qubit_probability
from ..dd.node import Edge
from ..dd.normalization import NormalizationScheme
from ..dd.package import DDPackage
from ..exceptions import SimulationError
from .dd_sampler import DDSampler
from ..dd.vector_dd import VectorDD
from .results import SampleResult

__all__ = ["ShotExecutor", "circuit_has_mid_circuit_measurement"]


def _as_rng(seed: Union[int, np.random.Generator, None]) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def circuit_has_mid_circuit_measurement(circuit: QuantumCircuit) -> bool:
    """Whether any measurement is followed by further unitary operations.

    Dispatch predicate for callers (the CLI, the sampling service) that
    must route measure-and-continue circuits through :class:`ShotExecutor`
    instead of the terminal-measurement samplers.  Unlike constructing an
    executor and reading :attr:`ShotExecutor.has_mid_circuit_measurement`,
    this performs no compilation — it is one pass over the instruction
    list.  Barriers are ignored (they fence the optimizer, not execution)
    and trailing measurements do not count: only a measurement with a
    later non-measurement instruction makes the circuit mid-circuit.
    """
    seen_measurement = False
    for instruction in circuit:
        if isinstance(instruction, Barrier):
            continue
        if isinstance(instruction, Measurement):
            seen_measurement = True
        elif seen_measurement:
            return True
    return False


@dataclass
class _Segment:
    """A run of unitary operations followed by one measurement (or end)."""

    operations: List[Operation]
    measurement: Optional[Measurement]


class ShotExecutor:
    """Executes measure-and-continue circuits shot by shot."""

    def __init__(
        self,
        circuit: QuantumCircuit,
        scheme: NormalizationScheme = NormalizationScheme.L2,
        optimize: bool = True,
        telemetry: Optional["_telemetry.Telemetry"] = None,
        kernel: str = "auto",
    ):
        from ..simulators.dd_simulator import DDSimulator

        if kernel not in DDSimulator.KERNELS:
            raise SimulationError(
                f"unknown kernel {kernel!r}; expected one of "
                f"{DDSimulator.KERNELS}"
            )
        #: Optional telemetry session activated around every run (the
        #: branching counters below are absorbed into its registry).
        self.telemetry = telemetry
        self.compile_stats: dict = {}
        with _telemetry.activate(telemetry):
            if optimize:
                from ..compile import optimize_circuit

                # Measurements fence every rewrite pass, so optimising the
                # whole circuit up front is safe for mid-circuit measurement.
                circuit, rewrite = optimize_circuit(circuit)
                self.compile_stats = rewrite.to_dict()
        self.circuit = circuit
        self.num_qubits = circuit.num_qubits
        self.package = DDPackage(scheme=scheme)
        self._applier = GateApplier(self.package, self.num_qubits)
        self._segments = self._split(circuit)
        #: Requested engine for the unitary segments (``"auto"`` /
        #: ``"vector"`` / ``"python"``, same contract as
        #: :class:`~repro.simulators.dd_simulator.DDSimulator`).  Collapse
        #: itself always runs on the python Edge path — measurement is
        #: outside the kernel's coverage — so the SoA state round-trips
        #: to Edge form at every measurement boundary; those forced round
        #: trips surface as ``kernel.fallbacks``.
        self.kernel = kernel
        if kernel == "auto":
            self._engine_kind = (
                "vector" if scheme is NormalizationScheme.L2 else "python"
            )
        else:
            self._engine_kind = kernel
        #: Branching diagnostics for the most recent run: outcome
        #: branches explored, collapse operations, binomial splits,
        #: segments executed (``Registry.snapshot()`` exposes these as
        #: ``shots.*`` counters when telemetry is active).
        self.stats: Dict[str, int] = self._fresh_stats()
        #: The shot-independent state after the first unitary segment.
        self._prefix_state: Optional[Edge] = None

    @staticmethod
    def _fresh_stats() -> Dict[str, int]:
        """Zeroed branching counters for one run."""
        return {
            "branches": 0,
            "collapses": 0,
            "binomial_splits": 0,
            "segments_run": 0,
            "terminal_fast_path": 0,
            "kernel_segments": 0,
            "kernel_measurement_fallbacks": 0,
        }

    @staticmethod
    def _split(circuit: QuantumCircuit) -> List[_Segment]:
        segments: List[_Segment] = []
        pending: List[Operation] = []
        for instruction in circuit:
            if isinstance(instruction, Barrier):
                continue
            if isinstance(instruction, Measurement):
                segments.append(_Segment(pending, instruction))
                pending = []
            else:
                pending.append(instruction)
        segments.append(_Segment(pending, None))
        return segments

    @property
    def has_mid_circuit_measurement(self) -> bool:
        """Whether any measurement is followed by further operations."""
        for index, segment in enumerate(self._segments[:-1]):
            if segment.measurement is not None:
                remaining = self._segments[index + 1 :]
                if any(s.operations for s in remaining):
                    return True
        return False

    def _run_segment(self, state: Edge, segment: _Segment) -> Edge:
        self.stats["segments_run"] += 1
        if (
            self._engine_kind == "vector"
            and segment.operations
            and state.weight != 0
        ):
            return self._run_segment_kernel(state, segment)
        for op in segment.operations:
            state = self._applier.apply(state, op)
        return state

    def _run_segment_kernel(self, state: Edge, segment: _Segment) -> Edge:
        """One unitary segment on the SoA kernel (bit-identical to python).

        Each call is a full load → apply* → to_edge round trip: the
        collapse that separates segments needs the Edge representation,
        so the SoA state cannot persist across a measurement boundary.
        Those forced exits are the executor's kernel fallbacks.
        """
        from ..perf import kernel as kernel_mod

        engine = kernel_mod.KernelEngine(
            self.package,
            self.num_qubits,
            self._applier,
            batch_min_width=kernel_mod.DEFAULT_BATCH_MIN_WIDTH,
        )
        engine.load(state)
        for op in segment.operations:
            engine.apply(op)
        self.stats["kernel_segments"] += 1
        if segment.measurement is not None and self.has_mid_circuit_measurement:
            self.stats["kernel_measurement_fallbacks"] += 1
            session = _telemetry.active()
            if session is not None:
                session.registry.counter("kernel.fallbacks").inc()
        return engine.to_edge()

    def _prefix(self) -> Edge:
        if self._prefix_state is None:
            state = self.package.basis_state(self.num_qubits, 0)
            self._prefix_state = self._run_segment(state, self._segments[0])
        return self._prefix_state

    def _measure_qubits(
        self, state: Edge, qubits: Sequence[int], rng: np.random.Generator
    ) -> Tuple[Edge, int]:
        """Sample and collapse the given qubits; returns (state, bits).

        ``bits`` has the measured values in the qubits' register
        positions; unmeasured positions are zero.
        """
        outcome_bits = 0
        for qubit in sorted(qubits, reverse=True):
            p_one = qubit_probability(state, qubit, self.num_qubits)
            if math.isnan(p_one):
                raise SimulationError(
                    "measurement probability is NaN; the simulated state "
                    "is corrupted"
                )
            # Clamp numerically-certain outcomes so the draw can never
            # land on a branch collapse() rejects as impossible.
            if p_one <= MIN_COLLAPSE_PROBABILITY:
                outcome = 0
            elif p_one >= 1.0 - MIN_COLLAPSE_PROBABILITY:
                outcome = 1
            else:
                outcome = 1 if rng.random() < p_one else 0
            probability = p_one if outcome else 1.0 - p_one
            state = collapse(
                self.package, state, qubit, outcome, self.num_qubits, probability
            )
            self.stats["collapses"] += 1
            outcome_bits |= outcome << qubit
        return state, outcome_bits

    def _measured_qubits(self, segment: _Segment) -> Tuple[int, ...]:
        """The qubits a segment's measurement reads (all when unspecified)."""
        assert segment.measurement is not None
        return segment.measurement.qubits or tuple(range(self.num_qubits))

    @staticmethod
    def _binomial_split(
        pending: int, p_one: float, rng: np.random.Generator
    ) -> int:
        """Shots (out of ``pending``) assigned to the outcome-1 branch.

        Probabilities within :data:`~repro.dd.measure.MIN_COLLAPSE_PROBABILITY`
        of 0 or 1 are treated as certain, so no shots are ever routed onto a
        branch :func:`~repro.dd.measure.collapse` would reject as
        numerically impossible.  A NaN probability (a corrupted state)
        raises :class:`~repro.exceptions.SimulationError` instead of
        leaking ``numpy``'s ``ValueError`` out of ``rng.binomial``.
        """
        if math.isnan(p_one):
            raise SimulationError(
                "measurement probability is NaN; the simulated state is "
                "corrupted (likely a collapse on a near-zero branch)"
            )
        if p_one <= MIN_COLLAPSE_PROBABILITY:
            return 0
        if p_one >= 1.0 - MIN_COLLAPSE_PROBABILITY:
            return pending
        return int(rng.binomial(pending, p_one))

    def run(
        self,
        shots: int,
        seed: Union[int, np.random.Generator, None] = None,
        strategy: str = "branching",
    ) -> SampleResult:
        """Execute ``shots`` runs; returns accumulated measured bits.

        Each shot's record is the OR of all measurement outcomes at their
        register positions (re-measured qubits keep the latest value, as
        on hardware with a single classical bit per qubit).

        ``strategy`` selects ``"branching"`` (outcome-prefix batching,
        the default) or ``"per-shot"`` (the literal reference loop).
        """
        if shots < 0:
            raise SimulationError("shots must be non-negative")
        if strategy not in ("branching", "per-shot"):
            raise SimulationError(f"unknown execution strategy {strategy!r}")
        rng = _as_rng(seed)
        with _telemetry.activate(self.telemetry):
            self.stats = self._fresh_stats()
            if shots == 0:
                return self._empty_result()
            if not self.has_mid_circuit_measurement:
                return self._run_terminal_only(shots, rng)
            if strategy == "per-shot":
                return self._run_per_shot_counted(shots, rng)
            with _telemetry.span("shots.run", strategy=strategy, shots=shots):
                result = self._run_branching(shots, rng)
            self._record_shot_stats()
            return result

    def _empty_result(self) -> SampleResult:
        """A well-formed zero-shot result; skips simulation entirely."""
        self._record_shot_stats()
        return SampleResult(
            num_qubits=self.num_qubits, counts={}, method="shot-executor"
        )

    def _run_branching(self, shots: int, rng: np.random.Generator) -> SampleResult:
        """The outcome-branching strategy body (see :meth:`run`)."""
        counts: Dict[int, int] = {}
        # Work items: (segment index, state with that segment's unitaries
        # already applied, record so far, shots on this branch).
        # Depth-first with an explicit stack: branch count — not shots,
        # not recursion depth — bounds the memory.
        stack = [(0, self._prefix(), 0, shots)]
        while stack:
            index, state, record, pending = stack.pop()
            if pending == 0:
                continue
            segment = self._segments[index]
            if segment.measurement is None:
                # Final segment: its unitaries were applied on push.
                counts[record] = counts.get(record, 0) + pending
                continue
            qubits = self._measured_qubits(segment)
            mask = 0
            for qubit in qubits:
                mask |= 1 << qubit
            # Split the pending shots over the joint outcomes of this
            # measurement, collapsing each surviving branch exactly once.
            branches = [(state, 0, pending)]
            for qubit in sorted(qubits, reverse=True):
                split: List[Tuple[Edge, int, int]] = []
                for branch_state, bits, branch_shots in branches:
                    p_one = qubit_probability(
                        branch_state, qubit, self.num_qubits
                    )
                    ones = self._binomial_split(branch_shots, p_one, rng)
                    self.stats["binomial_splits"] += 1
                    for outcome, share in ((0, branch_shots - ones), (1, ones)):
                        if share == 0:
                            continue
                        probability = p_one if outcome else 1.0 - p_one
                        collapsed = collapse(
                            self.package,
                            branch_state,
                            qubit,
                            outcome,
                            self.num_qubits,
                            probability,
                        )
                        self.stats["collapses"] += 1
                        split.append(
                            (collapsed, bits | (outcome << qubit), share)
                        )
                branches = split
            for branch_state, bits, branch_shots in branches:
                self.stats["branches"] += 1
                next_state = self._run_segment(
                    branch_state, self._segments[index + 1]
                )
                stack.append(
                    (index + 1, next_state, (record & ~mask) | bits, branch_shots)
                )
        return SampleResult(
            num_qubits=self.num_qubits, counts=counts, method="shot-executor"
        )

    def _record_shot_stats(self) -> None:
        """Absorb the branching counters into the active registry, if any."""
        session = _telemetry.active()
        if session is not None:
            session.registry.record_shots(self.stats)

    def run_per_shot(
        self,
        shots: int,
        seed: Union[int, np.random.Generator, None] = None,
    ) -> SampleResult:
        """The literal per-shot loop — one full collapse sequence per shot.

        O(shots × segments) DD work; kept as the statistical reference
        the branching strategy is validated against, and as the slow
        baseline in the compiled-engine benchmark.
        """
        if shots < 0:
            raise SimulationError("shots must be non-negative")
        rng = _as_rng(seed)
        with _telemetry.activate(self.telemetry):
            self.stats = self._fresh_stats()
            if shots == 0:
                return self._empty_result()
            if not self.has_mid_circuit_measurement:
                return self._run_terminal_only(shots, rng)
            return self._run_per_shot_counted(shots, rng)

    def _run_per_shot_counted(
        self, shots: int, rng: np.random.Generator
    ) -> SampleResult:
        """The per-shot loop body (stats already reset by the caller)."""
        counts: Dict[int, int] = {}
        prefix = self._prefix()
        for _ in range(shots):
            state = prefix
            record = 0
            for index, segment in enumerate(self._segments):
                if index > 0:
                    state = self._run_segment(state, segment)
                if segment.measurement is None:
                    continue
                qubits = self._measured_qubits(segment)
                mask = 0
                for qubit in qubits:
                    mask |= 1 << qubit
                state, bits = self._measure_qubits(state, qubits, rng)
                record = (record & ~mask) | bits
            counts[record] = counts.get(record, 0) + 1
        self._record_shot_stats()
        return SampleResult(
            num_qubits=self.num_qubits, counts=counts, method="shot-executor"
        )

    def _run_terminal_only(
        self, shots: int, rng: np.random.Generator
    ) -> SampleResult:
        """Fast path: no measure-and-continue — batch-sample the end state."""
        self.stats["terminal_fast_path"] += 1
        state = self._prefix()
        for segment in self._segments[1:]:
            state = self._run_segment(state, segment)
        measured: Optional[Tuple[int, ...]] = None
        for segment in self._segments:
            if segment.measurement is not None:
                qubits = self._measured_qubits(segment)
                measured = tuple(sorted(set(qubits) | set(measured or ())))
        sampler = DDSampler(VectorDD(self.package, state, self.num_qubits))
        samples = sampler.sample(shots, rng)
        if measured is not None and len(measured) < self.num_qubits:
            mask = 0
            for qubit in measured:
                mask |= 1 << qubit
            samples = samples & mask
        result = SampleResult.from_samples(
            self.num_qubits, samples, method="shot-executor"
        )
        self._record_shot_stats()
        return result
