"""Shot-by-shot execution of circuits with mid-circuit measurement.

The samplers in this package assume all measurements sit at the end of
the circuit (the weak-simulation setting of the paper).  Real programs
sometimes measure *during* the computation and keep evolving the
collapsed state.  :class:`ShotExecutor` handles that general case:

* the circuit is split into unitary segments at measurement boundaries,
* the state up to the first measurement is simulated **once** (it is
  shot-independent),
* per shot, each measurement samples outcomes for the measured qubits
  and collapses the DD, then simulation continues with the next segment.

When the circuit has no mid-circuit measurement, the executor simply
defers to the fast samplers (one strong simulation, then batch
sampling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.operations import Barrier, Measurement, Operation
from ..dd.apply import GateApplier
from ..dd.measure import collapse, qubit_probability
from ..dd.node import Edge
from ..dd.normalization import NormalizationScheme
from ..dd.package import DDPackage
from ..exceptions import SimulationError
from .dd_sampler import DDSampler
from ..dd.vector_dd import VectorDD
from .results import SampleResult

__all__ = ["ShotExecutor"]


def _as_rng(seed: Union[int, np.random.Generator, None]) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


@dataclass
class _Segment:
    """A run of unitary operations followed by one measurement (or end)."""

    operations: List[Operation]
    measurement: Optional[Measurement]


class ShotExecutor:
    """Executes measure-and-continue circuits shot by shot."""

    def __init__(
        self,
        circuit: QuantumCircuit,
        scheme: NormalizationScheme = NormalizationScheme.L2,
    ):
        self.circuit = circuit
        self.num_qubits = circuit.num_qubits
        self.package = DDPackage(scheme=scheme)
        self._applier = GateApplier(self.package, self.num_qubits)
        self._segments = self._split(circuit)
        #: The shot-independent state after the first unitary segment.
        self._prefix_state: Optional[Edge] = None

    @staticmethod
    def _split(circuit: QuantumCircuit) -> List[_Segment]:
        segments: List[_Segment] = []
        pending: List[Operation] = []
        for instruction in circuit:
            if isinstance(instruction, Barrier):
                continue
            if isinstance(instruction, Measurement):
                segments.append(_Segment(pending, instruction))
                pending = []
            else:
                pending.append(instruction)
        segments.append(_Segment(pending, None))
        return segments

    @property
    def has_mid_circuit_measurement(self) -> bool:
        """Whether any measurement is followed by further operations."""
        for index, segment in enumerate(self._segments[:-1]):
            if segment.measurement is not None:
                remaining = self._segments[index + 1 :]
                if any(s.operations for s in remaining):
                    return True
        return False

    def _run_segment(self, state: Edge, segment: _Segment) -> Edge:
        for op in segment.operations:
            state = self._applier.apply(state, op)
        return state

    def _prefix(self) -> Edge:
        if self._prefix_state is None:
            state = self.package.basis_state(self.num_qubits, 0)
            self._prefix_state = self._run_segment(state, self._segments[0])
        return self._prefix_state

    def _measure_qubits(
        self, state: Edge, qubits: Sequence[int], rng: np.random.Generator
    ) -> Tuple[Edge, int]:
        """Sample and collapse the given qubits; returns (state, bits).

        ``bits`` has the measured values in the qubits' register
        positions; unmeasured positions are zero.
        """
        outcome_bits = 0
        for qubit in sorted(qubits, reverse=True):
            p_one = qubit_probability(state, qubit, self.num_qubits)
            outcome = 1 if rng.random() < p_one else 0
            probability = p_one if outcome else 1.0 - p_one
            state = collapse(
                self.package, state, qubit, outcome, self.num_qubits, probability
            )
            outcome_bits |= outcome << qubit
        return state, outcome_bits

    def run(
        self,
        shots: int,
        seed: Union[int, np.random.Generator, None] = None,
    ) -> SampleResult:
        """Execute ``shots`` runs; returns accumulated measured bits.

        Each shot's record is the OR of all measurement outcomes at their
        register positions (re-measured qubits keep the latest value, as
        on hardware with a single classical bit per qubit).
        """
        if shots < 0:
            raise SimulationError("shots must be non-negative")
        rng = _as_rng(seed)
        if not self.has_mid_circuit_measurement:
            return self._run_terminal_only(shots, rng)
        counts: Dict[int, int] = {}
        prefix = self._prefix()
        for _ in range(shots):
            state = prefix
            record = 0
            for index, segment in enumerate(self._segments):
                if index > 0:
                    state = self._run_segment(state, segment)
                if segment.measurement is None:
                    continue
                qubits = (
                    segment.measurement.qubits
                    if segment.measurement.qubits
                    else tuple(range(self.num_qubits))
                )
                mask = 0
                for qubit in qubits:
                    mask |= 1 << qubit
                state, bits = self._measure_qubits(state, qubits, rng)
                record = (record & ~mask) | bits
            counts[record] = counts.get(record, 0) + 1
        return SampleResult(
            num_qubits=self.num_qubits, counts=counts, method="shot-executor"
        )

    def _run_terminal_only(
        self, shots: int, rng: np.random.Generator
    ) -> SampleResult:
        """Fast path: no measure-and-continue — batch-sample the end state."""
        state = self._prefix()
        for segment in self._segments[1:]:
            state = self._run_segment(state, segment)
        measured: Optional[Tuple[int, ...]] = None
        for segment in self._segments:
            if segment.measurement is not None:
                qubits = segment.measurement.qubits or tuple(range(self.num_qubits))
                measured = tuple(sorted(set(qubits) | set(measured or ())))
        sampler = DDSampler(VectorDD(self.package, state, self.num_qubits))
        samples = sampler.sample(shots, rng)
        if measured is not None and len(measured) < self.num_qubits:
            mask = 0
            for qubit in measured:
                mask |= 1 << qubit
            samples = samples & mask
        result = SampleResult.from_samples(
            self.num_qubits, samples, method="shot-executor"
        )
        return result
