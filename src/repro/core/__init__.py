"""Weak simulation — the paper's primary contribution.

* :func:`~repro.core.weak_sim.simulate_and_sample` — circuit to samples,
* :class:`~repro.core.prefix_sampler.PrefixSampler` — vector-based
  sampling via prefix sums and binary search (Section III),
* :class:`~repro.core.dd_sampler.DDSampler` — DD-based sampling via
  randomised path traversal (Section IV),
* :class:`~repro.core.results.SampleResult` — sampled bitstring counts,
* :mod:`~repro.core.indistinguishability` — statistical validation.
"""

from .alias_sampler import AliasSampler
from .analysis import (
    collision_probability,
    empirical_tvd,
    heavy_output_probability,
    heavy_outputs,
    miller_madow_entropy,
    plugin_entropy,
)
from .dd_sampler import DDSampler
from .shot_executor import ShotExecutor
from .indistinguishability import (
    ChiSquareResult,
    chi_square_gof,
    kl_divergence,
    linear_xeb_fidelity,
    total_variation_distance,
    two_sample_chi_square,
)
from .prefix_sampler import (
    OutOfCorePrefixSampler,
    PrefixSampler,
    probabilities_from_statevector,
)
from .results import SampleResult
from .weak_sim import (
    DD_METHODS,
    VECTOR_METHODS,
    sample_dd,
    sample_statevector,
    simulate_and_sample,
)

__all__ = [
    "AliasSampler",
    "ShotExecutor",
    "plugin_entropy",
    "miller_madow_entropy",
    "heavy_outputs",
    "heavy_output_probability",
    "collision_probability",
    "empirical_tvd",
    "simulate_and_sample",
    "sample_statevector",
    "sample_dd",
    "DD_METHODS",
    "VECTOR_METHODS",
    "SampleResult",
    "PrefixSampler",
    "OutOfCorePrefixSampler",
    "probabilities_from_statevector",
    "DDSampler",
    "chi_square_gof",
    "ChiSquareResult",
    "total_variation_distance",
    "kl_divergence",
    "linear_xeb_fidelity",
    "two_sample_chi_square",
]
