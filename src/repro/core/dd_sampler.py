"""DD-based weak simulation: sampling without exponential arrays.

The contribution of the paper's Section IV.  Instead of expanding the
state, every sample is a randomised root-to-terminal traversal of the
decision diagram: at each node the walker descends to the 0- or
1-successor with the branch probability

    p_b = |w_b|^2 * D(c_b) / (|w_0|^2 D(c_0) + |w_1|^2 D(c_1)),

where ``D`` is the *downstream probability* computed once by a
depth-first traversal (linear in the DD size).  Under the paper's L2
normalisation scheme all ``D`` values are 1, so ``p_b = |w_b|^2`` and the
precomputation disappears — the measurable benefit of Section IV-C.

Samplers provided:

* :meth:`DDSampler.sample` — vectorised batch sampling: the per-level
  branch decisions for all shots are taken with NumPy in ``n`` steps,
* :meth:`DDSampler.sample_one` — the paper's per-sample O(n) path walk,
* :meth:`DDSampler.sample_counts_multinomial` — recursive binomial shot
  splitting: exact joint counts in O(DD size + distinct outcomes),
* :meth:`DDSampler.sample_collapse` — naive sequential-collapse baseline
  (delegates to :func:`repro.dd.measure.measure_all_collapse`).

The flattened traversal tables behind the vectorised paths are a
:class:`~repro.perf.compiled_dd.CompiledDD` artifact obtained from the
process-wide cache, so repeated samplers over the same final state pay
the flattening cost once; :meth:`DDSampler.sample_result` can fan large
shot counts out to a worker pool with seed-stable chunking
(:mod:`repro.perf.parallel`).

``edge_probabilities`` reproduces the probability-annotated DD of the
paper's Fig. 4c; ``node_visit_probabilities`` exposes the upstream /
downstream products of Section IV-B.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..dd.measure import (
    downstream_probabilities,
    measure_all_collapse,
    upstream_probabilities,
)
from ..dd.node import Edge, Node, is_terminal
from ..dd.normalization import NormalizationScheme
from ..dd.vector_dd import VectorDD
from ..exceptions import SamplingError
from ..perf import compiled_dd as _compiled_dd
from ..perf.compiled_dd import CompiledDD
from ..perf.parallel import DEFAULT_CHUNK_SHOTS, sample_chunked
from .results import SampleResult

__all__ = ["DDSampler"]


def _as_rng(seed: Union[int, np.random.Generator, None]) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class DDSampler:
    """Weak simulation over a quantum state stored as a decision diagram.

    ``trust_l2_normalization`` skips the downstream traversal when the
    package uses the L2 scheme (every node then has unit downstream mass
    by construction); pass ``False`` to force the general path, e.g. for
    the normalisation-scheme ablation benchmark.

    ``level_to_qubit`` declares that the state was built under a
    reordered variable order (``level_to_qubit[l]`` is the original
    qubit stored at DD level ``l`` — see :mod:`repro.dd.reorder`).  Raw
    samplers (``sample``, ``sample_one``, …) keep returning *level-space*
    integers; :meth:`sample_result` re-keys its aggregate back to the
    original qubit order, and :meth:`sample_top_qubits` refuses to run —
    under a non-identity permutation the top DD levels are not the top
    qubits, so the marginal it walks would silently be over the wrong
    subset of the register.
    """

    def __init__(
        self,
        state: VectorDD,
        trust_l2_normalization: bool = True,
        level_to_qubit: Optional[Tuple[int, ...]] = None,
    ):
        if state.edge.is_zero:
            raise SamplingError("cannot sample from the zero vector")
        self.state = state
        self.num_qubits = state.num_qubits
        self._edge = state.edge
        if level_to_qubit is not None:
            from ..dd.reorder import is_identity_permutation

            if len(level_to_qubit) != state.num_qubits or sorted(
                level_to_qubit
            ) != list(range(state.num_qubits)):
                raise SamplingError(
                    f"level_to_qubit must be a permutation of "
                    f"0..{state.num_qubits - 1}, got {level_to_qubit!r}"
                )
            if is_identity_permutation(level_to_qubit):
                level_to_qubit = None
        self.level_to_qubit = (
            tuple(level_to_qubit) if level_to_qubit is not None else None
        )
        self._is_l2 = (
            trust_l2_normalization
            and state.package.scheme is NormalizationScheme.L2
        )
        #: Downstream probabilities D(node); None when the L2 scheme makes
        #: them all 1 (the paper's normalisation enhancement).
        self.downstream: Optional[Dict[int, float]] = (
            None if self._is_l2 else downstream_probabilities(self._edge)
        )
        self._compiled: Optional[CompiledDD] = None

    # ------------------------------------------------------------------
    # Branch probabilities
    # ------------------------------------------------------------------

    def _mass(self, child: Edge) -> float:
        """|w|^2 * D(node) for one outgoing edge."""
        if child.is_zero:
            return 0.0
        weight_sq = abs(child.weight) ** 2
        if self.downstream is None or is_terminal(child.node):
            return weight_sq
        return weight_sq * self.downstream[child.node.index]

    def branch_probabilities(self, node: Node) -> Tuple[float, float]:
        """(p0, p1) for descending to the 0-/1-successor of ``node``."""
        mass0 = self._mass(node.edges[0])
        mass1 = self._mass(node.edges[1])
        total = mass0 + mass1
        if total <= 0.0:
            raise SamplingError("node with zero probability mass")
        return mass0 / total, mass1 / total

    def edge_probabilities(self) -> Dict[Tuple[int, int], float]:
        """Branch probability per (node.index, bit) — the paper's Fig. 4c.

        Traversed with an explicit stack so deep registers (n in the
        hundreds) do not hit the Python recursion limit.
        """
        table: Dict[Tuple[int, int], float] = {}
        seen = set()
        stack: List[Node] = [self._edge.node]
        while stack:
            node = stack.pop()
            if is_terminal(node) or node.index in seen:
                continue
            seen.add(node.index)
            p0, p1 = self.branch_probabilities(node)
            table[(node.index, 0)] = p0
            table[(node.index, 1)] = p1
            for child in node.edges:
                if not child.is_zero:
                    stack.append(child.node)
        return table

    def node_visit_probabilities(self) -> Dict[int, float]:
        """Probability that a sample's path passes through each node.

        The product of upstream and downstream quantities of the paper's
        Section IV-B, computed by the breadth-first upstream traversal.
        """
        downstream = (
            self.downstream
            if self.downstream is not None
            else downstream_probabilities(self._edge)
        )
        return upstream_probabilities(self._edge, downstream)

    # ------------------------------------------------------------------
    # Per-sample path walk (the paper's algorithm, reference version)
    # ------------------------------------------------------------------

    def sample_one(self, rng: Union[int, np.random.Generator, None] = None) -> int:
        """Draw one sample by a randomised root-to-terminal traversal."""
        rng = _as_rng(rng)
        index = 0
        node = self._edge.node
        while not is_terminal(node):
            p0, _ = self.branch_probabilities(node)
            bit = 0 if rng.random() < p0 else 1
            index |= bit << node.var
            node = node.edges[bit].node
        return index

    def sample_paths(
        self, shots: int, rng: Union[int, np.random.Generator, None] = None
    ) -> np.ndarray:
        """``shots`` independent path walks (pure-Python reference)."""
        rng = _as_rng(rng)
        return np.fromiter(
            (self.sample_one(rng) for _ in range(shots)), dtype=np.int64, count=shots
        )

    # ------------------------------------------------------------------
    # Vectorised batch sampling
    # ------------------------------------------------------------------

    def compiled(self) -> CompiledDD:
        """The flattened traversal tables, from the process-wide cache.

        Every nonzero path visits exactly one node per level (nonzero
        edges never skip levels), so all walkers sit at the same depth in
        lockstep and each level is one vectorised step.  Two samplers over
        the same root share one artifact.
        """
        if self._compiled is None:
            # Late-bound attribute lookup so tests and the bench harness
            # can swap the process-wide cache.
            self._compiled = _compiled_dd.DEFAULT_CACHE.get_or_build(
                self.state.package, self._edge, self.num_qubits, self.downstream
            )
        return self._compiled

    def _build_tables(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[int, int]]:
        """Backward-compatible view of :meth:`compiled` as raw arrays."""
        compiled = self.compiled()
        return (compiled.p0, compiled.child0, compiled.child1, compiled.id_of)

    def sample(
        self, shots: int, rng: Union[int, np.random.Generator, None] = None
    ) -> np.ndarray:
        """Draw ``shots`` samples with NumPy-vectorised level steps.

        Statistically identical to :meth:`sample_paths`; the branch
        decisions for all walkers at one level are taken in one array
        operation, so Python overhead is O(n) instead of O(shots * n).
        """
        if shots < 0:
            raise SamplingError("shots must be non-negative")
        if self.num_qubits > 62:
            raise SamplingError(
                "vectorised sampling packs outcomes into int64 and supports "
                "at most 62 qubits; use sample_one/sample_iter beyond that"
            )
        return self.compiled().sample(shots, _as_rng(rng))

    def marginal_probabilities(self) -> np.ndarray:
        """Exact ``P(qubit = 1)`` per qubit, from the compiled tables."""
        return self.compiled().marginal_probabilities()

    def sample_result(
        self,
        shots: int,
        rng: Union[int, np.random.Generator, None] = None,
        method: str = "dd",
        workers: Optional[int] = None,
        chunk_shots: int = DEFAULT_CHUNK_SHOTS,
    ) -> SampleResult:
        """Sample and aggregate into a :class:`SampleResult`.

        With ``workers`` set (any value, including 1) the shots are drawn
        in fixed-size chunks with per-chunk ``SeedSequence`` streams, so
        the result for a given ``rng`` seed is identical for every worker
        count; ``workers > 1`` runs the chunks on a thread pool.
        """
        if workers is None:
            samples = self.sample(shots, rng)
        else:
            compiled = self.compiled()
            samples = sample_chunked(
                compiled.sample, shots, rng, workers=workers, chunk_shots=chunk_shots
            )
        if self.level_to_qubit is not None:
            from ..dd.reorder import unpermute_samples

            samples = unpermute_samples(samples, self.level_to_qubit)
        return SampleResult.from_samples(self.num_qubits, samples, method=method)

    # ------------------------------------------------------------------
    # Partial-register sampling and streaming
    # ------------------------------------------------------------------

    def sample_top_qubits(
        self,
        num_qubits: int,
        shots: int,
        rng: Union[int, np.random.Generator, None] = None,
    ) -> np.ndarray:
        """Sample only the ``num_qubits`` most significant qubits.

        The walk stops after ``num_qubits`` levels: the downstream masses
        of the abandoned sub-DDs already account for the traced-out
        qubits, so the result is an exact marginal sample in
        O(num_qubits) per shot.  Useful when only part of the register is
        read out — e.g. Shor's counting register, which sits on top.

        Returned values are the top bits right-aligned: bit ``j`` of a
        result is qubit ``n - num_qubits + j`` of the register.
        """
        if self.level_to_qubit is not None:
            raise SamplingError(
                "sample_top_qubits is unavailable on a reordered state: "
                "the top DD levels are not the top qubits under "
                f"level_to_qubit={self.level_to_qubit}; sample the full "
                "register and marginalise, or build without reordering"
            )
        if not 0 < num_qubits <= self.num_qubits:
            raise SamplingError(
                f"cannot sample {num_qubits} top qubits of a "
                f"{self.num_qubits}-qubit register"
            )
        if num_qubits > 62:
            raise SamplingError("top-qubit sampling packs into int64: max 62")
        return self.compiled().sample_top(num_qubits, shots, _as_rng(rng))

    def sample_iter(
        self, rng: Union[int, np.random.Generator, None] = None
    ) -> Iterator[int]:
        """Infinite stream of independent samples (one path walk each)."""
        rng = _as_rng(rng)
        while True:
            yield self.sample_one(rng)

    # ------------------------------------------------------------------
    # Multinomial shot splitting
    # ------------------------------------------------------------------

    def sample_counts_multinomial(
        self, shots: int, rng: Union[int, np.random.Generator, None] = None
    ) -> Dict[int, int]:
        """Exact joint counts by recursive binomial splitting.

        At each node the ``shots`` passing through it are split between
        the successors with a Binomial(shots, p0) draw.  The joint
        distribution of resulting counts equals that of ``shots``
        independent samples, but the work is proportional to the visited
        sub-DAG instead of ``shots * n``.
        """
        rng = _as_rng(rng)
        counts: Dict[int, int] = {}
        # Iterative stack to keep deep registers within Python limits.
        stack: List[Tuple[Node, int, int]] = [(self._edge.node, shots, 0)]
        while stack:
            node, pending, prefix = stack.pop()
            if pending == 0:
                continue
            if is_terminal(node):
                counts[prefix] = counts.get(prefix, 0) + pending
                continue
            p0, _ = self.branch_probabilities(node)
            to_zero = int(rng.binomial(pending, p0)) if 0.0 < p0 < 1.0 else (
                pending if p0 >= 1.0 else 0
            )
            if to_zero:
                stack.append((node.edges[0].node, to_zero, prefix))
            if pending - to_zero:
                stack.append(
                    (node.edges[1].node, pending - to_zero, prefix | (1 << node.var))
                )
        return counts

    def sample_result_multinomial(
        self, shots: int, rng: Union[int, np.random.Generator, None] = None
    ) -> SampleResult:
        """Multinomial-split counts wrapped in a ``SampleResult``."""
        counts = self.sample_counts_multinomial(shots, rng)
        return SampleResult(
            num_qubits=self.num_qubits, counts=counts, method="dd-multinomial"
        )

    # ------------------------------------------------------------------
    # Sequential-collapse baseline
    # ------------------------------------------------------------------

    def sample_collapse(
        self, shots: int, rng: Union[int, np.random.Generator, None] = None
    ) -> np.ndarray:
        """Per-shot sequential qubit measurement with collapse.

        The textbook measurement procedure; each shot costs ``n`` DD
        projections.  Exists as an independent correctness oracle and as
        the slow baseline in the sampler benchmark.
        """
        rng = _as_rng(rng)
        package = self.state.package
        return np.fromiter(
            (
                measure_all_collapse(package, self._edge, self.num_qubits, rng)
                for _ in range(shots)
            ),
            dtype=np.int64,
            count=shots,
        )
