"""Vector-based weak simulation: prefix sums and binary search.

The baseline of the paper's Section III (Fig. 3): given all ``2^n``
amplitudes, precompute the prefix sums ``r_i = sum_{k<=i} p_k`` once, then
draw each sample by binary-searching a uniform random number in the prefix
array — ``O(2^n)`` precompute, ``O(n)`` per sample.

Three variants are provided, matching the paper's discussion:

* :class:`PrefixSampler` — in-memory prefix array + binary search,
* :meth:`PrefixSampler.sample_linear` — linear traversal without the
  prefix array (the "2^{n-1} steps on average" baseline),
* :class:`OutOfCorePrefixSampler` — probabilities stored in an on-disk
  file, scanned in blocks ("linear traversals can be performed on large
  vectors stored in out-of-memory files, with only small blocks loaded to
  memory at any given time").
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional, Sequence, Union

import numpy as np

from ..exceptions import SamplingError
from .results import SampleResult

__all__ = [
    "probabilities_from_statevector",
    "PrefixSampler",
    "OutOfCorePrefixSampler",
]


def probabilities_from_statevector(statevector: Sequence[complex]) -> np.ndarray:
    """Squared magnitudes ``p_i = |alpha_i|^2`` of a state vector."""
    array = np.asarray(statevector, dtype=np.complex128)
    return (array.conj() * array).real


def _as_rng(seed: Union[int, np.random.Generator, None]) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class PrefixSampler:
    """Biased random selection via a precomputed prefix array.

    Accepts either a probability vector or a complex state vector.  The
    probabilities must sum to ~1 (checked within ``norm_tolerance``).
    """

    def __init__(
        self,
        distribution: Sequence[float],
        is_statevector: Optional[bool] = None,
        norm_tolerance: float = 1e-6,
    ):
        array = np.asarray(distribution)
        if is_statevector is None:
            is_statevector = np.iscomplexobj(array)
        if is_statevector:
            probabilities = probabilities_from_statevector(array)
        else:
            probabilities = np.asarray(array, dtype=np.float64)
        if probabilities.ndim != 1 or probabilities.size == 0:
            raise SamplingError("distribution must be a non-empty 1-D array")
        if np.any(probabilities < -norm_tolerance):
            raise SamplingError("negative probabilities")
        total = float(probabilities.sum())
        if abs(total - 1.0) > norm_tolerance:
            raise SamplingError(f"probabilities sum to {total}, expected 1")
        self.probabilities = probabilities
        #: The prefix array r_i = sum_{k<=i} p_k of the paper's Fig. 3.
        self.prefix = np.cumsum(probabilities)
        self.size = probabilities.size
        self.num_qubits = int(np.round(np.log2(self.size)))

    @classmethod
    def from_dd(cls, state) -> "PrefixSampler":
        """Prefix sampler over a DD state's exact output distribution.

        Expands the probabilities through the state's cached
        :class:`~repro.perf.compiled_dd.CompiledDD` artifact (shared with
        the DD samplers) instead of a dense statevector export, so the
        amplitude phases are never materialised.
        """
        from .dd_sampler import DDSampler

        compiled = DDSampler(state).compiled()
        return cls(compiled.probabilities(), is_statevector=False)

    # ------------------------------------------------------------------
    # Binary-search sampling (the production path)
    # ------------------------------------------------------------------

    def sample(
        self, shots: int, rng: Union[int, np.random.Generator, None] = None
    ) -> np.ndarray:
        """Draw ``shots`` basis-state indices by binary search, O(n) each."""
        if shots < 0:
            raise SamplingError("shots must be non-negative")
        rng = _as_rng(rng)
        uniform = rng.random(shots)
        indices = np.searchsorted(self.prefix, uniform, side="right")
        # Floating-point shortfall of the last prefix entry can push an
        # index one past the end; clamp it back.
        return np.minimum(indices, self.size - 1)

    def sample_one(self, rng: Union[int, np.random.Generator, None] = None) -> int:
        """Draw a single sample (binary search)."""
        return int(self.sample(1, rng)[0])

    def sample_result(
        self, shots: int, rng: Union[int, np.random.Generator, None] = None
    ) -> SampleResult:
        """Sample and aggregate into a :class:`SampleResult`."""
        samples = self.sample(shots, rng)
        return SampleResult.from_samples(self.num_qubits, samples, method="vector")

    # ------------------------------------------------------------------
    # Linear traversal baseline
    # ------------------------------------------------------------------

    def sample_linear(
        self, shots: int, rng: Union[int, np.random.Generator, None] = None
    ) -> np.ndarray:
        """Draw samples by linear traversal of the probability vector.

        The O(2^{n-1})-steps-per-sample method the paper mentions before
        introducing prefix sums; kept as a correctness baseline and for
        the precompute-vs-per-sample trade-off benchmark.
        """
        rng = _as_rng(rng)
        results = np.empty(shots, dtype=np.int64)
        for shot in range(shots):
            target = rng.random()
            running = 0.0
            index = self.size - 1
            for i, p in enumerate(self.probabilities):
                running += p
                if target < running:
                    index = i
                    break
            results[shot] = index
        return results


class OutOfCorePrefixSampler:
    """Prefix-sum sampling over probabilities stored in an on-disk file.

    Emulates the paper's discussion of vectors too large for RAM: the
    probability vector lives in a binary file; precomputation streams it
    once to build per-block totals (which *do* fit in memory), and each
    sample binary-searches the block totals, then loads only that block.

    ``block_size`` is the number of float64 probabilities per block.
    """

    def __init__(self, path: str, block_size: int = 65536):
        if block_size < 1:
            raise SamplingError("block size must be positive")
        self.path = path
        self.block_size = block_size
        file_bytes = os.path.getsize(path)
        if file_bytes % 8:
            raise SamplingError("probability file is not a float64 array")
        self.size = file_bytes // 8
        if self.size == 0:
            raise SamplingError("empty probability file")
        self.num_qubits = int(np.round(np.log2(self.size)))
        self._block_prefix = self._build_block_prefix()

    @classmethod
    def from_probabilities(
        cls,
        probabilities: Sequence[float],
        directory: Optional[str] = None,
        block_size: int = 65536,
    ) -> "OutOfCorePrefixSampler":
        """Write probabilities to a temp file and open a sampler on it."""
        array = np.asarray(probabilities, dtype=np.float64)
        fd, path = tempfile.mkstemp(suffix=".probs", dir=directory)
        with os.fdopen(fd, "wb") as handle:
            handle.write(array.tobytes())
        return cls(path, block_size=block_size)

    def _build_block_prefix(self) -> np.ndarray:
        """Stream the file once, computing cumulative block totals."""
        totals = []
        running = 0.0
        with open(self.path, "rb") as handle:
            while True:
                chunk = handle.read(self.block_size * 8)
                if not chunk:
                    break
                block = np.frombuffer(chunk, dtype=np.float64)
                running += float(block.sum())
                totals.append(running)
        if abs(running - 1.0) > 1e-6:
            raise SamplingError(f"file probabilities sum to {running}")
        return np.asarray(totals)

    def _load_block(self, block_index: int) -> np.ndarray:
        offset = block_index * self.block_size * 8
        count = min(self.block_size, self.size - block_index * self.block_size)
        with open(self.path, "rb") as handle:
            handle.seek(offset)
            data = handle.read(count * 8)
        return np.frombuffer(data, dtype=np.float64)

    def sample(
        self, shots: int, rng: Union[int, np.random.Generator, None] = None
    ) -> np.ndarray:
        """Draw samples, loading one block per *distinct* block hit.

        Random numbers are sorted so consecutive samples hit the same
        block; the permutation is undone before returning, keeping the
        stream i.i.d.
        """
        rng = _as_rng(rng)
        uniform = rng.random(shots)
        order = np.argsort(uniform)
        results = np.empty(shots, dtype=np.int64)
        block_of = np.searchsorted(self._block_prefix, uniform[order], side="right")
        block_of = np.minimum(block_of, len(self._block_prefix) - 1)
        position = 0
        while position < shots:
            block_index = int(block_of[position])
            end = position
            while end < shots and block_of[end] == block_index:
                end += 1
            block = self._load_block(block_index)
            base = self._block_prefix[block_index - 1] if block_index else 0.0
            local_prefix = base + np.cumsum(block)
            local = np.searchsorted(
                local_prefix, uniform[order[position:end]], side="right"
            )
            local = np.minimum(local, block.size - 1)
            results[order[position:end]] = (
                block_index * self.block_size + local
            )
            position = end
        return results

    def sample_result(
        self, shots: int, rng: Union[int, np.random.Generator, None] = None
    ) -> SampleResult:
        """Draw ``shots`` samples and wrap them in a ``SampleResult``."""
        samples = self.sample(shots, rng)
        return SampleResult.from_samples(self.num_qubits, samples, method="vector-ooc")

    def close(self) -> None:
        """Delete the backing file (for temp-file usage)."""
        if os.path.exists(self.path):
            os.remove(self.path)
