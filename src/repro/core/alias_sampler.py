"""Walker's alias method: O(1)-per-sample biased random selection.

An alternative to the prefix-sum/binary-search baseline of the paper's
Section III: after an O(2^n) table build, each sample costs a single
uniform draw, one table lookup, and one comparison — no O(n) binary
search.  Included as an extension baseline (benchmarked against prefix
sampling in ``benchmarks/bench_alias_ablation.py``); like all dense
methods it still pays the exponential memory bill the decision-diagram
sampler avoids.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from ..exceptions import SamplingError
from .prefix_sampler import probabilities_from_statevector
from .results import SampleResult

__all__ = ["AliasSampler"]


def _as_rng(seed: Union[int, np.random.Generator, None]) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class AliasSampler:
    """Vose's stable formulation of Walker's alias method."""

    def __init__(
        self,
        distribution: Sequence[float],
        is_statevector: bool | None = None,
        norm_tolerance: float = 1e-6,
    ):
        array = np.asarray(distribution)
        if is_statevector is None:
            is_statevector = np.iscomplexobj(array)
        if is_statevector:
            probabilities = probabilities_from_statevector(array)
        else:
            probabilities = np.asarray(array, dtype=np.float64)
        if probabilities.ndim != 1 or probabilities.size == 0:
            raise SamplingError("distribution must be a non-empty 1-D array")
        total = float(probabilities.sum())
        if abs(total - 1.0) > norm_tolerance:
            raise SamplingError(f"probabilities sum to {total}, expected 1")
        self.probabilities = probabilities
        self.size = probabilities.size
        self.num_qubits = int(np.round(np.log2(self.size)))
        self._build_tables()

    @classmethod
    def from_dd(cls, state) -> "AliasSampler":
        """Alias sampler over a DD state's exact output distribution.

        Uses the state's cached :class:`~repro.perf.compiled_dd.CompiledDD`
        artifact (shared with the DD samplers) to expand probabilities.
        """
        from .dd_sampler import DDSampler

        compiled = DDSampler(state).compiled()
        return cls(compiled.probabilities(), is_statevector=False)

    def _build_tables(self) -> None:
        """Build the probability and alias tables (O(size))."""
        n = self.size
        scaled = self.probabilities * n
        self._accept = np.ones(n, dtype=np.float64)
        self._alias = np.arange(n, dtype=np.int64)
        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        scaled = scaled.copy()
        while small and large:
            lo = small.pop()
            hi = large.pop()
            self._accept[lo] = scaled[lo]
            self._alias[lo] = hi
            scaled[hi] = scaled[hi] - (1.0 - scaled[lo])
            if scaled[hi] < 1.0:
                small.append(hi)
            else:
                large.append(hi)
        # Leftovers (floating point): accept with probability 1.
        for index in small + large:
            self._accept[index] = 1.0
            self._alias[index] = index

    def sample(
        self, shots: int, rng: Union[int, np.random.Generator, None] = None
    ) -> np.ndarray:
        """Draw ``shots`` samples, O(1) work per sample."""
        if shots < 0:
            raise SamplingError("shots must be non-negative")
        rng = _as_rng(rng)
        columns = rng.integers(self.size, size=shots)
        accept = rng.random(shots) < self._accept[columns]
        return np.where(accept, columns, self._alias[columns])

    def sample_one(self, rng: Union[int, np.random.Generator, None] = None) -> int:
        """Draw a single basis-state index."""
        return int(self.sample(1, rng)[0])

    def sample_result(
        self, shots: int, rng: Union[int, np.random.Generator, None] = None
    ) -> SampleResult:
        """Draw ``shots`` samples and wrap them in a ``SampleResult``."""
        samples = self.sample(shots, rng)
        return SampleResult.from_samples(self.num_qubits, samples, method="alias")
