"""The weak-simulation front door.

:func:`simulate_and_sample` wires the full pipeline of the paper's Fig. 2:
strong simulation (dense or DD) followed by output sampling with the
chosen back-end.  :func:`sample_statevector` and :func:`sample_dd` are the
second stage alone, for callers that already hold a final state.

Methods (``method=`` argument):

========================  ====================================================
``"dd"``                  DD path sampling, vectorised per level (default)
``"dd-path"``             DD path sampling, one pure-Python walk per shot
``"dd-multinomial"``      recursive binomial shot splitting on the DD
``"dd-collapse"``         per-shot sequential measurement collapse
``"vector"``              dense prefix sums + binary search (Section III)
``"vector-linear"``       dense linear traversal per sample
``"vector-ooc"``          prefix sampling over an on-disk probability file
``"vector-alias"``        Walker's alias method (O(1) per sample)
========================  ====================================================
"""

from __future__ import annotations

import time
from typing import Optional, Union

import numpy as np

from .. import telemetry as _telemetry
from ..circuit.circuit import QuantumCircuit
from ..dd.approximation import ApproximationConfig
from ..dd.normalization import NormalizationScheme
from ..dd.reorder import ReorderConfig, is_identity_permutation, unpermute_counts
from ..dd.vector_dd import VectorDD
from ..exceptions import SamplingError
from ..noise.model import NoiseModel
from ..perf import compiled_dd as _compiled_dd
from ..simulators.dd_simulator import DDSimulator
from ..simulators.density_simulator import (
    DensityMatrixSimulator,
    compile_noisy_sampler,
)
from ..simulators.statevector import DEFAULT_MEMORY_CAP, StatevectorSimulator
from .dd_sampler import DDSampler
from .prefix_sampler import (
    OutOfCorePrefixSampler,
    PrefixSampler,
    probabilities_from_statevector,
)
from .results import SampleResult

__all__ = [
    "VECTOR_METHODS",
    "DD_METHODS",
    "simulate_and_sample",
    "sample_statevector",
    "sample_dd",
]

VECTOR_METHODS = ("vector", "vector-linear", "vector-ooc", "vector-alias")
DD_METHODS = ("dd", "dd-path", "dd-multinomial", "dd-collapse")


def sample_statevector(
    statevector: np.ndarray,
    shots: int,
    method: str = "vector",
    seed: Union[int, np.random.Generator, None] = None,
    telemetry: Optional["_telemetry.Telemetry"] = None,
) -> SampleResult:
    """Weak simulation from a dense final state (paper Section III).

    ``telemetry`` activates an observability session for the call: the
    precompute and sampling stages become trace spans (see
    ``docs/observability.md``).
    """
    if method not in VECTOR_METHODS:
        raise SamplingError(f"unknown vector sampling method {method!r}")
    if shots < 0:
        raise SamplingError(f"shots must be non-negative, got {shots}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    with _telemetry.activate(telemetry):
        start = time.perf_counter()
        with _telemetry.span("precompute", method=method):
            probabilities = probabilities_from_statevector(statevector)
            if method == "vector-ooc":
                sampler = OutOfCorePrefixSampler.from_probabilities(probabilities)
            elif method == "vector-alias":
                from .alias_sampler import AliasSampler

                sampler = AliasSampler(probabilities, is_statevector=False)
            else:
                sampler = PrefixSampler(probabilities, is_statevector=False)
        precompute = time.perf_counter() - start
        start = time.perf_counter()
        try:
            with _telemetry.span("sampling", method=method, shots=shots):
                if method == "vector-linear":
                    samples = sampler.sample_linear(shots, rng)
                else:
                    samples = sampler.sample(shots, rng)
        finally:
            if method == "vector-ooc":
                sampler.close()
        sampling = time.perf_counter() - start
        result = SampleResult.from_samples(sampler.num_qubits, samples, method=method)
    result.precompute_seconds = precompute
    result.sampling_seconds = sampling
    return result


def sample_dd(
    state: VectorDD,
    shots: int,
    method: str = "dd",
    seed: Union[int, np.random.Generator, None] = None,
    trust_l2_normalization: bool = True,
    workers: Optional[int] = None,
    telemetry: Optional["_telemetry.Telemetry"] = None,
) -> SampleResult:
    """Weak simulation from a DD final state (paper Section IV).

    ``workers`` (``"dd"`` method only) draws the shots in fixed-size
    chunks with per-chunk seed streams — reproducible for a given seed
    at any worker count — and runs the chunks on a thread pool when
    ``workers > 1``.  ``telemetry`` activates an observability session:
    the precompute and sampling stages become trace spans and the DD
    table / compiled-cache counters land in the metrics registry.
    """
    if method not in DD_METHODS:
        raise SamplingError(f"unknown DD sampling method {method!r}")
    if shots < 0:
        raise SamplingError(f"shots must be non-negative, got {shots}")
    if workers is not None and method != "dd":
        raise SamplingError("parallel chunked sampling requires method='dd'")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    with _telemetry.activate(telemetry):
        start = time.perf_counter()
        with _telemetry.span("precompute", method=method) as precompute_span:
            sampler = DDSampler(state, trust_l2_normalization=trust_l2_normalization)
            if method == "dd":
                # Compiling the traversal tables is part of precompute for
                # the vectorised sampler (cache may make this a no-op).
                sampler.compiled()
            precompute_span.set_attr("dd_nodes", state.node_count)
        precompute = time.perf_counter() - start
        start = time.perf_counter()
        with _telemetry.span("sampling", method=method, shots=shots):
            if method == "dd":
                result = sampler.sample_result(
                    shots, rng, method=method, workers=workers
                )
            elif method == "dd-path":
                samples = sampler.sample_paths(shots, rng)
                result = SampleResult.from_samples(
                    state.num_qubits, samples, method=method
                )
            elif method == "dd-multinomial":
                counts = sampler.sample_counts_multinomial(shots, rng)
                result = SampleResult(
                    num_qubits=state.num_qubits, counts=counts, method=method
                )
            else:
                samples = sampler.sample_collapse(shots, rng)
                result = SampleResult.from_samples(
                    state.num_qubits, samples, method=method
                )
        result.sampling_seconds = time.perf_counter() - start
        result.precompute_seconds = precompute
        result.metadata["dd_statistics"] = state.package.stats()
        result.metadata["compiled_cache"] = _compiled_dd.DEFAULT_CACHE.stats()
        if workers is not None:
            result.metadata["workers"] = workers
        session = _telemetry.active()
        if session is not None:
            session.registry.record_dd_tables(result.metadata["dd_statistics"])
            session.registry.record_compiled_cache(result.metadata["compiled_cache"])
            session.registry.counter("sample.shots").inc(shots)
    return result


def _build_metadata(stats) -> dict:
    """Build-phase diagnostics attached to every result (CLI ``--stats``)."""
    metadata = {
        "applied_operations": stats.applied_operations,
        "strategy_counts": dict(stats.strategy_counts),
        "diagonal_term_applications": stats.diagonal_term_applications,
        "compile": dict(stats.compile_stats),
    }
    kernel = getattr(stats, "kernel", None)
    if kernel is not None:
        metadata["kernel"] = kernel
        metadata["kernel_fallbacks"] = getattr(stats, "kernel_fallbacks", 0)
        metadata["kernel_levels"] = getattr(stats, "kernel_levels", 0)
    if getattr(stats, "fidelity_bound", None) is not None:
        metadata["approximation"] = {
            "rounds": stats.approx_rounds,
            "removed_edges": stats.approx_removed_edges,
            "removed_mass": stats.approx_removed_mass,
            "fidelity_bound": stats.fidelity_bound,
        }
    if getattr(stats, "level_to_qubit", None) is not None:
        metadata["reorder"] = {
            "level_to_qubit": list(stats.level_to_qubit),
            "rounds": stats.reorder_rounds,
            "swaps": stats.reorder_swaps,
            "swaps_kept": stats.reorder_swaps_kept,
        }
    return metadata


def _simulate_noisy(
    circuit: QuantumCircuit,
    shots: int,
    noise: NoiseModel,
    seed: Union[int, np.random.Generator, None],
    initial_state: int,
) -> SampleResult:
    """The noisy pipeline: density build → diagonal → compiled sampling.

    Called with an already-active telemetry session and an enabled,
    normalised ``noise`` model.  The compile pipeline is bypassed (noise
    binds to the circuit as written — see
    :mod:`repro.simulators.density_simulator`), so there is no
    ``optimize``/``kernel``/``workers`` surface here.
    """
    if shots < 0:
        raise SamplingError(f"shots must be non-negative, got {shots}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    simulator = DensityMatrixSimulator(noise=noise)
    rho = simulator.run(circuit, initial_state=initial_state)
    start = time.perf_counter()
    with _telemetry.span("precompute", method="dd", noisy=True) as precompute_span:
        compiled = compile_noisy_sampler(rho, noise)
        precompute_span.set_attr("dd_nodes", rho.node_count)
    precompute = time.perf_counter() - start
    start = time.perf_counter()
    with _telemetry.span("sampling", method="dd", shots=shots):
        samples = compiled.sample(shots, rng)
    sampling = time.perf_counter() - start
    result = SampleResult.from_samples(circuit.num_qubits, samples, method="dd")
    result.precompute_seconds = precompute
    result.sampling_seconds = sampling
    result.metadata["dd_statistics"] = rho.package.stats()
    result.metadata["build"] = _build_metadata(simulator.stats)
    result.metadata["build"]["noise"] = {
        "model": noise.to_dict(),
        "channel_applications": simulator.stats.noise_channel_applications,
        "kraus_applications": simulator.stats.noise_kraus_applications,
    }
    session = _telemetry.active()
    if session is not None:
        session.registry.record_dd_tables(result.metadata["dd_statistics"])
        session.registry.counter("sample.shots").inc(shots)
    return result


def simulate_and_sample(
    circuit: QuantumCircuit,
    shots: int,
    method: str = "dd",
    seed: Union[int, np.random.Generator, None] = None,
    initial_state: int = 0,
    scheme: NormalizationScheme = NormalizationScheme.L2,
    memory_cap_bytes: int = DEFAULT_MEMORY_CAP,
    workers: Optional[int] = None,
    optimize: bool = True,
    telemetry: Optional["_telemetry.Telemetry"] = None,
    kernel: str = "auto",
    approximation: Optional[ApproximationConfig] = None,
    reorder: Optional[ReorderConfig] = None,
    noise: Optional[NoiseModel] = None,
) -> SampleResult:
    """Full weak simulation: run ``circuit``, then draw ``shots`` samples.

    Raises :class:`~repro.exceptions.MemoryOutError` for vector methods
    whose dense state would exceed ``memory_cap_bytes`` — the "MO" rows
    of the paper's Table I.  ``workers`` enables seed-stable parallel
    chunked sampling for the default ``"dd"`` method.  ``optimize``
    routes the circuit through the compile pipeline first (exact rewrite;
    pass ``False`` to simulate the circuit verbatim).  ``telemetry``
    attaches a :class:`repro.telemetry.Telemetry` session covering the
    whole pipeline — compile, build, precompute, sampling — ready for
    JSONL export (CLI flag ``--trace``).  ``kernel`` selects the DD
    build engine (``"auto"``/``"vector"``/``"python"``, see
    :class:`~repro.simulators.dd_simulator.DDSimulator`); both engines
    are bit-identical, so samples at equal seed do not depend on it.
    ``approximation`` (DD methods only) enables controlled DD pruning —
    an :class:`~repro.dd.approximation.ApproximationConfig`, a bare
    epsilon, or a ``{"epsilon": ...}`` mapping; the result's
    ``metadata["build"]["approximation"]`` then reports the tracked
    fidelity bound (see ``docs/approximation.md``).  ``reorder`` (DD
    methods only) enables dynamic qubit reordering during the build — a
    :class:`~repro.dd.reorder.ReorderConfig`, ``True``, or a mapping;
    reported samples stay in the original qubit order (the build's
    level-to-qubit permutation is applied to the drawn counts and
    recorded in ``metadata["build"]["reorder"]``; see
    ``docs/reordering.md``).  ``noise`` (``"dd"`` method only) switches
    to the density-matrix simulator with per-gate Kraus channels — a
    :class:`~repro.noise.NoiseModel`, a bare depolarizing strength, or a
    mapping (see :meth:`~repro.noise.NoiseModel.from_value`); the
    samples then come from the mixed state's diagonal and
    ``metadata["build"]["noise"]`` records the model (see
    ``docs/noise.md``).  A disabled model (all strengths zero) is
    normalised away, so the run is bit-identical to the exact pure-state
    path at equal seed.
    """
    if approximation is not None and not isinstance(
        approximation, ApproximationConfig
    ):
        approximation = ApproximationConfig.from_value(approximation)
    if approximation is not None and not approximation.enabled:
        approximation = None
    if reorder is not None and not isinstance(reorder, ReorderConfig):
        reorder = ReorderConfig.from_value(reorder)
    if reorder is not None and not reorder.enabled:
        reorder = None
    if noise is not None and not isinstance(noise, NoiseModel):
        noise = NoiseModel.from_value(noise)
    if noise is not None and not noise.enabled:
        noise = None
    if noise is not None:
        # Noisy runs have a deliberately narrow contract; every
        # incompatible combination is a loud error, never a silent drop
        # (docs/noise.md, "Composition with other features").
        if method != "dd":
            raise SamplingError(
                "noisy simulation samples from the compiled density "
                "diagonal and supports method='dd' only"
            )
        if approximation is not None:
            raise SamplingError(
                "noise and approximation cannot be combined: the "
                "fidelity-bound accounting assumes a pure state"
            )
        if reorder is not None:
            raise SamplingError(
                "noise and reordering cannot be combined: sifting is "
                "implemented for vector DDs only"
            )
        if workers is not None:
            raise SamplingError(
                "parallel chunked sampling is not supported for noisy runs"
            )
    with _telemetry.activate(telemetry):
        if noise is not None:
            return _simulate_noisy(circuit, shots, noise, seed, initial_state)
        if method in VECTOR_METHODS:
            if approximation is not None:
                raise SamplingError(
                    "approximation applies to DD methods only; vector "
                    "methods are always exact"
                )
            if reorder is not None:
                raise SamplingError(
                    "reordering applies to DD methods only; vector "
                    "methods use the natural order"
                )
            if workers is not None:
                raise SamplingError("parallel chunked sampling requires method='dd'")
            simulator = StatevectorSimulator(
                memory_cap_bytes=memory_cap_bytes, optimize=optimize
            )
            statevector = simulator.run(circuit, initial_state=initial_state)
            result = sample_statevector(statevector, shots, method=method, seed=seed)
            result.metadata["build"] = _build_metadata(simulator.stats)
            return result
        if method in DD_METHODS:
            dd_simulator = DDSimulator(
                scheme=scheme,
                optimize=optimize,
                kernel=kernel,
                approximation=approximation,
                reorder=reorder,
            )
            state = dd_simulator.run(circuit, initial_state=initial_state)
            result = sample_dd(state, shots, method=method, seed=seed, workers=workers)
            level_to_qubit = dd_simulator.stats.level_to_qubit
            if level_to_qubit is not None and not is_identity_permutation(
                level_to_qubit
            ):
                # Samples were drawn in level space; re-key the counts
                # back to original qubit order (a bijection on basis
                # indices, so the shot total is preserved exactly).
                result.counts = unpermute_counts(result.counts, level_to_qubit)
            result.metadata["build"] = _build_metadata(dd_simulator.stats)
            return result
        raise SamplingError(f"unknown weak-simulation method {method!r}")
