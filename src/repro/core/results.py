"""Sampling results.

A :class:`SampleResult` is what weak simulation produces: a multiset of
measured bitstrings (stored as counts per basis index) plus timing
metadata.  This is also the shape of data a physical quantum computer
returns after repeated runs — the object weak simulation mimics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Tuple

import numpy as np

from ..exceptions import SamplingError

__all__ = ["SampleResult"]


@dataclass
class SampleResult:
    """Counts of measured bitstrings from one weak-simulation run."""

    num_qubits: int
    counts: Dict[int, int]
    method: str = "unknown"
    precompute_seconds: float = 0.0
    sampling_seconds: float = 0.0
    #: Free-form diagnostics (DD/table statistics, worker counts, …);
    #: not part of the statistical result.
    metadata: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_samples(
        cls,
        num_qubits: int,
        samples: Iterable[int],
        method: str = "unknown",
        precompute_seconds: float = 0.0,
        sampling_seconds: float = 0.0,
    ) -> "SampleResult":
        """Aggregate raw basis-index samples into counts."""
        array = np.asarray(list(samples) if not isinstance(samples, np.ndarray) else samples)
        if array.size and (array.min() < 0 or array.max() >= 2**num_qubits):
            raise SamplingError("sample index outside the basis-state range")
        values, frequencies = np.unique(array, return_counts=True)
        counts = {int(v): int(f) for v, f in zip(values, frequencies)}
        return cls(
            num_qubits=num_qubits,
            counts=counts,
            method=method,
            precompute_seconds=precompute_seconds,
            sampling_seconds=sampling_seconds,
        )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def shots(self) -> int:
        """Total number of recorded samples."""
        return sum(self.counts.values())

    @property
    def total_seconds(self) -> float:
        """Precompute plus sampling time (when both were recorded)."""
        return self.precompute_seconds + self.sampling_seconds

    @property
    def distinct_outcomes(self) -> int:
        """Number of different bitstrings observed."""
        return len(self.counts)

    def frequency(self, index: int) -> float:
        """Empirical probability estimate of basis state ``index``."""
        shots = self.shots
        if shots == 0:
            raise SamplingError("no samples recorded")
        return self.counts.get(index, 0) / shots

    def bitstring_counts(self) -> Dict[str, int]:
        """Counts keyed by bitstrings ``q_{n-1} ... q_0``."""
        width = self.num_qubits
        return {format(k, f"0{width}b"): v for k, v in self.counts.items()}

    def most_common(self, limit: int = 10) -> List[Tuple[str, int]]:
        """The ``limit`` most frequent outcomes as (bitstring, count)."""
        ranked = sorted(self.counts.items(), key=lambda item: (-item[1], item[0]))
        width = self.num_qubits
        return [(format(k, f"0{width}b"), v) for k, v in ranked[:limit]]

    # ------------------------------------------------------------------
    # Derived distributions
    # ------------------------------------------------------------------

    def empirical_probabilities(self) -> Dict[int, float]:
        """Counts normalised to relative frequencies."""
        shots = self.shots
        if shots == 0:
            raise SamplingError("no samples recorded")
        return {k: v / shots for k, v in self.counts.items()}

    def marginal_probability(self, qubit: int) -> float:
        """Empirical probability that ``qubit`` was measured as 1."""
        if not 0 <= qubit < self.num_qubits:
            raise SamplingError(f"qubit {qubit} out of range")
        shots = self.shots
        if shots == 0:
            raise SamplingError("no samples recorded")
        ones = sum(v for k, v in self.counts.items() if (k >> qubit) & 1)
        return ones / shots

    def marginal_counts(self, qubits: Iterable[int]) -> Dict[int, int]:
        """Counts reduced onto a subset of qubits (ascending significance).

        Bit ``j`` of the reduced key is the value of ``qubits[j]``.
        """
        qubits = list(qubits)
        if len(set(qubits)) != len(qubits):
            raise SamplingError("duplicate qubits in marginal")
        reduced: Dict[int, int] = {}
        for key, value in self.counts.items():
            sub = 0
            for j, qubit in enumerate(qubits):
                sub |= ((key >> qubit) & 1) << j
            reduced[sub] = reduced.get(sub, 0) + value
        return reduced

    def merge(self, other: "SampleResult") -> "SampleResult":
        """Combine two results over the same register."""
        if other.num_qubits != self.num_qubits:
            raise SamplingError("cannot merge results with different registers")
        counts = dict(self.counts)
        for key, value in other.counts.items():
            counts[key] = counts.get(key, 0) + value
        return SampleResult(
            num_qubits=self.num_qubits,
            counts=counts,
            method=self.method if self.method == other.method else "mixed",
            precompute_seconds=self.precompute_seconds + other.precompute_seconds,
            sampling_seconds=self.sampling_seconds + other.sampling_seconds,
        )

    def to_json(self) -> str:
        """Serialise to JSON (counts keyed by bitstring for readability)."""
        import json

        payload = {
            "format": "repro-samples",
            "num_qubits": self.num_qubits,
            "method": self.method,
            "precompute_seconds": self.precompute_seconds,
            "sampling_seconds": self.sampling_seconds,
            "counts": self.bitstring_counts(),
        }
        if self.metadata:
            payload["metadata"] = self.metadata
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "SampleResult":
        """Inverse of :meth:`to_json`."""
        import json

        payload = json.loads(text)
        if payload.get("format") != "repro-samples":
            raise SamplingError("not a repro-samples document")
        return cls(
            num_qubits=int(payload["num_qubits"]),
            counts={int(k, 2): int(v) for k, v in payload["counts"].items()},
            method=payload.get("method", "unknown"),
            precompute_seconds=float(payload.get("precompute_seconds", 0.0)),
            sampling_seconds=float(payload.get("sampling_seconds", 0.0)),
            metadata=payload.get("metadata", {}),
        )

    def to_array(self) -> np.ndarray:
        """Dense count vector of length ``2^n`` (small registers only)."""
        if self.num_qubits > 24:
            raise SamplingError("dense count vector beyond 24 qubits refused")
        dense = np.zeros(2**self.num_qubits, dtype=np.int64)
        for key, value in self.counts.items():
            dense[key] = value
        return dense

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SampleResult(method={self.method!r}, qubits={self.num_qubits}, "
            f"shots={self.shots}, distinct={self.distinct_outcomes})"
        )
