"""Statistical indistinguishability of sampled output.

The paper's goal is output "statistically indistinguishable from those of
(error-free) physical quantum computers".  This module quantifies that
claim: given empirical counts and the exact output distribution, it
computes divergences (total variation, KL), a chi-square goodness-of-fit
test, and the linear cross-entropy benchmarking (XEB) fidelity used for
the supremacy-style circuits of Boixo et al. (reference [27]).

The chi-square survival function uses SciPy when available and falls back
to a self-contained regularised incomplete-gamma implementation, so the
core library keeps NumPy as its only hard dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Union

import numpy as np

from ..exceptions import SamplingError
from .results import SampleResult

__all__ = [
    "total_variation_distance",
    "kl_divergence",
    "chi_square_gof",
    "ChiSquareResult",
    "linear_xeb_fidelity",
    "two_sample_chi_square",
]

_CountsLike = Union[SampleResult, Mapping[int, int]]


def _counts_of(counts: _CountsLike) -> Dict[int, int]:
    if isinstance(counts, SampleResult):
        return counts.counts
    return dict(counts)


def _probability_of(probabilities, index: int) -> float:
    """Probability lookup supporting arrays, dicts, and callables."""
    if callable(probabilities):
        return float(probabilities(index))
    if isinstance(probabilities, Mapping):
        return float(probabilities.get(index, 0.0))
    return float(probabilities[index])


# ---------------------------------------------------------------------------
# Divergences
# ---------------------------------------------------------------------------


def total_variation_distance(
    counts: _CountsLike, probabilities: Sequence[float]
) -> float:
    """TVD between the empirical distribution and exact probabilities.

    ``probabilities`` must be a dense array over all ``2^n`` outcomes (the
    mass of outcomes never sampled contributes too).
    """
    counts = _counts_of(counts)
    shots = sum(counts.values())
    if shots == 0:
        raise SamplingError("no samples")
    probabilities = np.asarray(probabilities, dtype=np.float64)
    sampled_mass_diff = 0.0
    sampled_prob = 0.0
    for index, count in counts.items():
        p = float(probabilities[index])
        sampled_mass_diff += abs(count / shots - p)
        sampled_prob += p
    # Outcomes with zero counts contribute their full probability.
    unsampled = max(0.0, float(probabilities.sum()) - sampled_prob)
    return 0.5 * (sampled_mass_diff + unsampled)


def kl_divergence(counts: _CountsLike, probabilities: Sequence[float]) -> float:
    """D_KL(empirical || exact); infinite if a zero-probability outcome
    was sampled (which would *prove* the sampler unfaithful)."""
    counts = _counts_of(counts)
    shots = sum(counts.values())
    if shots == 0:
        raise SamplingError("no samples")
    total = 0.0
    for index, count in counts.items():
        q = _probability_of(probabilities, index)
        p = count / shots
        if q <= 0.0:
            return math.inf
        total += p * math.log(p / q)
    return total


# ---------------------------------------------------------------------------
# Chi-square goodness of fit
# ---------------------------------------------------------------------------


def _regularized_gamma_upper(s: float, x: float) -> float:
    """Q(s, x) = Gamma(s, x) / Gamma(s), via series / continued fraction.

    Standard Numerical-Recipes-style implementation, accurate to ~1e-12
    for the argument ranges a chi-square test produces.
    """
    if x < 0 or s <= 0:
        raise ValueError("invalid arguments to the incomplete gamma")
    if x == 0:
        return 1.0
    if x < s + 1.0:
        # Lower series, then complement.
        term = 1.0 / s
        total = term
        denominator = s
        for _ in range(1000):
            denominator += 1.0
            term *= x / denominator
            total += term
            if abs(term) < abs(total) * 1e-15:
                break
        lower = total * math.exp(-x + s * math.log(x) - math.lgamma(s))
        return max(0.0, 1.0 - lower)
    # Continued fraction for the upper tail (modified Lentz).
    tiny = 1e-300
    b = x + 1.0 - s
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 1000):
        an = -i * (i - s)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    return h * math.exp(-x + s * math.log(x) - math.lgamma(s))


def chi2_sf(statistic: float, dof: int) -> float:
    """Chi-square survival function P(X >= statistic)."""
    if dof < 1:
        raise ValueError("degrees of freedom must be >= 1")
    if statistic <= 0:
        return 1.0
    try:
        from scipy.stats import chi2  # type: ignore

        return float(chi2.sf(statistic, dof))
    except ImportError:  # pragma: no cover - depends on environment
        return _regularized_gamma_upper(dof / 2.0, statistic / 2.0)


@dataclass(frozen=True)
class ChiSquareResult:
    """Outcome of a chi-square goodness-of-fit test."""

    statistic: float
    dof: int
    p_value: float
    bins: int

    @property
    def consistent(self) -> bool:
        """Whether the sample is consistent at the 0.1% level."""
        return self.p_value > 1e-3


def chi_square_gof(
    counts: _CountsLike,
    probabilities: Sequence[float],
    min_expected: float = 5.0,
) -> ChiSquareResult:
    """Pearson chi-square test of counts against exact probabilities.

    Outcomes with expected count below ``min_expected`` are pooled into a
    single tail bin (standard practice for valid chi-square asymptotics).
    ``probabilities`` must be dense over all outcomes.
    """
    counts = _counts_of(counts)
    shots = sum(counts.values())
    if shots == 0:
        raise SamplingError("no samples")
    probabilities = np.asarray(probabilities, dtype=np.float64)
    expected = probabilities * shots
    big = expected >= min_expected
    statistic = 0.0
    bins = 0
    for index in np.nonzero(big)[0]:
        observed = counts.get(int(index), 0)
        e = expected[index]
        statistic += (observed - e) ** 2 / e
        bins += 1
    # Pool the tail.
    tail_expected = float(expected[~big].sum())
    tail_observed = sum(
        count for index, count in counts.items() if not big[index]
    )
    if tail_expected > 0.0:
        statistic += (tail_observed - tail_expected) ** 2 / tail_expected
        bins += 1
    elif tail_observed > 0:
        # Sampled an outcome that has probability ~0: categorical failure.
        return ChiSquareResult(
            statistic=math.inf, dof=max(1, bins - 1), p_value=0.0, bins=bins
        )
    dof = max(1, bins - 1)
    return ChiSquareResult(
        statistic=float(statistic),
        dof=dof,
        p_value=chi2_sf(float(statistic), dof),
        bins=bins,
    )


def two_sample_chi_square(
    first: _CountsLike, second: _CountsLike
) -> ChiSquareResult:
    """Chi-square homogeneity test between two samplers' counts.

    Used to check that, e.g., DD-based and vector-based weak simulation
    are statistically indistinguishable *from each other*.
    """
    a = _counts_of(first)
    b = _counts_of(second)
    total_a = sum(a.values())
    total_b = sum(b.values())
    if total_a == 0 or total_b == 0:
        raise SamplingError("both samples must be non-empty")
    keys = sorted(set(a) | set(b))
    statistic = 0.0
    bins = 0
    spill_a = 0
    spill_b = 0
    for key in keys:
        ca, cb = a.get(key, 0), b.get(key, 0)
        pooled = (ca + cb) / (total_a + total_b)
        if pooled * min(total_a, total_b) < 5.0:
            spill_a += ca
            spill_b += cb
            continue
        ea, eb = pooled * total_a, pooled * total_b
        statistic += (ca - ea) ** 2 / ea + (cb - eb) ** 2 / eb
        bins += 1
    if spill_a + spill_b:
        pooled = (spill_a + spill_b) / (total_a + total_b)
        ea, eb = pooled * total_a, pooled * total_b
        if ea > 0 and eb > 0:
            statistic += (spill_a - ea) ** 2 / ea + (spill_b - eb) ** 2 / eb
            bins += 1
    dof = max(1, bins - 1)
    return ChiSquareResult(
        statistic=float(statistic),
        dof=dof,
        p_value=chi2_sf(float(statistic), dof),
        bins=bins,
    )


# ---------------------------------------------------------------------------
# Cross-entropy benchmarking
# ---------------------------------------------------------------------------


def linear_xeb_fidelity(
    counts: _CountsLike,
    probabilities,
    num_qubits: int,
) -> float:
    """Linear cross-entropy benchmarking fidelity.

    ``F_XEB = 2^n * E[p(x_sampled)] - 1``: approximately 1 when samples
    come from the true distribution of a random circuit, 0 for uniform
    noise.  ``probabilities`` may be a dense array, a dict, or a callable
    ``index -> probability`` (so DD-backed amplitude lookups work without
    dense expansion).
    """
    counts = _counts_of(counts)
    shots = sum(counts.values())
    if shots == 0:
        raise SamplingError("no samples")
    mean_probability = (
        sum(count * _probability_of(probabilities, index) for index, count in counts.items())
        / shots
    )
    return float(2**num_qubits * mean_probability - 1.0)
