"""Analysis of sampled bitstring ensembles.

Post-processing used when characterising devices from measurement
samples — the consumer side of weak simulation:

* entropy estimators (plug-in and Miller-Madow bias-corrected),
* heavy-output probability (the quantum-volume acceptance statistic),
* collision statistics (Porter-Thomas diagnostics for random circuits),
* empirical total-variation distance between two sampled ensembles.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Sequence, Union

import numpy as np

from ..exceptions import SamplingError
from .results import SampleResult

__all__ = [
    "plugin_entropy",
    "miller_madow_entropy",
    "heavy_output_probability",
    "heavy_outputs",
    "collision_probability",
    "empirical_tvd",
]

_CountsLike = Union[SampleResult, Mapping[int, int]]


def _counts_of(counts: _CountsLike) -> Dict[int, int]:
    if isinstance(counts, SampleResult):
        return counts.counts
    return dict(counts)


def plugin_entropy(counts: _CountsLike, base: float = 2.0) -> float:
    """Plug-in (maximum-likelihood) Shannon entropy of the sample."""
    counts = _counts_of(counts)
    shots = sum(counts.values())
    if shots == 0:
        raise SamplingError("no samples")
    entropy = 0.0
    for value in counts.values():
        p = value / shots
        entropy -= p * math.log(p)
    return entropy / math.log(base)


def miller_madow_entropy(counts: _CountsLike, base: float = 2.0) -> float:
    """Miller-Madow bias-corrected entropy: plug-in + (K-1)/(2N).

    ``K`` is the number of observed outcomes.  The plug-in estimator
    underestimates entropy when many outcomes are seen only a few times;
    the correction matters for Porter-Thomas-like distributions.
    """
    counts = _counts_of(counts)
    shots = sum(counts.values())
    if shots == 0:
        raise SamplingError("no samples")
    correction = (len(counts) - 1) / (2.0 * shots * math.log(base))
    return plugin_entropy(counts, base=base) + correction


def heavy_outputs(probabilities: Sequence[float]) -> np.ndarray:
    """Indices whose probability exceeds the median (the "heavy" set)."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    median = np.median(probabilities)
    return np.nonzero(probabilities > median)[0]


def heavy_output_probability(
    counts: _CountsLike, probabilities: Sequence[float]
) -> float:
    """Fraction of samples landing in the heavy-output set.

    The quantum-volume criterion: an ideal simulator of a scrambling
    circuit scores ~0.85 ((1 + ln 2)/2); a depolarised device tends to
    0.5.  Faithful weak simulation must score the ideal value.
    """
    counts = _counts_of(counts)
    shots = sum(counts.values())
    if shots == 0:
        raise SamplingError("no samples")
    heavy = set(int(i) for i in heavy_outputs(probabilities))
    hits = sum(count for index, count in counts.items() if index in heavy)
    return hits / shots


def collision_probability(counts: _CountsLike) -> float:
    """Unbiased estimate of sum_x p_x^2 from the sample.

    For a uniform distribution over d outcomes this is 1/d; for
    Porter-Thomas it is 2/d — the separation cross-entropy benchmarking
    exploits.  Uses the U-statistic (pairs without replacement).
    """
    counts = _counts_of(counts)
    shots = sum(counts.values())
    if shots < 2:
        raise SamplingError("need at least two samples")
    coincidences = sum(value * (value - 1) for value in counts.values())
    return coincidences / (shots * (shots - 1))


def empirical_tvd(first: _CountsLike, second: _CountsLike) -> float:
    """Total variation distance between two empirical distributions."""
    a = _counts_of(first)
    b = _counts_of(second)
    total_a = sum(a.values())
    total_b = sum(b.values())
    if total_a == 0 or total_b == 0:
        raise SamplingError("both samples must be non-empty")
    distance = 0.0
    for key in set(a) | set(b):
        distance += abs(a.get(key, 0) / total_a - b.get(key, 0) / total_b)
    return distance / 2.0
