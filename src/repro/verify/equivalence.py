"""Equivalence checking of quantum circuits via decision diagrams.

Because matrix DDs are canonical, ``C1 ≡ C2`` (up to global phase) holds
iff their DDs share the same root node and their root weights differ only
in phase.  This mirrors the DD-based equivalence checking the paper cites
(Burgholzer & Wille, ASP-DAC 2020): rather than building both full
operators, :func:`check_equivalence` builds the DD of ``C2† · C1`` —
whenever the circuits really are equivalent, the intermediate products
stay close to the identity and remain tiny.

For large circuits, :func:`random_stimuli_check` simulates both circuits
on random basis-state inputs and compares final-state fidelity — an
efficient falsifier (one counterexample proves inequivalence; agreement
on many stimuli gives high confidence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.operations import DiagonalOperation
from ..dd.matrix_dd import OperationDDCache, identity_dd
from ..dd.normalization import NormalizationScheme
from ..dd.package import DDPackage
from ..exceptions import ReproError
from ..simulators.dd_simulator import DDSimulator

__all__ = [
    "EquivalenceResult",
    "check_equivalence",
    "assert_equivalent",
    "random_stimuli_check",
]


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    method: str
    #: Relative phase e^{i phi} between the circuits when equivalent (the
    #: global-phase freedom), or None.
    phase: Optional[complex] = None
    #: For stimuli checks: the worst fidelity observed.
    min_fidelity: float = 1.0
    #: For stimuli checks: the falsifying input, if any.
    counterexample: Optional[int] = None

    def __bool__(self) -> bool:
        return self.equivalent


def check_equivalence(
    first: QuantumCircuit,
    second: QuantumCircuit,
    up_to_global_phase: bool = True,
    tolerance: float = 1e-9,
) -> EquivalenceResult:
    """Exact equivalence via the DD of ``second† · first``.

    Applies the gates of ``first`` and the inverted gates of ``second``
    alternately onto the identity DD ("G ↔ G'⁻¹" interleaving), then
    checks the result is the identity DD up to a phase.
    """
    if first.num_qubits != second.num_qubits:
        return EquivalenceResult(equivalent=False, method="structure")
    num_qubits = first.num_qubits
    package = DDPackage(scheme=NormalizationScheme.LEFTMOST)
    cache = OperationDDCache(package, num_qubits)
    result = identity_dd(package, num_qubits)
    def lowered(op):
        # Coalesced diagonal blocks carry no single gate matrix; expand
        # them into the phase-gate operations the cache understands.
        if isinstance(op, DiagonalOperation):
            return op.to_operations()
        return [op]

    forward = [piece for op in first.operations for piece in lowered(op)]
    # C2^dagger = op_1^dagger · op_2^dagger · ... as a left-to-right matrix
    # product; appending on the right therefore consumes the inverses in
    # original gate order.
    backward = [
        piece for op in second.operations for piece in lowered(op.inverse())
    ]
    # Interleave proportionally so the product stays near identity when
    # the circuits match (the ASP-DAC 2020 strategy).
    total_f, total_b = len(forward), len(backward)
    i = j = 0
    while i < total_f or j < total_b:
        advance_forward = j >= total_b or (
            i < total_f and i * max(total_b, 1) <= j * max(total_f, 1)
        )
        if advance_forward:
            result = package.mat_mat(cache.get(forward[i]), result)
            i += 1
        else:
            result = package.mat_mat(result, cache.get(backward[j]))
            j += 1

    identity = identity_dd(package, num_qubits)
    if result.node is not identity.node:
        return EquivalenceResult(equivalent=False, method="dd")
    phase = result.weight / identity.weight
    if abs(abs(phase) - 1.0) > tolerance:
        return EquivalenceResult(equivalent=False, method="dd")
    if not up_to_global_phase and abs(phase - 1.0) > tolerance:
        return EquivalenceResult(equivalent=False, method="dd", phase=phase)
    return EquivalenceResult(equivalent=True, method="dd", phase=phase)


def assert_equivalent(
    first: QuantumCircuit, second: QuantumCircuit, **kwargs
) -> None:
    """Raise :class:`ReproError` unless the circuits are equivalent."""
    result = check_equivalence(first, second, **kwargs)
    if not result:
        raise ReproError(
            f"circuits {first.name!r} and {second.name!r} are not equivalent"
        )


def random_stimuli_check(
    first: QuantumCircuit,
    second: QuantumCircuit,
    num_stimuli: int = 8,
    seed: Union[int, np.random.Generator, None] = 0,
    tolerance: float = 1e-8,
) -> EquivalenceResult:
    """Falsification by random basis-state stimuli.

    Simulates both circuits on ``num_stimuli`` random computational-basis
    inputs and compares the final states' fidelity.  A fidelity below
    ``1 - tolerance`` on any stimulus proves inequivalence; passing all
    stimuli is strong (but not absolute) evidence of equivalence.
    """
    if first.num_qubits != second.num_qubits:
        return EquivalenceResult(equivalent=False, method="stimuli")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    dim = 2**first.num_qubits
    stimuli = {0, dim - 1}
    while len(stimuli) < min(num_stimuli, dim):
        stimuli.add(int(rng.integers(dim)))
    worst = 1.0
    for stimulus in sorted(stimuli):
        package = DDPackage()
        simulator = DDSimulator(package=package)
        state_a = simulator.run(first, initial_state=stimulus)
        state_b = simulator.run(second, initial_state=stimulus)
        fidelity = state_a.fidelity(state_b)
        worst = min(worst, fidelity)
        if fidelity < 1.0 - tolerance:
            return EquivalenceResult(
                equivalent=False,
                method="stimuli",
                min_fidelity=worst,
                counterexample=stimulus,
            )
    return EquivalenceResult(equivalent=True, method="stimuli", min_fidelity=worst)
