"""Equivalence checking of quantum circuits via decision diagrams.

Because matrix DDs are canonical, ``C1 ≡ C2`` (up to global phase) holds
iff their DDs share the same root node and their root weights differ only
in phase.  This mirrors the DD-based equivalence checking the paper cites
(Burgholzer & Wille, ASP-DAC 2020): rather than building both full
operators, :func:`check_equivalence` builds the DD of ``C2† · C1`` —
whenever the circuits really are equivalent, the intermediate products
stay close to the identity and remain tiny.

For large circuits, :func:`random_stimuli_check` simulates both circuits
on random basis-state inputs and compares final-state fidelity — an
efficient falsifier (one counterexample proves inequivalence; agreement
on many stimuli gives high confidence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.operations import DiagonalOperation
from ..dd.matrix_dd import OperationDDCache, identity_dd
from ..dd.node import Edge, is_terminal
from ..dd.normalization import NormalizationScheme
from ..dd.package import DDPackage
from ..exceptions import ReproError
from ..simulators.dd_simulator import DDSimulator

__all__ = [
    "EquivalenceResult",
    "check_equivalence",
    "assert_equivalent",
    "random_stimuli_check",
]


#: Smallest trace-fidelity deviation the DD product can resolve.  The
#: complex table interns weights on a ~1e-10 grid and every ``mat_mat``
#: re-interns, so the computed trace of an exactly-equivalent pair still
#: drifts by ~1e-13 in fidelity (deviation ~1e-6 after the square root).
#: Demanding more than this floor flags pure rounding as inequivalence.
_TRACE_DEVIATION_FLOOR = 1e-6

@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    method: str
    #: Relative phase e^{i phi} between the circuits when equivalent (the
    #: global-phase freedom), or None.
    phase: Optional[complex] = None
    #: For stimuli checks: the worst fidelity observed.
    min_fidelity: float = 1.0
    #: For stimuli checks: the falsifying input, if any.
    counterexample: Optional[int] = None

    def __bool__(self) -> bool:
        return self.equivalent


def check_equivalence(
    first: QuantumCircuit,
    second: QuantumCircuit,
    up_to_global_phase: bool = True,
    tolerance: float = 1e-9,
) -> EquivalenceResult:
    """Exact equivalence via the DD of ``second† · first``.

    Applies the gates of ``first`` and the inverted gates of ``second``
    alternately onto the identity DD ("G ↔ G'⁻¹" interleaving), then
    checks the result is the identity DD up to a phase.
    """
    if first.num_qubits != second.num_qubits:
        return EquivalenceResult(equivalent=False, method="structure")
    num_qubits = first.num_qubits
    package = DDPackage(scheme=NormalizationScheme.LEFTMOST)
    cache = OperationDDCache(package, num_qubits)
    result = identity_dd(package, num_qubits)
    def lowered(op):
        # Coalesced diagonal blocks carry no single gate matrix; expand
        # them into the phase-gate operations the cache understands.
        if isinstance(op, DiagonalOperation):
            return op.to_operations()
        return [op]

    forward = [piece for op in first.operations for piece in lowered(op)]
    # C2^dagger = op_1^dagger · op_2^dagger · ... as a left-to-right matrix
    # product; appending on the right therefore consumes the inverses in
    # original gate order.
    backward = [
        piece for op in second.operations for piece in lowered(op.inverse())
    ]
    # Interleave proportionally so the product stays near identity when
    # the circuits match (the ASP-DAC 2020 strategy).
    total_f, total_b = len(forward), len(backward)
    i = j = 0
    while i < total_f or j < total_b:
        advance_forward = j >= total_b or (
            i < total_f and i * max(total_b, 1) <= j * max(total_f, 1)
        )
        if advance_forward:
            result = package.mat_mat(cache.get(forward[i]), result)
            i += 1
        else:
            result = package.mat_mat(result, cache.get(backward[j]))
            j += 1

    identity = identity_dd(package, num_qubits)
    if result.node is identity.node:
        phase = result.weight / identity.weight
        if abs(abs(phase) - 1.0) > tolerance:
            return EquivalenceResult(equivalent=False, method="dd")
    else:
        # Structural mismatch does not yet prove inequivalence: exact
        # compiler rewrites may drop sub-tolerance rotations, leaving a
        # product within ``tolerance`` of a phase times the identity but
        # with off-diagonal weights too large for the DD's own (much
        # tighter) canonicalisation tolerance to absorb.  For a unitary
        # U, |tr(U)| = 2^n holds iff U = e^{i θ}·I, and
        # ||U - e^{i θ}·I||_F² = 2·2^n·(1 - |tr(U)|/2^n), so the RMS
        # per-eigenvalue deviation sqrt(2·(1 - |tr|/2^n)) measures the
        # distance to the nearest phase-identity — compare *that* to the
        # requested tolerance.
        trace = _matrix_trace(result)
        fidelity = abs(trace) / (1 << num_qubits)
        deviation = np.sqrt(max(0.0, 2.0 * (1.0 - fidelity)))
        if deviation > max(tolerance, _TRACE_DEVIATION_FLOOR):
            return EquivalenceResult(
                equivalent=False, method="dd", min_fidelity=fidelity
            )
        phase = trace / abs(trace)
    if not up_to_global_phase and abs(phase - 1.0) > tolerance:
        return EquivalenceResult(equivalent=False, method="dd", phase=phase)
    return EquivalenceResult(equivalent=True, method="dd", phase=phase)


def _matrix_trace(edge: Edge) -> complex:
    """Trace of a matrix DD (memoised; linear in the node count).

    Matrix DDs in this package are fully leveled (only the zero edge
    terminates early), so the trace is the weighted sum of the diagonal
    successors' traces with terminal weight as the base case.
    """
    memo: dict = {}

    def walk(current: Edge) -> complex:
        if current.is_zero:
            return 0j
        if is_terminal(current.node):
            return current.weight
        node_trace = memo.get(current.node.index)
        if node_trace is None:
            node_trace = walk(current.node.edges[0]) + walk(current.node.edges[3])
            memo[current.node.index] = node_trace
        return current.weight * node_trace

    return walk(edge)


def assert_equivalent(
    first: QuantumCircuit, second: QuantumCircuit, **kwargs
) -> None:
    """Raise :class:`ReproError` unless the circuits are equivalent."""
    result = check_equivalence(first, second, **kwargs)
    if not result:
        raise ReproError(
            f"circuits {first.name!r} and {second.name!r} are not equivalent"
        )


def random_stimuli_check(
    first: QuantumCircuit,
    second: QuantumCircuit,
    num_stimuli: int = 8,
    seed: Union[int, np.random.Generator, None] = 0,
    tolerance: float = 1e-8,
) -> EquivalenceResult:
    """Falsification by random basis-state stimuli.

    Simulates both circuits on ``num_stimuli`` random computational-basis
    inputs and compares the final states' fidelity.  A fidelity below
    ``1 - tolerance`` on any stimulus proves inequivalence; passing all
    stimuli is strong (but not absolute) evidence of equivalence.
    """
    if first.num_qubits != second.num_qubits:
        return EquivalenceResult(equivalent=False, method="stimuli")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    dim = 2**first.num_qubits
    stimuli = {0, dim - 1}
    while len(stimuli) < min(num_stimuli, dim):
        stimuli.add(int(rng.integers(dim)))
    worst = 1.0
    for stimulus in sorted(stimuli):
        package = DDPackage()
        simulator = DDSimulator(package=package)
        state_a = simulator.run(first, initial_state=stimulus)
        state_b = simulator.run(second, initial_state=stimulus)
        fidelity = state_a.fidelity(state_b)
        worst = min(worst, fidelity)
        if fidelity < 1.0 - tolerance:
            return EquivalenceResult(
                equivalent=False,
                method="stimuli",
                min_fidelity=worst,
                counterexample=stimulus,
            )
    return EquivalenceResult(equivalent=True, method="stimuli", min_fidelity=worst)
