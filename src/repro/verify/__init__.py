"""DD-based verification of quantum circuits.

Decision diagrams are canonical, so two circuits are equivalent exactly
when their matrix DDs coincide (up to global phase).  This subpackage
provides that check plus a cheaper stimuli-based falsifier — the
verification use of DDs the paper cites ([22], [23]) and the tool this
repository uses to validate its own circuit transformations.
"""

from .equivalence import (
    EquivalenceResult,
    assert_equivalent,
    check_equivalence,
    random_stimuli_check,
)

__all__ = [
    "check_equivalence",
    "assert_equivalent",
    "random_stimuli_check",
    "EquivalenceResult",
]
