"""Quantum circuit intermediate representation.

Public surface:

* :class:`~repro.circuit.circuit.QuantumCircuit` — the circuit container
  with a fluent builder API,
* :class:`~repro.circuit.gates.Gate` and the gate constructors,
* :class:`~repro.circuit.operations.Operation` /
  :class:`~repro.circuit.operations.Measurement` /
  :class:`~repro.circuit.operations.Barrier`,
* :func:`~repro.circuit.qasm.parse_qasm` / :func:`~repro.circuit.qasm.to_qasm`,
* random circuit generators in :mod:`repro.circuit.random_circuits`.
"""

from .circuit import QuantumCircuit
from .drawer import circuit_layers, draw
from .gates import (
    GATE_REGISTRY,
    Gate,
    fsim_gate,
    h_gate,
    identity_gate,
    is_unitary,
    iswap_gate,
    phase_gate,
    rx_gate,
    rxx_gate,
    ry_gate,
    ryy_gate,
    rz_gate,
    rzz_gate,
    s_gate,
    sdg_gate,
    swap_gate,
    sx_gate,
    sy_gate,
    t_gate,
    tdg_gate,
    u2_gate,
    u3_gate,
    x_gate,
    y_gate,
    z_gate,
)
from .operations import Barrier, Measurement, Operation
from .qasm import parse_qasm, to_qasm
from .random_circuits import (
    random_circuit,
    random_clifford_t_circuit,
    random_product_state_circuit,
)

__all__ = [
    "QuantumCircuit",
    "draw",
    "circuit_layers",
    "Gate",
    "GATE_REGISTRY",
    "Operation",
    "Measurement",
    "Barrier",
    "parse_qasm",
    "to_qasm",
    "random_circuit",
    "random_clifford_t_circuit",
    "random_product_state_circuit",
    "is_unitary",
    "identity_gate",
    "x_gate",
    "y_gate",
    "z_gate",
    "h_gate",
    "s_gate",
    "sdg_gate",
    "t_gate",
    "tdg_gate",
    "sx_gate",
    "sy_gate",
    "rx_gate",
    "ry_gate",
    "rz_gate",
    "phase_gate",
    "u2_gate",
    "u3_gate",
    "swap_gate",
    "iswap_gate",
    "rzz_gate",
    "rxx_gate",
    "ryy_gate",
    "fsim_gate",
]
