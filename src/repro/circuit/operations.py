"""Circuit instructions: gate applications, measurements, barriers.

An :class:`Operation` binds a :class:`~repro.circuit.gates.Gate` to concrete
target qubits, with optional positive and negative controls.  Controls are
first-class here (rather than baked into enlarged matrices) because both the
dense simulator and the decision-diagram simulator exploit them directly —
a multi-controlled gate is a single traversal of the DD.
"""

from __future__ import annotations

import cmath

from dataclasses import dataclass, field
from typing import FrozenSet, List, Tuple

import numpy as np

from ..exceptions import CircuitError
from .gates import Gate

__all__ = [
    "BaseOperation",
    "Operation",
    "PhaseTerm",
    "DiagonalOperation",
    "Measurement",
    "Barrier",
    "Instruction",
]


class BaseOperation:
    """Marker base for unitary circuit instructions.

    Both :class:`Operation` (a gate application) and
    :class:`DiagonalOperation` (a coalesced block of subspace phases
    produced by the compile pipeline) derive from it; consumers that only
    care about "is this a unitary instruction" test against this class.
    """


@dataclass(frozen=True)
class Operation(BaseOperation):
    """A gate applied to ``targets``, conditioned on control qubits.

    ``controls`` fire when the control qubit is |1⟩; ``neg_controls`` fire
    when it is |0⟩ (anti-controls).  All qubit sets must be disjoint.
    """

    gate: Gate
    targets: Tuple[int, ...]
    controls: FrozenSet[int] = field(default_factory=frozenset)
    neg_controls: FrozenSet[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if len(self.targets) != self.gate.num_qubits:
            raise CircuitError(
                f"gate {self.gate.name!r} acts on {self.gate.num_qubits} "
                f"qubit(s) but got targets {self.targets}"
            )
        if len(set(self.targets)) != len(self.targets):
            raise CircuitError(f"duplicate target qubits in {self.targets}")
        all_qubits = set(self.targets) | self.controls | self.neg_controls
        expected = len(self.targets) + len(self.controls) + len(self.neg_controls)
        if len(all_qubits) != expected:
            raise CircuitError(
                "target, control, and anti-control qubits must be disjoint: "
                f"targets={self.targets} controls={sorted(self.controls)} "
                f"neg_controls={sorted(self.neg_controls)}"
            )
        if any(q < 0 for q in all_qubits):
            raise CircuitError("qubit indices must be non-negative")

    @property
    def qubits(self) -> FrozenSet[int]:
        """All qubits this operation touches."""
        return frozenset(self.targets) | self.controls | self.neg_controls

    @property
    def max_qubit(self) -> int:
        """The highest qubit index used by this operation."""
        return max(self.qubits)

    @property
    def is_controlled(self) -> bool:
        """Whether the operation has any (anti-)controls."""
        return bool(self.controls or self.neg_controls)

    def inverse(self) -> "Operation":
        """Return the adjoint operation (same qubits, inverse gate)."""
        return Operation(
            gate=self.gate.inverse(),
            targets=self.targets,
            controls=self.controls,
            neg_controls=self.neg_controls,
        )

    def full_matrix(self, num_qubits: int) -> np.ndarray:
        """Expand to a dense ``2^n x 2^n`` unitary on ``num_qubits`` qubits.

        Intended for verification on small systems; the simulators never
        build these matrices.
        """
        if self.max_qubit >= num_qubits:
            raise CircuitError(
                f"operation uses qubit {self.max_qubit} but the register has "
                f"only {num_qubits} qubits"
            )
        dim = 2**num_qubits
        matrix = np.zeros((dim, dim), dtype=np.complex128)
        gate = self.gate.array
        for column in range(dim):
            fires = all((column >> c) & 1 for c in self.controls) and all(
                not ((column >> c) & 1) for c in self.neg_controls
            )
            if not fires:
                matrix[column, column] = 1.0
                continue
            sub_col = 0
            for bit, qubit in enumerate(self.targets):
                sub_col |= ((column >> qubit) & 1) << bit
            base = column
            for qubit in self.targets:
                base &= ~(1 << qubit)
            for sub_row in range(gate.shape[0]):
                amplitude = gate[sub_row, sub_col]
                if amplitude == 0:
                    continue
                row = base
                for bit, qubit in enumerate(self.targets):
                    row |= ((sub_row >> bit) & 1) << qubit
                matrix[row, column] = amplitude
        return matrix

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [str(self.gate)]
        if self.controls:
            parts.append("c" + ",".join(str(q) for q in sorted(self.controls)))
        if self.neg_controls:
            parts.append("nc" + ",".join(str(q) for q in sorted(self.neg_controls)))
        parts.append("on " + ",".join(str(q) for q in self.targets))
        return " ".join(parts)


@dataclass(frozen=True)
class PhaseTerm:
    """One subspace phase: multiply ``e^{i angle}`` where all ``ones``
    qubits are |1⟩ and all ``zeros`` qubits are |0⟩.

    With both sets empty the term is a plain global phase.  Terms are the
    monomials of a phase polynomial: a diagonal unitary over qubits
    ``{q_1..q_k}`` is exactly the product of at most ``2^k`` such terms.
    """

    ones: FrozenSet[int] = field(default_factory=frozenset)
    zeros: FrozenSet[int] = field(default_factory=frozenset)
    angle: float = 0.0

    def __post_init__(self) -> None:
        if self.ones & self.zeros:
            raise CircuitError(
                f"PhaseTerm qubits must be disjoint: ones={sorted(self.ones)} "
                f"zeros={sorted(self.zeros)}"
            )
        if any(q < 0 for q in self.ones | self.zeros):
            raise CircuitError("qubit indices must be non-negative")

    @property
    def qubits(self) -> FrozenSet[int]:
        """All qubits the term conditions on, ascending."""
        return self.ones | self.zeros


@dataclass(frozen=True)
class DiagonalOperation(BaseOperation):
    """A coalesced diagonal unitary: an ordered product of subspace phases.

    The compile pipeline's diagonal-coalescing pass folds runs of adjacent
    diagonal gates (Z/S/T/P/RZ/CZ/CP/RZZ, controlled or not) into one of
    these.  The DD applier walks the state once per *term* instead of once
    per original gate, and merged terms (e.g. two CP ladders hitting the
    same qubit pair) collapse into a single traversal.
    """

    terms: Tuple[PhaseTerm, ...] = ()

    def __post_init__(self) -> None:
        for term in self.terms:
            if not isinstance(term, PhaseTerm):
                raise CircuitError(
                    f"DiagonalOperation terms must be PhaseTerm, got "
                    f"{type(term).__name__}"
                )

    @property
    def qubits(self) -> FrozenSet[int]:
        """Union of all term qubits, ascending."""
        qubits: FrozenSet[int] = frozenset()
        for term in self.terms:
            qubits |= term.qubits
        return qubits

    @property
    def max_qubit(self) -> int:
        """Highest qubit index used; ``-1`` for a purely global phase."""
        return max(self.qubits, default=-1)

    @property
    def is_controlled(self) -> bool:
        """Always ``False`` — controls are folded into the terms."""
        return False

    def inverse(self) -> "DiagonalOperation":
        """Adjoint block: every phase negated (order is irrelevant)."""
        return DiagonalOperation(
            terms=tuple(
                PhaseTerm(ones=t.ones, zeros=t.zeros, angle=-t.angle)
                for t in self.terms
            )
        )

    def full_matrix(self, num_qubits: int) -> np.ndarray:
        """Dense diagonal unitary on ``num_qubits`` qubits (verification)."""
        if self.max_qubit >= num_qubits:
            raise CircuitError(
                f"operation uses qubit {self.max_qubit} but the register has "
                f"only {num_qubits} qubits"
            )
        dim = 2**num_qubits
        angles = np.zeros(dim, dtype=np.float64)
        indices = np.arange(dim)
        for term in self.terms:
            select = np.ones(dim, dtype=bool)
            for qubit in term.ones:
                select &= (indices >> qubit) & 1 == 1
            for qubit in term.zeros:
                select &= (indices >> qubit) & 1 == 0
            angles[select] += term.angle
        return np.diag(np.exp(1j * angles))

    def to_operations(self) -> List["Operation"]:
        """Lower to plain :class:`Operation` instructions (one per term).

        Used by consumers that need gate semantics — matrix-DD
        construction, QASM emission, equivalence checking.  Terms with
        ``ones`` become (multi-controlled) phase gates; ``zeros`` become
        anti-controls; a bare global phase becomes a ``gphase`` gate.
        """
        from .gates import Gate as _Gate, gphase_gate, phase_gate

        operations: List[Operation] = []
        for term in self.terms:
            if term.ones:
                target = min(term.ones)
                operations.append(
                    Operation(
                        gate=phase_gate(term.angle),
                        targets=(target,),
                        controls=term.ones - {target},
                        neg_controls=term.zeros,
                    )
                )
            elif term.zeros:
                # Phase on the all-zeros subspace: diag(e^{i a}, 1) on one
                # qubit, anti-controlled on the rest.
                target = min(term.zeros)
                phase = cmath.exp(1j * term.angle)
                gate = _Gate(
                    name="p0",
                    num_qubits=1,
                    matrix=((phase, 0j), (0j, 1 + 0j)),
                    params=(term.angle,),
                )
                operations.append(
                    Operation(
                        gate=gate,
                        targets=(target,),
                        neg_controls=term.zeros - {target},
                    )
                )
            else:
                operations.append(
                    Operation(gate=gphase_gate(term.angle), targets=(0,))
                )
        return operations

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        qubits = ",".join(str(q) for q in sorted(self.qubits))
        return f"diag[{len(self.terms)} terms] on {qubits or 'global'}"


@dataclass(frozen=True)
class Measurement:
    """Computational-basis measurement of selected qubits.

    With ``qubits=()`` the instruction measures the full register (the
    common case for weak simulation — the paper samples whole bitstrings).
    """

    qubits: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(f"duplicate measured qubits in {self.qubits}")

    @property
    def measures_all(self) -> bool:
        """Whether this measurement reads the full register."""
        return not self.qubits


@dataclass(frozen=True)
class Barrier:
    """A no-op scheduling barrier (kept for QASM round-trips)."""

    qubits: Tuple[int, ...] = ()


Instruction = object  # Operation | Measurement | Barrier (kept loose for 3.9)
