"""Circuit instructions: gate applications, measurements, barriers.

An :class:`Operation` binds a :class:`~repro.circuit.gates.Gate` to concrete
target qubits, with optional positive and negative controls.  Controls are
first-class here (rather than baked into enlarged matrices) because both the
dense simulator and the decision-diagram simulator exploit them directly —
a multi-controlled gate is a single traversal of the DD.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

import numpy as np

from ..exceptions import CircuitError
from .gates import Gate

__all__ = ["Operation", "Measurement", "Barrier", "Instruction"]


@dataclass(frozen=True)
class Operation:
    """A gate applied to ``targets``, conditioned on control qubits.

    ``controls`` fire when the control qubit is |1⟩; ``neg_controls`` fire
    when it is |0⟩ (anti-controls).  All qubit sets must be disjoint.
    """

    gate: Gate
    targets: Tuple[int, ...]
    controls: FrozenSet[int] = field(default_factory=frozenset)
    neg_controls: FrozenSet[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if len(self.targets) != self.gate.num_qubits:
            raise CircuitError(
                f"gate {self.gate.name!r} acts on {self.gate.num_qubits} "
                f"qubit(s) but got targets {self.targets}"
            )
        if len(set(self.targets)) != len(self.targets):
            raise CircuitError(f"duplicate target qubits in {self.targets}")
        all_qubits = set(self.targets) | self.controls | self.neg_controls
        expected = len(self.targets) + len(self.controls) + len(self.neg_controls)
        if len(all_qubits) != expected:
            raise CircuitError(
                "target, control, and anti-control qubits must be disjoint: "
                f"targets={self.targets} controls={sorted(self.controls)} "
                f"neg_controls={sorted(self.neg_controls)}"
            )
        if any(q < 0 for q in all_qubits):
            raise CircuitError("qubit indices must be non-negative")

    @property
    def qubits(self) -> FrozenSet[int]:
        """All qubits this operation touches."""
        return frozenset(self.targets) | self.controls | self.neg_controls

    @property
    def max_qubit(self) -> int:
        """The highest qubit index used by this operation."""
        return max(self.qubits)

    @property
    def is_controlled(self) -> bool:
        return bool(self.controls or self.neg_controls)

    def inverse(self) -> "Operation":
        """Return the adjoint operation (same qubits, inverse gate)."""
        return Operation(
            gate=self.gate.inverse(),
            targets=self.targets,
            controls=self.controls,
            neg_controls=self.neg_controls,
        )

    def full_matrix(self, num_qubits: int) -> np.ndarray:
        """Expand to a dense ``2^n x 2^n`` unitary on ``num_qubits`` qubits.

        Intended for verification on small systems; the simulators never
        build these matrices.
        """
        if self.max_qubit >= num_qubits:
            raise CircuitError(
                f"operation uses qubit {self.max_qubit} but the register has "
                f"only {num_qubits} qubits"
            )
        dim = 2**num_qubits
        matrix = np.zeros((dim, dim), dtype=np.complex128)
        gate = self.gate.array
        for column in range(dim):
            fires = all((column >> c) & 1 for c in self.controls) and all(
                not ((column >> c) & 1) for c in self.neg_controls
            )
            if not fires:
                matrix[column, column] = 1.0
                continue
            sub_col = 0
            for bit, qubit in enumerate(self.targets):
                sub_col |= ((column >> qubit) & 1) << bit
            base = column
            for qubit in self.targets:
                base &= ~(1 << qubit)
            for sub_row in range(gate.shape[0]):
                amplitude = gate[sub_row, sub_col]
                if amplitude == 0:
                    continue
                row = base
                for bit, qubit in enumerate(self.targets):
                    row |= ((sub_row >> bit) & 1) << qubit
                matrix[row, column] = amplitude
        return matrix

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [str(self.gate)]
        if self.controls:
            parts.append("c" + ",".join(str(q) for q in sorted(self.controls)))
        if self.neg_controls:
            parts.append("nc" + ",".join(str(q) for q in sorted(self.neg_controls)))
        parts.append("on " + ",".join(str(q) for q in self.targets))
        return " ".join(parts)


@dataclass(frozen=True)
class Measurement:
    """Computational-basis measurement of selected qubits.

    With ``qubits=()`` the instruction measures the full register (the
    common case for weak simulation — the paper samples whole bitstrings).
    """

    qubits: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(f"duplicate measured qubits in {self.qubits}")

    @property
    def measures_all(self) -> bool:
        return not self.qubits


@dataclass(frozen=True)
class Barrier:
    """A no-op scheduling barrier (kept for QASM round-trips)."""

    qubits: Tuple[int, ...] = ()


Instruction = object  # Operation | Measurement | Barrier (kept loose for 3.9)
