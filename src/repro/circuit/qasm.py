"""OpenQASM 2.0 import and export (pragmatic subset).

Supported statements: ``OPENQASM 2.0``, ``include``, ``qreg``, ``creg``,
gate applications from the built-in registry (with ``c``-prefixed names for
controlled versions, e.g. ``cx``, ``ccx``, ``cp(theta)``), ``measure``, and
``barrier``.  Parameter expressions understand ``pi``, the four arithmetic
operators, parentheses, and unary minus.  Both ``//`` line comments and
``/* ... */`` block comments are handled, and statements may span lines.

This is enough to round-trip every circuit this library generates and to
load typical benchmark files (QFT, Grover, adders) from other toolchains.

The parser is strict by design: it fronts a network service that accepts
untrusted input, so every malformed construct must surface as a
:class:`~repro.exceptions.QasmError` naming the offending statement —
never a bare ``KeyError``/``IndexError`` (which a server maps to a 500)
and never a silent misparse that drops operands or statements on the
floor.  Known-unsupported OpenQASM constructs (``opaque``, ``if``,
``reset``) are rejected explicitly with a message saying so.
"""

from __future__ import annotations

import ast
import math
import re
from typing import Dict, List, Optional, Tuple

from ..exceptions import CircuitError, QasmError
from . import gates as g
from .circuit import QuantumCircuit
from .operations import Barrier, DiagonalOperation, Measurement, Operation

__all__ = ["parse_qasm", "to_qasm"]

_HEADER_RE = re.compile(r"OPENQASM\s+2(\.\d+)?\s*;")
_QREG_RE = re.compile(r"qreg\s+([A-Za-z_][A-Za-z0-9_]*)\s*\[\s*(\d+)\s*\]\s*;")
_CREG_RE = re.compile(r"creg\s+([A-Za-z_][A-Za-z0-9_]*)\s*\[\s*(\d+)\s*\]\s*;")
# Parameter list allows one level of nested parentheses (macro expansion
# wraps substituted expressions in parens).
_GATE_RE = re.compile(
    r"([A-Za-z_][A-Za-z0-9_]*)\s*(\(((?:[^()]|\([^()]*\))*)\))?\s+(.*?)\s*;"
)
#: One qubit operand: ``name`` or ``name[index]`` — matched with
#: ``fullmatch`` per comma-separated operand so stray tokens are errors
#: rather than silently ignored.
_OPERAND_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\s*(?:\[\s*(\d+)\s*\])?")
_MEASURE_RE = re.compile(
    r"measure\s+([A-Za-z_][A-Za-z0-9_]*)(\s*\[\s*(\d+)\s*\])?\s*->\s*"
    r"([A-Za-z_][A-Za-z0-9_]*)(\s*\[\s*(\d+)\s*\])?\s*;"
)
_INCLUDE_RE = re.compile(r'include\s+"[^"]*"\s*;\s*$')
_KEYWORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

#: Statements the library knowingly does not implement.  They must be
#: rejected by name: falling through to the generic gate parser would
#: either produce a baffling "unknown gate" message or, worse, drop the
#: statement and simulate a different circuit than the caller wrote.
_UNSUPPORTED_STATEMENTS: Dict[str, str] = {
    "opaque": "opaque gate declarations are not supported",
    "if": "classically controlled statements ('if') are not supported",
    "reset": "mid-circuit reset is not supported",
}

# Controlled aliases: name -> (base gate name, number of controls)
_CONTROL_ALIASES: Dict[str, Tuple[str, int]] = {
    "cx": ("x", 1),
    "cnot": ("x", 1),
    "cy": ("y", 1),
    "cz": ("z", 1),
    "ch": ("h", 1),
    "cs": ("s", 1),
    "csdg": ("sdg", 1),
    "ct": ("t", 1),
    "cp": ("p", 1),
    "cu1": ("p", 1),
    "crx": ("rx", 1),
    "cry": ("ry", 1),
    "crz": ("rz", 1),
    "ccx": ("x", 2),
    "toffoli": ("x", 2),
    "ccz": ("z", 2),
    "cswap": ("swap", 1),
    "fredkin": ("swap", 1),
    "mcx": ("x", -1),
    "mcz": ("z", -1),
    "mcp": ("p", -1),
}


def _eval_param(expression: str, line: int) -> float:
    """Safely evaluate a QASM parameter expression."""
    expression = expression.strip().replace("PI", "pi")
    try:
        tree = ast.parse(expression, mode="eval")
    except SyntaxError as exc:
        raise QasmError(f"bad parameter expression {expression!r}", line) from exc

    def walk(node: ast.AST) -> float:
        if isinstance(node, ast.Expression):
            return walk(node.body)
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            return float(node.value)
        if isinstance(node, ast.Name) and node.id == "pi":
            return math.pi
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            value = walk(node.operand)
            return -value if isinstance(node.op, ast.USub) else value
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow)
        ):
            left, right = walk(node.left), walk(node.right)
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.Div):
                return left / right
            return left**right
        raise QasmError(f"unsupported expression {expression!r}", line)

    try:
        return walk(tree)
    except ZeroDivisionError as exc:
        raise QasmError(
            f"division by zero in parameter expression {expression!r}", line
        ) from exc


def _strip_block_comments(text: str) -> str:
    """Remove ``/* ... */`` block comments and ``//`` line comments.

    A single left-to-right scan so the two comment styles cannot confuse
    each other (``//`` inside a block comment must not hide the ``*/``;
    ``/*`` inside a line comment must not open a block).  Newlines inside
    block comments are preserved, keeping every later diagnostic's line
    number aligned with the original source.  An unterminated ``/*`` is
    an error: swallowing the rest of the file would silently drop
    statements.
    """
    out: List[str] = []
    i, length = 0, len(text)
    while i < length:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < length else ""
        if ch == "/" and nxt == "/":
            while i < length and text[i] != "\n":
                i += 1
        elif ch == "/" and nxt == "*":
            start_line = text.count("\n", 0, i) + 1
            end = text.find("*/", i + 2)
            if end < 0:
                raise QasmError("unterminated block comment '/*'", start_line)
            out.append("\n" * text.count("\n", i, end))
            i = end + 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _strip_comments(text: str) -> List[Tuple[int, str]]:
    """Split source into (line_number, statement) pairs without comments."""
    lines = []
    for number, raw in enumerate(text.splitlines(), start=1):
        code = raw.split("//", 1)[0].strip()
        if code:
            lines.append((number, code))
    # Statements can span lines; re-join and re-split on ';'
    statements: List[Tuple[int, str]] = []
    buffer = ""
    buffer_line = 0
    for number, code in lines:
        if not buffer:
            buffer_line = number
        buffer += " " + code
        while ";" in buffer:
            statement, buffer = buffer.split(";", 1)
            statement = statement.strip()
            if statement:
                statements.append((buffer_line, statement + ";"))
            buffer_line = number
    if buffer.strip():
        statements.append((buffer_line, buffer.strip() + ";"))
    return statements


_GATE_DEF_RE = re.compile(
    r"gate\s+([A-Za-z_][A-Za-z0-9_]*)\s*(\(([^)]*)\))?\s*([^{]*)\{([^}]*)\}",
    re.DOTALL,
)


class _GateMacro:
    """A user-defined ``gate`` block (OpenQASM 2.0 macro)."""

    def __init__(self, name: str, params: List[str], qubit_args: List[str], body: str):
        self.name = name
        self.params = params
        self.qubit_args = qubit_args
        self.body = body

    def expand(
        self, param_values: List[str], operands: List[str], line: int
    ) -> List[Tuple[int, str]]:
        """Substitute formals with actuals and return body statements."""
        if len(param_values) != len(self.params):
            raise QasmError(
                f"gate {self.name!r} takes {len(self.params)} parameter(s), "
                f"got {len(param_values)}",
                line,
            )
        if len(operands) != len(self.qubit_args):
            raise QasmError(
                f"gate {self.name!r} takes {len(self.qubit_args)} qubit(s), "
                f"got {len(operands)}",
                line,
            )
        body = self.body
        for formal, actual in zip(self.params, param_values):
            body = re.sub(rf"\b{re.escape(formal)}\b", f"({actual})", body)
        for formal, actual in zip(self.qubit_args, operands):
            body = re.sub(rf"\b{re.escape(formal)}\b", actual, body)
        return [
            (line, piece.strip() + ";")
            for piece in body.split(";")
            if piece.strip()
        ]


def _extract_gate_definitions(text: str) -> Tuple[str, Dict[str, _GateMacro]]:
    """Pull ``gate ... { ... }`` blocks out of the source."""
    macros: Dict[str, _GateMacro] = {}

    def record(match: re.Match) -> str:
        name = match.group(1)
        params = [p.strip() for p in (match.group(3) or "").split(",") if p.strip()]
        qubit_args = [
            q.strip() for q in match.group(4).split(",") if q.strip()
        ]
        macros[name.lower()] = _GateMacro(name, params, qubit_args, match.group(5))
        return ""

    remaining = _GATE_DEF_RE.sub(record, text)
    return remaining, macros


def parse_qasm(text: str) -> QuantumCircuit:
    """Parse OpenQASM 2.0 source into a :class:`QuantumCircuit`.

    Multiple quantum registers are concatenated in declaration order.
    User-defined ``gate`` blocks are supported by macro expansion (bodies
    may reference built-in gates and previously defined gates).
    """
    # Strip comments first so a commented-out gate body cannot confuse
    # the block extractor, then pull out the gate definitions.
    text = _strip_block_comments(text)
    text, macros = _extract_gate_definitions(text)
    statements = _strip_comments(text)
    if not statements:
        raise QasmError("empty QASM input")

    registers: Dict[str, Tuple[int, int]] = {}  # name -> (offset, size)
    cregisters: Dict[str, int] = {}  # name -> size
    total_qubits = 0
    circuit: QuantumCircuit | None = None
    pending: List[Tuple[int, str]] = []

    def qubit_index(name: str, index: int, line: int) -> int:
        if name not in registers:
            raise QasmError(f"unknown quantum register {name!r}", line)
        offset, size = registers[name]
        if index >= size:
            raise QasmError(f"index {index} out of range for {name}[{size}]", line)
        return offset + index

    def parse_operands(
        operands_src: str,
        statement: str,
        line: int,
        allow_bare_register: bool = False,
    ) -> List[int]:
        """Resolve a comma-separated operand list to absolute qubit indices.

        Every operand must be ``name[index]`` (or, for ``barrier``, a
        declared register name, which expands to all its qubits).
        Anything else — a stray token, a malformed bracket, a trailing
        comma — is an error naming the statement: silently dropping
        operands would simulate a different circuit than the one written.
        """
        qubits: List[int] = []
        for operand in operands_src.split(","):
            operand = operand.strip()
            if not operand:
                raise QasmError(
                    f"empty qubit operand in statement {statement!r}", line
                )
            match = _OPERAND_RE.fullmatch(operand)
            if not match:
                raise QasmError(
                    f"cannot parse qubit operand {operand!r} in statement "
                    f"{statement!r}",
                    line,
                )
            name, index = match.group(1), match.group(2)
            if index is not None:
                qubits.append(qubit_index(name, int(index), line))
            elif allow_bare_register:
                if name not in registers:
                    raise QasmError(
                        f"unknown quantum register {name!r} in statement "
                        f"{statement!r}",
                        line,
                    )
                offset, size = registers[name]
                qubits.extend(range(offset, offset + size))
            else:
                raise QasmError(
                    f"whole-register operand {name!r} in statement "
                    f"{statement!r} is not supported for gate applications; "
                    f"index each qubit (e.g. {name}[0])",
                    line,
                )
        return qubits

    for line, statement in statements:
        if _HEADER_RE.match(statement):
            continue
        keyword_match = _KEYWORD_RE.match(statement)
        keyword = keyword_match.group(0) if keyword_match else ""
        if keyword == "OPENQASM":
            raise QasmError(
                f"unsupported OPENQASM version in {statement!r} "
                "(expected 2.0)",
                line,
            )
        if keyword == "include":
            if not _INCLUDE_RE.match(statement):
                raise QasmError(
                    f"malformed include statement {statement!r}", line
                )
            continue
        if keyword == "qreg":
            match = _QREG_RE.match(statement)
            if not match:
                raise QasmError(
                    f"malformed qreg declaration {statement!r}", line
                )
            name, size = match.group(1), int(match.group(2))
            if name in registers:
                raise QasmError(f"duplicate register {name!r}", line)
            if size < 1:
                raise QasmError(
                    f"register size must be positive in {statement!r}", line
                )
            registers[name] = (total_qubits, size)
            total_qubits += size
            continue
        if keyword == "creg":
            match = _CREG_RE.match(statement)
            if not match:
                raise QasmError(
                    f"malformed creg declaration {statement!r}", line
                )
            name, size = match.group(1), int(match.group(2))
            if name in cregisters:
                raise QasmError(f"duplicate classical register {name!r}", line)
            if size < 1:
                raise QasmError(
                    f"register size must be positive in {statement!r}", line
                )
            cregisters[name] = size
            continue
        pending.append((line, statement))

    if total_qubits == 0:
        raise QasmError("no qreg declared")
    circuit = QuantumCircuit(total_qubits, name="qasm")

    from collections import deque

    worklist = deque(pending)
    expansion_guard = 0
    while worklist:
        line, statement = worklist.popleft()
        expansion_guard += 1
        if expansion_guard > 1_000_000:
            raise QasmError("gate macro expansion does not terminate", line)
        keyword_match = _KEYWORD_RE.match(statement)
        keyword = keyword_match.group(0).lower() if keyword_match else ""
        if keyword in _UNSUPPORTED_STATEMENTS:
            raise QasmError(
                f"{_UNSUPPORTED_STATEMENTS[keyword]}: {statement!r}", line
            )
        if keyword == "gate":
            raise QasmError(
                f"malformed or unterminated gate definition {statement!r} "
                "(every 'gate' block needs a matching '{ ... }')",
                line,
            )
        measure = _MEASURE_RE.match(statement)
        if measure:
            qname, qindex = measure.group(1), measure.group(3)
            cname, cindex = measure.group(4), measure.group(6)
            if cname not in cregisters:
                raise QasmError(
                    f"unknown classical register {cname!r} in statement "
                    f"{statement!r}",
                    line,
                )
            if (qindex is None) != (cindex is None):
                raise QasmError(
                    f"measure must index both registers or neither in "
                    f"statement {statement!r}",
                    line,
                )
            if qindex is None:
                if qname not in registers:
                    raise QasmError(
                        f"unknown quantum register {qname!r} in statement "
                        f"{statement!r}",
                        line,
                    )
                offset, size = registers[qname]
                if cregisters[cname] < size:
                    raise QasmError(
                        f"classical register {cname}[{cregisters[cname]}] is "
                        f"too small for {qname}[{size}] in statement "
                        f"{statement!r}",
                        line,
                    )
                if size == total_qubits:
                    circuit.measure_all()
                else:
                    # Register-to-register measure covers exactly that
                    # register's qubits — not the whole circuit.
                    circuit.measure(*range(offset, offset + size))
            else:
                if int(cindex) >= cregisters[cname]:
                    raise QasmError(
                        f"index {cindex} out of range for "
                        f"{cname}[{cregisters[cname]}] in statement "
                        f"{statement!r}",
                        line,
                    )
                circuit.measure(qubit_index(qname, int(qindex), line))
            continue
        if keyword == "measure":
            raise QasmError(f"malformed measure statement {statement!r}", line)
        match = _GATE_RE.match(statement)
        if not match:
            raise QasmError(f"cannot parse statement {statement!r}", line)
        gate_name = match.group(1).lower()
        params_src = match.group(3)
        operands_src = match.group(4)
        params = (
            tuple(_eval_param(p, line) for p in params_src.split(","))
            if params_src
            else ()
        )

        if gate_name == "barrier":
            qubits = parse_operands(
                operands_src, statement, line, allow_bare_register=True
            )
            if len(set(qubits)) != len(qubits):
                raise QasmError(
                    f"duplicate qubit operand in statement {statement!r}", line
                )
            if set(qubits) == set(range(total_qubits)):
                circuit.barrier()
            else:
                circuit.barrier(*qubits)
            continue
        if gate_name == "u":
            gate_name = "u3"

        num_controls = 0
        base_name = gate_name
        if gate_name in _CONTROL_ALIASES:
            base_name, num_controls = _CONTROL_ALIASES[gate_name]
        if base_name not in g.GATE_REGISTRY and gate_name in macros:
            macro = macros[gate_name]
            raw_params = (
                [p.strip() for p in params_src.split(",")] if params_src else []
            )
            raw_operands = [o.strip() for o in operands_src.split(",") if o.strip()]
            worklist.extendleft(
                reversed(macro.expand(raw_params, raw_operands, line))
            )
            continue
        if base_name not in g.GATE_REGISTRY:
            raise QasmError(f"unknown gate {gate_name!r}", line)
        try:
            gate = g.GATE_REGISTRY[base_name](*params)
        except (TypeError, ValueError) as exc:
            raise QasmError(
                f"bad parameter(s) for gate {gate_name!r} in statement "
                f"{statement!r}: {exc}",
                line,
            ) from exc
        qubits = parse_operands(operands_src, statement, line)
        if len(set(qubits)) != len(qubits):
            raise QasmError(
                f"duplicate qubit operand in statement {statement!r} "
                "(gate operands must be distinct qubits)",
                line,
            )
        if num_controls < 0:  # mcx / mcz / mcp: all but last operand control
            num_controls = len(qubits) - gate.num_qubits
            if num_controls < 0:
                raise QasmError(
                    f"gate {gate_name!r} needs at least {gate.num_qubits} "
                    f"operand(s), got {len(qubits)}",
                    line,
                )
        controls = qubits[:num_controls]
        targets = qubits[num_controls:]
        if len(targets) != gate.num_qubits:
            raise QasmError(
                f"gate {gate_name!r} expects {gate.num_qubits} target(s), "
                f"got {len(targets)}",
                line,
            )
        try:
            circuit.append(
                Operation(
                    gate=gate,
                    targets=tuple(targets),
                    controls=frozenset(controls),
                )
            )
        except CircuitError as exc:
            raise QasmError(
                f"invalid statement {statement!r}: {exc}", line
            ) from exc
    return circuit


def _format_param(value: float) -> str:
    """Render a parameter, using pi fractions when *bit-exact*.

    A pi fraction is emitted only when re-evaluating it reproduces
    ``value`` exactly (``==``, not within a tolerance): the importer
    evaluates ``n*pi/d`` as ``(n * math.pi) / d``, which is precisely the
    float this formatter tests against.  Values merely *near* a pi
    fraction — e.g. wrapped phases like ``2π - 2e-13`` accumulated by the
    diagonal-coalescing pass — fall through to ``repr``, which round-trips
    every float bit-exactly.  A tolerance here would silently snap such
    phases to the fraction and break export→import equality.
    """
    for denominator in (1, 2, 3, 4, 6, 8, 16, 32, 64, 128, 256):
        for numerator in range(-2 * denominator, 2 * denominator + 1):
            if numerator == 0:
                continue
            if value == numerator * math.pi / denominator:
                sign = "-" if numerator < 0 else ""
                numerator = abs(numerator)
                num = "pi" if numerator == 1 else f"{numerator}*pi"
                return f"{sign}{num}" if denominator == 1 else f"{sign}{num}/{denominator}"
    return repr(value)


def _u3_phase_correction(op: Operation) -> Optional[str]:
    """Global-phase line restoring exactness of a fused ``u3``, or None.

    The fusion pass emits ``u3``-named gates carrying the *exact* product
    matrix, which may differ from the textbook ``u3(θ,φ,λ)`` matrix by a
    global phase ``e^{iα}``.  Re-parsing the bare ``u3(θ,φ,λ)`` would drop
    that phase, so the exporter emits an explicit ``gphase(α)`` companion
    statement whenever the stored matrix and the parameter reconstruction
    disagree.
    """
    import cmath

    import numpy as np

    from .gates import u3_gate

    if op.gate.name != "u3" or len(op.gate.params) != 3:
        return None
    actual = np.asarray(op.gate.array, dtype=complex)
    reference = np.asarray(u3_gate(*op.gate.params).array, dtype=complex)
    if np.abs(actual - reference).max() <= 1e-12:
        return None
    pivot = int(np.argmax(np.abs(reference)))
    alpha = cmath.phase(actual.flat[pivot] / reference.flat[pivot])
    if np.abs(actual - cmath.exp(1j * alpha) * reference).max() > 1e-9:
        raise QasmError(
            f"u3 gate matrix does not match its parameters {op.gate.params} "
            "even up to a global phase; cannot serialise faithfully"
        )
    if op.is_controlled:
        # Under control the phase is observable and gphase no longer
        # commutes out; refuse rather than silently change the circuit.
        raise QasmError(
            "cannot serialise a controlled u3 whose matrix carries a "
            "global phase; decompose first"
        )
    return f"gphase({_format_param(alpha)}) q[{op.targets[0]}];"


def _operation_line(op: Operation) -> str:
    """Render one :class:`Operation` as a QASM gate statement."""
    if op.neg_controls:
        raise QasmError(
            "OpenQASM 2.0 cannot express anti-controls; decompose first"
        )
    name = op.gate.name
    controls = sorted(op.controls)
    if controls:
        if len(controls) <= 2 and f"{'c' * len(controls)}{name}" in _CONTROL_ALIASES:
            name = f"{'c' * len(controls)}{name}"
        else:
            name = f"mc{name}"
    if op.gate.params:
        rendered = ",".join(_format_param(p) for p in op.gate.params)
        name = f"{name}({rendered})"
    operands = ",".join(f"q[{q}]" for q in list(controls) + list(op.targets))
    return f"{name} {operands};"


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialise a circuit to OpenQASM 2.0.

    Gates with more than two controls are emitted with the non-standard
    ``mcx``/``mcz``/``mcp`` names that :func:`parse_qasm` understands.
    Coalesced diagonal blocks (:class:`DiagonalOperation`) are lowered to
    one (multi-controlled) phase gate per term; fused ``u3`` gates are
    emitted by their ZYZ parameters, so re-parsing recovers them up to a
    global phase.
    """
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
        f"creg c[{circuit.num_qubits}];",
    ]
    for instruction in circuit:
        if isinstance(instruction, Barrier):
            if instruction.qubits:
                operands = ",".join(f"q[{q}]" for q in instruction.qubits)
                lines.append(f"barrier {operands};")
            else:
                lines.append("barrier q;")
            continue
        if isinstance(instruction, Measurement):
            if instruction.measures_all:
                lines.append("measure q -> c;")
            else:
                for qubit in instruction.qubits:
                    lines.append(f"measure q[{qubit}] -> c[{qubit}];")
            continue
        if isinstance(instruction, DiagonalOperation):
            for piece in instruction.to_operations():
                if piece.gate.name == "p0":
                    # Anti-controlled phase terms have no QASM 2.0 spelling.
                    raise QasmError(
                        "OpenQASM 2.0 cannot express anti-controls; "
                        "decompose first"
                    )
                lines.append(_operation_line(piece))
            continue
        correction = _u3_phase_correction(instruction)
        if correction is not None:
            lines.append(correction)
        lines.append(_operation_line(instruction))
    return "\n".join(lines) + "\n"
