"""Random circuit generation helpers.

Used by tests (property-based fuzzing of the simulators) and by the Grover
benchmark's random oracle.  All functions take an explicit ``numpy``
Generator (or seed) so every random circuit is reproducible.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from . import gates as g
from .circuit import QuantumCircuit

__all__ = ["random_circuit", "random_clifford_t_circuit", "random_product_state_circuit"]

_SINGLE_QUBIT_FIXED = ("x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx")
_SINGLE_QUBIT_ROTATIONS = ("rx", "ry", "rz", "p")


def _rng(seed: Union[int, np.random.Generator, None]) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_circuit(
    num_qubits: int,
    num_gates: int,
    seed: Union[int, np.random.Generator, None] = None,
    two_qubit_fraction: float = 0.3,
    allow_controls: bool = True,
) -> QuantumCircuit:
    """Generate a random circuit mixing rotations, fixed gates, and CNOT/CZ.

    ``two_qubit_fraction`` is the probability that a given gate entangles
    two qubits (ignored when the register has a single qubit).
    """
    rng = _rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"random_{num_qubits}q_{num_gates}g")
    for _ in range(num_gates):
        entangle = num_qubits >= 2 and rng.random() < two_qubit_fraction
        if entangle and allow_controls:
            control, target = rng.choice(num_qubits, size=2, replace=False)
            if rng.random() < 0.5:
                circuit.cx(int(control), int(target))
            else:
                circuit.cz(int(control), int(target))
        elif entangle:
            q1, q2 = rng.choice(num_qubits, size=2, replace=False)
            circuit.swap(int(q1), int(q2))
        else:
            qubit = int(rng.integers(num_qubits))
            if rng.random() < 0.5:
                name = _SINGLE_QUBIT_FIXED[rng.integers(len(_SINGLE_QUBIT_FIXED))]
                circuit.apply(g.GATE_REGISTRY[name](), qubit)
            else:
                name = _SINGLE_QUBIT_ROTATIONS[
                    rng.integers(len(_SINGLE_QUBIT_ROTATIONS))
                ]
                theta = float(rng.uniform(0, 2 * np.pi))
                circuit.apply(g.GATE_REGISTRY[name](theta), qubit)
    return circuit


def random_clifford_t_circuit(
    num_qubits: int,
    num_gates: int,
    seed: Union[int, np.random.Generator, None] = None,
) -> QuantumCircuit:
    """Random circuit over the Clifford+T gate set {H, S, T, CNOT}."""
    rng = _rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"clifford_t_{num_qubits}q")
    names = ("h", "s", "t")
    for _ in range(num_gates):
        if num_qubits >= 2 and rng.random() < 0.3:
            control, target = rng.choice(num_qubits, size=2, replace=False)
            circuit.cx(int(control), int(target))
        else:
            qubit = int(rng.integers(num_qubits))
            circuit.apply(g.GATE_REGISTRY[names[rng.integers(3)]](), qubit)
    return circuit


def random_product_state_circuit(
    num_qubits: int,
    seed: Union[int, np.random.Generator, None] = None,
) -> QuantumCircuit:
    """One random ``u3`` per qubit — prepares a random product state.

    Product states have decision diagrams of exactly ``num_qubits`` nodes,
    which makes this generator useful for DD-size property tests.
    """
    rng = _rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"product_{num_qubits}q")
    for qubit in range(num_qubits):
        theta, phi, lam = rng.uniform(0, 2 * np.pi, size=3)
        circuit.u3(float(theta), float(phi), float(lam), qubit)
    return circuit
