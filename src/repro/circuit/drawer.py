"""ASCII rendering of quantum circuits.

A dependency-aware text drawer: gates are packed into parallel layers
(:func:`circuit_layers`) and printed on qubit wires, controls as ``●``,
anti-controls as ``○``, X-targets as ``⊕``, other gates as boxed labels.
Used by the examples and priceless when debugging generated circuits.
"""

from __future__ import annotations

from typing import Dict, List

from .circuit import QuantumCircuit
from .operations import (
    Barrier,
    BaseOperation,
    DiagonalOperation,
    Measurement,
    Operation,
)

__all__ = ["circuit_layers", "draw"]


def circuit_layers(circuit: QuantumCircuit) -> List[List[object]]:
    """Group instructions into parallel layers (greedy ASAP packing).

    Two instructions share a layer when their qubit sets are disjoint;
    barriers and measurements participate like gates (a full-register
    measurement occupies every wire).
    """
    layers: List[List[object]] = []
    occupancy: List[set] = []

    def qubits_of(instruction) -> set:
        if isinstance(instruction, BaseOperation):
            return set(instruction.qubits)
        if isinstance(instruction, (Measurement, Barrier)):
            return set(instruction.qubits) or set(range(circuit.num_qubits))
        return set(range(circuit.num_qubits))

    for instruction in circuit:
        needed = qubits_of(instruction)
        placed = False
        # ASAP with ordering respected: only try the last layer onward
        # if any earlier layer after the instruction's dependencies is
        # free.  Greedy: walk backwards while layers don't touch.
        position = len(layers)
        while position > 0 and not (occupancy[position - 1] & needed):
            position -= 1
        if position == len(layers):
            layers.append([instruction])
            occupancy.append(set(needed))
        else:
            layers[position].append(instruction)
            occupancy[position] |= needed
            placed = True
    return layers


def _gate_label(op: Operation) -> str:
    name = op.gate.name.upper()
    if op.gate.name == "u3" and len(op.gate.params) == 3:
        theta, phi, lam = op.gate.params
        return f"U3({theta:.2g},{phi:.2g},{lam:.2g})"
    if op.gate.params:
        return f"{name}({op.gate.params[0]:.2g})"
    return name


def draw(circuit: QuantumCircuit, max_width: int = 120) -> str:
    """Render the circuit as ASCII art (wires top-to-bottom = q_{n-1}..q_0)."""
    n = circuit.num_qubits
    layers = circuit_layers(circuit)
    # Build one text column per layer.
    columns: List[Dict[int, str]] = []
    for layer in layers:
        column: Dict[int, str] = {}
        for instruction in layer:
            if isinstance(instruction, Barrier):
                qubits = instruction.qubits or tuple(range(n))
                for qubit in qubits:
                    column[qubit] = "░"
                continue
            if isinstance(instruction, Measurement):
                qubits = instruction.qubits or tuple(range(n))
                for qubit in qubits:
                    column[qubit] = "[M]"
                continue
            if isinstance(instruction, DiagonalOperation):
                touched = sorted(instruction.qubits)
                for qubit in touched:
                    column[qubit] = "◆"
                if len(touched) > 1:
                    for wire in range(touched[0] + 1, touched[-1]):
                        if wire not in column:
                            column[wire] = "│"
                continue
            op = instruction
            label = _gate_label(op)
            if op.gate.name == "x" and op.is_controlled:
                target_symbol = "⊕"
            else:
                target_symbol = f"[{label}]"
            for target in op.targets:
                column[target] = target_symbol
            for control in op.controls:
                column[control] = "●"
            for control in op.neg_controls:
                column[control] = "○"
            # Vertical connector markers for in-between wires.
            touched = sorted(op.qubits)
            if len(touched) > 1:
                for wire in range(touched[0] + 1, touched[-1]):
                    if wire not in column:
                        column[wire] = "│"
        columns.append(column)

    width_of = [max((len(c.get(q, "")) for q in range(n)), default=1) for c in columns]
    lines = []
    for qubit in range(n - 1, -1, -1):
        pieces = [f"q{qubit}: "]
        for column, width in zip(columns, width_of):
            cell = column.get(qubit, "")
            if not cell:
                cell = "─" * width
            else:
                pad = width - len(cell)
                cell = "─" * (pad // 2) + cell + "─" * (pad - pad // 2)
            pieces.append(cell + "─")
        line = "".join(pieces)
        if len(line) > max_width:
            line = line[: max_width - 3] + "..."
        lines.append(line)
    return "\n".join(lines)
