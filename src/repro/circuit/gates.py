"""Standard quantum gate library.

Every gate is described by a :class:`Gate` instance carrying its name, the
number of qubits it acts on, optional real parameters, and its unitary
matrix.  Gates are value objects: two gates compare equal when their names,
parameters, and matrices agree.

The module provides

* constructors for the common fixed gates (``X``, ``Y``, ``Z``, ``H``,
  ``S``, ``SDG``, ``T``, ``TDG``, ``SX``, ``SY``, identity),
* parametrised rotations (``RX``, ``RY``, ``RZ``, ``PHASE``, ``U2``, ``U3``),
* two-qubit primitives (``SWAP``, ``ISWAP``, ``CZ`` / ``CX`` via controls,
  ``RZZ``, ``RXX``, ``RYY``, ``XX_PLUS_YY``),
* a :data:`GATE_REGISTRY` mapping lower-case gate names to constructors,
  used by the OpenQASM parser.

The convention throughout the library is little-endian: qubit ``k``
corresponds to bit ``k`` of a basis-state index, and qubit ``n - 1`` is the
most significant qubit (the first split of the state vector in the decision
diagram, as in the paper).
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from ..exceptions import CircuitError

__all__ = [
    "Gate",
    "GATE_REGISTRY",
    "identity_gate",
    "x_gate",
    "y_gate",
    "z_gate",
    "h_gate",
    "s_gate",
    "sdg_gate",
    "t_gate",
    "tdg_gate",
    "sx_gate",
    "sxdg_gate",
    "sy_gate",
    "sydg_gate",
    "rx_gate",
    "ry_gate",
    "rz_gate",
    "phase_gate",
    "gphase_gate",
    "u2_gate",
    "u3_gate",
    "swap_gate",
    "iswap_gate",
    "rzz_gate",
    "rxx_gate",
    "ryy_gate",
    "fsim_gate",
    "is_unitary",
]

_ATOL = 1e-10


def is_unitary(matrix: np.ndarray, atol: float = 1e-9) -> bool:
    """Return ``True`` when ``matrix`` is unitary within ``atol``."""
    matrix = np.asarray(matrix, dtype=np.complex128)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    product = matrix @ matrix.conj().T
    return bool(np.allclose(product, np.eye(matrix.shape[0]), atol=atol))


@dataclass(frozen=True)
class Gate:
    """A unitary gate acting on ``num_qubits`` qubits.

    The matrix is stored in the same little-endian convention as the rest
    of the library: for a two-qubit gate applied to ``(targets[0],
    targets[1])``, row/column index bit 0 corresponds to ``targets[0]``.
    """

    name: str
    num_qubits: int
    matrix: Tuple[Tuple[complex, ...], ...]
    params: Tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        dim = 2**self.num_qubits
        if len(self.matrix) != dim or any(len(row) != dim for row in self.matrix):
            raise CircuitError(
                f"gate {self.name!r} declares {self.num_qubits} qubits but its "
                f"matrix is not {dim}x{dim}"
            )

    @property
    def array(self) -> np.ndarray:
        """The gate matrix as a fresh ``complex128`` NumPy array."""
        return np.array(self.matrix, dtype=np.complex128)

    def inverse(self) -> "Gate":
        """Return the adjoint gate (matrix conjugate-transposed)."""
        inv = self.array.conj().T
        name = self.name
        if name.endswith("dg"):
            name = name[:-2]
        else:
            name = name + "dg"
        return Gate(
            name=name,
            num_qubits=self.num_qubits,
            matrix=_freeze(inv),
            params=tuple(-p for p in self.params),
        )

    def is_diagonal(self, atol: float = _ATOL) -> bool:
        """Return ``True`` when the gate matrix is diagonal."""
        arr = self.array
        return bool(np.allclose(arr - np.diag(np.diag(arr)), 0.0, atol=atol))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.params:
            rendered = ", ".join(f"{p:.6g}" for p in self.params)
            return f"{self.name}({rendered})"
        return self.name


def _freeze(matrix: np.ndarray) -> Tuple[Tuple[complex, ...], ...]:
    """Convert a NumPy matrix into the hashable nested-tuple form."""
    return tuple(tuple(complex(v) for v in row) for row in matrix)


def _gate(name: str, matrix: Sequence[Sequence[complex]], params: Tuple[float, ...] = ()) -> Gate:
    arr = np.asarray(matrix, dtype=np.complex128)
    num_qubits = int(round(math.log2(arr.shape[0])))
    return Gate(name=name, num_qubits=num_qubits, matrix=_freeze(arr), params=params)


# ---------------------------------------------------------------------------
# Fixed single-qubit gates
# ---------------------------------------------------------------------------

_SQRT1_2 = 1.0 / math.sqrt(2.0)


def identity_gate() -> Gate:
    """The single-qubit identity."""
    return _gate("id", [[1, 0], [0, 1]])


def x_gate() -> Gate:
    """Pauli-X (NOT)."""
    return _gate("x", [[0, 1], [1, 0]])


def y_gate() -> Gate:
    """Pauli-Y."""
    return _gate("y", [[0, -1j], [1j, 0]])


def z_gate() -> Gate:
    """Pauli-Z (phase flip)."""
    return _gate("z", [[1, 0], [0, -1]])


def h_gate() -> Gate:
    """Hadamard."""
    return _gate("h", [[_SQRT1_2, _SQRT1_2], [_SQRT1_2, -_SQRT1_2]])


def s_gate() -> Gate:
    """Phase gate S = sqrt(Z)."""
    return _gate("s", [[1, 0], [0, 1j]])


def sdg_gate() -> Gate:
    """Adjoint of S."""
    return _gate("sdg", [[1, 0], [0, -1j]])


def t_gate() -> Gate:
    """T gate = fourth root of Z."""
    return _gate("t", [[1, 0], [0, cmath.exp(1j * math.pi / 4)]])


def tdg_gate() -> Gate:
    """Adjoint of T."""
    return _gate("tdg", [[1, 0], [0, cmath.exp(-1j * math.pi / 4)]])


def sx_gate() -> Gate:
    """Square root of X (used by the supremacy circuits as X^1/2)."""
    return _gate("sx", [[0.5 + 0.5j, 0.5 - 0.5j], [0.5 - 0.5j, 0.5 + 0.5j]])


def sxdg_gate() -> Gate:
    """Adjoint of sqrt(X)."""
    return _gate("sxdg", [[0.5 - 0.5j, 0.5 + 0.5j], [0.5 + 0.5j, 0.5 - 0.5j]])


def sy_gate() -> Gate:
    """Square root of Y (used by the supremacy circuits as Y^1/2)."""
    return _gate("sy", [[0.5 + 0.5j, -0.5 - 0.5j], [0.5 + 0.5j, 0.5 + 0.5j]])


def sydg_gate() -> Gate:
    """Adjoint of sqrt(Y)."""
    return _gate("sydg", [[0.5 - 0.5j, 0.5 - 0.5j], [-0.5 + 0.5j, 0.5 - 0.5j]])


# ---------------------------------------------------------------------------
# Parametrised single-qubit gates
# ---------------------------------------------------------------------------


def rx_gate(theta: float) -> Gate:
    """Rotation around the X axis by ``theta``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _gate("rx", [[c, -1j * s], [-1j * s, c]], (theta,))


def ry_gate(theta: float) -> Gate:
    """Rotation around the Y axis by ``theta``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _gate("ry", [[c, -s], [s, c]], (theta,))


def rz_gate(theta: float) -> Gate:
    """Rotation around the Z axis by ``theta`` (traceless convention)."""
    phase = cmath.exp(-1j * theta / 2)
    return _gate("rz", [[phase, 0], [0, phase.conjugate()]], (theta,))


def phase_gate(theta: float) -> Gate:
    """Diagonal phase gate diag(1, e^{i theta}).

    This is the gate appearing in the controlled-phase ladder of the QFT.
    """
    return _gate("p", [[1, 0], [0, cmath.exp(1j * theta)]], (theta,))


def gphase_gate(theta: float) -> Gate:
    """Global phase ``e^{i theta}`` carried on one qubit.

    Applied uncontrolled this is an unobservable global phase; it exists
    so the compile pipeline and decompositions can keep circuits *exactly*
    equivalent (not just up to phase), which matters once an op is placed
    under control.
    """
    phase = cmath.exp(1j * theta)
    return _gate("gphase", [[phase, 0], [0, phase]], (theta,))


def u2_gate(phi: float, lam: float) -> Gate:
    """The OpenQASM ``u2`` gate."""
    return _gate(
        "u2",
        [
            [_SQRT1_2, -_SQRT1_2 * cmath.exp(1j * lam)],
            [_SQRT1_2 * cmath.exp(1j * phi), _SQRT1_2 * cmath.exp(1j * (phi + lam))],
        ],
        (phi, lam),
    )


def u3_gate(theta: float, phi: float, lam: float) -> Gate:
    """The OpenQASM ``u3`` gate (general single-qubit unitary)."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _gate(
        "u3",
        [
            [c, -s * cmath.exp(1j * lam)],
            [s * cmath.exp(1j * phi), c * cmath.exp(1j * (phi + lam))],
        ],
        (theta, phi, lam),
    )


# ---------------------------------------------------------------------------
# Two-qubit gates
# ---------------------------------------------------------------------------


def swap_gate() -> Gate:
    """SWAP of two qubits."""
    return _gate(
        "swap",
        [
            [1, 0, 0, 0],
            [0, 0, 1, 0],
            [0, 1, 0, 0],
            [0, 0, 0, 1],
        ],
    )


def iswap_gate() -> Gate:
    """iSWAP: swap with an i phase on the exchanged amplitudes."""
    return _gate(
        "iswap",
        [
            [1, 0, 0, 0],
            [0, 0, 1j, 0],
            [0, 1j, 0, 0],
            [0, 0, 0, 1],
        ],
    )


def rzz_gate(theta: float) -> Gate:
    """Two-qubit ZZ rotation exp(-i theta/2 Z⊗Z)."""
    a = cmath.exp(-1j * theta / 2)
    b = cmath.exp(1j * theta / 2)
    return _gate(
        "rzz",
        [
            [a, 0, 0, 0],
            [0, b, 0, 0],
            [0, 0, b, 0],
            [0, 0, 0, a],
        ],
        (theta,),
    )


def rxx_gate(theta: float) -> Gate:
    """Two-qubit XX rotation exp(-i theta/2 X⊗X)."""
    c = math.cos(theta / 2)
    s = -1j * math.sin(theta / 2)
    return _gate(
        "rxx",
        [
            [c, 0, 0, s],
            [0, c, s, 0],
            [0, s, c, 0],
            [s, 0, 0, c],
        ],
        (theta,),
    )


def ryy_gate(theta: float) -> Gate:
    """Two-qubit YY rotation exp(-i theta/2 Y⊗Y)."""
    c = math.cos(theta / 2)
    s = 1j * math.sin(theta / 2)
    return _gate(
        "ryy",
        [
            [c, 0, 0, s],
            [0, c, -s, 0],
            [0, -s, c, 0],
            [s, 0, 0, c],
        ],
        (theta,),
    )


def fsim_gate(theta: float, phi: float) -> Gate:
    """The fSim gate family (hopping + controlled phase).

    ``fsim(theta, phi)`` swaps excitations with amplitude ``-i sin(theta)``
    and applies a phase ``e^{-i phi}`` on the doubly-occupied state.  The
    jellium hopping term uses ``fsim(theta, 0)``.
    """
    c = math.cos(theta)
    s = -1j * math.sin(theta)
    return _gate(
        "fsim",
        [
            [1, 0, 0, 0],
            [0, c, s, 0],
            [0, s, c, 0],
            [0, 0, 0, cmath.exp(-1j * phi)],
        ],
        (theta, phi),
    )


# ---------------------------------------------------------------------------
# Registry used by the QASM parser and the circuit builder
# ---------------------------------------------------------------------------

GATE_REGISTRY: Dict[str, Callable[..., Gate]] = {
    "id": identity_gate,
    "x": x_gate,
    "y": y_gate,
    "z": z_gate,
    "h": h_gate,
    "s": s_gate,
    "sdg": sdg_gate,
    "t": t_gate,
    "tdg": tdg_gate,
    "sx": sx_gate,
    "sxdg": sxdg_gate,
    "sy": sy_gate,
    "sydg": sydg_gate,
    "rx": rx_gate,
    "ry": ry_gate,
    "rz": rz_gate,
    "p": phase_gate,
    "gphase": gphase_gate,
    "u1": phase_gate,
    "u2": u2_gate,
    "u3": u3_gate,
    "swap": swap_gate,
    "iswap": iswap_gate,
    "rzz": rzz_gate,
    "rxx": rxx_gate,
    "ryy": ryy_gate,
    "fsim": fsim_gate,
}
