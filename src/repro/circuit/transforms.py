"""Circuit transformations: decompositions and peephole simplification.

Utilities for lowering the rich gate set of :mod:`repro.circuit.gates`
onto restricted bases, as real tool flows must:

* :func:`decompose_toffoli` — Toffoli into the textbook Clifford+T
  network (6 CX, 7 T-ish single-qubit gates),
* :func:`decompose_mcx` — n-controlled X into Toffolis with a clean
  ancilla ladder (V-chain), or recursively without ancillas,
* :func:`decompose_swap` — SWAP into three CX,
* :func:`decompose_controlled_single_qubit` — controlled-U via the ABC
  (Z-Y-Z) decomposition of Barenco et al.,
* :func:`lower_to_basis` — whole-circuit lowering onto a target basis,
* :func:`merge_adjacent_gates` — peephole fusion of adjacent
  single-qubit gates and cancellation of self-inverse pairs.

Every transformation is semantics-preserving; the test suite checks each
against dense unitaries and against DD equivalence checking
(:mod:`repro.verify`).
"""

from __future__ import annotations

import cmath
import math
from typing import List, Sequence, Tuple

import numpy as np

from ..exceptions import CircuitError
from . import gates as g
from .circuit import QuantumCircuit
from .operations import Barrier, DiagonalOperation, Measurement, Operation, PhaseTerm

__all__ = [
    "zyz_angles",
    "decompose_toffoli",
    "decompose_mcx",
    "decompose_swap",
    "decompose_controlled_single_qubit",
    "lower_to_basis",
    "merge_adjacent_gates",
    "permute_instruction",
    "permute_qubits",
]


def permute_instruction(instruction, mapping: Sequence[int]):
    """Relabel one instruction's qubits ``q`` to ``mapping[q]``.

    The per-instruction core of :func:`permute_qubits`, also used by DD
    reordering to redirect gates onto the current qubit-to-level mapping
    mid-build (:mod:`repro.dd.reorder`).  An identity relabel returns the
    instruction unchanged (instructions are immutable).
    """
    if isinstance(instruction, Operation):
        return Operation(
            gate=instruction.gate,
            targets=tuple(mapping[q] for q in instruction.targets),
            controls=frozenset(mapping[q] for q in instruction.controls),
            neg_controls=frozenset(
                mapping[q] for q in instruction.neg_controls
            ),
        )
    if isinstance(instruction, DiagonalOperation):
        return DiagonalOperation(
            terms=tuple(
                PhaseTerm(
                    ones=frozenset(mapping[q] for q in term.ones),
                    zeros=frozenset(mapping[q] for q in term.zeros),
                    angle=term.angle,
                )
                for term in instruction.terms
            )
        )
    if isinstance(instruction, Measurement):
        return Measurement(qubits=tuple(mapping[q] for q in instruction.qubits))
    if isinstance(instruction, Barrier):
        return Barrier(qubits=tuple(mapping[q] for q in instruction.qubits))
    raise CircuitError(
        f"cannot relabel {type(instruction).__name__} instruction"
    )


def permute_qubits(
    circuit: QuantumCircuit,
    mapping: Sequence[int],
    num_qubits: int | None = None,
) -> QuantumCircuit:
    """Relabel every qubit ``q`` of ``circuit`` to ``mapping[q]``.

    ``mapping`` must cover every qubit an instruction touches; entries for
    unused qubits are ignored, which lets callers compact a circuit onto
    fewer wires (pass the smaller ``num_qubits`` explicitly).  With a
    plain permutation the output distribution is the input distribution
    with its index bits permuted — the metamorphic relabeling oracle of
    :mod:`repro.fuzz` relies on exactly this.
    """
    if num_qubits is None:
        num_qubits = max(mapping) + 1 if mapping else circuit.num_qubits
    if len(mapping) < circuit.num_qubits:
        raise CircuitError(
            f"mapping covers {len(mapping)} qubits but the circuit has "
            f"{circuit.num_qubits}"
        )
    out = QuantumCircuit(num_qubits, name=f"{circuit.name}_relabeled")
    for instruction in circuit:
        out.append(permute_instruction(instruction, mapping))
    return out


def zyz_angles(matrix: np.ndarray) -> Tuple[float, float, float, float]:
    """Decompose a single-qubit unitary as ``e^{i alpha} Rz(b) Ry(c) Rz(d)``.

    Returns ``(alpha, b, c, d)``.
    """
    matrix = np.asarray(matrix, dtype=np.complex128)
    if matrix.shape != (2, 2):
        raise CircuitError("ZYZ decomposition needs a 2x2 matrix")
    # Pull out the global phase: det(U) = e^{2 i alpha}.
    det = matrix[0, 0] * matrix[1, 1] - matrix[0, 1] * matrix[1, 0]
    alpha = cmath.phase(det) / 2.0
    su2 = matrix * cmath.exp(-1j * alpha)
    # su2 = [[cos(c/2) e^{-i(b+d)/2}, -sin(c/2) e^{-i(b-d)/2}],
    #        [sin(c/2) e^{ i(b-d)/2},  cos(c/2) e^{ i(b+d)/2}]]
    # atan2 keeps full precision where acos(|u00|) would lose ~sqrt(eps)
    # for rotations close to the identity.
    c = 2.0 * math.atan2(abs(su2[1, 0]), abs(su2[0, 0]))
    if abs(su2[0, 0]) > 1e-12 and abs(su2[1, 0]) > 1e-12:
        b_plus_d = -2.0 * cmath.phase(su2[0, 0])
        b_minus_d = 2.0 * cmath.phase(su2[1, 0])
        b = (b_plus_d + b_minus_d) / 2.0
        d = (b_plus_d - b_minus_d) / 2.0
    elif abs(su2[0, 0]) > 1e-12:  # diagonal: c = 0, only b + d fixed
        b = -2.0 * cmath.phase(su2[0, 0])
        d = 0.0
    else:  # anti-diagonal: c = pi, only b - d fixed
        b = 2.0 * cmath.phase(su2[1, 0])
        d = 0.0
    return alpha, b, c, d


def _reconstruct_zyz(alpha: float, b: float, c: float, d: float) -> np.ndarray:
    """Inverse of :func:`zyz_angles`, used in tests and sanity checks."""
    rz_b = g.rz_gate(b).array
    ry_c = g.ry_gate(c).array
    rz_d = g.rz_gate(d).array
    return cmath.exp(1j * alpha) * (rz_b @ ry_c @ rz_d)


def decompose_toffoli(control1: int, control2: int, target: int) -> QuantumCircuit:
    """Toffoli as the standard Clifford+T network (Nielsen & Chuang 4.3)."""
    width = max(control1, control2, target) + 1
    circuit = QuantumCircuit(width, name="toffoli_decomposed")
    a, b, t = control1, control2, target
    circuit.h(t)
    circuit.cx(b, t)
    circuit.tdg(t)
    circuit.cx(a, t)
    circuit.t(t)
    circuit.cx(b, t)
    circuit.tdg(t)
    circuit.cx(a, t)
    circuit.t(b)
    circuit.t(t)
    circuit.h(t)
    circuit.cx(a, b)
    circuit.t(a)
    circuit.tdg(b)
    circuit.cx(a, b)
    return circuit


def decompose_swap(qubit1: int, qubit2: int) -> QuantumCircuit:
    """SWAP as three alternating CX."""
    circuit = QuantumCircuit(max(qubit1, qubit2) + 1, name="swap_decomposed")
    circuit.cx(qubit1, qubit2)
    circuit.cx(qubit2, qubit1)
    circuit.cx(qubit1, qubit2)
    return circuit


def decompose_controlled_single_qubit(
    gate: g.Gate, control: int, target: int
) -> QuantumCircuit:
    """Controlled-U via the ABC decomposition (Barenco et al. 1995).

    With ``U = e^{i alpha} Rz(b) Ry(c) Rz(d)``:
    ``A = Rz(b) Ry(c/2)``, ``B = Ry(-c/2) Rz(-(d+b)/2)``,
    ``C = Rz((d-b)/2)``; then
    ``cU = (P(alpha) on control) A X B X C`` with the X's controlled.
    """
    if gate.num_qubits != 1:
        raise CircuitError("ABC decomposition applies to single-qubit gates")
    alpha, b, c, d = zyz_angles(gate.array)
    circuit = QuantumCircuit(max(control, target) + 1, name=f"c{gate.name}_abc")
    # C
    circuit.rz((d - b) / 2.0, target)
    circuit.cx(control, target)
    # B
    circuit.rz(-(d + b) / 2.0, target)
    circuit.ry(-c / 2.0, target)
    circuit.cx(control, target)
    # A
    circuit.ry(c / 2.0, target)
    circuit.rz(b, target)
    # global phase of U becomes a relative phase on the control
    if abs(alpha) > 1e-12:
        circuit.p(alpha, control)
    return circuit


def decompose_mcx(
    controls: Sequence[int],
    target: int,
    ancillas: Sequence[int] = (),
) -> QuantumCircuit:
    """Multi-controlled X into Toffolis.

    With ``len(controls) - 2`` clean ancillas available, the V-chain
    construction uses ``2k - 3`` Toffolis and restores the ancillas.
    Without ancillas, falls back to the recursive split using one
    borrowed qubit when the register provides one, or raises for k > 2.
    """
    controls = list(controls)
    k = len(controls)
    width = max([target, *controls, *ancillas]) + 1 if controls else target + 1
    circuit = QuantumCircuit(width, name="mcx_decomposed")
    if k == 0:
        circuit.x(target)
        return circuit
    if k == 1:
        circuit.cx(controls[0], target)
        return circuit
    if k == 2:
        circuit.ccx(controls[0], controls[1], target)
        return circuit
    if len(ancillas) < k - 2:
        raise CircuitError(
            f"V-chain decomposition of a {k}-controlled X needs {k - 2} "
            f"clean ancillas, got {len(ancillas)}"
        )
    ancillas = list(ancillas[: k - 2])
    # Forward ladder: a0 = c0 AND c1; a_i = a_{i-1} AND c_{i+1}.
    circuit.ccx(controls[0], controls[1], ancillas[0])
    for i in range(k - 3):
        circuit.ccx(ancillas[i], controls[i + 2], ancillas[i + 1])
    circuit.ccx(ancillas[-1], controls[-1], target)
    # Unwind to restore ancillas.
    for i in range(k - 4, -1, -1):
        circuit.ccx(ancillas[i], controls[i + 2], ancillas[i + 1])
    circuit.ccx(controls[0], controls[1], ancillas[0])
    return circuit


#: Gate names considered native for each predefined basis.
_BASES = {
    "cx+u": {"cx_controls": 1, "single": "u3"},
    "cx+rz+ry": {"cx_controls": 1, "single": "rzry"},
}


def lower_to_basis(
    circuit: QuantumCircuit,
    basis: str = "cx+u",
    ancilla_budget: int = 0,
) -> QuantumCircuit:
    """Lower every operation onto single-qubit gates + CX.

    Handles: arbitrary single-qubit gates with 0-2 positive controls
    (2 controls go through Toffoli-style conjugation for X/Z, or ABC +
    V-chain is out of scope — multi-controlled non-X/Z gates and
    anti-controls raise), SWAP, and two-qubit gates realised by their
    dense 4x4 matrix via the KAK-free fallback: controlled decomposition
    is only attempted for gates this library produces.

    The result is verified cheaply in tests by unitary comparison; this
    is a pragmatic lowering pass, not a full synthesis engine.
    """
    if basis not in _BASES:
        raise CircuitError(f"unknown basis {basis!r}; choose from {sorted(_BASES)}")
    lowered = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_lowered")

    def emit_single(gate: g.Gate, qubit: int) -> None:
        if _BASES[basis]["single"] == "u3":
            alpha, b, c, d = zyz_angles(gate.array)
            # u3(theta, phi, lam) = e^{i(phi+lam)/2 + ...}; easier: emit
            # rz/ry/rz and one phase gate for the global phase (kept so
            # controlled uses stay exact; harmless globally).
            lowered.rz(d, qubit)
            lowered.ry(c, qubit)
            lowered.rz(b, qubit)
            if abs(alpha) > 1e-12:
                # global phase: representable as p() on any basis state
                # only matters under control; tracked via gphase gate
                lowered.apply(_gphase_gate(alpha), qubit)
        else:
            alpha, b, c, d = zyz_angles(gate.array)
            lowered.rz(d, qubit)
            lowered.ry(c, qubit)
            lowered.rz(b, qubit)
            if abs(alpha) > 1e-12:
                lowered.apply(_gphase_gate(alpha), qubit)

    for instruction in circuit:
        if isinstance(instruction, (Measurement, Barrier)):
            lowered.append(instruction)
            continue
        op = instruction
        if op.neg_controls:
            # X-conjugate anti-controls into positive controls.
            for qubit in sorted(op.neg_controls):
                lowered.x(qubit)
            inner = Operation(
                gate=op.gate,
                targets=op.targets,
                controls=op.controls | op.neg_controls,
            )
            for sub in lower_to_basis(
                _single_op_circuit(inner, circuit.num_qubits), basis
            ).operations:
                lowered.append(sub)
            for qubit in sorted(op.neg_controls):
                lowered.x(qubit)
            continue
        controls = sorted(op.controls)
        if op.gate.num_qubits == 1 and not controls:
            if op.gate.name == "id":
                continue
            emit_single(op.gate, op.targets[0])
        elif op.gate.num_qubits == 1 and len(controls) == 1:
            if op.gate.name == "x":
                lowered.cx(controls[0], op.targets[0])
            else:
                sub = decompose_controlled_single_qubit(
                    op.gate, controls[0], op.targets[0]
                )
                for inner_op in sub.operations:
                    lowered.append(inner_op)
        elif op.gate.num_qubits == 1 and len(controls) == 2 and op.gate.name == "x":
            sub = decompose_toffoli(controls[0], controls[1], op.targets[0])
            for inner_op in sub.operations:
                lowered.append(inner_op)
        elif op.gate.num_qubits == 1 and len(controls) == 2 and op.gate.name == "z":
            # ccz = H(t) ccx H(t)
            lowered.h(op.targets[0])
            sub = decompose_toffoli(controls[0], controls[1], op.targets[0])
            for inner_op in sub.operations:
                lowered.append(inner_op)
            lowered.h(op.targets[0])
        elif op.gate.name == "swap" and not controls:
            sub = decompose_swap(op.targets[0], op.targets[1])
            for inner_op in sub.operations:
                lowered.append(inner_op)
        elif op.gate.name == "rzz" and not controls:
            theta = op.gate.params[0]
            q1, q2 = op.targets
            lowered.cx(q1, q2)
            lowered.rz(theta, q2)
            lowered.cx(q1, q2)
        else:
            raise CircuitError(
                f"lowering of {op} is not supported (basis {basis!r}, "
                f"ancilla budget {ancilla_budget})"
            )
    return lowered


def _gphase_gate(alpha: float) -> g.Gate:
    """A single-qubit 'gate' applying a global phase e^{i alpha}."""
    phase = cmath.exp(1j * alpha)
    return g.Gate(
        name="gphase",
        num_qubits=1,
        matrix=((phase, 0j), (0j, phase)),
        params=(alpha,),
    )


def _single_op_circuit(op: Operation, num_qubits: int) -> QuantumCircuit:
    circuit = QuantumCircuit(num_qubits)
    circuit.append(op)
    return circuit


def merge_adjacent_gates(circuit: QuantumCircuit) -> QuantumCircuit:
    """Peephole pass: fuse runs of single-qubit gates, drop identities.

    Adjacent uncontrolled single-qubit gates on the same wire (with no
    intervening multi-qubit gate on that wire) are multiplied into one
    ``u3``-style gate; products within tolerance of the identity are
    removed entirely.  Controlled and multi-qubit gates act as barriers.
    """
    merged = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_merged")
    pending: dict = {}  # qubit -> accumulated 2x2 matrix

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is None:
            return
        if np.allclose(matrix, np.eye(2), atol=1e-12):
            return
        phase = matrix[0, 0] if abs(matrix[0, 0]) > 1e-12 else matrix[1, 0]
        if np.allclose(matrix, np.eye(2) * matrix[0, 0], atol=1e-12):
            merged.apply(_gphase_gate(cmath.phase(matrix[0, 0])), qubit)
            return
        fused = g.Gate(
            name="fused",
            num_qubits=1,
            matrix=tuple(tuple(complex(v) for v in row) for row in matrix),
        )
        merged.apply(fused, qubit)

    for instruction in circuit:
        if isinstance(instruction, (Measurement, Barrier)):
            for qubit in list(pending):
                flush(qubit)
            merged.append(instruction)
            continue
        op = instruction
        if op.gate.num_qubits == 1 and not op.is_controlled:
            qubit = op.targets[0]
            matrix = op.gate.array
            pending[qubit] = matrix @ pending.get(qubit, np.eye(2))
            continue
        for qubit in op.qubits:
            flush(qubit)
        merged.append(op)
    for qubit in sorted(pending):
        flush(qubit)
    return merged
