"""The :class:`QuantumCircuit` container.

A circuit is an ordered list of instructions over ``num_qubits`` qubits.
It offers a fluent builder API (``circuit.h(0).cx(0, 1)``), structural
queries (depth, gate counts), and whole-circuit transformations (inverse,
composition, control).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from ..exceptions import CircuitError
from . import gates as g
from .operations import Barrier, BaseOperation, DiagonalOperation, Measurement, Operation

__all__ = ["QuantumCircuit"]


class QuantumCircuit:
    """An ordered sequence of quantum instructions on a qubit register.

    Qubit ``n - 1`` is the most significant qubit of measured bitstrings,
    matching the state-vector decomposition used by the decision diagrams.
    """

    def __init__(self, num_qubits: int, name: str = "circuit"):
        if num_qubits < 1:
            raise CircuitError("a circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._instructions: List[object] = []

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[object]:
        return iter(self._instructions)

    def __getitem__(self, index):
        return self._instructions[index]

    @property
    def instructions(self) -> Sequence[object]:
        """Every instruction — operations, measurements, barriers — in order."""
        return tuple(self._instructions)

    @property
    def operations(self) -> List[BaseOperation]:
        """Only the unitary operations, in order.

        Includes both plain gate applications and coalesced
        :class:`~repro.circuit.operations.DiagonalOperation` blocks.
        """
        return [op for op in self._instructions if isinstance(op, BaseOperation)]

    # ------------------------------------------------------------------
    # Low-level append
    # ------------------------------------------------------------------

    def _check_qubits(self, qubits: Iterable[int]) -> None:
        for qubit in qubits:
            if not 0 <= qubit < self.num_qubits:
                raise CircuitError(
                    f"qubit {qubit} out of range for a {self.num_qubits}-qubit circuit"
                )

    def append(self, instruction) -> "QuantumCircuit":
        """Append a pre-built instruction, validating qubit indices."""
        if isinstance(instruction, BaseOperation):
            self._check_qubits(instruction.qubits)
        elif isinstance(instruction, (Measurement, Barrier)):
            self._check_qubits(instruction.qubits)
        else:
            raise CircuitError(f"cannot append {type(instruction).__name__}")
        self._instructions.append(instruction)
        return self

    def apply(
        self,
        gate: g.Gate,
        targets: Union[int, Sequence[int]],
        controls: Iterable[int] = (),
        neg_controls: Iterable[int] = (),
    ) -> "QuantumCircuit":
        """Append ``gate`` on ``targets`` with optional (anti-)controls."""
        if isinstance(targets, int):
            targets = (targets,)
        op = Operation(
            gate=gate,
            targets=tuple(targets),
            controls=frozenset(controls),
            neg_controls=frozenset(neg_controls),
        )
        return self.append(op)

    # ------------------------------------------------------------------
    # Fluent single-qubit builders
    # ------------------------------------------------------------------

    def i(self, qubit: int) -> "QuantumCircuit":
        """Append an identity gate on ``qubit``."""
        return self.apply(g.identity_gate(), qubit)

    def x(self, qubit: int) -> "QuantumCircuit":
        """Append a Pauli-X (NOT) gate on ``qubit``."""
        return self.apply(g.x_gate(), qubit)

    def y(self, qubit: int) -> "QuantumCircuit":
        """Append a Pauli-Y gate on ``qubit``."""
        return self.apply(g.y_gate(), qubit)

    def z(self, qubit: int) -> "QuantumCircuit":
        """Append a Pauli-Z gate on ``qubit``."""
        return self.apply(g.z_gate(), qubit)

    def h(self, qubit: int) -> "QuantumCircuit":
        """Append a Hadamard gate on ``qubit``."""
        return self.apply(g.h_gate(), qubit)

    def s(self, qubit: int) -> "QuantumCircuit":
        """Append an S (sqrt-Z phase) gate on ``qubit``."""
        return self.apply(g.s_gate(), qubit)

    def sdg(self, qubit: int) -> "QuantumCircuit":
        """Append an S-dagger gate on ``qubit``."""
        return self.apply(g.sdg_gate(), qubit)

    def t(self, qubit: int) -> "QuantumCircuit":
        """Append a T (pi/8 phase) gate on ``qubit``."""
        return self.apply(g.t_gate(), qubit)

    def tdg(self, qubit: int) -> "QuantumCircuit":
        """Append a T-dagger gate on ``qubit``."""
        return self.apply(g.tdg_gate(), qubit)

    def sx(self, qubit: int) -> "QuantumCircuit":
        """Append a sqrt-X gate on ``qubit``."""
        return self.apply(g.sx_gate(), qubit)

    def sy(self, qubit: int) -> "QuantumCircuit":
        """Append a sqrt-Y gate on ``qubit``."""
        return self.apply(g.sy_gate(), qubit)

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Append an X-rotation by ``theta`` on ``qubit``."""
        return self.apply(g.rx_gate(theta), qubit)

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Append a Y-rotation by ``theta`` on ``qubit``."""
        return self.apply(g.ry_gate(theta), qubit)

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Append a Z-rotation by ``theta`` on ``qubit``."""
        return self.apply(g.rz_gate(theta), qubit)

    def p(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Append a phase gate diag(1, e^{i theta}) on ``qubit``."""
        return self.apply(g.phase_gate(theta), qubit)

    def u3(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        """Append the general single-qubit unitary U3(theta, phi, lambda)."""
        return self.apply(g.u3_gate(theta, phi, lam), qubit)

    # ------------------------------------------------------------------
    # Controlled / multi-qubit builders
    # ------------------------------------------------------------------

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-NOT (CNOT)."""
        return self.apply(g.x_gate(), target, controls=(control,))

    def cy(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-Y."""
        return self.apply(g.y_gate(), target, controls=(control,))

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-Z (the supremacy-circuit entangler)."""
        return self.apply(g.z_gate(), target, controls=(control,))

    def ch(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-Hadamard."""
        return self.apply(g.h_gate(), target, controls=(control,))

    def cp(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled phase (the QFT entangler)."""
        return self.apply(g.phase_gate(theta), target, controls=(control,))

    def crx(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled X-rotation by ``theta``."""
        return self.apply(g.rx_gate(theta), target, controls=(control,))

    def cry(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled Y-rotation by ``theta``."""
        return self.apply(g.ry_gate(theta), target, controls=(control,))

    def crz(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled Z-rotation by ``theta``."""
        return self.apply(g.rz_gate(theta), target, controls=(control,))

    def ccx(self, control1: int, control2: int, target: int) -> "QuantumCircuit":
        """Toffoli."""
        return self.apply(g.x_gate(), target, controls=(control1, control2))

    def mcx(self, controls: Sequence[int], target: int) -> "QuantumCircuit":
        """Multi-controlled X."""
        return self.apply(g.x_gate(), target, controls=tuple(controls))

    def mcz(self, controls: Sequence[int], target: int) -> "QuantumCircuit":
        """Multi-controlled Z (Grover's oracle/diffusion workhorse)."""
        return self.apply(g.z_gate(), target, controls=tuple(controls))

    def mcp(self, theta: float, controls: Sequence[int], target: int) -> "QuantumCircuit":
        """Multi-controlled phase."""
        return self.apply(g.phase_gate(theta), target, controls=tuple(controls))

    def swap(self, qubit1: int, qubit2: int) -> "QuantumCircuit":
        """Exchange two qubits."""
        return self.apply(g.swap_gate(), (qubit1, qubit2))

    def cswap(self, control: int, qubit1: int, qubit2: int) -> "QuantumCircuit":
        """Fredkin gate."""
        return self.apply(g.swap_gate(), (qubit1, qubit2), controls=(control,))

    def iswap(self, qubit1: int, qubit2: int) -> "QuantumCircuit":
        """iSWAP: exchange two qubits with an i phase on |01>/|10>."""
        return self.apply(g.iswap_gate(), (qubit1, qubit2))

    def rzz(self, theta: float, qubit1: int, qubit2: int) -> "QuantumCircuit":
        """Two-qubit ZZ interaction by ``theta`` (diagonal)."""
        return self.apply(g.rzz_gate(theta), (qubit1, qubit2))

    def rxx(self, theta: float, qubit1: int, qubit2: int) -> "QuantumCircuit":
        """Two-qubit XX interaction by ``theta``."""
        return self.apply(g.rxx_gate(theta), (qubit1, qubit2))

    def ryy(self, theta: float, qubit1: int, qubit2: int) -> "QuantumCircuit":
        """Two-qubit YY interaction by ``theta``."""
        return self.apply(g.ryy_gate(theta), (qubit1, qubit2))

    def fsim(self, theta: float, phi: float, qubit1: int, qubit2: int) -> "QuantumCircuit":
        """Google fSim(theta, phi) gate (supremacy-circuit entangler)."""
        return self.apply(g.fsim_gate(theta, phi), (qubit1, qubit2))

    # ------------------------------------------------------------------
    # Non-unitary instructions
    # ------------------------------------------------------------------

    def measure_all(self) -> "QuantumCircuit":
        """Measure the full register (the weak-simulation endpoint)."""
        return self.append(Measurement())

    def measure(self, *qubits: int) -> "QuantumCircuit":
        """Measure the listed qubits (mid-circuit when gates follow)."""
        return self.append(Measurement(qubits=tuple(qubits)))

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        """Append a no-op barrier (an optimization fence)."""
        return self.append(Barrier(qubits=tuple(qubits)))

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------

    def count_gates(self) -> dict:
        """Histogram of gate names (controlled gates prefixed with ``c``)."""
        counts: dict = {}
        for op in self.operations:
            if isinstance(op, DiagonalOperation):
                counts["diag"] = counts.get("diag", 0) + 1
                continue
            name = op.gate.name
            total_controls = len(op.controls) + len(op.neg_controls)
            if total_controls:
                name = "c" * min(total_controls, 2) + name
                if total_controls > 2:
                    name = f"mc{op.gate.name}"
            counts[name] = counts.get(name, 0) + 1
        return counts

    @property
    def num_operations(self) -> int:
        """Number of unitary operations (measurements/barriers excluded)."""
        return len(self.operations)

    def depth(self) -> int:
        """Circuit depth counting unitary operations on overlapping qubits."""
        levels = [0] * self.num_qubits
        depth = 0
        for op in self.operations:
            qubits = op.qubits
            if not qubits:  # pure global-phase block
                continue
            level = max(levels[q] for q in qubits) + 1
            for q in qubits:
                levels[q] = level
            depth = max(depth, level)
        return depth

    def two_qubit_gate_count(self) -> int:
        """Number of operations touching two or more qubits."""
        return sum(1 for op in self.operations if len(op.qubits) >= 2)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        """Shallow copy: new instruction list, shared immutable operations."""
        clone = QuantumCircuit(self.num_qubits, name or self.name)
        clone._instructions = list(self._instructions)
        return clone

    def inverse(self) -> "QuantumCircuit":
        """Adjoint circuit; measurements and barriers are dropped."""
        inv = QuantumCircuit(self.num_qubits, f"{self.name}_dg")
        for op in reversed(self.operations):
            inv.append(op.inverse())
        return inv

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Append all instructions of ``other`` (must fit this register)."""
        if other.num_qubits > self.num_qubits:
            raise CircuitError(
                f"cannot compose a {other.num_qubits}-qubit circuit into "
                f"{self.num_qubits} qubits"
            )
        for instruction in other:
            self.append(instruction)
        return self

    def controlled(self, control: int) -> "QuantumCircuit":
        """Return this circuit with every operation controlled on ``control``.

        The control qubit index refers to the *enlarged* register of
        ``num_qubits + 1`` qubits; existing qubits keep their indices.
        """
        result = QuantumCircuit(self.num_qubits + 1, f"c-{self.name}")
        if not 0 <= control <= self.num_qubits:
            raise CircuitError(f"control {control} outside enlarged register")
        if control < self.num_qubits:
            raise CircuitError(
                "control must be the new qubit (index num_qubits) to avoid "
                "clashing with existing qubits"
            )
        for op in self.operations:
            if isinstance(op, DiagonalOperation):
                # Controlling a product of subspace phases controls each
                # term: the block fires only when the control is |1⟩.
                from .operations import PhaseTerm

                result.append(
                    DiagonalOperation(
                        terms=tuple(
                            PhaseTerm(
                                ones=t.ones | {control},
                                zeros=t.zeros,
                                angle=t.angle,
                            )
                            for t in op.terms
                        )
                    )
                )
                continue
            result.append(
                Operation(
                    gate=op.gate,
                    targets=op.targets,
                    controls=op.controls | {control},
                    neg_controls=op.neg_controls,
                )
            )
        return result

    def unitary(self) -> np.ndarray:
        """Dense unitary of the whole circuit (verification-sized only)."""
        if self.num_qubits > 12:
            raise CircuitError(
                "refusing to build a dense unitary beyond 12 qubits"
            )
        dim = 2**self.num_qubits
        matrix = np.eye(dim, dtype=np.complex128)
        for op in self.operations:
            matrix = op.full_matrix(self.num_qubits) @ matrix
        return matrix

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"{self.name}: {self.num_qubits} qubits, {len(self)} instructions"]
        for instruction in self._instructions[:50]:
            lines.append(f"  {instruction}")
        if len(self._instructions) > 50:
            lines.append(f"  ... {len(self._instructions) - 50} more")
        return "\n".join(lines)
