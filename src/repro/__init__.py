"""Fast weak simulation of quantum computation with decision diagrams.

Reproduction of Hillmich, Markov, Wille (DAC 2020).  The package mimics a
physical quantum computer: given a circuit, it produces measured
bitstrings statistically indistinguishable from the real device, either
from a dense state vector (prefix sums + binary search) or — the paper's
contribution — directly from an edge-weighted decision diagram without
ever materialising exponential arrays.

Quickstart::

    from repro import QuantumCircuit, simulate_and_sample

    circuit = QuantumCircuit(2)
    circuit.h(1)
    circuit.cx(1, 0)
    circuit.measure_all()
    result = simulate_and_sample(circuit, shots=1000, method="dd", seed=0)
    print(result.most_common())

Subpackages: :mod:`repro.circuit` (IR), :mod:`repro.dd` (decision
diagrams), :mod:`repro.simulators` (strong simulation),
:mod:`repro.core` (weak simulation), :mod:`repro.algorithms` (benchmark
circuits), :mod:`repro.evaluation` (Table-I/figure regeneration).
"""

from .circuit import QuantumCircuit, parse_qasm, to_qasm
from .compile import CompilePipeline, CompileStats, optimize_circuit
from .core import (
    DDSampler,
    PrefixSampler,
    SampleResult,
    chi_square_gof,
    linear_xeb_fidelity,
    sample_dd,
    sample_statevector,
    simulate_and_sample,
    total_variation_distance,
)
from .dd import DDPackage, NormalizationScheme, VectorDD
from .exceptions import (
    CircuitError,
    DDError,
    MemoryOutError,
    QasmError,
    ReproError,
    SamplingError,
    SimulationError,
)
from .simulators import DDSimulator, StatevectorSimulator

__version__ = "1.0.0"

__all__ = [
    "QuantumCircuit",
    "parse_qasm",
    "to_qasm",
    "optimize_circuit",
    "CompilePipeline",
    "CompileStats",
    "simulate_and_sample",
    "sample_statevector",
    "sample_dd",
    "SampleResult",
    "PrefixSampler",
    "DDSampler",
    "chi_square_gof",
    "total_variation_distance",
    "linear_xeb_fidelity",
    "DDPackage",
    "VectorDD",
    "NormalizationScheme",
    "DDSimulator",
    "StatevectorSimulator",
    "ReproError",
    "CircuitError",
    "QasmError",
    "DDError",
    "SimulationError",
    "MemoryOutError",
    "SamplingError",
    "__version__",
]
