"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """Raised for malformed circuits or invalid gate applications."""


class QasmError(ReproError):
    """Raised when OpenQASM input cannot be parsed."""

    def __init__(self, message: str, line: int | None = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class DDError(ReproError):
    """Raised for inconsistent decision-diagram operations."""


class SimulationError(ReproError):
    """Raised when a simulator cannot complete a requested simulation."""


class MemoryOutError(SimulationError):
    """Raised when an allocation would exceed the configured memory cap.

    This mirrors the "MO" entries of Table I in the paper: the dense
    vector-based method fails on instances whose state vector does not fit
    in memory, while the decision-diagram method keeps working.
    """

    def __init__(self, requested_bytes: int, cap_bytes: int):
        super().__init__(
            f"allocation of {requested_bytes} bytes exceeds the memory cap "
            f"of {cap_bytes} bytes (MO)"
        )
        self.requested_bytes = requested_bytes
        self.cap_bytes = cap_bytes


class SamplingError(ReproError):
    """Raised when a sampler is asked to sample from an invalid state."""


class NoiseError(ReproError):
    """Raised for invalid noise models or non-physical channels.

    Covers malformed :class:`~repro.noise.NoiseModel` specs (unknown
    keys, out-of-range strengths) and Kraus operator sets that violate
    the completeness relation sum_i K_i^dagger K_i = I.
    """
