"""QASM corpus of minimized fuzz reproducers.

Every confirmed, minimized failure is serialized to OpenQASM 2.0 under
``tests/corpus/`` with a ``//``-comment metadata header recording which
family produced it, which oracle flagged it, and the seed material that
replays it.  The corpus doubles as a deterministic regression suite:
``tests/test_fuzz_corpus.py`` re-runs every file's oracle on every
pytest invocation, so a fixed bug stays fixed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple

from ..circuit.circuit import QuantumCircuit
from ..circuit.qasm import parse_qasm, to_qasm

__all__ = ["CorpusEntry", "default_corpus_dir", "save_reproducer", "load_corpus"]

#: Metadata keys written into (and parsed back out of) the file header.
_HEADER_KEYS = ("family", "oracle", "seed", "detail", "minimized_from")


@dataclass(frozen=True)
class CorpusEntry:
    """One reproducer: the circuit plus the metadata that explains it."""

    path: Path
    circuit: QuantumCircuit
    metadata: Dict[str, str]


def default_corpus_dir() -> Path:
    """``tests/corpus/`` relative to the repository root."""
    return Path(__file__).resolve().parents[3] / "tests" / "corpus"


def _slug(text: str) -> str:
    """Filesystem-safe fragment for file names."""
    return re.sub(r"[^A-Za-z0-9_-]+", "-", text).strip("-") or "x"


def save_reproducer(
    circuit: QuantumCircuit,
    family: str,
    oracle: str,
    seed: str,
    detail: str,
    directory: Path | None = None,
    minimized_from: int | None = None,
) -> Path:
    """Write a minimized reproducer to the corpus; returns the file path.

    The header is plain ``// key: value`` lines, so the file stays a
    valid QASM program (the parser strips comments) while remaining
    greppable and self-describing.
    """
    directory = default_corpus_dir() if directory is None else directory
    directory.mkdir(parents=True, exist_ok=True)
    name = f"{_slug(family)}_{_slug(oracle)}_{_slug(seed)}.qasm"
    header = [
        f"// family: {family}",
        f"// oracle: {oracle}",
        f"// seed: {seed}",
        f"// detail: {' '.join(detail.split())}",
    ]
    if minimized_from is not None:
        header.append(f"// minimized_from: {minimized_from} instructions")
    path = directory / name
    path.write_text("\n".join(header) + "\n" + to_qasm(circuit) + "\n")
    return path


def _parse_header(text: str) -> Dict[str, str]:
    """Extract ``// key: value`` metadata lines from a corpus file."""
    metadata: Dict[str, str] = {}
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped.startswith("//"):
            if stripped:
                break
            continue
        body = stripped[2:].strip()
        key, _, value = body.partition(":")
        if key.strip() in _HEADER_KEYS:
            metadata[key.strip()] = value.strip()
    return metadata


def load_corpus(directory: Path | None = None) -> List[CorpusEntry]:
    """All corpus reproducers, sorted by file name for determinism."""
    directory = default_corpus_dir() if directory is None else directory
    if not directory.is_dir():
        return []
    entries: List[CorpusEntry] = []
    for path in sorted(directory.glob("*.qasm")):
        text = path.read_text()
        entries.append(
            CorpusEntry(
                path=path,
                circuit=parse_qasm(text),
                metadata=_parse_header(text),
            )
        )
    return entries
