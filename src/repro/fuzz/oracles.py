"""Differential and metamorphic oracles over the simulation backends.

Every oracle takes a circuit plus a dedicated RNG stream and either
returns ``None`` (agreement) or a human-readable failure detail.  Exact
probability distributions are compared where tractable (dense reference
within :data:`MAX_EXACT_QUBITS`); sampling backends are compared by
chi-square with a p-value floor low enough that a seeded pass never
flakes, yet many orders of magnitude above what a real bug produces.

Exceptions raised *inside* a backend count as failures too — a crash on
a valid circuit is as much a bug as a wrong distribution — so the
minimizer can shrink crashing circuits with the same machinery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.qasm import parse_qasm, to_qasm
from ..circuit.transforms import permute_qubits
from ..core.dd_sampler import DDSampler
from ..core.indistinguishability import (
    chi_square_gof,
    total_variation_distance,
    two_sample_chi_square,
)
from ..core.shot_executor import (
    ShotExecutor,
    circuit_has_mid_circuit_measurement,
)
from ..core.weak_sim import sample_dd, simulate_and_sample
from ..dd.approximation import ApproximationConfig
from ..exceptions import ReproError
from ..simulators.dd_simulator import DDSimulator
from ..simulators.stabilizer import StabilizerSimulator
from ..simulators.statevector import StatevectorSimulator
from .families import CircuitFamily

__all__ = [
    "ATOL",
    "APPROX_EPSILON",
    "APPROX_INTERVAL",
    "NOISE_ATOL",
    "NOISE_MAX_OPERATIONS",
    "NOISE_MAX_QUBITS",
    "NOISE_NODE_LIMIT",
    "NOISE_WIDE_ENTANGLER_CAP",
    "NOISE_WIDE_MAX_OPERATIONS",
    "P_VALUE_FLOOR",
    "SAMPLE_SHOTS",
    "PER_SHOT_SAMPLE_SHOTS",
    "MAX_EXACT_QUBITS",
    "Oracle",
    "ORACLES",
    "get_oracle",
    "applicable_oracles",
]

#: Absolute tolerance for exact distribution comparison.
ATOL = 1e-9

#: Chi-square p-values below this fail a sampling check.  Seeded runs are
#: deterministic, so any failure is exactly replayable; a genuine backend
#: bug drives the p-value to ~0 rather than hovering near the floor.
P_VALUE_FLOOR = 1e-6

#: Shots drawn for the sampling (chi-square) oracles.
SAMPLE_SHOTS = 1024

#: Shots for oracles whose reference side is the literal per-shot loop
#: (O(shots x segments) DD work); kept small so the smoke budget holds.
PER_SHOT_SAMPLE_SHOTS = 128

#: Largest register for which the dense reference distribution is built.
MAX_EXACT_QUBITS = 16

#: Fidelity allowance the approximation oracle asks for.
APPROX_EPSILON = 0.05

#: Pruning cadence for the approximation oracle — far below the default
#: 25 so the fuzzer's short circuits get several pruning rounds.
APPROX_INTERVAL = 4

#: Extra TVD headroom for the *sampled* approximation comparison: two
#: 1024-shot empirical distributions are each a noisy estimate, so the
#: analytic bound gets a finite-shot allowance before a divergence
#: counts as a bug.
APPROX_SAMPLING_SLACK = 0.1

#: Largest register the noisy-vs-dense oracle verifies (its reference
#: evolves a vectorised 2^n x 2^n density matrix — O(4^n) per gate).
NOISE_MAX_QUBITS = 10

#: Node ceiling for the oracle's density build: a mixed state can
#: approach the *square* of the pure DD size, and a handful of hostile
#: fuzz circuits would otherwise eat the whole smoke budget.  A breach
#: skips the circuit (coverage loss, not a failure).  The ceiling is a
#: *time* guard as much as a memory one — the build pays pure-Python
#: matrix multiplies all the way up to the breach — so it is kept low.
NOISE_NODE_LIMIT = 4_000

#: Instruction budget for the verified portion of a circuit.  The
#: noisy build and the dense reference both evolve the *same prefix*,
#: so the check stays exact; every prefix op still gets the full
#: channel-placement treatment, which is what the oracle pins down.
#: Without the cap, a 50-op diagonal-family circuit costs ~10 s of
#: pure-Python superoperator algebra — per circuit, ~200 times per
#: smoke run.
NOISE_MAX_OPERATIONS = 20

#: Tighter instruction budget for registers wider than six qubits,
#: where the dense reference's vec(rho) statevector has >= 16k
#: amplitudes and every Kraus term pays an O(4^n) sweep.
NOISE_WIDE_MAX_OPERATIONS = 10

#: Entangling-gate budget for registers wider than six qubits.  The node
#: ceiling alone is not a time guard: a dense 8-10 qubit mixed state
#: spends minutes of matrix-DD multiplies *before* it breaches the
#: ceiling.  Circuits with more than ``num_qubits`` two-qubit gates at
#: those widths (e.g. the supremacy family's crossing cycles) are
#: skipped up front; GHZ-style single-ladder circuits still run at the
#: full :data:`NOISE_MAX_QUBITS`.
NOISE_WIDE_ENTANGLER_CAP = 1.0

#: Tolerance for the noisy-vs-dense probability comparison.  Looser
#: than :data:`ATOL` because a Kraus channel *sums* evolved density
#: matrices: the DD path and the dense reference associate those sums
#: differently, and on cancellation-heavy circuits (the nearzero
#: family) the rounding difference amplifies to ~1e-8 per entry.
NOISE_ATOL = 1e-6


@dataclass(frozen=True)
class Oracle:
    """One differential/metamorphic check between backend configurations."""

    name: str
    description: str
    #: The backend pair (or transform pair) this oracle compares.
    pair: Tuple[str, str]
    #: Whether the oracle applies to a given circuit family.
    applies: Callable[[CircuitFamily], bool] = field(repr=False)
    #: ``run(circuit, rng) -> None | failure detail``.
    run: Callable[[QuantumCircuit, np.random.Generator], Optional[str]] = field(
        repr=False
    )


def _statevector_probabilities(
    circuit: QuantumCircuit, optimize: bool = True
) -> np.ndarray:
    """Dense reference distribution via the statevector simulator."""
    vector = StatevectorSimulator(optimize=optimize).run(circuit)
    return np.abs(vector) ** 2


def _dd_probabilities(circuit: QuantumCircuit, optimize: bool = True) -> np.ndarray:
    """Dense distribution via the decision-diagram simulator."""
    return DDSimulator(optimize=optimize).run(circuit).probabilities()


def _compare_dense(
    first: np.ndarray, second: np.ndarray, label: str, atol: float = ATOL
) -> Optional[str]:
    """Max-abs and TVD comparison of two dense distributions."""
    worst = float(np.abs(first - second).max())
    if worst <= atol:
        return None
    tvd = 0.5 * float(np.abs(first - second).sum())
    return f"{label}: max |Δp| = {worst:.3e}, TVD = {tvd:.3e} (atol {atol:g})"


def _exact_applies(family: CircuitFamily) -> bool:
    """Exact-distribution oracles need unitary circuits of bounded width."""
    return not family.mid_circuit


def _check_dd_vs_statevector(
    circuit: QuantumCircuit, rng: np.random.Generator
) -> Optional[str]:
    """DD and dense simulators must produce identical distributions."""
    return _compare_dense(
        _dd_probabilities(circuit),
        _statevector_probabilities(circuit),
        "dd vs statevector",
    )


def _check_compiled_vs_dd(
    circuit: QuantumCircuit, rng: np.random.Generator
) -> Optional[str]:
    """The compiled flat-array sampler must match its source DD exactly."""
    state = DDSimulator().run(circuit)
    compiled = DDSampler(state).compiled()
    return _compare_dense(
        compiled.probabilities(), state.probabilities(), "compiled vs dd"
    )


def _check_optimize_metamorphic(
    circuit: QuantumCircuit, rng: np.random.Generator
) -> Optional[str]:
    """The compile pipeline must not change the output distribution."""
    return _compare_dense(
        _dd_probabilities(circuit, optimize=True),
        _dd_probabilities(circuit, optimize=False),
        "optimize on vs off",
    )


def _check_qasm_roundtrip(
    circuit: QuantumCircuit, rng: np.random.Generator
) -> Optional[str]:
    """Export→import must preserve the distribution bit-for-bit."""
    restored = parse_qasm(to_qasm(circuit))
    return _compare_dense(
        _dd_probabilities(restored, optimize=False),
        _dd_probabilities(circuit, optimize=False),
        "qasm round-trip",
    )


def _check_relabel_metamorphic(
    circuit: QuantumCircuit, rng: np.random.Generator
) -> Optional[str]:
    """Permuting qubit labels must permute the distribution's index bits."""
    num_qubits = circuit.num_qubits
    permutation = [int(q) for q in rng.permutation(num_qubits)]
    relabeled = permute_qubits(circuit, permutation)
    original = _dd_probabilities(circuit)
    permuted = _dd_probabilities(relabeled)
    indices = np.arange(1 << num_qubits)
    mapped = np.zeros_like(indices)
    for qubit, target in enumerate(permutation):
        mapped |= ((indices >> qubit) & 1) << target
    return _compare_dense(
        original, permuted[mapped], f"relabel {permutation}"
    )


def _check_inverse_roundtrip(
    circuit: QuantumCircuit, rng: np.random.Generator
) -> Optional[str]:
    """Appending the inverse of a suffix must undo exactly that suffix."""
    operations = circuit.operations
    if not operations:
        return None
    length = int(rng.integers(1, len(operations) + 1))
    padded = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_inv")
    for op in operations:
        padded.append(op)
    for op in reversed(operations[-length:]):
        padded.append(op.inverse())
    truncated = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_trunc")
    for op in operations[:-length]:
        truncated.append(op)
    return _compare_dense(
        _dd_probabilities(padded),
        _dd_probabilities(truncated),
        f"inverse round-trip of last {length} ops",
    )


def _check_stabilizer_vs_exact(
    circuit: QuantumCircuit, rng: np.random.Generator
) -> Optional[str]:
    """Stabilizer samples must be consistent with the exact distribution."""
    state = StabilizerSimulator().run(circuit)
    result = state.sample_result(SAMPLE_SHOTS, rng)
    reference = _statevector_probabilities(circuit)
    outcome = chi_square_gof(result, reference)
    if outcome.p_value >= P_VALUE_FLOOR:
        return None
    tvd = total_variation_distance(result, reference)
    return (
        f"stabilizer vs statevector: chi²={outcome.statistic:.2f} "
        f"(dof {outcome.dof}), p={outcome.p_value:.3e}, TVD={tvd:.3e}"
    )


def _check_dd_sampler_vs_exact(
    circuit: QuantumCircuit, rng: np.random.Generator
) -> Optional[str]:
    """DD path-sampled counts must be consistent with the DD distribution."""
    state = DDSimulator().run(circuit)
    result = sample_dd(state, SAMPLE_SHOTS, method="dd", seed=rng)
    outcome = chi_square_gof(result, state.probabilities())
    if outcome.p_value >= P_VALUE_FLOOR:
        return None
    return (
        f"dd sampler vs exact: chi²={outcome.statistic:.2f} "
        f"(dof {outcome.dof}), p={outcome.p_value:.3e}"
    )


def _check_workers_metamorphic(
    circuit: QuantumCircuit, rng: np.random.Generator
) -> Optional[str]:
    """Chunked parallel sampling must be bit-identical at any worker count."""
    state = DDSimulator().run(circuit)
    seed = int(rng.integers(2**63))
    serial = sample_dd(state, SAMPLE_SHOTS, method="dd", seed=seed, workers=1)
    threaded = sample_dd(state, SAMPLE_SHOTS, method="dd", seed=seed, workers=3)
    if serial.counts == threaded.counts:
        return None
    return (
        "workers 1 vs 3: counts diverged for identical seed "
        f"({serial.distinct_outcomes} vs {threaded.distinct_outcomes} outcomes)"
    )


def _check_branching_vs_per_shot(
    circuit: QuantumCircuit, rng: np.random.Generator
) -> Optional[str]:
    """Outcome-branching and per-shot execution must match statistically."""
    branching = ShotExecutor(circuit).run(
        PER_SHOT_SAMPLE_SHOTS, seed=int(rng.integers(2**63)), strategy="branching"
    )
    per_shot = ShotExecutor(circuit).run(
        PER_SHOT_SAMPLE_SHOTS, seed=int(rng.integers(2**63)), strategy="per-shot"
    )
    outcome = two_sample_chi_square(branching, per_shot)
    if outcome.p_value >= P_VALUE_FLOOR:
        return None
    return (
        f"branching vs per-shot: chi²={outcome.statistic:.2f} "
        f"(dof {outcome.dof}), p={outcome.p_value:.3e}"
    )


def _check_midmeasure_optimize(
    circuit: QuantumCircuit, rng: np.random.Generator
) -> Optional[str]:
    """Compiling a measure-and-continue circuit must not skew outcomes."""
    optimized = ShotExecutor(circuit, optimize=True).run(
        SAMPLE_SHOTS, seed=int(rng.integers(2**63))
    )
    verbatim = ShotExecutor(circuit, optimize=False).run(
        SAMPLE_SHOTS, seed=int(rng.integers(2**63))
    )
    outcome = two_sample_chi_square(optimized, verbatim)
    if outcome.p_value >= P_VALUE_FLOOR:
        return None
    return (
        f"midmeasure optimize on vs off: chi²={outcome.statistic:.2f} "
        f"(dof {outcome.dof}), p={outcome.p_value:.3e}"
    )


def _check_kernel_vs_python(
    circuit: QuantumCircuit, rng: np.random.Generator
) -> Optional[str]:
    """The SoA kernel must match the python reference engine.

    The contract is bit-identity, so the comparison is exact wherever
    exactness is tractable: dense distributions within
    :data:`MAX_EXACT_QUBITS`, equal-seed counts on measure-and-continue
    circuits (the executor collapses on identical probabilities, so the
    RNG draws coincide).  Wider unitary circuits fall back to a seeded
    two-sample chi-square between the engines' samplers.
    """
    if circuit_has_mid_circuit_measurement(circuit):
        seed = int(rng.integers(2**63))
        vector = ShotExecutor(circuit, kernel="vector").run(
            PER_SHOT_SAMPLE_SHOTS, seed=seed
        )
        python = ShotExecutor(circuit, kernel="python").run(
            PER_SHOT_SAMPLE_SHOTS, seed=seed
        )
        if vector.counts == python.counts:
            return None
        return (
            "kernel vs python: mid-circuit counts diverged at equal seed "
            f"({vector.distinct_outcomes} vs {python.distinct_outcomes} "
            "outcomes)"
        )
    if circuit.num_qubits <= MAX_EXACT_QUBITS:
        return _compare_dense(
            DDSimulator(kernel="vector").run(circuit).probabilities(),
            DDSimulator(kernel="python").run(circuit).probabilities(),
            "kernel vs python",
        )
    first = sample_dd(
        DDSimulator(kernel="vector").run(circuit),
        SAMPLE_SHOTS,
        method="dd",
        seed=rng,
    )
    second = sample_dd(
        DDSimulator(kernel="python").run(circuit),
        SAMPLE_SHOTS,
        method="dd",
        seed=rng,
    )
    outcome = two_sample_chi_square(first, second)
    if outcome.p_value >= P_VALUE_FLOOR:
        return None
    return (
        f"kernel vs python: chi²={outcome.statistic:.2f} "
        f"(dof {outcome.dof}), p={outcome.p_value:.3e}"
    )


def _empirical_tvd(first, second) -> float:
    """TVD between two empirical count distributions."""
    a, b = dict(first.counts), dict(second.counts)
    total_a = sum(a.values())
    total_b = sum(b.values())
    return 0.5 * sum(
        abs(a.get(key, 0) / total_a - b.get(key, 0) / total_b)
        for key in set(a) | set(b)
    )


def _check_approx_vs_exact(
    circuit: QuantumCircuit, rng: np.random.Generator
) -> Optional[str]:
    """Approximate DD error must stay within its own reported bound.

    The approximation contract (``docs/approximation.md``) promises that
    a build with fidelity budget ε reports ``fidelity_bound ≥ 1−ε`` and
    that the true TVD from the exact distribution is at most
    ``sqrt(1−fidelity_bound)``.  Both halves are checked: dense TVD
    within :data:`MAX_EXACT_QUBITS` on unitary circuits, a seeded
    chi-square/empirical-TVD comparison above that width and on
    measure-and-continue circuits (where the collapse makes the bound
    statistical rather than exact).
    """
    config = ApproximationConfig(
        epsilon=APPROX_EPSILON, interval=APPROX_INTERVAL
    )
    if (
        not circuit_has_mid_circuit_measurement(circuit)
        and circuit.num_qubits <= MAX_EXACT_QUBITS
    ):
        simulator = DDSimulator(approximation=config)
        approx = simulator.run(circuit).probabilities()
        bound = simulator.stats.fidelity_bound
        if bound is None:
            return "approximation enabled but no fidelity bound reported"
        if bound < 1.0 - APPROX_EPSILON - ATOL:
            return (
                f"fidelity bound {bound:.6f} overspends the budget "
                f"1-eps = {1.0 - APPROX_EPSILON}"
            )
        tvd_bound = math.sqrt(max(0.0, 1.0 - bound))
        exact = _statevector_probabilities(circuit)
        tvd = 0.5 * float(np.abs(approx - exact).sum())
        if tvd <= tvd_bound + ATOL:
            return None
        return (
            f"approx vs exact: TVD {tvd:.6f} exceeds the reported bound "
            f"{tvd_bound:.6f} (fidelity >= {bound:.6f})"
        )
    seed = int(rng.integers(2**63))
    approx = simulate_and_sample(
        circuit, SAMPLE_SHOTS, seed=seed, approximation=config
    )
    replay = simulate_and_sample(
        circuit, SAMPLE_SHOTS, seed=seed, approximation=config
    )
    if approx.counts != replay.counts:
        return "approximate sampling is not deterministic at equal seed"
    meta = (approx.metadata.get("build") or {}).get("approximation") or {}
    bound = float(meta.get("fidelity_bound", 1.0))
    if bound < 1.0 - APPROX_EPSILON - ATOL:
        return (
            f"fidelity bound {bound:.6f} overspends the budget "
            f"1-eps = {1.0 - APPROX_EPSILON}"
        )
    exact = simulate_and_sample(circuit, SAMPLE_SHOTS, seed=seed)
    outcome = two_sample_chi_square(approx, exact)
    if outcome.p_value >= P_VALUE_FLOOR:
        return None
    # The samplers disagree more than chance allows; that is still fine
    # as long as the divergence is explained by the declared pruning.
    tvd_bound = math.sqrt(max(0.0, 1.0 - bound))
    tvd = _empirical_tvd(approx, exact)
    if tvd <= tvd_bound + APPROX_SAMPLING_SLACK:
        return None
    return (
        f"approx vs exact samples: chi²={outcome.statistic:.2f} "
        f"(dof {outcome.dof}), p={outcome.p_value:.3e}, empirical TVD "
        f"{tvd:.4f} exceeds bound {tvd_bound:.4f} + slack"
    )


def _check_reorder_vs_fixed(
    circuit: QuantumCircuit, rng: np.random.Generator
) -> Optional[str]:
    """Reordered builds must describe the same distribution as fixed order.

    The reordering contract (``docs/reordering.md``): equal-seed
    reordered runs are bit-identical to each other, and the reordered
    state — read back through the recorded ``level_to_qubit``
    permutation — is *exactly* the fixed-order distribution (sifting
    only moves levels; it never touches amplitudes).  Within
    :data:`MAX_EXACT_QUBITS` both halves are checked densely, plus a
    chi-square that the reordered sampler actually draws from that
    distribution.
    """
    from ..dd.reorder import ReorderConfig

    # Low interval/min_nodes so the dynamic trigger actually fires on
    # the fuzzer's short circuits, not just the static layout pass.
    config = ReorderConfig(enabled=True, interval=4, min_nodes=8)
    seed = int(rng.integers(2**63))
    reordered = simulate_and_sample(
        circuit, SAMPLE_SHOTS, seed=seed, reorder=config
    )
    replay = simulate_and_sample(
        circuit, SAMPLE_SHOTS, seed=seed, reorder=config
    )
    if reordered.counts != replay.counts:
        return "reordered sampling is not deterministic at equal seed"
    if circuit.num_qubits > MAX_EXACT_QUBITS:
        fixed = simulate_and_sample(circuit, SAMPLE_SHOTS, seed=seed)
        outcome = two_sample_chi_square(reordered, fixed)
        if outcome.p_value >= P_VALUE_FLOOR:
            return None
        return (
            f"reorder vs fixed samples: chi²={outcome.statistic:.2f} "
            f"(dof {outcome.dof}), p={outcome.p_value:.3e}"
        )
    simulator = DDSimulator(reorder=config)
    state = simulator.run(circuit)
    level_probs = state.probabilities()
    perm = simulator.stats.level_to_qubit or tuple(range(circuit.num_qubits))
    indices = np.arange(1 << circuit.num_qubits)
    targets = np.zeros_like(indices)
    for level, qubit in enumerate(perm):
        targets |= ((indices >> level) & 1) << qubit
    mapped = np.zeros_like(level_probs)
    mapped[targets] = level_probs[indices]
    detail = _compare_dense(
        mapped, _dd_probabilities(circuit), f"reorder perm={list(perm)}"
    )
    if detail is not None:
        return detail
    outcome = chi_square_gof(reordered, mapped)
    if outcome.p_value >= P_VALUE_FLOOR:
        return None
    return (
        f"reordered samples vs exact: chi²={outcome.statistic:.2f} "
        f"(dof {outcome.dof}), p={outcome.p_value:.3e}"
    )


def _check_noisy_vs_dense(
    circuit: QuantumCircuit, rng: np.random.Generator
) -> Optional[str]:
    """Density-DD noise must match the dense reference exactly.

    Three clauses of the noise contract (``docs/noise.md``):

    * the compiled noisy sampler's distribution equals
      :func:`~repro.noise.noisy_probabilities_dense` to
      :data:`NOISE_ATOL` (same channel placement, same readout folding)
      within :data:`NOISE_MAX_QUBITS`;
    * all-zero strengths are bit-identical to the exact pure-state path
      at equal seed (the noise→exact limit);
    * noisy sampling is deterministic at equal seed, and the draws are
      chi-square-consistent with the reference distribution.

    Circuits whose mixed state outgrows :data:`NOISE_NODE_LIMIT` are
    skipped (the dense reference would still agree, but the fuzz budget
    does not cover quadratic-size density builds).  Long circuits are
    verified on their first :data:`NOISE_MAX_OPERATIONS` instructions
    (:data:`NOISE_WIDE_MAX_OPERATIONS` beyond six qubits): both sides
    evolve the same prefix, so the comparison stays exact and every
    prefix op still exercises the channel-placement contract.
    """
    from ..noise import NoiseModel, noisy_probabilities_dense
    from ..simulators.density_simulator import (
        DensityMatrixSimulator,
        compile_noisy_sampler,
    )

    if circuit.num_qubits > NOISE_MAX_QUBITS:
        return None
    cap = (
        NOISE_MAX_OPERATIONS
        if circuit.num_qubits <= 6
        else NOISE_WIDE_MAX_OPERATIONS
    )
    if len(circuit.instructions) > cap:
        prefix = QuantumCircuit(circuit.num_qubits)
        for instruction in circuit.instructions[:cap]:
            prefix.append(instruction)
        circuit = prefix
    if circuit.num_qubits > 6:
        entanglers = sum(
            1 for op in circuit.operations if len(op.qubits) > 1
        )
        if entanglers > NOISE_WIDE_ENTANGLER_CAP * circuit.num_qubits:
            return None
    seed = int(rng.integers(2**63))
    if not circuit_has_mid_circuit_measurement(circuit):
        zero = simulate_and_sample(
            circuit, SAMPLE_SHOTS, seed=seed, noise=NoiseModel()
        )
        exact = simulate_and_sample(circuit, SAMPLE_SHOTS, seed=seed)
        if zero.counts != exact.counts:
            return (
                "strength-0 noise is not bit-identical to the exact path "
                "at equal seed"
            )
    noise = NoiseModel(
        depolarizing=float(rng.uniform(0.0, 0.08)),
        amplitude_damping=float(rng.uniform(0.0, 0.08)),
        phase_damping=float(rng.uniform(0.0, 0.08)),
        readout_p01=float(rng.uniform(0.0, 0.04)),
        readout_p10=float(rng.uniform(0.0, 0.04)),
    )
    try:
        rho = DensityMatrixSimulator(
            noise=noise, node_limit=NOISE_NODE_LIMIT
        ).run(circuit)
    except MemoryError:
        return None
    compiled = compile_noisy_sampler(rho, noise)
    reference = noisy_probabilities_dense(circuit, noise)
    detail = _compare_dense(
        compiled.probabilities(),
        reference,
        f"noisy dd vs dense ({noise.describe()})",
        atol=NOISE_ATOL,
    )
    if detail is not None:
        return detail
    first = compiled.sample(SAMPLE_SHOTS, np.random.default_rng(seed))
    replay = compiled.sample(SAMPLE_SHOTS, np.random.default_rng(seed))
    if not np.array_equal(first, replay):
        return "noisy sampling is not deterministic at equal seed"
    from ..core.results import SampleResult

    result = SampleResult.from_samples(circuit.num_qubits, first, method="dd")
    outcome = chi_square_gof(result, reference)
    if outcome.p_value >= P_VALUE_FLOOR:
        return None
    return (
        f"noisy samples vs dense: chi²={outcome.statistic:.2f} "
        f"(dof {outcome.dof}), p={outcome.p_value:.3e}"
    )


def _wrap(
    run: Callable[[QuantumCircuit, np.random.Generator], Optional[str]],
) -> Callable[[QuantumCircuit, np.random.Generator], Optional[str]]:
    """Convert backend exceptions into failure details (crash = bug)."""

    def guarded(
        circuit: QuantumCircuit, rng: np.random.Generator
    ) -> Optional[str]:
        try:
            return run(circuit, rng)
        except Exception as error:  # noqa: BLE001 - any crash is a finding
            return f"raised {type(error).__name__}: {error}"

    guarded.__doc__ = run.__doc__
    return guarded


ORACLES: Dict[str, Oracle] = {
    oracle.name: oracle
    for oracle in (
        Oracle(
            name="dd-vs-statevector",
            description="exact distribution: DD vs dense simulator",
            pair=("dd", "statevector"),
            applies=_exact_applies,
            run=_wrap(_check_dd_vs_statevector),
        ),
        Oracle(
            name="compiled-vs-dd",
            description="exact distribution: compiled sampler vs DD",
            pair=("compiled-dd", "dd"),
            applies=_exact_applies,
            run=_wrap(_check_compiled_vs_dd),
        ),
        Oracle(
            name="optimize-onoff",
            description="metamorphic: compile pipeline on vs off",
            pair=("dd+optimize", "dd"),
            applies=_exact_applies,
            run=_wrap(_check_optimize_metamorphic),
        ),
        Oracle(
            name="qasm-roundtrip",
            description="metamorphic: QASM export → import",
            pair=("dd", "dd+qasm"),
            applies=_exact_applies,
            run=_wrap(_check_qasm_roundtrip),
        ),
        Oracle(
            name="relabel",
            description="metamorphic: qubit relabeling permutes the distribution",
            pair=("dd", "dd+relabel"),
            applies=_exact_applies,
            run=_wrap(_check_relabel_metamorphic),
        ),
        Oracle(
            name="inverse-roundtrip",
            description="metamorphic: suffix followed by its inverse vanishes",
            pair=("dd", "dd+inverse"),
            applies=_exact_applies,
            run=_wrap(_check_inverse_roundtrip),
        ),
        Oracle(
            name="kernel-vs-python",
            description="exact distribution: SoA kernel vs python engine",
            pair=("dd@vector", "dd@python"),
            applies=lambda family: True,
            run=_wrap(_check_kernel_vs_python),
        ),
        Oracle(
            name="reorder-vs-fixed",
            description="exact + chi-square: reordered DD vs fixed order",
            pair=("dd+reorder", "dd"),
            applies=lambda family: family.reorder,
            run=_wrap(_check_reorder_vs_fixed),
        ),
        Oracle(
            name="approx-vs-exact",
            description="bound check: approximate DD error within reported ε",
            pair=("dd+approx", "statevector"),
            applies=lambda family: True,
            run=_wrap(_check_approx_vs_exact),
        ),
        Oracle(
            name="noisy-vs-dense",
            description="exact distribution: noisy density DD vs dense reference",
            pair=("density-dd", "dense-density"),
            applies=lambda family: True,
            run=_wrap(_check_noisy_vs_dense),
        ),
        Oracle(
            name="stabilizer-vs-exact",
            description="chi-square: stabilizer samples vs dense distribution",
            pair=("stabilizer", "statevector"),
            applies=lambda family: family.clifford and not family.mid_circuit,
            run=_wrap(_check_stabilizer_vs_exact),
        ),
        Oracle(
            name="sampler-vs-exact",
            description="chi-square: DD path samples vs DD distribution",
            pair=("dd-sampler", "dd"),
            applies=_exact_applies,
            run=_wrap(_check_dd_sampler_vs_exact),
        ),
        Oracle(
            name="workers",
            description="metamorphic: worker count 1 vs 3 is bit-identical",
            pair=("dd-sampler@1", "dd-sampler@3"),
            applies=_exact_applies,
            run=_wrap(_check_workers_metamorphic),
        ),
        Oracle(
            name="branching-vs-pershot",
            description="chi-square: outcome branching vs per-shot execution",
            pair=("shot-executor:branching", "shot-executor:per-shot"),
            applies=lambda family: family.mid_circuit,
            run=_wrap(_check_branching_vs_per_shot),
        ),
        Oracle(
            name="midmeasure-optimize",
            description="chi-square: ShotExecutor optimize on vs off",
            pair=("shot-executor+optimize", "shot-executor"),
            applies=lambda family: family.mid_circuit,
            run=_wrap(_check_midmeasure_optimize),
        ),
    )
}


def get_oracle(name: str) -> Oracle:
    """Look up an oracle by name, raising :class:`ReproError` when unknown."""
    try:
        return ORACLES[name]
    except KeyError:
        raise ReproError(
            f"unknown oracle {name!r}; available: {sorted(ORACLES)}"
        ) from None


def applicable_oracles(family: CircuitFamily) -> Tuple[Oracle, ...]:
    """The oracles that apply to circuits of ``family``, in registry order."""
    return tuple(
        oracle for oracle in ORACLES.values() if oracle.applies(family)
    )
