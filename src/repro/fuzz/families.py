"""Randomized circuit families for differential fuzzing.

Each family stresses a different corner of the simulator stack.  All
generators take an explicit ``numpy`` Generator, so a family plus a seed
pins down the circuit exactly — every failure is replayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from ..circuit import gates as g
from ..circuit.circuit import QuantumCircuit
from ..exceptions import ReproError

__all__ = ["CircuitFamily", "FAMILIES", "get_family"]

#: Gates the stabilizer backend understands (plus cx/cz built from
#: controls); the Clifford family draws only from these.
_CLIFFORD_SINGLE = ("h", "s", "sdg", "x", "y", "z")

#: Diagonal single-qubit gates for the diagonal-heavy family.
_DIAGONAL_SINGLE = ("z", "s", "sdg", "t", "tdg")


@dataclass(frozen=True)
class CircuitFamily:
    """A named random-circuit generator with oracle-relevant traits.

    ``clifford`` marks circuits the stabilizer backend can simulate;
    ``mid_circuit`` marks circuits containing measure-and-continue
    sections (only the :class:`~repro.core.shot_executor.ShotExecutor`
    oracles apply to those).  ``reorder`` marks families whose structure
    makes dynamic qubit reordering worthwhile — the reorder-vs-fixed
    oracle runs only on those, where a reordering bug would actually
    move nodes around.
    """

    name: str
    description: str
    generate: Callable[[np.random.Generator], QuantumCircuit]
    clifford: bool = False
    mid_circuit: bool = False
    reorder: bool = False


def _clifford(rng: np.random.Generator) -> QuantumCircuit:
    """Random Clifford circuit over {H, S, Paulis, CX, CZ, SWAP}."""
    num_qubits = int(rng.integers(2, 6))
    num_gates = int(rng.integers(3 * num_qubits, 8 * num_qubits))
    circuit = QuantumCircuit(num_qubits, name="fuzz_clifford")
    for _ in range(num_gates):
        roll = rng.random()
        if num_qubits >= 2 and roll < 0.35:
            a, b = (int(q) for q in rng.choice(num_qubits, size=2, replace=False))
            pick = rng.random()
            if pick < 0.45:
                circuit.cx(a, b)
            elif pick < 0.9:
                circuit.cz(a, b)
            else:
                circuit.swap(a, b)
        else:
            qubit = int(rng.integers(num_qubits))
            name = _CLIFFORD_SINGLE[int(rng.integers(len(_CLIFFORD_SINGLE)))]
            circuit.apply(g.GATE_REGISTRY[name](), qubit)
    return circuit


def _diagonal_heavy(rng: np.random.Generator) -> QuantumCircuit:
    """Hadamard front followed by long runs of diagonal gates.

    Exercises the diagonal-coalescing pass (phase-polynomial Möbius
    transform) and the :class:`DiagonalOperation` appliers, including
    wrapped phases accumulated past ``2π``.
    """
    num_qubits = int(rng.integers(2, 6))
    num_gates = int(rng.integers(4 * num_qubits, 10 * num_qubits))
    circuit = QuantumCircuit(num_qubits, name="fuzz_diagonal")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for _ in range(num_gates):
        roll = rng.random()
        qubit = int(rng.integers(num_qubits))
        if roll < 0.10:
            # Occasional H keeps the state from being a pure phase pattern.
            circuit.h(qubit)
        elif num_qubits >= 2 and roll < 0.40:
            a, b = (int(q) for q in rng.choice(num_qubits, size=2, replace=False))
            pick = rng.random()
            if pick < 0.4:
                circuit.cz(a, b)
            elif pick < 0.8:
                circuit.cp(float(rng.uniform(-4 * np.pi, 4 * np.pi)), a, b)
            else:
                circuit.rzz(float(rng.uniform(-4 * np.pi, 4 * np.pi)), a, b)
        elif roll < 0.70:
            if rng.random() < 0.5:
                circuit.p(float(rng.uniform(-4 * np.pi, 4 * np.pi)), qubit)
            else:
                circuit.rz(float(rng.uniform(-4 * np.pi, 4 * np.pi)), qubit)
        else:
            name = _DIAGONAL_SINGLE[int(rng.integers(len(_DIAGONAL_SINGLE)))]
            circuit.apply(g.GATE_REGISTRY[name](), qubit)
    return circuit


def _mid_measure(rng: np.random.Generator) -> QuantumCircuit:
    """Measure-and-continue circuits for the :class:`ShotExecutor` path.

    Interleaves short unitary segments with subset and full-register
    measurements; qubits are deliberately measured and then *reused* so
    the outcome-branching executor's collapse/renormalise cycle is hit
    repeatedly.
    """
    num_qubits = int(rng.integers(2, 5))
    segments = int(rng.integers(2, 5))
    circuit = QuantumCircuit(num_qubits, name="fuzz_midmeasure")
    for segment in range(segments):
        for _ in range(int(rng.integers(2, 3 + 2 * num_qubits))):
            if num_qubits >= 2 and rng.random() < 0.3:
                a, b = (
                    int(q) for q in rng.choice(num_qubits, size=2, replace=False)
                )
                circuit.cx(a, b)
            else:
                qubit = int(rng.integers(num_qubits))
                pick = rng.random()
                if pick < 0.4:
                    circuit.h(qubit)
                elif pick < 0.7:
                    circuit.ry(float(rng.uniform(0, 2 * np.pi)), qubit)
                else:
                    circuit.apply(
                        g.GATE_REGISTRY[("x", "s", "t")[int(rng.integers(3))]](),
                        qubit,
                    )
        if segment < segments - 1 and rng.random() < 0.6:
            size = int(rng.integers(1, num_qubits + 1))
            subset = sorted(
                int(q) for q in rng.choice(num_qubits, size=size, replace=False)
            )
            circuit.measure(*subset)
        else:
            circuit.measure_all()
    return circuit


def _deep_register(rng: np.random.Generator) -> QuantumCircuit:
    """Wide, shallow circuits (12–16 qubits) with small DDs.

    Stresses the iterative (stack-based) DD traversals and the level
    bookkeeping of the compiled sampler without blowing up the dense
    reference (``2^16`` amplitudes stay tractable for the oracle).
    """
    num_qubits = int(rng.integers(12, 17))
    circuit = QuantumCircuit(num_qubits, name="fuzz_deep")
    for qubit in range(num_qubits):
        if rng.random() < 0.7:
            theta, phi, lam = (float(v) for v in rng.uniform(0, 2 * np.pi, size=3))
            circuit.u3(theta, phi, lam, qubit)
        else:
            circuit.h(qubit)
    # A sparse entangler ladder keeps node counts low but non-trivial.
    for qubit in range(0, num_qubits - 1, 2):
        if rng.random() < 0.5:
            circuit.cx(qubit, qubit + 1)
    for _ in range(int(rng.integers(2, 6))):
        a, b = (int(q) for q in rng.choice(num_qubits, size=2, replace=False))
        circuit.cz(a, b)
    return circuit


def _supremacy(rng: np.random.Generator) -> QuantumCircuit:
    """Random-circuit-sampling cycles with long-range entangling pairs.

    The quantum-supremacy pattern: cycles of random single-qubit
    rotations followed by a patterned entangling layer.  Every other
    cycle the ``cx`` pairs connect qubit ``i`` with ``i + n/2`` — the
    crossing pattern whose interactions are maximally non-local in the
    natural variable order, making this the primary stress family for
    the qubit-reordering machinery (``repro.dd.reorder``).  Width is
    kept at 8-10 qubits: enough for the crossing pattern to blow up the
    natural-order DD, small enough that the dense-reference oracles stay
    within the fuzz smoke budget.
    """
    num_qubits = int(rng.integers(8, 11))
    half = num_qubits // 2
    cycles = int(rng.integers(2, 4))
    circuit = QuantumCircuit(num_qubits, name="fuzz_supremacy")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for cycle in range(cycles):
        for qubit in range(num_qubits):
            theta, phi, lam = (
                float(v) for v in rng.uniform(0, 2 * np.pi, size=3)
            )
            circuit.u3(theta, phi, lam, qubit)
        if cycle % 2 == 0:
            for low in range(half):
                if rng.random() < 0.8:
                    circuit.cx(low, low + half)
        else:
            for low in range(0, num_qubits - 1, 2):
                circuit.cx(low, low + 1)
    return circuit


def _near_zero(rng: np.random.Generator) -> QuantumCircuit:
    """Adversarial circuits with amplitudes within rounding of zero.

    Tiny rotations, interference sandwiches (H·P(ε)·H ≈ identity), and
    exact inverse pairs produce states whose smallest amplitudes sit at
    the tolerance boundary of the complex table — the regime where
    normalisation and collapse bugs hide.
    """
    num_qubits = int(rng.integers(2, 5))
    epsilons = (1e-6, 1e-8, 1e-10)
    circuit = QuantumCircuit(num_qubits, name="fuzz_nearzero")
    for _ in range(int(rng.integers(3 * num_qubits, 7 * num_qubits))):
        qubit = int(rng.integers(num_qubits))
        roll = rng.random()
        eps = float(epsilons[int(rng.integers(len(epsilons)))])
        if roll < 0.25:
            circuit.ry(eps * float(rng.choice((-1.0, 1.0))), qubit)
        elif roll < 0.45:
            circuit.h(qubit)
            circuit.p(eps, qubit)
            circuit.h(qubit)
        elif roll < 0.6:
            theta = float(rng.uniform(0, 2 * np.pi))
            circuit.rz(theta, qubit)
            circuit.rz(-theta, qubit)
        elif num_qubits >= 2 and roll < 0.8:
            a, b = (int(q) for q in rng.choice(num_qubits, size=2, replace=False))
            circuit.cx(a, b)
        else:
            circuit.h(qubit)
    return circuit


FAMILIES: Dict[str, CircuitFamily] = {
    family.name: family
    for family in (
        CircuitFamily(
            name="clifford",
            description="Clifford-only circuits (stabilizer-checkable)",
            generate=_clifford,
            clifford=True,
        ),
        CircuitFamily(
            name="diagonal",
            description="diagonal-heavy circuits with wrapped phases",
            generate=_diagonal_heavy,
        ),
        CircuitFamily(
            name="midmeasure",
            description="measure-and-continue circuits with qubit reuse",
            generate=_mid_measure,
            mid_circuit=True,
        ),
        CircuitFamily(
            name="deep",
            description="wide shallow registers (12-16 qubits)",
            generate=_deep_register,
            reorder=True,
        ),
        CircuitFamily(
            name="supremacy",
            description="random-circuit-sampling cycles with crossing pairs",
            generate=_supremacy,
            reorder=True,
        ),
        CircuitFamily(
            name="nearzero",
            description="adversarial near-zero-amplitude circuits",
            generate=_near_zero,
        ),
    )
}


def get_family(name: str) -> CircuitFamily:
    """Look up a family by name, raising :class:`ReproError` when unknown."""
    try:
        return FAMILIES[name]
    except KeyError:
        raise ReproError(
            f"unknown circuit family {name!r}; available: {sorted(FAMILIES)}"
        ) from None


def generate(
    family: str, seed_material: Tuple[int, ...]
) -> QuantumCircuit:
    """Generate one circuit of ``family`` from deterministic seed material."""
    return get_family(family).generate(np.random.default_rng(list(seed_material)))
