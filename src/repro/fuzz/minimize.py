"""Delta-debugging of failing circuits to locally-minimal reproducers.

Given a circuit and a predicate (``check(circuit) -> failure detail or
None``), :func:`minimize_circuit` shrinks along three axes:

1. **ddmin** over the instruction stream (Zeller's delta debugging with
   complement testing and halving granularity),
2. a greedy **one-removal fixpoint** — no single instruction can be
   dropped while keeping the failure,
3. **qubit compaction** — unused wires are squeezed out so the
   reproducer's register is as narrow as the bug allows.

The result is locally minimal by construction, which is what the corpus
wants: small enough to eyeball, still failing deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..circuit.circuit import QuantumCircuit
from ..circuit.operations import BaseOperation, Barrier, Measurement
from ..circuit.transforms import permute_qubits

__all__ = ["MinimizationResult", "minimize_circuit"]

#: Stop shrinking after this many predicate evaluations; the predicate
#: reruns a full differential oracle, so the budget bounds wall-clock.
DEFAULT_MAX_CHECKS = 400

CheckFn = Callable[[QuantumCircuit], Optional[str]]


@dataclass
class MinimizationResult:
    """The shrunk circuit plus bookkeeping from the search."""

    circuit: QuantumCircuit
    #: Failure detail reported by the predicate on the minimal circuit.
    detail: str
    #: Number of predicate evaluations spent.
    checks: int
    #: Instruction counts before and after shrinking.
    original_size: int
    minimized_size: int


class _Budget:
    """Counts predicate evaluations against a hard cap."""

    def __init__(self, check: CheckFn, limit: int):
        """Wrap ``check`` so every call decrements the shared ``limit``."""
        self._check = check
        self._limit = limit
        self.spent = 0

    def exhausted(self) -> bool:
        """True once no further predicate evaluations are allowed."""
        return self.spent >= self._limit

    def __call__(self, circuit: QuantumCircuit) -> Optional[str]:
        """Evaluate the predicate, or give up (None) past the budget."""
        if self.exhausted():
            return None
        self.spent += 1
        return self._check(circuit)


def _rebuild(
    circuit: QuantumCircuit, instructions: Sequence[object]
) -> QuantumCircuit:
    """A same-width circuit containing exactly ``instructions``."""
    out = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for instruction in instructions:
        out.append(instruction)
    return out


def _ddmin(
    circuit: QuantumCircuit,
    instructions: List[object],
    check: _Budget,
) -> List[object]:
    """Classic ddmin over the instruction list (subsets + complements)."""
    granularity = 2
    while len(instructions) >= 2 and not check.exhausted():
        chunk = max(1, len(instructions) // granularity)
        chunks = [
            instructions[i : i + chunk]
            for i in range(0, len(instructions), chunk)
        ]
        reduced = False
        for index in range(len(chunks)):
            complement = [
                op for j, piece in enumerate(chunks) if j != index for op in piece
            ]
            if not complement:
                continue
            if check(_rebuild(circuit, complement)) is not None:
                instructions = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(instructions):
                break
            granularity = min(len(instructions), 2 * granularity)
    return instructions


def _one_removal_fixpoint(
    circuit: QuantumCircuit,
    instructions: List[object],
    check: _Budget,
) -> List[object]:
    """Drop single instructions until none can go (local minimality)."""
    changed = True
    while changed and not check.exhausted():
        changed = False
        for index in range(len(instructions)):
            candidate = instructions[:index] + instructions[index + 1 :]
            if candidate and check(_rebuild(circuit, candidate)) is not None:
                instructions = candidate
                changed = True
                break
    return instructions


def _compact_qubits(
    circuit: QuantumCircuit, check: _Budget
) -> QuantumCircuit:
    """Squeeze out unused wires when the failure survives the relabeling."""
    used = set()
    measure_all = False
    for instruction in circuit:
        if isinstance(instruction, BaseOperation):
            used.update(instruction.qubits)
        elif isinstance(instruction, (Measurement, Barrier)):
            if isinstance(instruction, Measurement) and not instruction.qubits:
                measure_all = True
            used.update(instruction.qubits)
    if measure_all or not used or len(used) == circuit.num_qubits:
        return circuit
    order = sorted(used)
    mapping = [0] * circuit.num_qubits
    for new, old in enumerate(order):
        mapping[old] = new
    compacted = permute_qubits(circuit, mapping, num_qubits=len(order))
    if check(compacted) is not None:
        return compacted
    return circuit


def minimize_circuit(
    circuit: QuantumCircuit,
    check: CheckFn,
    max_checks: int = DEFAULT_MAX_CHECKS,
) -> MinimizationResult:
    """Shrink ``circuit`` to a locally-minimal still-failing reproducer.

    ``check`` must return a failure detail for the input circuit (the
    caller observed the failure already); raises ``ValueError`` if the
    failure does not reproduce on the unmodified circuit, which would
    mean the predicate is flaky and minimization meaningless.
    """
    budget = _Budget(check, max_checks)
    initial = budget(circuit)
    if initial is None:
        raise ValueError(
            "failure does not reproduce on the original circuit; "
            "refusing to minimize a flaky predicate"
        )
    instructions = list(circuit.instructions)
    instructions = _ddmin(circuit, instructions, budget)
    instructions = _one_removal_fixpoint(circuit, instructions, budget)
    shrunk = _rebuild(circuit, instructions)
    shrunk = _compact_qubits(shrunk, budget)
    detail = check(shrunk)
    return MinimizationResult(
        circuit=shrunk,
        detail=detail if detail is not None else initial,
        checks=budget.spent,
        original_size=len(circuit),
        minimized_size=len(shrunk),
    )
