"""The differential fuzzing loop.

:func:`run_fuzz` interleaves the circuit families round-robin, runs each
generated circuit through every applicable oracle, and — on a mismatch —
delta-debugs the circuit to a locally-minimal reproducer and serializes
it to the QASM corpus.  Everything is seeded: the circuit drawn as
``(family, index)`` and the oracle's own randomness both derive from
``FuzzConfig.seed`` through independent ``numpy`` SeedSequence streams,
so any reported failure replays exactly from its seed material alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .. import telemetry as _telemetry
from ..circuit.circuit import QuantumCircuit
from .corpus import save_reproducer
from .families import FAMILIES, get_family
from .minimize import DEFAULT_MAX_CHECKS, minimize_circuit
from .oracles import Oracle, applicable_oracles

__all__ = ["FuzzConfig", "FuzzFailure", "FuzzReport", "run_fuzz"]


@dataclass(frozen=True)
class FuzzConfig:
    """Tuning knobs for one fuzzing run (all deterministic given ``seed``)."""

    #: Family names to draw from, round-robin.
    families: Tuple[str, ...] = tuple(FAMILIES)
    #: Master seed; every circuit and oracle stream derives from it.
    seed: int = 0
    #: Stop after this many circuits (``None`` = no count limit).
    max_circuits: Optional[int] = 200
    #: Stop once this much wall-clock has elapsed (``None`` = no limit).
    time_budget_seconds: Optional[float] = None
    #: Delta-debug failures down to minimal reproducers.
    minimize: bool = True
    #: Predicate-evaluation budget per minimization.
    max_minimize_checks: int = DEFAULT_MAX_CHECKS
    #: Where reproducers are written (``None`` = ``tests/corpus/``).
    corpus_dir: Optional[Path] = None
    #: Serialize minimized failures to the corpus.
    save_failures: bool = True


@dataclass
class FuzzFailure:
    """One confirmed oracle mismatch, minimized where possible."""

    family: str
    oracle: str
    #: Seed material that regenerates the original circuit.
    seed_material: Tuple[int, ...]
    detail: str
    circuit: QuantumCircuit
    #: Instruction count before minimization.
    original_size: int
    #: Path of the serialized reproducer (``None`` if saving disabled).
    corpus_path: Optional[Path] = None

    def replay_id(self) -> str:
        """Compact identifier used in corpus file names and reports."""
        return "-".join(str(part) for part in self.seed_material)


@dataclass
class FuzzReport:
    """Aggregate outcome of a fuzzing run."""

    config: FuzzConfig
    circuits: int = 0
    checks: int = 0
    elapsed_seconds: float = 0.0
    failures: List[FuzzFailure] = field(default_factory=list)
    per_family: Dict[str, int] = field(default_factory=dict)
    per_oracle: Dict[str, int] = field(default_factory=dict)
    #: Distinct backend pairs exercised at least once.
    pairs: Set[Tuple[str, str]] = field(default_factory=set)

    @property
    def ok(self) -> bool:
        """True when every oracle agreed on every circuit."""
        return not self.failures

    def stats(self) -> Dict[str, int]:
        """Counter-shaped summary for :meth:`Registry.record_fuzz`."""
        return {
            "circuits": self.circuits,
            "checks": self.checks,
            "failures": len(self.failures),
        }

    def summary(self) -> str:
        """Human-readable multi-line run summary."""
        lines = [
            f"fuzz: {self.circuits} circuits, {self.checks} checks, "
            f"{len(self.failures)} failures in {self.elapsed_seconds:.1f}s",
            "families: "
            + ", ".join(
                f"{name}={count}" for name, count in sorted(self.per_family.items())
            ),
            f"backend pairs: {len(self.pairs)}",
        ]
        for failure in self.failures:
            where = failure.corpus_path.name if failure.corpus_path else "(not saved)"
            lines.append(
                f"  FAIL {failure.family}/{failure.oracle} "
                f"seed={failure.replay_id()} -> {where}: {failure.detail}"
            )
        return "\n".join(lines)


def _oracle_rng(
    config: FuzzConfig, material: Sequence[int], salt: int
) -> np.random.Generator:
    """Deterministic per-(circuit, oracle) random stream."""
    return np.random.default_rng(list(material) + [salt])


def _handle_failure(
    config: FuzzConfig,
    report: FuzzReport,
    circuit: QuantumCircuit,
    family_name: str,
    oracle: Oracle,
    seed_material: Tuple[int, ...],
    oracle_index: int,
    detail: str,
) -> None:
    """Minimize, record, and (optionally) serialize one mismatch."""
    original_size = len(circuit)
    minimized = circuit
    with _telemetry.span(
        "fuzz.minimize", family=family_name, oracle=oracle.name
    ):
        if config.minimize:
            # The predicate re-derives the oracle RNG every call, so the
            # check is a deterministic function of the candidate circuit.
            def check(candidate: QuantumCircuit) -> Optional[str]:
                return oracle.run(
                    candidate, _oracle_rng(config, seed_material, oracle_index)
                )

            try:
                minimized = minimize_circuit(
                    circuit, check, max_checks=config.max_minimize_checks
                ).circuit
            except ValueError:
                # Flaky reproduction: keep the original circuit so the
                # failure is still reported, just unminimized.
                minimized = circuit
    failure = FuzzFailure(
        family=family_name,
        oracle=oracle.name,
        seed_material=seed_material,
        detail=detail,
        circuit=minimized,
        original_size=original_size,
    )
    if config.save_failures:
        failure.corpus_path = save_reproducer(
            minimized,
            family=family_name,
            oracle=oracle.name,
            seed=failure.replay_id(),
            detail=detail,
            directory=config.corpus_dir,
            minimized_from=original_size,
        )
    report.failures.append(failure)
    session = _telemetry.active()
    if session is not None:
        session.registry.counter("fuzz.failures").inc()


def run_fuzz(
    config: FuzzConfig = FuzzConfig(),
    telemetry: Optional["_telemetry.Telemetry"] = None,
) -> FuzzReport:
    """Run the differential fuzzing loop described by ``config``.

    Families are interleaved round-robin so a short run still covers all
    of them.  ``telemetry`` activates an observability session: the loop
    and each minimization become trace spans and the circuit/check/
    failure counters land in the metrics registry (``fuzz.*``).
    """
    families = [get_family(name) for name in config.families]
    if not families:
        raise ValueError("at least one circuit family is required")
    report = FuzzReport(config=config)
    started = time.perf_counter()
    with _telemetry.activate(telemetry):
        with _telemetry.span("fuzz.run", seed=config.seed):
            index = 0
            while True:
                if (
                    config.max_circuits is not None
                    and report.circuits >= config.max_circuits
                ):
                    break
                if (
                    config.time_budget_seconds is not None
                    and time.perf_counter() - started >= config.time_budget_seconds
                ):
                    break
                family_index = index % len(families)
                family = families[family_index]
                circuit_number = index // len(families)
                seed_material = (config.seed, family_index, circuit_number)
                circuit = family.generate(
                    np.random.default_rng(list(seed_material))
                )
                report.circuits += 1
                report.per_family[family.name] = (
                    report.per_family.get(family.name, 0) + 1
                )
                for oracle_index, oracle in enumerate(
                    applicable_oracles(family)
                ):
                    detail = oracle.run(
                        circuit, _oracle_rng(config, seed_material, oracle_index)
                    )
                    report.checks += 1
                    report.per_oracle[oracle.name] = (
                        report.per_oracle.get(oracle.name, 0) + 1
                    )
                    report.pairs.add(oracle.pair)
                    if detail is not None:
                        _handle_failure(
                            config,
                            report,
                            circuit,
                            family.name,
                            oracle,
                            seed_material,
                            oracle_index,
                            detail,
                        )
                index += 1
        report.elapsed_seconds = time.perf_counter() - started
        session = _telemetry.active()
        if session is not None:
            session.registry.record_fuzz(report.stats())
    return report
