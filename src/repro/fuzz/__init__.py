"""Differential fuzzing of the simulation backends.

The paper's central claim is that weak-simulation samples are
statistically indistinguishable from the true circuit distribution, so
silent numerical drift between the statevector, decision-diagram,
compiled-DD, and stabilizer paths is the highest-severity bug class in
this repository.  This package cross-checks every backend pair on
randomized circuits, in the spirit of the differential/metamorphic
oracles used by DD equivalence checking (Burgholzer & Wille, ASP-DAC
2020) and the JKQ DD simulation package (Zulehner & Wille, TCAD 2019):

* :mod:`~repro.fuzz.families` — randomized circuit generators
  (Clifford-only, diagonal-heavy, mid-circuit-measurement, deep-register,
  near-zero-amplitude adversarial),
* :mod:`~repro.fuzz.oracles` — differential and metamorphic checks
  (exact distribution equality where tractable, chi-square/TVD on
  samples otherwise; optimize on/off, worker counts, qubit relabeling,
  gate-inverse round-trips, QASM round-trips),
* :mod:`~repro.fuzz.minimize` — delta-debugging of failing circuits to
  locally-minimal reproducers,
* :mod:`~repro.fuzz.corpus` — QASM serialization of reproducers under
  ``tests/corpus/`` and deterministic replay,
* :mod:`~repro.fuzz.runner` — the fuzzing loop
  (:func:`~repro.fuzz.runner.run_fuzz`), with telemetry counters/spans,
* ``python -m repro.fuzz`` — the command-line front end
  (``make fuzz-smoke`` runs the seeded 60-second budget).
"""

from .families import FAMILIES, CircuitFamily, get_family
from .minimize import minimize_circuit
from .oracles import ORACLES, Oracle, applicable_oracles, get_oracle
from .runner import FuzzConfig, FuzzFailure, FuzzReport, run_fuzz

__all__ = [
    "FAMILIES",
    "CircuitFamily",
    "get_family",
    "ORACLES",
    "Oracle",
    "applicable_oracles",
    "get_oracle",
    "minimize_circuit",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzReport",
    "run_fuzz",
]
