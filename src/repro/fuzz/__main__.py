"""Command-line front end for the differential fuzzer.

Examples::

    python -m repro.fuzz --max-circuits 200 --seed 7     # smoke budget
    python -m repro.fuzz --time-budget 3600              # long soak
    python -m repro.fuzz --families clifford,nearzero
    python -m repro.fuzz --self-check                    # mutation test

``--self-check`` deliberately injects two known bugs — a normalisation
skew in the DD package, then an over-pruning approximation that lies
about its fidelity bound — and verifies the fuzzer catches both (and
minimizes the first to a handful of gates) — proof the oracles have
teeth (documented in ``docs/fuzzing.md``).  Exit status is non-zero
when failures are found (or, under ``--self-check``, when an injected
bug is *not* found).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from .. import telemetry as _telemetry
from ..dd import approximation as _dd_approximation
from ..dd import package as _dd_package
from .families import FAMILIES
from .runner import FuzzConfig, FuzzReport, run_fuzz

#: The injected self-check bug minimizes to at most this many instructions.
SELF_CHECK_MAX_GATES = 8


def _build_parser() -> argparse.ArgumentParser:
    """The fuzz CLI's argument parser (importable for the docs checker)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="differential fuzzing of the simulation backends",
    )
    parser.add_argument(
        "--families",
        default=",".join(FAMILIES),
        help=f"comma-separated family names (default: all of {sorted(FAMILIES)})",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--max-circuits",
        type=int,
        default=200,
        help="stop after this many circuits (0 = unlimited)",
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop after this much wall-clock time",
    )
    parser.add_argument(
        "--corpus-dir",
        type=Path,
        default=None,
        help="where to write reproducers (default: tests/corpus/)",
    )
    parser.add_argument(
        "--no-minimize",
        action="store_true",
        help="report failures without delta-debugging them",
    )
    parser.add_argument(
        "--no-save",
        action="store_true",
        help="do not serialize reproducers to the corpus",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="export a telemetry JSONL trace of the run",
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="inject a known normalisation bug and verify the fuzzer catches it",
    )
    return parser


def _parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    """Build and evaluate the command-line interface."""
    return _build_parser().parse_args(argv)


def _config_from_args(args: argparse.Namespace) -> FuzzConfig:
    """Translate parsed CLI flags into a :class:`FuzzConfig`."""
    return FuzzConfig(
        families=tuple(
            name.strip() for name in args.families.split(",") if name.strip()
        ),
        seed=args.seed,
        max_circuits=args.max_circuits or None,
        time_budget_seconds=args.time_budget,
        minimize=not args.no_minimize,
        corpus_dir=args.corpus_dir,
        save_failures=not args.no_save,
    )


def _skewed_normalize(weights, scheme, tolerance=1e-12):
    """The injected bug: skew the first child weight by 0.1 percent.

    Only kicks in when both children are nonzero, so trivial product
    states stay exact and the failure needs genuine superposition —
    exactly the kind of subtle drift the differential oracles exist for.
    """
    normalised, factor = _ORIGINAL_NORMALIZE(weights, scheme, tolerance)
    if all(abs(w) > tolerance for w in normalised):
        skewed = (normalised[0] * (1.0 + 1e-3),) + tuple(normalised[1:])
        return skewed, factor
    return normalised, factor


_ORIGINAL_NORMALIZE = _dd_package.normalize_weights


def _overpruning_prune(state, budget, package=None):
    """The planted approximation bug: prune far beyond the allowance
    while reporting only 1 percent of the removed mass, so the tracked
    fidelity bound claims near-exactness the state no longer has.  The
    ``approx-vs-exact`` oracle must notice the true TVD blowing through
    the reported bound.
    """
    result = _ORIGINAL_PRUNE(
        state, min(0.5, budget * 25.0 + 0.02), package=package
    )
    return dataclasses.replace(result, removed_mass=result.removed_mass * 0.01)


_ORIGINAL_PRUNE = _dd_approximation.prune_low_contribution


def _check_normalize_mutation(args: argparse.Namespace) -> int:
    """The fuzzer must catch the skew bug and minimize it tightly."""
    with tempfile.TemporaryDirectory() as scratch:
        config = FuzzConfig(
            families=("clifford", "diagonal"),
            seed=args.seed,
            max_circuits=20,
            corpus_dir=Path(scratch),
        )
        _dd_package.normalize_weights = _skewed_normalize
        try:
            report = run_fuzz(config)
        finally:
            _dd_package.normalize_weights = _ORIGINAL_NORMALIZE
    if not report.failures:
        print("self-check FAILED: injected normalisation bug went undetected")
        return 1
    smallest = min(len(f.circuit) for f in report.failures)
    print(
        f"self-check passed: injected bug caught {len(report.failures)} time(s); "
        f"smallest reproducer has {smallest} instruction(s)"
    )
    if smallest > SELF_CHECK_MAX_GATES:
        print(
            f"self-check FAILED: smallest reproducer ({smallest} gates) "
            f"exceeds the {SELF_CHECK_MAX_GATES}-gate bound"
        )
        return 1
    return 0


def _check_overpruning_mutation(args: argparse.Namespace) -> int:
    """The approx-vs-exact oracle must catch a lying fidelity bound."""
    with tempfile.TemporaryDirectory() as scratch:
        config = FuzzConfig(
            families=("diagonal", "nearzero"),
            seed=args.seed,
            max_circuits=20,
            minimize=False,
            corpus_dir=Path(scratch),
        )
        _dd_approximation.prune_low_contribution = _overpruning_prune
        try:
            report = run_fuzz(config)
        finally:
            _dd_approximation.prune_low_contribution = _ORIGINAL_PRUNE
    caught = [f for f in report.failures if f.oracle == "approx-vs-exact"]
    if not caught:
        print(
            "self-check FAILED: planted over-pruning bug went undetected "
            "by the approx-vs-exact oracle"
        )
        return 1
    print(
        "self-check passed: planted over-pruning bug caught "
        f"{len(caught)} time(s) by approx-vs-exact"
    )
    return 0


def _run_self_check(args: argparse.Namespace) -> int:
    """Mutation tests: each planted bug must be found by its oracle."""
    return _check_normalize_mutation(args) | _check_overpruning_mutation(args)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = _parse_args(argv)
    if args.self_check:
        return _run_self_check(args)
    config = _config_from_args(args)
    session = _telemetry.Telemetry() if args.trace else None
    report: FuzzReport = run_fuzz(config, telemetry=session)
    print(report.summary())
    if session is not None:
        session.export(str(args.trace))
        print(f"trace written to {args.trace}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
