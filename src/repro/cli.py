"""``repro-sample``: weak simulation of OpenQASM files from the shell.

The user-facing simulator binary: read a circuit, draw shots, print (or
save) the counts.  Mirrors how one uses a cloud quantum backend::

    repro-sample bell.qasm --shots 10000 --method dd --seed 7
    repro-sample grover.qasm --shots 1000 --json results.json
    repro-sample circuit.qasm --draw          # just show the circuit

Exit status is 0 on success, 2 for bad input.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .circuit.drawer import draw
from .circuit.qasm import parse_qasm
from .core.weak_sim import DD_METHODS, VECTOR_METHODS, simulate_and_sample
from .exceptions import ReproError

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sample",
        description="Weak simulation of an OpenQASM 2.0 circuit: produce "
        "measurement samples like a physical quantum computer.",
    )
    parser.add_argument("qasm_file", help="path to the OpenQASM 2.0 circuit")
    parser.add_argument("--shots", type=int, default=1024, help="samples to draw")
    parser.add_argument(
        "--method",
        choices=DD_METHODS + VECTOR_METHODS,
        default="dd",
        help="sampling back-end (default: decision-diagram path sampling)",
    )
    parser.add_argument("--seed", type=int, default=None, help="RNG seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="sample in seed-stable chunks on N worker threads "
        "(method 'dd' only; same seed gives the same samples for any N)",
    )
    parser.add_argument(
        "--top", type=int, default=20, help="print at most this many outcomes"
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="write the full counts as JSON to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--draw", action="store_true", help="print the circuit and exit"
    )
    parser.add_argument(
        "--stats", action="store_true", help="print DD/timing statistics"
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="record a telemetry trace of the run and write it as JSONL "
        "to FILE (render with 'python -m repro.telemetry.report FILE')",
    )
    parser.add_argument(
        "--no-optimize",
        action="store_true",
        help="skip the compile pipeline and simulate the circuit verbatim",
    )
    parser.add_argument(
        "--kernel",
        choices=("auto", "vector", "python"),
        default="auto",
        help="strong-simulation engine: 'vector' is the structure-of-"
        "arrays kernel, 'python' the reference recursion, 'auto' picks "
        "per scheme; both are bit-identical, so samples do not depend "
        "on the choice",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="serve through the sampling service with a persistent "
        "compiled-artifact cache in DIR: a repeat invocation of the same "
        "circuit skips strong simulation and is bit-identical for the "
        "same --seed (see docs/serving.md)",
    )
    parser.add_argument(
        "--approx-epsilon",
        type=float,
        default=0.0,
        metavar="EPS",
        help="approximate the DD build, keeping the tracked fidelity "
        "lower bound >= 1-EPS (0, the default, is exact; DD methods "
        "only; see docs/approximation.md)",
    )
    parser.add_argument(
        "--approx-node-budget",
        type=int,
        default=None,
        metavar="N",
        help="switch approximation to the memory-driven strategy: prune "
        "only when the DD exceeds N nodes, still spending at most "
        "--approx-epsilon of fidelity",
    )
    parser.add_argument(
        "--reorder",
        action="store_true",
        help="shrink the DD by reordering qubits: a connectivity-derived "
        "initial order plus dynamic sifting during the build; reported "
        "samples stay in the original qubit order (DD methods only; see "
        "docs/reordering.md)",
    )
    parser.add_argument(
        "--reorder-budget",
        type=int,
        default=None,
        metavar="N",
        help="cap the total adjacent-swap attempts sifting may spend "
        "(default 256; implies --reorder)",
    )
    parser.add_argument(
        "--noise",
        metavar="SPEC",
        default=None,
        help="simulate under local noise (method 'dd' only): a channel "
        "name (depolarizing, amplitude_damping, phase_damping, bit_flip, "
        "phase_flip; strength from --noise-strength) or a JSON object "
        'like \'{"depolarizing": 0.01, "readout": {"p01": 0.02}}\' '
        "(see docs/noise.md)",
    )
    parser.add_argument(
        "--noise-strength",
        type=float,
        default=None,
        metavar="P",
        help="strength in [0, 1] for the --noise channel name; on its "
        "own, shorthand for depolarizing noise at strength P",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-sample``; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        with open(args.qasm_file, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as error:
        print(f"error: cannot read {args.qasm_file}: {error}", file=sys.stderr)
        return 2
    try:
        circuit = parse_qasm(source)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.draw:
        print(draw(circuit))
        return 0

    if args.shots < 1:
        print("error: --shots must be positive", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print("error: --workers must be positive", file=sys.stderr)
        return 2

    approximation = None
    if args.approx_epsilon or args.approx_node_budget is not None:
        from .dd.approximation import ApproximationConfig

        try:
            approximation = ApproximationConfig(
                epsilon=args.approx_epsilon,
                node_budget=args.approx_node_budget,
            )
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if not approximation.enabled:
            print(
                "error: --approx-node-budget needs --approx-epsilon > 0 "
                "(the fidelity allowance the pruning may spend)",
                file=sys.stderr,
            )
            return 2

    reorder = None
    if args.reorder or args.reorder_budget is not None:
        from .dd.reorder import DEFAULT_SIFT_BUDGET, ReorderConfig

        try:
            reorder = ReorderConfig(
                enabled=True,
                budget=(
                    args.reorder_budget
                    if args.reorder_budget is not None
                    else DEFAULT_SIFT_BUDGET
                ),
            )
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    noise = None
    if args.noise is not None or args.noise_strength is not None:
        from .noise import NoiseModel

        spec = args.noise
        if spec is not None and spec.lstrip().startswith("{"):
            if args.noise_strength is not None:
                print(
                    "error: --noise-strength does not combine with a JSON "
                    "--noise object (put the strengths in the object)",
                    file=sys.stderr,
                )
                return 2
            import json

            try:
                material = json.loads(spec)
            except ValueError as error:
                print(f"error: --noise is not valid JSON: {error}", file=sys.stderr)
                return 2
        elif spec is not None:
            if args.noise_strength is None:
                print(
                    f"error: --noise {spec} needs --noise-strength "
                    "(or pass a JSON object with explicit strengths)",
                    file=sys.stderr,
                )
                return 2
            material = {spec: args.noise_strength}
        else:
            material = {"depolarizing": args.noise_strength}
        try:
            noise = NoiseModel.from_value(material)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if noise is not None and not noise.enabled:
            noise = None

    session = None
    if args.trace:
        from .telemetry import Telemetry

        session = Telemetry()

    start = time.perf_counter()
    cache_note = ""
    try:
        if args.cache_dir is not None:
            from .service import SamplingRequest, SamplingService

            with SamplingService(
                cache_dir=args.cache_dir, telemetry=session
            ) as service:
                response = service.sample(
                    SamplingRequest(
                        circuit,
                        args.shots,
                        seed=args.seed,
                        method=args.method,
                        workers=args.workers,
                        optimize=not args.no_optimize,
                        kernel=args.kernel,
                        approximation=approximation,
                        reorder=reorder,
                        noise_model=noise,
                    )
                )
            if not response.ok:
                print(
                    f"error: service {response.status}: {response.error}",
                    file=sys.stderr,
                )
                return 2
            result = response.result
            cache_note = f" (cache: {response.cache})"
        else:
            result = simulate_and_sample(
                circuit,
                args.shots,
                method=args.method,
                seed=args.seed,
                workers=args.workers,
                optimize=not args.no_optimize,
                telemetry=session,
                kernel=args.kernel,
                approximation=approximation,
                reorder=reorder,
                noise=noise,
            )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start

    print(
        f"{circuit.num_qubits} qubits, {circuit.num_operations} gates; "
        f"{result.shots} shots via {args.method!r} in {elapsed:.3f} s"
        f"{cache_note}"
    )
    if approximation is not None:
        approx_meta = (result.metadata.get("build") or {}).get("approximation")
        if approx_meta is None:
            approx_meta = (result.metadata.get("service") or {}).get(
                "approximation"
            )
        if approx_meta:
            print(
                f"approximation: fidelity >= {approx_meta['fidelity_bound']:.6f} "
                f"(epsilon budget {approximation.epsilon}, "
                f"{approx_meta['rounds']} pruning rounds, "
                f"{approx_meta['removed_edges']} edges removed)"
            )
    if reorder is not None:
        reorder_meta = (result.metadata.get("build") or {}).get("reorder")
        if reorder_meta is None:
            reorder_meta = (result.metadata.get("service") or {}).get("reorder")
        if reorder_meta:
            print(
                f"reorder: level_to_qubit={reorder_meta['level_to_qubit']} "
                f"({reorder_meta['rounds']} sifting rounds, "
                f"{reorder_meta['swaps_kept']} swaps kept; samples reported "
                "in original qubit order)"
            )
    if noise is not None:
        noise_meta = (result.metadata.get("build") or {}).get("noise")
        if noise_meta is None:
            noise_meta = (result.metadata.get("service") or {}).get("noise")
        line = f"noise: {noise.describe()}"
        if noise_meta:
            line += (
                f" ({noise_meta['channel_applications']} channel "
                f"applications, {noise_meta['kraus_applications']} Kraus "
                "conjugations; samples drawn from the mixed-state diagonal)"
            )
        print(line)
    for bitstring, count in result.most_common(args.top):
        bar = "#" * max(1, round(40 * count / result.shots))
        print(f"  |{bitstring}>  {count:>8}  {bar}")
    remaining = result.distinct_outcomes - min(args.top, result.distinct_outcomes)
    if remaining > 0:
        print(f"  ... {remaining} more outcomes")

    if args.stats:
        print(
            f"precompute: {result.precompute_seconds:.4f} s, "
            f"sampling: {result.sampling_seconds:.4f} s, "
            f"distinct outcomes: {result.distinct_outcomes}"
        )
        build = result.metadata.get("build")
        if build:
            compile_info = build.get("compile") or {}
            line = f"build: {build['applied_operations']} operations applied"
            engine = build.get("kernel")
            if engine:
                line += f", engine={engine}"
            if compile_info:
                line += (
                    f" ({compile_info['input_operations']} before optimization, "
                    f"{compile_info['reduction_percent']}% removed)"
                )
            print(line)
            strategies = build.get("strategy_counts") or {}
            if strategies:
                rendered = ", ".join(
                    f"{k}={v}" for k, v in sorted(strategies.items())
                )
                print(
                    f"strategies: {rendered}, "
                    f"diagonal terms={build['diagonal_term_applications']}"
                )
            for pass_name, counters in (compile_info.get("passes") or {}).items():
                rendered = ", ".join(
                    f"{k}={v}" for k, v in sorted(counters.items())
                )
                print(f"optimizer {pass_name}: {rendered}")
        dd_stats = result.metadata.get("dd_statistics")
        if dd_stats:
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(dd_stats.items()))
            print(f"dd tables: {rendered}")
        cache_stats = result.metadata.get("compiled_cache")
        if cache_stats:
            print(
                "compiled DDs: "
                + ", ".join(f"{k}={v}" for k, v in sorted(cache_stats.items()))
            )

    if session is not None:
        try:
            records = session.export(args.trace)
        except OSError as error:
            print(f"error: cannot write {args.trace}: {error}", file=sys.stderr)
            return 2
        print(
            f"trace: {records} records -> {args.trace} "
            f"(render: python -m repro.telemetry.report {args.trace})"
        )

    if args.json:
        payload = result.to_json()
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
