"""Parallel chunked sampling with worker-count-independent results.

Samples are embarrassingly parallel, but naive parallelisation breaks
reproducibility: the shots drawn depend on how the work was divided.
This module fixes the division *before* choosing a worker count:

* ``shots`` is split into fixed-size chunks (the layout depends only on
  ``shots`` and ``chunk_shots``),
* one ``np.random.SeedSequence`` child stream is spawned per chunk, so
  chunk ``i`` draws the same values no matter which worker runs it,
* chunk results are concatenated in chunk order.

A given ``(seed, shots, chunk_shots)`` therefore produces bit-identical
samples for any ``workers`` — the property the seed-reproducibility
tests pin.  Workers are threads: the sampling kernels are NumPy-bound
(the heavy steps release the GIL) and DD nodes never cross a process
boundary, so no pickling of diagram state is needed.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Union

import numpy as np

from ..exceptions import SamplingError

__all__ = ["DEFAULT_CHUNK_SHOTS", "chunk_layout", "sample_chunked"]

#: Shots per chunk.  Large enough that per-chunk overhead is noise,
#: small enough that a 100k-shot request still exposes parallelism.
DEFAULT_CHUNK_SHOTS = 16_384

SeedLike = Union[int, None, np.random.SeedSequence, np.random.Generator]


def _as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        # Derive a root entropy value from the caller's stream so the
        # generator's state still controls the outcome deterministically.
        return np.random.SeedSequence(int(seed.integers(2**63)))
    return np.random.SeedSequence(seed)


def chunk_layout(shots: int, chunk_shots: int = DEFAULT_CHUNK_SHOTS) -> List[int]:
    """Chunk sizes for ``shots`` — a pure function of the two arguments."""
    if shots < 0:
        raise SamplingError("shots must be non-negative")
    if chunk_shots < 1:
        raise SamplingError("chunk size must be positive")
    full, rest = divmod(shots, chunk_shots)
    sizes = [chunk_shots] * full
    if rest:
        sizes.append(rest)
    return sizes


def sample_chunked(
    draw: Callable[[int, np.random.Generator], np.ndarray],
    shots: int,
    seed: SeedLike = None,
    workers: Optional[int] = None,
    chunk_shots: int = DEFAULT_CHUNK_SHOTS,
) -> np.ndarray:
    """Draw ``shots`` samples via ``draw(chunk_shots, rng)`` in chunks.

    ``draw`` must be thread-safe for distinct ``rng`` arguments (all
    samplers in this package are: sampling never mutates the DD).  The
    result is identical for every ``workers`` value.
    """
    sizes = chunk_layout(shots, chunk_shots)
    if not sizes:
        return np.empty(0, dtype=np.int64)
    children = _as_seed_sequence(seed).spawn(len(sizes))
    rngs = [np.random.default_rng(child) for child in children]
    if workers is None or workers <= 1 or len(sizes) == 1:
        parts = [draw(size, rng) for size, rng in zip(sizes, rngs)]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            parts = list(pool.map(draw, sizes, rngs))
    return np.concatenate(parts)
