"""Compiled decision diagrams: the flat sampling artifact.

The vectorised sampler flattens a DD into per-node arrays once and then
advances all shots one level per NumPy operation.  This module promotes
that flattening to a first-class, *cached* artifact:

* :class:`CompiledDD` — the ``(p0, child0, child1)`` arrays plus level
  index, built **iteratively** (no recursion, so registers with hundreds
  of qubits compile fine) and usable by every consumer that needs branch
  probabilities: the vectorised sampler, top-qubit marginal sampling,
  exact per-qubit marginals, and the dense alias/prefix samplers.
* :class:`CompiledDDCache` — a per-package cache keyed on the DD root,
  with build/reuse counters.  Node indexes are unique for a package's
  lifetime (they survive ``compact()``), so ``(root index, scheme flag)``
  identifies a compiled artifact exactly.  Packages are held weakly; a
  garbage-collected package takes its compiled entries with it.

The module-level :data:`DEFAULT_CACHE` is shared by all
:class:`~repro.core.dd_sampler.DDSampler` instances, so two samplers over
the same final state pay the flattening cost once.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Union

import numpy as np

from ..dd.node import Edge, is_terminal
from ..exceptions import SamplingError

__all__ = [
    "CompiledDD",
    "CompiledDDCache",
    "DEFAULT_CACHE",
    "compile_edge",
    "compile_probability_edge",
]


#: Stable-serialisation contract version.  Bump whenever the meaning of
#: the flat arrays changes (levels encoding, probability convention, …);
#: the service artifact store folds it into every cache key so stale
#: on-disk artifacts are invalidated rather than misread.
ARTIFACT_VERSION = 1


#: Dense expansion guard: ``probabilities()`` materialises 2^n floats.
_DENSE_QUBIT_CAP = 26

#: Vectorised sampling packs outcomes into int64.
_PACKED_QUBIT_CAP = 62


class CompiledDD:
    """Flattened traversal tables of one DD root.

    Compact node ``i`` descends to its 0-successor with probability
    ``p0[i]``; ``child0[i]``/``child1[i]`` are the successors' compact
    ids (0 — never dereferenced — for zero or terminal children, which
    either carry probability 0 or end the walk).  ``levels[v]`` lists the
    compact ids of the nodes splitting qubit ``v``.
    """

    __slots__ = (
        "num_qubits",
        "root",
        "p0",
        "child0",
        "child1",
        "id_of",
        "levels",
    )

    def __init__(
        self,
        num_qubits: int,
        root: int,
        p0: np.ndarray,
        child0: np.ndarray,
        child1: np.ndarray,
        id_of: Dict[int, int],
        levels: List[np.ndarray],
    ):
        self.num_qubits = num_qubits
        self.root = root
        self.p0 = p0
        self.child0 = child0
        self.child1 = child1
        self.id_of = id_of
        self.levels = levels

    @property
    def size(self) -> int:
        """Number of non-terminal nodes in the compiled DD."""
        return self.p0.size

    # ------------------------------------------------------------------
    # Stable serialisation (the persistent-cache contract)
    # ------------------------------------------------------------------

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The artifact as plain NumPy arrays, ready for ``np.savez``.

        The ragged ``levels`` list is flattened into ``levels_flat`` plus
        a ``level_offsets`` prefix (length ``num_qubits + 1``); qubit
        ``v``'s node ids are ``levels_flat[level_offsets[v]:level_offsets[v+1]]``.
        ``id_of`` is deliberately *not* serialised — it maps package node
        indexes, which are meaningless outside the builder's process.
        Round-tripping through :meth:`from_arrays` preserves every float
        bit, so samples drawn from a restored artifact are bit-identical
        to the original's for equal seeds.
        """
        offsets = np.zeros(self.num_qubits + 1, dtype=np.int64)
        for var, ids in enumerate(self.levels):
            offsets[var + 1] = offsets[var] + ids.size
        flat = (
            np.concatenate(self.levels)
            if self.size
            else np.zeros(0, dtype=np.int64)
        )
        return {
            "p0": np.ascontiguousarray(self.p0, dtype=np.float64),
            "child0": np.ascontiguousarray(self.child0, dtype=np.int64),
            "child1": np.ascontiguousarray(self.child1, dtype=np.int64),
            "levels_flat": np.ascontiguousarray(flat, dtype=np.int64),
            "level_offsets": offsets,
            "header": np.asarray(
                [ARTIFACT_VERSION, self.num_qubits, self.root], dtype=np.int64
            ),
        }

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "CompiledDD":
        """Rebuild a :class:`CompiledDD` from :meth:`to_arrays` output.

        Every structural invariant is re-validated, so a truncated or
        bit-flipped artifact raises :class:`~repro.exceptions.SamplingError`
        instead of producing silently-wrong samples; the artifact store
        treats that as corruption and rebuilds.
        """
        try:
            header = np.asarray(arrays["header"], dtype=np.int64)
            p0 = np.asarray(arrays["p0"], dtype=np.float64)
            child0 = np.asarray(arrays["child0"], dtype=np.int64)
            child1 = np.asarray(arrays["child1"], dtype=np.int64)
            flat = np.asarray(arrays["levels_flat"], dtype=np.int64)
            offsets = np.asarray(arrays["level_offsets"], dtype=np.int64)
        except (KeyError, ValueError, TypeError) as error:
            raise SamplingError(f"malformed compiled-DD artifact: {error}")
        if header.shape != (3,):
            raise SamplingError("malformed compiled-DD artifact: bad header")
        version, num_qubits, root = (int(v) for v in header)
        if version != ARTIFACT_VERSION:
            raise SamplingError(
                f"compiled-DD artifact version {version} != {ARTIFACT_VERSION}"
            )
        size = p0.size
        if size == 0:
            raise SamplingError("compiled-DD artifact has no nodes")
        if num_qubits < 1 or not 0 <= root < size:
            raise SamplingError("compiled-DD artifact root out of range")
        if child0.shape != (size,) or child1.shape != (size,):
            raise SamplingError("compiled-DD artifact arrays disagree on size")
        if not np.all(np.isfinite(p0)) or p0.min() < 0.0 or p0.max() > 1.0:
            raise SamplingError("compiled-DD artifact probabilities corrupt")
        for child in (child0, child1):
            if child.size and (child.min() < 0 or child.max() >= size):
                raise SamplingError("compiled-DD artifact child ids corrupt")
        if (
            offsets.shape != (num_qubits + 1,)
            or offsets[0] != 0
            or offsets[-1] != flat.size
            or flat.size != size
            or np.any(np.diff(offsets) < 0)
        ):
            raise SamplingError("compiled-DD artifact level index corrupt")
        if flat.size and (flat.min() < 0 or flat.max() >= size):
            raise SamplingError("compiled-DD artifact level ids corrupt")
        levels = [
            flat[offsets[var] : offsets[var + 1]] for var in range(num_qubits)
        ]
        return cls(
            num_qubits=num_qubits,
            root=root,
            p0=p0,
            child0=child0,
            child1=child1,
            id_of={},
            levels=levels,
        )

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample(self, shots: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``shots`` samples, one vectorised step per level."""
        if shots < 0:
            raise SamplingError("shots must be non-negative")
        if self.num_qubits > _PACKED_QUBIT_CAP:
            raise SamplingError(
                "vectorised sampling packs outcomes into int64 and supports "
                f"at most {_PACKED_QUBIT_CAP} qubits"
            )
        return self.sample_top(self.num_qubits, shots, rng)

    def sample_top(
        self, num_qubits: int, shots: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample the ``num_qubits`` most significant qubits (exact marginal).

        The walk stops after ``num_qubits`` levels; results are
        right-aligned (bit ``j`` is register qubit ``n - num_qubits + j``).
        """
        if not 0 < num_qubits <= self.num_qubits:
            raise SamplingError(
                f"cannot sample {num_qubits} top qubits of a "
                f"{self.num_qubits}-qubit register"
            )
        if num_qubits > _PACKED_QUBIT_CAP:
            raise SamplingError(
                f"top-qubit sampling packs into int64: max {_PACKED_QUBIT_CAP}"
            )
        shift = self.num_qubits - num_qubits
        current = np.full(shots, self.root, dtype=np.int64)
        indices = np.zeros(shots, dtype=np.int64)
        for var in range(self.num_qubits - 1, shift - 1, -1):
            ones = rng.random(shots) >= self.p0[current]
            indices |= ones.astype(np.int64) << (var - shift)
            current = np.where(ones, self.child1[current], self.child0[current])
        return indices

    # ------------------------------------------------------------------
    # Exact distributions derived from the compiled tables
    # ------------------------------------------------------------------

    def marginal_probabilities(self) -> np.ndarray:
        """Exact ``P(qubit = 1)`` for every qubit, in O(size).

        Propagates the visit probability (the upstream quantity of the
        paper's Section IV-B) level by level through the flat arrays.
        """
        visit = np.zeros(self.size, dtype=np.float64)
        visit[self.root] = 1.0
        p_one = np.zeros(self.num_qubits, dtype=np.float64)
        for var in range(self.num_qubits - 1, -1, -1):
            ids = self.levels[var]
            if ids.size == 0:
                continue
            weights = visit[ids]
            prob0 = self.p0[ids]
            prob1 = 1.0 - prob0
            p_one[var] = float(weights @ prob1)
            if var == 0:
                continue
            mass0 = weights * prob0
            mass1 = weights * prob1
            keep0 = mass0 > 0.0
            keep1 = mass1 > 0.0
            np.add.at(visit, self.child0[ids][keep0], mass0[keep0])
            np.add.at(visit, self.child1[ids][keep1], mass1[keep1])
        return p_one

    def probabilities(self) -> np.ndarray:
        """Dense probability vector (2^n entries) from the compiled tables.

        Built bottom-up over the levels, so sub-DD sharing is exploited:
        each node's subtree vector is computed once.  Intended for the
        dense alias/prefix samplers at verification sizes.
        """
        if self.num_qubits > _DENSE_QUBIT_CAP:
            raise SamplingError(
                f"dense expansion beyond {_DENSE_QUBIT_CAP} qubits refused"
            )
        vectors: Dict[int, np.ndarray] = {}
        for var in range(self.num_qubits):
            half = 1 << var
            for cid in self.levels[var]:
                out = np.zeros(2 * half, dtype=np.float64)
                prob0 = self.p0[cid]
                prob1 = 1.0 - prob0
                if var == 0:
                    out[0] = prob0
                    out[1] = prob1
                else:
                    if prob0 > 0.0:
                        out[:half] = prob0 * vectors[self.child0[cid]]
                    if prob1 > 0.0:
                        out[half:] = prob1 * vectors[self.child1[cid]]
                vectors[cid] = out
        return vectors[self.root]


def compile_edge(
    edge: Edge,
    num_qubits: int,
    downstream: Optional[Dict[int, float]] = None,
) -> CompiledDD:
    """Flatten the DD under ``edge`` into a :class:`CompiledDD`.

    ``downstream`` carries the per-node correction masses for non-L2
    normalisation schemes; ``None`` asserts the L2 invariant (all masses
    1).  The traversal is an explicit-stack DFS, so register depth is not
    limited by the Python recursion limit.
    """
    if edge.is_zero:
        raise SamplingError("cannot compile the zero vector")
    if is_terminal(edge.node):
        raise SamplingError("cannot compile a bare terminal edge")

    id_of: Dict[int, int] = {}
    nodes: List = []
    stack = [edge.node]
    while stack:
        node = stack.pop()
        if is_terminal(node) or node.index in id_of:
            continue
        id_of[node.index] = len(nodes)
        nodes.append(node)
        for child in node.edges:
            if not child.is_zero and not is_terminal(child.node):
                stack.append(child.node)

    count = len(nodes)
    p0 = np.zeros(count, dtype=np.float64)
    child0 = np.zeros(count, dtype=np.int64)
    child1 = np.zeros(count, dtype=np.int64)
    per_level: List[List[int]] = [[] for _ in range(num_qubits)]
    for node in nodes:
        compact = id_of[node.index]
        masses = []
        for child in node.edges:
            if child.is_zero:
                masses.append(0.0)
                continue
            weight_sq = abs(child.weight) ** 2
            if downstream is None or is_terminal(child.node):
                masses.append(weight_sq)
            else:
                masses.append(weight_sq * downstream[child.node.index])
        total = masses[0] + masses[1]
        if total <= 0.0:
            raise SamplingError("node with zero probability mass")
        p0[compact] = masses[0] / total
        for bit, child_array in ((0, child0), (1, child1)):
            child = node.edges[bit]
            if child.is_zero or is_terminal(child.node):
                child_array[compact] = 0  # never dereferenced
            else:
                child_array[compact] = id_of[child.node.index]
        per_level[node.var].append(compact)

    levels = [np.asarray(ids, dtype=np.int64) for ids in per_level]
    return CompiledDD(
        num_qubits=num_qubits,
        root=id_of[edge.node.index],
        p0=p0,
        child0=child0,
        child1=child1,
        id_of=id_of,
        levels=levels,
    )


def compile_probability_edge(edge: Edge, num_qubits: int) -> CompiledDD:
    """Flatten a *probability* vector DD into a :class:`CompiledDD`.

    :func:`compile_edge` assumes L2 semantics — path products are
    amplitudes, branch masses are ``|w|²``.  The diagonal of a density
    matrix (:func:`repro.dd.density.diagonal_edge`) is an **L1** object:
    path products are probabilities ``rho_ii`` directly.  This compiler
    computes each node's complex subtree sum ``S(v) = w0·S(c0) +
    w1·S(c1)`` by DP over the DAG and sets ``p0 = Re(m0 / (m0 + m1))``
    with ``m_b = w_b·S(c_b)``.  Taking the *quotient* cancels the common
    phase accumulated on the path prefix (every full path product is a
    real non-negative probability, so both branch masses under one node
    carry the same prefix phase), and renormalises the trace for free —
    a state with ``tr(rho) = 1 - ε`` of float drift still yields exact
    per-node branch probabilities.  Float dust is clipped into
    ``[0, 1]``, so the result passes :meth:`CompiledDD.from_arrays`
    validation and serves through the artifact store like any exact
    compiled DD.
    """
    if edge.is_zero:
        raise SamplingError("cannot compile the zero distribution")
    if is_terminal(edge.node):
        raise SamplingError("cannot compile a bare terminal edge")

    id_of: Dict[int, int] = {}
    nodes: List = []
    stack = [edge.node]
    while stack:
        node = stack.pop()
        if is_terminal(node) or node.index in id_of:
            continue
        id_of[node.index] = len(nodes)
        nodes.append(node)
        for child in node.edges:
            if not child.is_zero and not is_terminal(child.node):
                stack.append(child.node)

    # Subtree sums bottom-up: children sit at strictly lower levels, so
    # ascending-var order is a topological order of the DAG.
    sums: Dict[int, complex] = {}
    for node in sorted(nodes, key=lambda n: n.var):
        total = 0j
        for child in node.edges:
            if child.is_zero:
                continue
            if is_terminal(child.node):
                total += child.weight
            else:
                total += child.weight * sums[child.node.index]
        sums[node.index] = total

    count = len(nodes)
    p0 = np.zeros(count, dtype=np.float64)
    child0 = np.zeros(count, dtype=np.int64)
    child1 = np.zeros(count, dtype=np.int64)
    per_level: List[List[int]] = [[] for _ in range(num_qubits)]
    for node in nodes:
        compact = id_of[node.index]
        masses = []
        for child in node.edges:
            if child.is_zero:
                masses.append(0j)
            elif is_terminal(child.node):
                masses.append(child.weight)
            else:
                masses.append(child.weight * sums[child.node.index])
        total = masses[0] + masses[1]
        if total == 0:
            # A node whose whole subtree cancelled to float dust carries
            # no probability mass; any branch choice is unobservable.
            probability = 1.0
        else:
            probability = (masses[0] / total).real
        p0[compact] = min(max(probability, 0.0), 1.0)
        for bit, child_array in ((0, child0), (1, child1)):
            child = node.edges[bit]
            if child.is_zero or is_terminal(child.node):
                child_array[compact] = 0  # never dereferenced
            else:
                child_array[compact] = id_of[child.node.index]
        per_level[node.var].append(compact)

    levels = [np.asarray(ids, dtype=np.int64) for ids in per_level]
    return CompiledDD(
        num_qubits=num_qubits,
        root=id_of[edge.node.index],
        p0=p0,
        child0=child0,
        child1=child1,
        id_of=id_of,
        levels=levels,
    )


class CompiledDDCache:
    """Per-package cache of :class:`CompiledDD` artifacts.

    Keys are ``(root node index, downstream-free flag)``; packages are
    weak keys.  ``max_entries`` bounds each package's table with FIFO
    eviction.
    """

    def __init__(self, max_entries: int = 128):
        if max_entries < 1:
            raise SamplingError("cache needs at least one entry")
        self.max_entries = max_entries
        self._per_package: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self.builds = 0
        self.reuses = 0
        self.evictions = 0

    def get_or_build(
        self,
        package,
        edge: Edge,
        num_qubits: int,
        downstream: Optional[Dict[int, float]] = None,
    ) -> CompiledDD:
        """Return the cached artifact for ``edge``, compiling on miss."""
        table = self._per_package.get(package)
        if table is None:
            table = {}
            self._per_package[package] = table
        key = (edge.node.index, downstream is None)
        cached = table.get(key)
        if cached is not None:
            self.reuses += 1
            return cached
        compiled = compile_edge(edge, num_qubits, downstream)
        if len(table) >= self.max_entries:
            table.pop(next(iter(table)))
            self.evictions += 1
        table[key] = compiled
        self.builds += 1
        return compiled

    def stats(self) -> Dict[str, int]:
        """Build/reuse/eviction counters plus current entry count."""
        entries = sum(len(table) for table in self._per_package.values())
        return {
            "builds": self.builds,
            "reuses": self.reuses,
            "evictions": self.evictions,
            "entries": entries,
        }

    def clear(self) -> None:
        """Drop all cached artifacts and reset counters."""
        self._per_package.clear()
        self.builds = 0
        self.reuses = 0
        self.evictions = 0


#: Process-wide cache shared by all samplers.
DEFAULT_CACHE = CompiledDDCache()
