"""Sampling-performance harness: emits ``BENCH_sampling.json``.

Gives every future PR a perf trajectory to defend.  One run measures

* **staged timings** — strong simulation (build), DD flattening
  (compile), and sampling, per catalog-style case; cold builds are timed
  on **both** engines (the SoA vector kernel and the python reference)
  with a per-case speedup column and an equal-seed bit-identity check,
* **compiled-DD reuse** — cache counters proving that a second sampler
  over the same state skips the flattening,
* **outcome branching** — the mid-circuit-measurement executor against
  the per-shot reference loop (the headline speedup),
* **parallel chunked sampling** — wall time per worker count, plus a
  bit-identity check of the worker-independence guarantee,
* **telemetry overhead** — the full weak-simulation pipeline with and
  without an active :class:`repro.telemetry.Telemetry` session, guarding
  the observability layer's stay-cheap contract,
* **approximation** — fidelity-driven DD pruning (ε = 0.05) against the
  exact build on a dominant-path circuit whose exact DD goes dense:
  peak-node reduction, build speedup, the tracked fidelity bound, and
  the measured TVD against that bound (see ``docs/approximation.md``),
* **noise** — noisy weak simulation through the density-matrix path
  (``docs/noise.md``): build / diagonal-compile / sample timings for a
  GHZ chain under a mixed channel model, the TVD against the dense
  density reference, and the equal-seed determinism and strength-0
  bit-identity contracts.

Run it with::

    python -m repro.perf.bench --out BENCH_sampling.json
    python -m repro.perf.bench --smoke          # toy sizes, seconds
    python -m repro.perf.bench --approx-smoke   # 'make bench-approx' gate
    python -m repro.perf.bench --noise-smoke    # 'make bench-noise' gate
    python -m repro.perf.bench --validate BENCH_sampling.json

The JSON layout is versioned and checked by :func:`validate_payload`;
``make bench-smoke`` and the tier-1 suite fail on schema drift.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from ..algorithms.grover import grover
from ..algorithms.qft import qft
from ..algorithms.states import ghz
from ..circuit.circuit import QuantumCircuit
from ..compile import optimize_circuit
from ..core.dd_sampler import DDSampler
from ..core.shot_executor import ShotExecutor
from ..core.indistinguishability import two_sample_chi_square
from ..dd.approximation import ApproximationConfig
from ..noise import NoiseModel, noisy_probabilities_dense
from ..simulators.dd_simulator import DDSimulator
from ..simulators.density_simulator import (
    DensityMatrixSimulator,
    compile_noisy_sampler,
)
from ..simulators.statevector import StatevectorSimulator
from .compiled_dd import CompiledDDCache
from .parallel import sample_chunked

__all__ = [
    "FORMAT",
    "VERSION",
    "KERNEL_SMOKE_SPEEDUP_FLOOR",
    "APPROX_SMOKE_NODE_LIMIT",
    "NOISE_SMOKE_NODE_LIMIT",
    "NOISE_TVD_LIMIT",
    "dusty_ghz",
    "run_harness",
    "run_kernel_smoke",
    "run_approx_smoke",
    "run_noise_smoke",
    "validate_payload",
    "main",
]

FORMAT = "repro-bench-sampling"
VERSION = 5

#: The ``make bench-kernel`` gate: the SoA kernel's cold build of qft_16
#: must beat the python reference by at least this factor (best of 3).
KERNEL_SMOKE_SPEEDUP_FLOOR = 3.0

#: The ``make bench-approx`` gate's node budget: the exact build of the
#: gate's circuit must blow through this mid-build, while the ε = 0.05
#: approximate build completes under it.
APPROX_SMOKE_NODE_LIMIT = 800

#: Peak-node reduction the full-size approximation case must reach
#: (exact peak / approximate peak, both from ``track_peak`` probes).
APPROX_NODE_REDUCTION_FLOOR = 2.0

#: The ``make bench-noise`` gate's node budget for the ghz_20 leg: a
#: depolarized GHZ chain's density DD grows ~4x per two qubits (the
#: Pauli-error branches of early gates propagate through the CNOT
#: ladder), so a full 20-qubit build is out of reach for the python
#: engine — the gate instead proves the ceiling aborts the build with a
#: clean ``MemoryError`` instead of hanging.  Kept low because gate
#: cost near the ceiling scales with the operand node counts.
NOISE_SMOKE_NODE_LIMIT = 600

#: Ceiling for the noisy sampler's TVD against the dense density
#: reference (both are analytic distributions, so this is a numerical
#: agreement check, not a sampling bound — see ``NOISE_ATOL`` in
#: ``repro.fuzz.oracles`` for why it is looser than machine epsilon).
NOISE_TVD_LIMIT = 1e-6

#: Fail validation when the telemetry-enabled pipeline is this much
#: slower than the disabled one — generous because the measured circuit
#: is small (absolute overhead is microseconds per gate), tight enough
#: to catch an accidentally expensive hot-path hook.
TELEMETRY_OVERHEAD_LIMIT_PERCENT = 100.0

#: Top-level keys every payload must carry, with the per-section keys.
_SCHEMA: Dict[str, List[str]] = {
    "cases": [
        "name",
        "num_qubits",
        "dd_nodes",
        "shots",
        "build_seconds",
        "build_seconds_python",
        "build_seconds_kernel",
        "kernel_speedup",
        "samples_bit_identical",
        "compile_seconds",
        "sample_seconds",
    ],
    "mid_circuit": [
        "circuit",
        "num_qubits",
        "shots",
        "per_shot_seconds",
        "branching_seconds",
        "speedup",
        "distributions_consistent",
    ],
    "compiled_cache": ["builds", "reuses", "evictions", "entries"],
    "parallel": ["shots", "chunk_shots", "workers", "seconds", "reproducible"],
    "telemetry": [
        "circuit",
        "shots",
        "repeats",
        "disabled_seconds",
        "enabled_seconds",
        "overhead_percent",
        "trace_records",
    ],
    "approximation": [
        "circuit",
        "num_qubits",
        "operations",
        "epsilon",
        "interval",
        "exact_build_seconds",
        "exact_peak_nodes",
        "exact_final_nodes",
        "approx_build_seconds",
        "approx_peak_nodes",
        "approx_final_nodes",
        "node_reduction",
        "speedup",
        "pruning_rounds",
        "edges_removed",
        "fidelity_bound",
        "tvd_bound",
        "tvd",
        "tvd_within_bound",
        "samples_bit_identical",
    ],
    "noise": [
        "circuit",
        "num_qubits",
        "model",
        "shots",
        "build_seconds",
        "diagonal_seconds",
        "sample_seconds",
        "shots_per_second",
        "dd_nodes",
        "compiled_size",
        "channel_applications",
        "tvd_vs_dense",
        "tvd_within_limit",
        "samples_bit_identical",
        "strength0_bit_identical",
    ],
}


def dusty_ghz(
    num_qubits: int, depth: int, delta: float = 0.01, seed: int = 7
) -> QuantumCircuit:
    """A dominant-path circuit whose exact DD goes dense: the
    approximation showcase.

    A GHZ skeleton followed by ``depth`` layers of tiny ``ry(≈delta)``
    rotations and alternating CX pairs.  The tiny rotations spray
    low-amplitude "dust" branches off the two dominant GHZ paths; the
    entangling layers stop the dust from merging back, so the exact DD
    saturates at ``2^n − 1`` nodes while fidelity-driven pruning
    (``docs/approximation.md``) keeps cutting the dust and holds the
    diagram thin.  Random circuits make a deliberately *bad* showcase —
    their states have no amplitude hierarchy, so there is nothing cheap
    to prune — which is why the harness measures this regime instead.
    """
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, name=f"dusty_ghz_{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    for layer in range(depth):
        for qubit in range(num_qubits):
            circuit.ry(delta * (0.5 + rng.random()), qubit)
        for qubit in range(layer % 2, num_qubits - 1, 2):
            circuit.cx(qubit, qubit + 1)
    return circuit


def _mid_circuit_circuit(num_qubits: int) -> QuantumCircuit:
    """A measure-and-continue circuit exercising every executor branch."""
    circuit = QuantumCircuit(num_qubits)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    circuit.measure(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    circuit.measure(1)
    circuit.h(0)
    circuit.measure_all()
    return circuit


def _stage_case(name: str, circuit: QuantumCircuit, shots: int, seed: int) -> Dict:
    """Staged timings for one case, cold-building with BOTH engines.

    The circuit is optimized once up front so the engines time the same
    instruction stream (``optimize=False`` per run); ``build_seconds`` is
    the vector-kernel build — the engine ``kernel="auto"`` picks — with
    the python reference alongside for the speedup column.  Bit-identity
    is checked end to end: equal-seed samples from the two builds'
    compiled tables must match element for element.
    """
    circuit, _ = optimize_circuit(circuit)
    start = time.perf_counter()
    state_python = DDSimulator(kernel="python", optimize=False).run(circuit)
    build_python = time.perf_counter() - start
    start = time.perf_counter()
    state = DDSimulator(kernel="vector", optimize=False).run(circuit)
    build_kernel = time.perf_counter() - start
    sampler = DDSampler(state)
    start = time.perf_counter()
    compiled = sampler.compiled()
    compile_seconds = time.perf_counter() - start
    rng = np.random.default_rng(seed)
    start = time.perf_counter()
    samples = compiled.sample(shots, rng)
    sample_seconds = time.perf_counter() - start
    assert samples.shape == (shots,)
    reference = DDSampler(state_python).compiled().sample(
        shots, np.random.default_rng(seed)
    )
    return {
        "name": name,
        "num_qubits": circuit.num_qubits,
        "dd_nodes": compiled.size,
        "shots": shots,
        "build_seconds": round(build_kernel, 6),
        "build_seconds_python": round(build_python, 6),
        "build_seconds_kernel": round(build_kernel, 6),
        "kernel_speedup": round(build_python / max(build_kernel, 1e-9), 2),
        "samples_bit_identical": bool(np.array_equal(samples, reference)),
        "compile_seconds": round(compile_seconds, 6),
        "sample_seconds": round(sample_seconds, 6),
    }


def _telemetry_overhead(num_qubits: int, shots: int, seed: int, repeats: int) -> Dict:
    """Time the full pipeline with telemetry off and on (min of repeats).

    The minimum over ``repeats`` runs is the standard noise-resistant
    estimator for short benchmarks: any scheduler hiccup only ever makes
    a run *slower*, so the minimum is the cleanest observation.
    """
    from ..telemetry import Telemetry

    circuit = qft(num_qubits)
    disabled = min(
        _timed_pipeline(circuit, shots, seed + i, telemetry=None)[0]
        for i in range(repeats)
    )
    enabled_runs = [
        _timed_pipeline(circuit, shots, seed + i, telemetry=Telemetry())
        for i in range(repeats)
    ]
    enabled = min(seconds for seconds, _ in enabled_runs)
    trace_records = enabled_runs[0][1]
    overhead = 100.0 * (enabled - disabled) / max(disabled, 1e-9)
    return {
        "circuit": f"qft_{num_qubits}",
        "shots": shots,
        "repeats": repeats,
        "disabled_seconds": round(disabled, 6),
        "enabled_seconds": round(enabled, 6),
        "overhead_percent": round(overhead, 2),
        "trace_records": trace_records,
    }


def _timed_pipeline(circuit: QuantumCircuit, shots: int, seed: int, telemetry):
    """One ``simulate_and_sample`` run; returns (seconds, trace records)."""
    from ..core.weak_sim import simulate_and_sample

    start = time.perf_counter()
    simulate_and_sample(circuit, shots, seed=seed, telemetry=telemetry)
    seconds = time.perf_counter() - start
    records = len(telemetry.records()) if telemetry is not None else 0
    return seconds, records


def _approximation_section(
    seed: int, smoke: bool, shots: int = 5_000
) -> Dict:
    """Exact vs ε-approximate build on the dusty-GHZ showcase circuit.

    Both builds run with ``track_peak`` so the peak-node columns come
    from the per-gate telemetry probes, not just the final diagram.  The
    approximate build runs twice at the same seed to pin the equal-seed
    bit-identity guarantee, and the dense TVD against the statevector
    reference is compared with the tracked bound ``sqrt(1 − fidelity)``.
    """
    if smoke:
        circuit = dusty_ghz(10, 8)
    else:
        circuit = dusty_ghz(12, 10)
    config = ApproximationConfig(epsilon=0.05, interval=10)

    start = time.perf_counter()
    exact_sim = DDSimulator(track_peak=True)
    exact_state = exact_sim.run(circuit)
    exact_seconds = time.perf_counter() - start

    start = time.perf_counter()
    approx_sim = DDSimulator(approximation=config, track_peak=True)
    approx_state = approx_sim.run(circuit)
    approx_seconds = time.perf_counter() - start

    bound = float(approx_sim.stats.fidelity_bound)
    tvd_bound = float(np.sqrt(max(0.0, 1.0 - bound)))
    reference = np.abs(StatevectorSimulator().run(circuit)) ** 2
    tvd = 0.5 * float(
        np.abs(approx_state.probabilities() - reference).sum()
    )

    samples = DDSampler(approx_state).compiled().sample(
        shots, np.random.default_rng(seed)
    )
    replay_state = DDSimulator(approximation=config).run(circuit)
    replay = DDSampler(replay_state).compiled().sample(
        shots, np.random.default_rng(seed)
    )

    return {
        "circuit": circuit.name,
        "num_qubits": circuit.num_qubits,
        "operations": circuit.num_operations,
        "epsilon": config.epsilon,
        "interval": config.interval,
        "exact_build_seconds": round(exact_seconds, 6),
        "exact_peak_nodes": exact_sim.stats.peak_dd_nodes,
        "exact_final_nodes": exact_sim.stats.final_dd_nodes,
        "approx_build_seconds": round(approx_seconds, 6),
        "approx_peak_nodes": approx_sim.stats.peak_dd_nodes,
        "approx_final_nodes": approx_sim.stats.final_dd_nodes,
        "node_reduction": round(
            exact_sim.stats.peak_dd_nodes
            / max(approx_sim.stats.peak_dd_nodes, 1),
            2,
        ),
        "speedup": round(exact_seconds / max(approx_seconds, 1e-9), 2),
        "pruning_rounds": approx_sim.stats.approx_rounds,
        "edges_removed": approx_sim.stats.approx_removed_edges,
        "fidelity_bound": round(bound, 6),
        "tvd_bound": round(tvd_bound, 6),
        "tvd": round(tvd, 6),
        "tvd_within_bound": bool(tvd <= tvd_bound + 1e-9),
        "samples_bit_identical": bool(np.array_equal(samples, replay)),
    }


def run_approx_smoke(seed: int = 7, shots: int = 2_000) -> Dict:
    """The ``make bench-approx`` gate body: degrade where exact cannot fit.

    Builds ``dusty_ghz(10, 8)`` under a hard
    :data:`APPROX_SMOKE_NODE_LIMIT` node limit twice: the exact build
    must abort mid-build (``MemoryError`` from the node-limit probe),
    while the ε = 0.05 approximate build must complete under the same
    limit with its measured TVD inside the tracked bound and equal-seed
    samples bit-identical across rebuilds.
    """
    circuit = dusty_ghz(10, 8)
    config = ApproximationConfig(epsilon=0.05, interval=10)

    exact_aborted = False
    start = time.perf_counter()
    try:
        DDSimulator(node_limit=APPROX_SMOKE_NODE_LIMIT).run(circuit)
    except MemoryError:
        exact_aborted = True
    exact_seconds = time.perf_counter() - start

    start = time.perf_counter()
    simulator = DDSimulator(
        approximation=config,
        node_limit=APPROX_SMOKE_NODE_LIMIT,
        track_peak=True,
    )
    state = simulator.run(circuit)
    approx_seconds = time.perf_counter() - start

    bound = float(simulator.stats.fidelity_bound)
    tvd_bound = float(np.sqrt(max(0.0, 1.0 - bound)))
    reference = np.abs(StatevectorSimulator().run(circuit)) ** 2
    tvd = 0.5 * float(np.abs(state.probabilities() - reference).sum())

    samples = DDSampler(state).compiled().sample(
        shots, np.random.default_rng(seed)
    )
    replay_state = DDSimulator(
        approximation=config, node_limit=APPROX_SMOKE_NODE_LIMIT
    ).run(circuit)
    replay = DDSampler(replay_state).compiled().sample(
        shots, np.random.default_rng(seed)
    )

    return {
        "circuit": circuit.name,
        "node_limit": APPROX_SMOKE_NODE_LIMIT,
        "exact_aborted": exact_aborted,
        "exact_seconds": round(exact_seconds, 6),
        "approx_seconds": round(approx_seconds, 6),
        "approx_peak_nodes": simulator.stats.peak_dd_nodes,
        "approx_final_nodes": simulator.stats.final_dd_nodes,
        "fidelity_bound": round(bound, 6),
        "tvd_bound": round(tvd_bound, 6),
        "tvd": round(tvd, 6),
        "tvd_within_bound": bool(tvd <= tvd_bound + 1e-9),
        "samples_bit_identical": bool(np.array_equal(samples, replay)),
    }


def _noise_section(
    seed: int, smoke: bool, shots: int, num_qubits: Optional[int] = None
) -> Dict:
    """Noisy weak simulation through the density path, dense-checked.

    A GHZ chain under a mixed channel model (depolarizing + amplitude
    damping + readout error) is built as a density DD, its diagonal
    compiled into the flat-array sampler, and the three stages timed.
    The compiled distribution must agree with
    :func:`repro.noise.noisy_probabilities_dense` to
    :data:`NOISE_TVD_LIMIT`, equal-seed rebuild samples must be
    bit-identical, and an all-zero model must reproduce the exact pure
    path bit-for-bit (the disabled-means-exact contract).
    """
    from ..core.weak_sim import simulate_and_sample

    if num_qubits is None:
        num_qubits = 6 if smoke else 10
    circuit = ghz(num_qubits)
    noise = NoiseModel(
        depolarizing=0.02,
        amplitude_damping=0.01,
        readout_p01=0.01,
        readout_p10=0.005,
    )

    start = time.perf_counter()
    simulator = DensityMatrixSimulator(noise=noise)
    rho = simulator.run(circuit)
    build_seconds = time.perf_counter() - start
    start = time.perf_counter()
    compiled = compile_noisy_sampler(rho, noise)
    diagonal_seconds = time.perf_counter() - start
    start = time.perf_counter()
    samples = compiled.sample(shots, np.random.default_rng(seed))
    sample_seconds = time.perf_counter() - start

    tvd = 0.5 * float(
        np.abs(
            compiled.probabilities() - noisy_probabilities_dense(circuit, noise)
        ).sum()
    )
    rebuilt = compile_noisy_sampler(
        DensityMatrixSimulator(noise=noise).run(circuit), noise
    )
    replay = rebuilt.sample(shots, np.random.default_rng(seed))

    strength0 = simulate_and_sample(
        circuit, min(shots, 20_000), seed=seed, noise=NoiseModel()
    )
    exact = simulate_and_sample(circuit, min(shots, 20_000), seed=seed)

    return {
        "circuit": circuit.name,
        "num_qubits": num_qubits,
        "model": noise.to_dict(),
        "shots": shots,
        "build_seconds": round(build_seconds, 6),
        "diagonal_seconds": round(diagonal_seconds, 6),
        "sample_seconds": round(sample_seconds, 6),
        "shots_per_second": round(shots / max(sample_seconds, 1e-9), 1),
        "dd_nodes": rho.node_count,
        "compiled_size": compiled.size,
        "channel_applications": simulator.stats.noise_channel_applications,
        "tvd_vs_dense": float(tvd),
        "tvd_within_limit": bool(tvd <= NOISE_TVD_LIMIT),
        "samples_bit_identical": bool(np.array_equal(samples, replay)),
        "strength0_bit_identical": strength0.counts == exact.counts,
    }


def run_noise_smoke(seed: int = 7, shots: int = 20_000) -> Dict:
    """The ``make bench-noise`` gate body: dense-checked where dense fits.

    Two legs: an 8-qubit GHZ chain under the mixed channel model must
    match the dense density reference within :data:`NOISE_TVD_LIMIT`
    with equal-seed rebuilds bit-identical (via :func:`_noise_section`;
    the full harness runs the same leg at 10 qubits), and a 20-qubit
    depolarized GHZ build under :data:`NOISE_SMOKE_NODE_LIMIT` must
    abort with a clean ``MemoryError`` — the density DD outgrows any
    python-engine budget, and the ceiling is what keeps the service's
    noisy admission honest.
    """
    section = _noise_section(seed, smoke=False, shots=shots, num_qubits=8)

    ceiling_enforced = False
    start = time.perf_counter()
    try:
        DensityMatrixSimulator(
            noise=NoiseModel(depolarizing=0.01),
            node_limit=NOISE_SMOKE_NODE_LIMIT,
        ).run(ghz(20))
    except MemoryError:
        ceiling_enforced = True
    ceiling_seconds = time.perf_counter() - start

    section["ceiling_circuit"] = "ghz_20"
    section["ceiling_node_limit"] = NOISE_SMOKE_NODE_LIMIT
    section["ceiling_enforced"] = ceiling_enforced
    section["ceiling_seconds"] = round(ceiling_seconds, 6)
    return section


def run_harness(
    shots: int = 100_000,
    mid_circuit_shots: int = 100_000,
    workers: tuple = (1, 2, 4),
    seed: int = 7,
    smoke: bool = False,
) -> Dict:
    """Execute all harness sections and return the payload dict."""
    if smoke:
        shots = min(shots, 5_000)
        mid_circuit_shots = min(mid_circuit_shots, 1_000)
    # A private cache isolates the reuse counters from whatever the
    # process did before the harness ran (samplers look the cache up
    # late-bound through the module attribute).
    from . import compiled_dd

    cache = CompiledDDCache()
    previous_cache = compiled_dd.DEFAULT_CACHE
    compiled_dd.DEFAULT_CACHE = cache
    try:
        payload = {
            "format": FORMAT,
            "version": VERSION,
            "config": {
                "shots": shots,
                "mid_circuit_shots": mid_circuit_shots,
                "seed": seed,
                "smoke": smoke,
            },
            "cases": [],
        }

        # -- staged timings ------------------------------------------------
        # Untimed warmup builds: the first kernel invocation in a
        # process pays one-off import and NumPy dispatch costs that
        # would otherwise be billed to whichever case runs first.
        for engine in ("python", "vector"):
            DDSimulator(kernel=engine).run(ghz(4))
        sizes = (8, 12) if smoke else (16, 20)
        for n in sizes:
            payload["cases"].append(
                _stage_case(f"ghz_{n}", ghz(n), shots, seed)
            )
            payload["cases"].append(
                _stage_case(f"qft_{n}", qft(n), shots, seed + 1)
            )
        grover_n = 4 if smoke else 8
        payload["cases"].append(
            _stage_case(
                f"grover_{grover_n}",
                grover(grover_n, seed=1).circuit,
                shots,
                seed + 2,
            )
        )

        # -- compiled-DD reuse --------------------------------------------
        # Two fresh samplers over one state: the second must reuse.
        state = DDSimulator().run(ghz(sizes[0]))
        DDSampler(state).compiled()
        DDSampler(state).compiled()
        payload["compiled_cache"] = cache.stats()

        # -- outcome branching vs per-shot reference -----------------------
        num_mid = 4 if smoke else 6
        circuit = _mid_circuit_circuit(num_mid)
        executor = ShotExecutor(circuit)
        start = time.perf_counter()
        branching = executor.run(mid_circuit_shots, seed=seed)
        branching_seconds = time.perf_counter() - start
        start = time.perf_counter()
        per_shot = executor.run_per_shot(mid_circuit_shots, seed=seed + 1)
        per_shot_seconds = time.perf_counter() - start
        consistent = bool(
            two_sample_chi_square(branching.counts, per_shot.counts).consistent
        )
        payload["mid_circuit"] = {
            "circuit": f"mid_circuit_{num_mid}",
            "num_qubits": num_mid,
            "shots": mid_circuit_shots,
            "per_shot_seconds": round(per_shot_seconds, 6),
            "branching_seconds": round(branching_seconds, 6),
            "speedup": round(per_shot_seconds / max(branching_seconds, 1e-9), 2),
            "distributions_consistent": consistent,
        }

        # -- parallel chunked sampling ------------------------------------
        compiled = DDSampler(state).compiled()
        chunk_shots = 1_024 if smoke else 16_384
        seconds: Dict[str, float] = {}
        reference: Optional[np.ndarray] = None
        reproducible = True
        for count in workers:
            start = time.perf_counter()
            samples = sample_chunked(
                compiled.sample,
                shots,
                seed,
                workers=count,
                chunk_shots=chunk_shots,
            )
            seconds[str(count)] = round(time.perf_counter() - start, 6)
            if reference is None:
                reference = samples
            elif not np.array_equal(reference, samples):
                reproducible = False
        payload["parallel"] = {
            "shots": shots,
            "chunk_shots": chunk_shots,
            "workers": list(workers),
            "seconds": seconds,
            "reproducible": reproducible,
        }

        # -- telemetry overhead -------------------------------------------
        payload["telemetry"] = _telemetry_overhead(
            num_qubits=8 if smoke else 12,
            shots=shots,
            seed=seed,
            repeats=3 if smoke else 5,
        )

        # -- approximation: exact vs ε-pruned build ------------------------
        payload["approximation"] = _approximation_section(seed, smoke)

        # -- noise: density-path build + noisy sampling --------------------
        payload["noise"] = _noise_section(
            seed, smoke, shots=min(shots, 20_000)
        )
        return payload
    finally:
        compiled_dd.DEFAULT_CACHE = previous_cache


def run_kernel_smoke(
    num_qubits: int = 16,
    shots: int = 20_000,
    seed: int = 7,
    repeats: int = 3,
) -> Dict:
    """The ``make bench-kernel`` gate body: speedup + bit-identity.

    Cold-builds an optimized ``qft_{num_qubits}`` with both engines
    (best of ``repeats`` runs each, ``optimize=False`` so they time the
    identical instruction stream), then draws equal-seed samples from
    both builds' compiled tables.  The caller enforces
    :data:`KERNEL_SMOKE_SPEEDUP_FLOOR` and element-wise sample equality.
    """
    circuit, _ = optimize_circuit(qft(num_qubits))

    def best_build(kernel: str):
        best = float("inf")
        state = None
        for _ in range(repeats):
            simulator = DDSimulator(kernel=kernel, optimize=False)
            start = time.perf_counter()
            state = simulator.run(circuit)
            best = min(best, time.perf_counter() - start)
        return best, state

    python_seconds, python_state = best_build("python")
    kernel_seconds, kernel_state = best_build("vector")
    kernel_samples = DDSampler(kernel_state).compiled().sample(
        shots, np.random.default_rng(seed)
    )
    python_samples = DDSampler(python_state).compiled().sample(
        shots, np.random.default_rng(seed)
    )
    return {
        "circuit": f"qft_{num_qubits}",
        "shots": shots,
        "repeats": repeats,
        "python_seconds": round(python_seconds, 6),
        "kernel_seconds": round(kernel_seconds, 6),
        "speedup": round(python_seconds / max(kernel_seconds, 1e-9), 2),
        "samples_bit_identical": bool(
            np.array_equal(kernel_samples, python_samples)
        ),
    }


def validate_payload(payload: Dict) -> None:
    """Raise ``ValueError`` when ``payload`` drifts from the schema."""
    if payload.get("format") != FORMAT:
        raise ValueError(f"format must be {FORMAT!r}")
    if payload.get("version") != VERSION:
        raise ValueError(f"version must be {VERSION}")
    if "config" not in payload:
        raise ValueError("missing section 'config'")
    for section, keys in _SCHEMA.items():
        if section not in payload:
            raise ValueError(f"missing section {section!r}")
        entries = payload[section]
        if section == "cases":
            if not isinstance(entries, list) or not entries:
                raise ValueError("'cases' must be a non-empty list")
        else:
            entries = [entries]
        for entry in entries:
            missing = [key for key in keys if key not in entry]
            if missing:
                raise ValueError(f"section {section!r} missing keys {missing}")
    for case in payload["cases"]:
        if not case["samples_bit_identical"]:
            raise ValueError(
                f"case {case['name']!r}: kernel and python builds produced "
                "different samples at equal seed"
            )
    if not payload["parallel"]["reproducible"]:
        raise ValueError("parallel sampling was not worker-count reproducible")
    if not payload["mid_circuit"]["distributions_consistent"]:
        raise ValueError("branching executor distribution drifted")
    telemetry = payload["telemetry"]
    if telemetry["overhead_percent"] > TELEMETRY_OVERHEAD_LIMIT_PERCENT:
        raise ValueError(
            "telemetry overhead "
            f"{telemetry['overhead_percent']}% exceeds the "
            f"{TELEMETRY_OVERHEAD_LIMIT_PERCENT}% budget"
        )
    if telemetry["trace_records"] <= 0:
        raise ValueError("telemetry-enabled run produced no trace records")
    approximation = payload["approximation"]
    if not approximation["tvd_within_bound"]:
        raise ValueError(
            f"approximation TVD {approximation['tvd']} exceeds the tracked "
            f"bound {approximation['tvd_bound']}"
        )
    if not approximation["samples_bit_identical"]:
        raise ValueError(
            "approximate rebuilds produced different samples at equal seed"
        )
    if approximation["fidelity_bound"] < 1.0 - approximation["epsilon"] - 1e-9:
        raise ValueError(
            f"fidelity bound {approximation['fidelity_bound']} overspends "
            f"the epsilon budget {approximation['epsilon']}"
        )
    if (
        not payload["config"].get("smoke")
        and approximation["node_reduction"] < APPROX_NODE_REDUCTION_FLOOR
    ):
        raise ValueError(
            f"approximation peak-node reduction {approximation['node_reduction']}x "
            f"is below the {APPROX_NODE_REDUCTION_FLOOR}x floor"
        )
    noise = payload["noise"]
    if not noise["tvd_within_limit"]:
        raise ValueError(
            f"noisy sampler TVD {noise['tvd_vs_dense']} vs the dense "
            f"density reference exceeds the {NOISE_TVD_LIMIT} limit"
        )
    if not noise["samples_bit_identical"]:
        raise ValueError(
            "noisy rebuilds produced different samples at equal seed"
        )
    if not noise["strength0_bit_identical"]:
        raise ValueError(
            "strength-0 noise drifted from the exact path at equal seed"
        )


def _build_parser() -> argparse.ArgumentParser:
    """The bench CLI's argument parser (importable for the docs checker)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench-sampling",
        description="Benchmark the compiled sampling engine and emit "
        "BENCH_sampling.json.",
    )
    parser.add_argument(
        "--out", default="BENCH_sampling.json", help="output JSON path"
    )
    parser.add_argument(
        "--shots", type=int, default=100_000, help="shots per staged case"
    )
    parser.add_argument(
        "--mid-circuit-shots",
        type=int,
        default=100_000,
        help="shots for the branching-vs-per-shot comparison",
    )
    parser.add_argument("--seed", type=int, default=7, help="harness RNG seed")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="toy sizes: exercises every section in seconds",
    )
    parser.add_argument(
        "--kernel-smoke",
        action="store_true",
        help="run the 'make bench-kernel' gate: the SoA kernel must "
        "cold-build qft_16 at least 3x faster than the python engine "
        "with bit-identical samples",
    )
    parser.add_argument(
        "--approx-smoke",
        action="store_true",
        help="run the 'make bench-approx' gate: under a hard node limit "
        "the exact dusty-GHZ build must abort while the epsilon=0.05 "
        "approximate build completes with TVD inside its tracked bound",
    )
    parser.add_argument(
        "--noise-smoke",
        action="store_true",
        help="run the 'make bench-noise' gate: the noisy GHZ sampler must "
        "match the dense density reference within the TVD limit with "
        "bit-identical equal-seed rebuilds, and the ghz_20 depolarized "
        "build must abort cleanly at the node ceiling",
    )
    parser.add_argument(
        "--validate",
        metavar="FILE",
        help="validate an existing payload against the schema and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.perf.bench``."""
    args = _build_parser().parse_args(argv)

    if args.validate:
        with open(args.validate, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        try:
            validate_payload(payload)
        except ValueError as error:
            print(f"schema drift: {error}", file=sys.stderr)
            return 1
        print(f"{args.validate}: schema ok (version {payload['version']})")
        return 0

    if args.kernel_smoke:
        outcome = run_kernel_smoke(seed=args.seed)
        print(
            f"bench-kernel: {outcome['circuit']} cold build "
            f"python={outcome['python_seconds']}s "
            f"kernel={outcome['kernel_seconds']}s "
            f"({outcome['speedup']}x, floor {KERNEL_SMOKE_SPEEDUP_FLOOR}x), "
            f"samples bit-identical={outcome['samples_bit_identical']}"
        )
        if not outcome["samples_bit_identical"]:
            print(
                "bench-kernel: engines produced different samples",
                file=sys.stderr,
            )
            return 1
        if outcome["speedup"] < KERNEL_SMOKE_SPEEDUP_FLOOR:
            print(
                f"bench-kernel: speedup {outcome['speedup']}x is below the "
                f"{KERNEL_SMOKE_SPEEDUP_FLOOR}x floor",
                file=sys.stderr,
            )
            return 1
        return 0

    if args.approx_smoke:
        outcome = run_approx_smoke(seed=args.seed)
        print(
            f"bench-approx: {outcome['circuit']} under node limit "
            f"{outcome['node_limit']}: exact aborted={outcome['exact_aborted']} "
            f"({outcome['exact_seconds']}s), approx completed in "
            f"{outcome['approx_seconds']}s at peak "
            f"{outcome['approx_peak_nodes']} nodes; fidelity >= "
            f"{outcome['fidelity_bound']}, TVD {outcome['tvd']} <= "
            f"{outcome['tvd_bound']}={outcome['tvd_within_bound']}, "
            f"samples bit-identical={outcome['samples_bit_identical']}"
        )
        failures = [
            message
            for condition, message in (
                (outcome["exact_aborted"], "exact build did not hit the limit"),
                (outcome["tvd_within_bound"], "TVD exceeded the tracked bound"),
                (
                    outcome["samples_bit_identical"],
                    "equal-seed rebuild samples diverged",
                ),
                (
                    outcome["approx_peak_nodes"] <= APPROX_SMOKE_NODE_LIMIT,
                    "approximate build exceeded the node limit",
                ),
            )
            if not condition
        ]
        for message in failures:
            print(f"bench-approx: {message}", file=sys.stderr)
        return 1 if failures else 0

    if args.noise_smoke:
        outcome = run_noise_smoke(seed=args.seed)
        print(
            f"bench-noise: {outcome['circuit']} "
            f"({outcome['num_qubits']}q, {outcome['dd_nodes']} nodes) "
            f"build {outcome['build_seconds']}s, diagonal "
            f"{outcome['diagonal_seconds']}s, "
            f"{outcome['shots_per_second']} shots/s; TVD vs dense "
            f"{outcome['tvd_vs_dense']:.3e} <= {NOISE_TVD_LIMIT:g}="
            f"{outcome['tvd_within_limit']}, samples bit-identical="
            f"{outcome['samples_bit_identical']}, strength-0 bit-identical="
            f"{outcome['strength0_bit_identical']}; "
            f"{outcome['ceiling_circuit']} under node limit "
            f"{outcome['ceiling_node_limit']}: aborted="
            f"{outcome['ceiling_enforced']} ({outcome['ceiling_seconds']}s)"
        )
        failures = [
            message
            for condition, message in (
                (
                    outcome["tvd_within_limit"],
                    "noisy TVD exceeded the dense-reference limit",
                ),
                (
                    outcome["samples_bit_identical"],
                    "equal-seed rebuild samples diverged",
                ),
                (
                    outcome["strength0_bit_identical"],
                    "strength-0 noise drifted from the exact path",
                ),
                (
                    outcome["ceiling_enforced"],
                    "ghz_20 build did not hit the node ceiling",
                ),
            )
            if not condition
        ]
        for message in failures:
            print(f"bench-noise: {message}", file=sys.stderr)
        return 1 if failures else 0

    payload = run_harness(
        shots=args.shots,
        mid_circuit_shots=args.mid_circuit_shots,
        seed=args.seed,
        smoke=args.smoke,
    )
    validate_payload(payload)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    mid = payload["mid_circuit"]
    kernel_line = ", ".join(
        f"{case['name']}={case['kernel_speedup']}x"
        for case in payload["cases"]
    )
    approximation = payload["approximation"]
    noise = payload["noise"]
    print(
        f"wrote {args.out}: branching speedup {mid['speedup']}x over "
        f"per-shot at {mid['shots']} shots; compiled cache "
        f"{payload['compiled_cache']['reuses']} reuses / "
        f"{payload['compiled_cache']['builds']} builds; telemetry overhead "
        f"{payload['telemetry']['overhead_percent']}%; "
        f"kernel cold-build speedup: {kernel_line}; approximation "
        f"{approximation['circuit']}: {approximation['node_reduction']}x "
        f"fewer peak nodes, {approximation['speedup']}x faster, fidelity >= "
        f"{approximation['fidelity_bound']}; noise {noise['circuit']}: "
        f"{noise['shots_per_second']} noisy shots/s, TVD vs dense "
        f"{noise['tvd_vs_dense']:.2e}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
