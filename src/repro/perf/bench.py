"""Sampling-performance harness: emits ``BENCH_sampling.json``.

Gives every future PR a perf trajectory to defend.  One run measures

* **staged timings** — strong simulation (build), DD flattening
  (compile), and sampling, per catalog-style case; cold builds are timed
  on **both** engines (the SoA vector kernel and the python reference)
  with a per-case speedup column and an equal-seed bit-identity check,
* **compiled-DD reuse** — cache counters proving that a second sampler
  over the same state skips the flattening,
* **outcome branching** — the mid-circuit-measurement executor against
  the per-shot reference loop (the headline speedup),
* **parallel chunked sampling** — wall time per worker count, plus a
  bit-identity check of the worker-independence guarantee,
* **telemetry overhead** — the full weak-simulation pipeline with and
  without an active :class:`repro.telemetry.Telemetry` session, guarding
  the observability layer's stay-cheap contract.

Run it with::

    python -m repro.perf.bench --out BENCH_sampling.json
    python -m repro.perf.bench --smoke          # toy sizes, seconds
    python -m repro.perf.bench --validate BENCH_sampling.json

The JSON layout is versioned and checked by :func:`validate_payload`;
``make bench-smoke`` and the tier-1 suite fail on schema drift.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from ..algorithms.grover import grover
from ..algorithms.qft import qft
from ..algorithms.states import ghz
from ..circuit.circuit import QuantumCircuit
from ..compile import optimize_circuit
from ..core.dd_sampler import DDSampler
from ..core.shot_executor import ShotExecutor
from ..core.indistinguishability import two_sample_chi_square
from ..simulators.dd_simulator import DDSimulator
from .compiled_dd import CompiledDDCache
from .parallel import sample_chunked

__all__ = [
    "FORMAT",
    "VERSION",
    "KERNEL_SMOKE_SPEEDUP_FLOOR",
    "run_harness",
    "run_kernel_smoke",
    "validate_payload",
    "main",
]

FORMAT = "repro-bench-sampling"
VERSION = 3

#: The ``make bench-kernel`` gate: the SoA kernel's cold build of qft_16
#: must beat the python reference by at least this factor (best of 3).
KERNEL_SMOKE_SPEEDUP_FLOOR = 3.0

#: Fail validation when the telemetry-enabled pipeline is this much
#: slower than the disabled one — generous because the measured circuit
#: is small (absolute overhead is microseconds per gate), tight enough
#: to catch an accidentally expensive hot-path hook.
TELEMETRY_OVERHEAD_LIMIT_PERCENT = 100.0

#: Top-level keys every payload must carry, with the per-section keys.
_SCHEMA: Dict[str, List[str]] = {
    "cases": [
        "name",
        "num_qubits",
        "dd_nodes",
        "shots",
        "build_seconds",
        "build_seconds_python",
        "build_seconds_kernel",
        "kernel_speedup",
        "samples_bit_identical",
        "compile_seconds",
        "sample_seconds",
    ],
    "mid_circuit": [
        "circuit",
        "num_qubits",
        "shots",
        "per_shot_seconds",
        "branching_seconds",
        "speedup",
        "distributions_consistent",
    ],
    "compiled_cache": ["builds", "reuses", "evictions", "entries"],
    "parallel": ["shots", "chunk_shots", "workers", "seconds", "reproducible"],
    "telemetry": [
        "circuit",
        "shots",
        "repeats",
        "disabled_seconds",
        "enabled_seconds",
        "overhead_percent",
        "trace_records",
    ],
}


def _mid_circuit_circuit(num_qubits: int) -> QuantumCircuit:
    """A measure-and-continue circuit exercising every executor branch."""
    circuit = QuantumCircuit(num_qubits)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    circuit.measure(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    circuit.measure(1)
    circuit.h(0)
    circuit.measure_all()
    return circuit


def _stage_case(name: str, circuit: QuantumCircuit, shots: int, seed: int) -> Dict:
    """Staged timings for one case, cold-building with BOTH engines.

    The circuit is optimized once up front so the engines time the same
    instruction stream (``optimize=False`` per run); ``build_seconds`` is
    the vector-kernel build — the engine ``kernel="auto"`` picks — with
    the python reference alongside for the speedup column.  Bit-identity
    is checked end to end: equal-seed samples from the two builds'
    compiled tables must match element for element.
    """
    circuit, _ = optimize_circuit(circuit)
    start = time.perf_counter()
    state_python = DDSimulator(kernel="python", optimize=False).run(circuit)
    build_python = time.perf_counter() - start
    start = time.perf_counter()
    state = DDSimulator(kernel="vector", optimize=False).run(circuit)
    build_kernel = time.perf_counter() - start
    sampler = DDSampler(state)
    start = time.perf_counter()
    compiled = sampler.compiled()
    compile_seconds = time.perf_counter() - start
    rng = np.random.default_rng(seed)
    start = time.perf_counter()
    samples = compiled.sample(shots, rng)
    sample_seconds = time.perf_counter() - start
    assert samples.shape == (shots,)
    reference = DDSampler(state_python).compiled().sample(
        shots, np.random.default_rng(seed)
    )
    return {
        "name": name,
        "num_qubits": circuit.num_qubits,
        "dd_nodes": compiled.size,
        "shots": shots,
        "build_seconds": round(build_kernel, 6),
        "build_seconds_python": round(build_python, 6),
        "build_seconds_kernel": round(build_kernel, 6),
        "kernel_speedup": round(build_python / max(build_kernel, 1e-9), 2),
        "samples_bit_identical": bool(np.array_equal(samples, reference)),
        "compile_seconds": round(compile_seconds, 6),
        "sample_seconds": round(sample_seconds, 6),
    }


def _telemetry_overhead(num_qubits: int, shots: int, seed: int, repeats: int) -> Dict:
    """Time the full pipeline with telemetry off and on (min of repeats).

    The minimum over ``repeats`` runs is the standard noise-resistant
    estimator for short benchmarks: any scheduler hiccup only ever makes
    a run *slower*, so the minimum is the cleanest observation.
    """
    from ..telemetry import Telemetry

    circuit = qft(num_qubits)
    disabled = min(
        _timed_pipeline(circuit, shots, seed + i, telemetry=None)[0]
        for i in range(repeats)
    )
    enabled_runs = [
        _timed_pipeline(circuit, shots, seed + i, telemetry=Telemetry())
        for i in range(repeats)
    ]
    enabled = min(seconds for seconds, _ in enabled_runs)
    trace_records = enabled_runs[0][1]
    overhead = 100.0 * (enabled - disabled) / max(disabled, 1e-9)
    return {
        "circuit": f"qft_{num_qubits}",
        "shots": shots,
        "repeats": repeats,
        "disabled_seconds": round(disabled, 6),
        "enabled_seconds": round(enabled, 6),
        "overhead_percent": round(overhead, 2),
        "trace_records": trace_records,
    }


def _timed_pipeline(circuit: QuantumCircuit, shots: int, seed: int, telemetry):
    """One ``simulate_and_sample`` run; returns (seconds, trace records)."""
    from ..core.weak_sim import simulate_and_sample

    start = time.perf_counter()
    simulate_and_sample(circuit, shots, seed=seed, telemetry=telemetry)
    seconds = time.perf_counter() - start
    records = len(telemetry.records()) if telemetry is not None else 0
    return seconds, records


def run_harness(
    shots: int = 100_000,
    mid_circuit_shots: int = 100_000,
    workers: tuple = (1, 2, 4),
    seed: int = 7,
    smoke: bool = False,
) -> Dict:
    """Execute all harness sections and return the payload dict."""
    if smoke:
        shots = min(shots, 5_000)
        mid_circuit_shots = min(mid_circuit_shots, 1_000)
    # A private cache isolates the reuse counters from whatever the
    # process did before the harness ran (samplers look the cache up
    # late-bound through the module attribute).
    from . import compiled_dd

    cache = CompiledDDCache()
    previous_cache = compiled_dd.DEFAULT_CACHE
    compiled_dd.DEFAULT_CACHE = cache
    try:
        payload = {
            "format": FORMAT,
            "version": VERSION,
            "config": {
                "shots": shots,
                "mid_circuit_shots": mid_circuit_shots,
                "seed": seed,
                "smoke": smoke,
            },
            "cases": [],
        }

        # -- staged timings ------------------------------------------------
        # Untimed warmup builds: the first kernel invocation in a
        # process pays one-off import and NumPy dispatch costs that
        # would otherwise be billed to whichever case runs first.
        for engine in ("python", "vector"):
            DDSimulator(kernel=engine).run(ghz(4))
        sizes = (8, 12) if smoke else (16, 20)
        for n in sizes:
            payload["cases"].append(
                _stage_case(f"ghz_{n}", ghz(n), shots, seed)
            )
            payload["cases"].append(
                _stage_case(f"qft_{n}", qft(n), shots, seed + 1)
            )
        grover_n = 4 if smoke else 8
        payload["cases"].append(
            _stage_case(
                f"grover_{grover_n}",
                grover(grover_n, seed=1).circuit,
                shots,
                seed + 2,
            )
        )

        # -- compiled-DD reuse --------------------------------------------
        # Two fresh samplers over one state: the second must reuse.
        state = DDSimulator().run(ghz(sizes[0]))
        DDSampler(state).compiled()
        DDSampler(state).compiled()
        payload["compiled_cache"] = cache.stats()

        # -- outcome branching vs per-shot reference -----------------------
        num_mid = 4 if smoke else 6
        circuit = _mid_circuit_circuit(num_mid)
        executor = ShotExecutor(circuit)
        start = time.perf_counter()
        branching = executor.run(mid_circuit_shots, seed=seed)
        branching_seconds = time.perf_counter() - start
        start = time.perf_counter()
        per_shot = executor.run_per_shot(mid_circuit_shots, seed=seed + 1)
        per_shot_seconds = time.perf_counter() - start
        consistent = bool(
            two_sample_chi_square(branching.counts, per_shot.counts).consistent
        )
        payload["mid_circuit"] = {
            "circuit": f"mid_circuit_{num_mid}",
            "num_qubits": num_mid,
            "shots": mid_circuit_shots,
            "per_shot_seconds": round(per_shot_seconds, 6),
            "branching_seconds": round(branching_seconds, 6),
            "speedup": round(per_shot_seconds / max(branching_seconds, 1e-9), 2),
            "distributions_consistent": consistent,
        }

        # -- parallel chunked sampling ------------------------------------
        compiled = DDSampler(state).compiled()
        chunk_shots = 1_024 if smoke else 16_384
        seconds: Dict[str, float] = {}
        reference: Optional[np.ndarray] = None
        reproducible = True
        for count in workers:
            start = time.perf_counter()
            samples = sample_chunked(
                compiled.sample,
                shots,
                seed,
                workers=count,
                chunk_shots=chunk_shots,
            )
            seconds[str(count)] = round(time.perf_counter() - start, 6)
            if reference is None:
                reference = samples
            elif not np.array_equal(reference, samples):
                reproducible = False
        payload["parallel"] = {
            "shots": shots,
            "chunk_shots": chunk_shots,
            "workers": list(workers),
            "seconds": seconds,
            "reproducible": reproducible,
        }

        # -- telemetry overhead -------------------------------------------
        payload["telemetry"] = _telemetry_overhead(
            num_qubits=8 if smoke else 12,
            shots=shots,
            seed=seed,
            repeats=3 if smoke else 5,
        )
        return payload
    finally:
        compiled_dd.DEFAULT_CACHE = previous_cache


def run_kernel_smoke(
    num_qubits: int = 16,
    shots: int = 20_000,
    seed: int = 7,
    repeats: int = 3,
) -> Dict:
    """The ``make bench-kernel`` gate body: speedup + bit-identity.

    Cold-builds an optimized ``qft_{num_qubits}`` with both engines
    (best of ``repeats`` runs each, ``optimize=False`` so they time the
    identical instruction stream), then draws equal-seed samples from
    both builds' compiled tables.  The caller enforces
    :data:`KERNEL_SMOKE_SPEEDUP_FLOOR` and element-wise sample equality.
    """
    circuit, _ = optimize_circuit(qft(num_qubits))

    def best_build(kernel: str):
        best = float("inf")
        state = None
        for _ in range(repeats):
            simulator = DDSimulator(kernel=kernel, optimize=False)
            start = time.perf_counter()
            state = simulator.run(circuit)
            best = min(best, time.perf_counter() - start)
        return best, state

    python_seconds, python_state = best_build("python")
    kernel_seconds, kernel_state = best_build("vector")
    kernel_samples = DDSampler(kernel_state).compiled().sample(
        shots, np.random.default_rng(seed)
    )
    python_samples = DDSampler(python_state).compiled().sample(
        shots, np.random.default_rng(seed)
    )
    return {
        "circuit": f"qft_{num_qubits}",
        "shots": shots,
        "repeats": repeats,
        "python_seconds": round(python_seconds, 6),
        "kernel_seconds": round(kernel_seconds, 6),
        "speedup": round(python_seconds / max(kernel_seconds, 1e-9), 2),
        "samples_bit_identical": bool(
            np.array_equal(kernel_samples, python_samples)
        ),
    }


def validate_payload(payload: Dict) -> None:
    """Raise ``ValueError`` when ``payload`` drifts from the schema."""
    if payload.get("format") != FORMAT:
        raise ValueError(f"format must be {FORMAT!r}")
    if payload.get("version") != VERSION:
        raise ValueError(f"version must be {VERSION}")
    if "config" not in payload:
        raise ValueError("missing section 'config'")
    for section, keys in _SCHEMA.items():
        if section not in payload:
            raise ValueError(f"missing section {section!r}")
        entries = payload[section]
        if section == "cases":
            if not isinstance(entries, list) or not entries:
                raise ValueError("'cases' must be a non-empty list")
        else:
            entries = [entries]
        for entry in entries:
            missing = [key for key in keys if key not in entry]
            if missing:
                raise ValueError(f"section {section!r} missing keys {missing}")
    for case in payload["cases"]:
        if not case["samples_bit_identical"]:
            raise ValueError(
                f"case {case['name']!r}: kernel and python builds produced "
                "different samples at equal seed"
            )
    if not payload["parallel"]["reproducible"]:
        raise ValueError("parallel sampling was not worker-count reproducible")
    if not payload["mid_circuit"]["distributions_consistent"]:
        raise ValueError("branching executor distribution drifted")
    telemetry = payload["telemetry"]
    if telemetry["overhead_percent"] > TELEMETRY_OVERHEAD_LIMIT_PERCENT:
        raise ValueError(
            "telemetry overhead "
            f"{telemetry['overhead_percent']}% exceeds the "
            f"{TELEMETRY_OVERHEAD_LIMIT_PERCENT}% budget"
        )
    if telemetry["trace_records"] <= 0:
        raise ValueError("telemetry-enabled run produced no trace records")


def _build_parser() -> argparse.ArgumentParser:
    """The bench CLI's argument parser (importable for the docs checker)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench-sampling",
        description="Benchmark the compiled sampling engine and emit "
        "BENCH_sampling.json.",
    )
    parser.add_argument(
        "--out", default="BENCH_sampling.json", help="output JSON path"
    )
    parser.add_argument(
        "--shots", type=int, default=100_000, help="shots per staged case"
    )
    parser.add_argument(
        "--mid-circuit-shots",
        type=int,
        default=100_000,
        help="shots for the branching-vs-per-shot comparison",
    )
    parser.add_argument("--seed", type=int, default=7, help="harness RNG seed")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="toy sizes: exercises every section in seconds",
    )
    parser.add_argument(
        "--kernel-smoke",
        action="store_true",
        help="run the 'make bench-kernel' gate: the SoA kernel must "
        "cold-build qft_16 at least 3x faster than the python engine "
        "with bit-identical samples",
    )
    parser.add_argument(
        "--validate",
        metavar="FILE",
        help="validate an existing payload against the schema and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.perf.bench``."""
    args = _build_parser().parse_args(argv)

    if args.validate:
        with open(args.validate, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        try:
            validate_payload(payload)
        except ValueError as error:
            print(f"schema drift: {error}", file=sys.stderr)
            return 1
        print(f"{args.validate}: schema ok (version {payload['version']})")
        return 0

    if args.kernel_smoke:
        outcome = run_kernel_smoke(seed=args.seed)
        print(
            f"bench-kernel: {outcome['circuit']} cold build "
            f"python={outcome['python_seconds']}s "
            f"kernel={outcome['kernel_seconds']}s "
            f"({outcome['speedup']}x, floor {KERNEL_SMOKE_SPEEDUP_FLOOR}x), "
            f"samples bit-identical={outcome['samples_bit_identical']}"
        )
        if not outcome["samples_bit_identical"]:
            print(
                "bench-kernel: engines produced different samples",
                file=sys.stderr,
            )
            return 1
        if outcome["speedup"] < KERNEL_SMOKE_SPEEDUP_FLOOR:
            print(
                f"bench-kernel: speedup {outcome['speedup']}x is below the "
                f"{KERNEL_SMOKE_SPEEDUP_FLOOR}x floor",
                file=sys.stderr,
            )
            return 1
        return 0

    payload = run_harness(
        shots=args.shots,
        mid_circuit_shots=args.mid_circuit_shots,
        seed=args.seed,
        smoke=args.smoke,
    )
    validate_payload(payload)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    mid = payload["mid_circuit"]
    kernel_line = ", ".join(
        f"{case['name']}={case['kernel_speedup']}x"
        for case in payload["cases"]
    )
    print(
        f"wrote {args.out}: branching speedup {mid['speedup']}x over "
        f"per-shot at {mid['shots']} shots; compiled cache "
        f"{payload['compiled_cache']['reuses']} reuses / "
        f"{payload['compiled_cache']['builds']} builds; telemetry overhead "
        f"{payload['telemetry']['overhead_percent']}%; "
        f"kernel cold-build speedup: {kernel_line}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
