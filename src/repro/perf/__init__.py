"""Performance subsystem: compiled sampling artifacts and parallelism.

* :mod:`repro.perf.compiled_dd` — :class:`CompiledDD`, the cached flat
  ``(p0, child0, child1)`` traversal tables every vectorised sampling
  path shares, plus the process-wide :data:`DEFAULT_CACHE` with
  build/reuse counters.
* :mod:`repro.perf.parallel` — seed-stable chunked sampling: results are
  identical for any worker count because the chunk layout and per-chunk
  ``SeedSequence`` streams depend only on the seed and shot count.
* :mod:`repro.perf.bench` — the regression harness behind
  ``BENCH_sampling.json`` (``python -m repro.perf.bench``).
"""

from .compiled_dd import DEFAULT_CACHE, CompiledDD, CompiledDDCache, compile_edge
from .parallel import DEFAULT_CHUNK_SHOTS, chunk_layout, sample_chunked

__all__ = [
    "CompiledDD",
    "CompiledDDCache",
    "DEFAULT_CACHE",
    "compile_edge",
    "DEFAULT_CHUNK_SHOTS",
    "chunk_layout",
    "sample_chunked",
]
