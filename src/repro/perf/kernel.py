"""Structure-of-arrays decision-diagram kernel for the cold-build hot path.

The pure-Python engine (:class:`repro.dd.apply.GateApplier` over
:class:`repro.dd.package.DDPackage`) pays one Python frame, several dict
probes, and three :class:`~repro.dd.complex_table.ComplexTable` bucket
scans per node per gate.  Cold builds — the dominant cost of cold service
requests now that sampling itself is flat-array — spend most of their
time in that per-node overhead, not in arithmetic.

This module re-implements the strong-simulation hot path on a
structure-of-arrays working state:

* :class:`SoAState` keeps one :class:`_Level` per qubit with parallel
  arrays of child indices (``c0``/``c1``, ``-1`` = zero edge, pointing
  into the level below; at level 0 index ``0`` marks the terminal) and
  complex edge weights (``w0``/``w1``), plus a per-level uniquing dict —
  the unique table flattened into row indices.
* :class:`KernelEngine` applies gates directly on that representation.
  Strategy routing is delegated to the *python* applier's
  :meth:`~repro.dd.apply.GateApplier.classify`, and every arithmetic
  step — L2 normalisation, complex interning, scalar scaling, DD
  addition — replays the reference implementation's exact float
  operation sequence, so both engines produce **bit-identical** states
  (and therefore bit-identical :class:`~repro.perf.compiled_dd.CompiledDD`
  arrays and samples at equal seed).
* Interning goes through a front cache over the package's
  :class:`~repro.dd.complex_table.ComplexTable`: canonical entries are
  permanent lookup fixed points (they stay pairwise further than the
  tolerance apart), so exact hits are cached forever; near-miss results
  are cached only until the table's ``version`` counter moves.
* Levels whose working width reaches ``batch_min_width`` are processed
  with NumPy level sweeps — vectorised child gather, weight multiply,
  L2 normalisation, and hash-based uniquing via ``np.unique`` on the
  ``(child, weight)`` row keys — one NumPy call chain per DD level
  instead of one Python frame per node.  Narrow levels (the common case
  for the benchmark families) use a scalar replay on the same arrays.

Anything the kernel does not cover — generic matrix-vector products,
matrix-matrix composition, mid-circuit measurement — falls back to the
python engine: the SoA state converts to :class:`~repro.dd.node.Edge`
form, the reference applier runs, and the result converts back.  Each
round trip is counted in :attr:`KernelStats.fallbacks` and surfaced as
the ``kernel.fallbacks`` telemetry counter.
"""

from __future__ import annotations

import cmath
import math
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import telemetry as _telemetry
from ..circuit.operations import DiagonalOperation
from ..dd.node import TERMINAL, Edge, is_terminal
from ..dd.normalization import NormalizationScheme, normalize_weights
from ..exceptions import DDError

__all__ = ["KernelEngine", "KernelStats", "SoAState", "DEFAULT_BATCH_MIN_WIDTH"]

#: Level width at which gate application switches from the scalar replay
#: to the NumPy batched sweep.  Below this, per-call NumPy overhead
#: exceeds the scalar cost (bench-family DD levels are a handful of
#: nodes wide); above it the vectorised path wins.
DEFAULT_BATCH_MIN_WIDTH = 64

_ZERO = (-1, 0j)


def _same_edge(tc: int, tw: complex, c: int, w: complex) -> bool:
    """Bit-exact edge equality (``==`` would conflate ``±0.0``)."""
    if tc != c or tw != w:
        return False
    if tw.real == 0.0 and math.copysign(1.0, tw.real) != math.copysign(1.0, w.real):
        return False
    if tw.imag == 0.0 and math.copysign(1.0, tw.imag) != math.copysign(1.0, w.imag):
        return False
    return True


def _phase_select(var: int, ones: set, zeros_set: set) -> Tuple[bool, bool]:
    """Which child branches a subspace-phase traversal follows at ``var``."""
    if var in ones:
        return (False, True)
    if var in zeros_set:
        return (True, False)
    return (True, True)


# ---------------------------------------------------------------------------
# Bit-exact vector complex arithmetic
# ---------------------------------------------------------------------------
#
# NumPy's complex128 multiply/divide/abs loops may use SIMD kernels with
# FMA contraction, rounding differently from the interpreter's scalar
# formulas in the last ulp.  The helpers below replay CPython's
# ``_Py_c_prod`` / ``_Py_c_quot`` (Smith's algorithm) / ``hypot`` step by
# step with separate float64 ufunc calls — each a single correctly
# rounded IEEE operation — so batched results match the scalar replay
# bit for bit.


def _to_complex(re: np.ndarray, im: np.ndarray) -> np.ndarray:
    out = np.empty(np.shape(re), dtype=np.complex128)
    out.real = re
    out.imag = im
    return out


def _cmul_parts(ar, ai, br, bi) -> np.ndarray:
    """``(ar + ai*i) * (br + bi*i)`` via CPython's product formula."""
    return _to_complex(ar * br - ai * bi, ar * bi + ai * br)


def _cdiv_parts(ar, ai, br, bi) -> np.ndarray:
    """``(ar + ai*i) / (br + bi*i)`` via CPython's Smith algorithm.

    Both branches are evaluated and ``where``-selected; the guarded
    divisors keep the dead branch finite (its values are discarded).
    """
    abs_br = np.abs(br)
    abs_bi = np.abs(bi)
    first = abs_br >= abs_bi
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio1 = bi / np.where(first, br, 1.0)
        denom1 = br + bi * ratio1
        re1 = (ar + ai * ratio1) / denom1
        im1 = (ai - ar * ratio1) / denom1
        ratio2 = br / np.where(first, 1.0, bi)
        denom2 = br * ratio2 + bi
        re2 = (ar * ratio2 + ai) / denom2
        im2 = (ai * ratio2 - ar) / denom2
    return _to_complex(
        np.where(first, re1, re2), np.where(first, im1, im2)
    )


class _UnsafeBatch(Exception):
    """A batched sweep could not prove insert-order independence."""


class _GateIntern:
    """Probe-only complex interning for one batched gate application.

    The python engine interns values in DFS order; a NumPy level sweep
    visits the same value multiset in a different order.  Order can only
    influence canonicalisation when some value of the gate lands within
    tolerance of a value that is *new* this gate (the earlier of the two
    would have become the canonical entry and captured the other).  This
    helper therefore

    * resolves values against the existing table **without inserting**
      (:meth:`ComplexTable.probe`), treating unmatched values as their
      own canonical form,
    * tracks every distinct value of the gate on a tolerance grid and
      raises :class:`_UnsafeBatch` the moment any value falls within
      tolerance of a new one — the sweep is then abandoned (no table
      mutation has happened) and the gate re-runs on the scalar path,
      which replays the reference order exactly, and
    * on success :meth:`commit`\\ s the new values into the table — they
      are pairwise further than the tolerance apart from everything else
      in the gate, so the insert order is provably irrelevant.
    """

    __slots__ = ("cache", "table", "tolerance", "results", "pending", "grid")

    def __init__(self, cache: _InternCache):
        self.cache = cache
        self.table = cache.table
        self.tolerance = cache.table.tolerance
        #: value -> canonical result, memoised per gate.
        self.results: Dict[complex, complex] = {}
        #: Values with no existing canonical entry, pending insert.
        self.pending: List[complex] = []
        #: tolerance-grid key -> [(value, is_new)] for the safety check.
        self.grid: Dict[Tuple[int, int], List[Tuple[complex, bool]]] = {}

    def intern(self, value: complex) -> complex:
        value = complex(
            value.real if value.real != 0.0 else 0.0,
            value.imag if value.imag != 0.0 else 0.0,
        )
        hit = self.results.get(value)
        if hit is not None:
            return hit
        canonical = self.cache.fixed.get(value)
        if canonical is None:
            canonical = self.table.probe(value)
        if canonical is None:
            canonical = value
            self._check(value, True)
            self.pending.append(value)
        elif canonical != value:
            # Nearest-entry snap: a later new value within tolerance of
            # ``value`` could steal it, so it joins the safety grid.  An
            # exact canonical hit cannot pair with any new value (the new
            # value would not have been new) and skips the grid.
            self._check(value, False)
        self.results[value] = canonical
        return canonical

    def _check(self, value: complex, is_new: bool) -> None:
        tolerance = self.tolerance
        kr = int(math.floor(value.real / tolerance + 0.5))
        ki = int(math.floor(value.imag / tolerance + 0.5))
        for dr in (0, -1, 1):
            for di in (0, -1, 1):
                for other, other_new in self.grid.get((kr + dr, ki + di), ()):
                    if (
                        (is_new or other_new)
                        and other != value
                        and abs(other.real - value.real) <= tolerance
                        and abs(other.imag - value.imag) <= tolerance
                    ):
                        raise _UnsafeBatch
        self.grid.setdefault((kr, ki), []).append((value, is_new))

    def commit(self) -> None:
        """Insert the gate's new values (order provably irrelevant).

        Each becomes a canonical entry — a permanent lookup fixed point —
        so it also feeds the front cache, which purges any nearest-entry
        snaps the insert may have invalidated.
        """
        table = self.table
        cache = self.cache
        for value in self.pending:
            table.lookup(value)
            cache.note_insert(value)


class _InternCache:
    """Exact-hit front cache over a :class:`ComplexTable`.

    Canonical entries never move and stay pairwise further than the
    tolerance apart, so ``lookup(c) == c`` holds forever once observed:
    those mappings live in :attr:`fixed` permanently (the table only
    grows during an engine's lifetime).  A value that snaps to a
    *different* canonical entry is deliberately **not** cached: a later
    insert can land within tolerance of the value while sitting more
    than tolerance from its current canonical and steal it, so snaps
    are re-resolved against the live table on every occurrence —
    exactly what the python engine's per-occurrence ``lookup`` does.

    The slow path inlines :meth:`ComplexTable.lookup` against the
    table's internals — same normalisation, same nine-bucket best-rank
    scan, same ``hits``/``misses``/``version`` bookkeeping — because
    after the front cache absorbs repeats, first-sight values are the
    hot path of the whole scalar replay.  ``fixed`` is exposed so hot
    call sites can probe it inline before paying for a method call.
    """

    __slots__ = ("table", "tolerance", "fixed")

    def __init__(self, table):
        self.table = table
        self.tolerance = table.tolerance
        self.fixed: Dict[complex, complex] = {}

    def intern(self, value: complex) -> complex:
        hit = self.fixed.get(value)
        if hit is not None:
            return hit
        # Inlined replay of ComplexTable.lookup.
        table = self.table
        vr = value.real
        vi = value.imag
        if vr == 0.0:
            vr = 0.0
        if vi == 0.0:
            vi = 0.0
        norm = complex(vr, vi)
        tol = self.tolerance
        kr = int(math.floor(vr / tol + 0.5))
        ki = int(math.floor(vi / tol + 0.5))
        buckets = table._buckets
        best = None
        best_rank = None
        for dr in (0, -1, 1):
            kk = kr + dr
            for di in (0, -1, 1):
                cand = buckets.get((kk, ki + di))
                if cand is None:
                    continue
                cr = cand.real
                cim = cand.imag
                if abs(cr - vr) > tol or abs(cim - vi) > tol:
                    continue
                rank = (abs(cand - norm), cr, cim)
                if best_rank is None or rank < best_rank:
                    best, best_rank = cand, rank
        if best is not None:
            table.hits += 1
            if best == norm:
                # A canonical entry is a permanent lookup fixed point.
                # (The dict key may carry -0.0 components; equality
                # collapses them onto the normalised result, which is
                # what the table itself does.)
                self.fixed[value] = best
            return best
        buckets[(kr, ki)] = norm
        table.misses += 1
        table.version += 1
        self.fixed[value] = norm
        return norm

    def note_insert(self, value: complex) -> None:
        """Record a canonical insert performed through the table directly.

        ``value`` must be the (normalised) entry just inserted: it is a
        permanent lookup fixed point from now on.
        """
        self.fixed[value] = value


class _Level:
    """One qubit level of the SoA state: parallel rows plus uniquing."""

    __slots__ = ("c0", "c1", "w0", "w1", "dedup", "rebuild")

    def __init__(self) -> None:
        self.c0: List[int] = []
        self.c1: List[int] = []
        self.w0: List[complex] = []
        self.w1: List[complex] = []
        #: (c0, w0, c1, w1) -> row, mirroring the unique table's key.
        self.dedup: Dict[Tuple[int, complex, int, complex], int] = {}
        #: row -> (result_row, factor, table_version): memoised result of
        #: re-normalising a row against itself (the no-op short-circuit
        #: for structurally unaffected subtrees).
        self.rebuild: Dict[int, Tuple[int, complex, int]] = {}

    def __len__(self) -> int:
        return len(self.c0)

    def intern_row(self, c0: int, w0: complex, c1: int, w1: complex) -> int:
        key = (c0, w0, c1, w1)
        row = self.dedup.get(key)
        if row is None:
            row = len(self.c0)
            self.dedup[key] = row
            self.c0.append(c0)
            self.w0.append(w0)
            self.c1.append(c1)
            self.w1.append(w1)
        return row


class SoAState:
    """A vector DD flattened into per-level parallel arrays.

    ``levels[v]`` holds the nodes with variable ``v``.  Child indices
    point into the level below; ``-1`` is the zero stub and, at level 0,
    ``0`` marks the terminal.  The root is ``(root, root_weight)`` into
    the top level; a zero state is ``root_weight == 0``.
    """

    __slots__ = ("num_qubits", "levels", "root", "root_weight")

    def __init__(self, num_qubits: int):
        self.num_qubits = num_qubits
        self.levels = [_Level() for _ in range(num_qubits)]
        self.root = -1
        self.root_weight = 0j

    @property
    def is_zero(self) -> bool:
        """Whether the state is the zero vector (no reachable nodes)."""
        return self.root_weight == 0

    def total_rows(self) -> int:
        """Stored rows across all levels (live + garbage)."""
        return sum(len(level) for level in self.levels)

    def reachable_rows(self) -> List[List[int]]:
        """Per-level live row indices, in first-visit (root-down) order."""
        per_level: List[List[int]] = [[] for _ in self.levels]
        if self.is_zero or self.num_qubits == 0:
            return per_level
        frontier = [self.root]
        for var in range(self.num_qubits - 1, -1, -1):
            level = self.levels[var]
            per_level[var] = frontier
            if var == 0:
                break
            seen = set()
            next_frontier: List[int] = []
            for row in frontier:
                for child, weight in (
                    (level.c0[row], level.w0[row]),
                    (level.c1[row], level.w1[row]),
                ):
                    if weight != 0 and child not in seen:
                        seen.add(child)
                        next_frontier.append(child)
            frontier = next_frontier
        return per_level

    def node_count(self) -> int:
        """Live (reachable) node count — matches ``package.node_count``."""
        return sum(len(rows) for rows in self.reachable_rows())


class KernelStats:
    """Counters for one engine instance (telemetry + stats parity)."""

    __slots__ = ("gates", "levels_processed", "batched_levels", "fallbacks")

    def __init__(self) -> None:
        self.gates = 0
        #: DD levels rebuilt by SoA gate application (scalar or batched).
        self.levels_processed = 0
        #: Subset of ``levels_processed`` handled by the NumPy sweep.
        self.batched_levels = 0
        #: Edge⇄SoA round trips through the python engine.
        self.fallbacks = 0


class KernelEngine:
    """Applies gates to a :class:`SoAState`, bit-identical to the python engine.

    ``applier`` is the reference :class:`~repro.dd.apply.GateApplier` on
    the same package: it provides strategy routing (so both engines make
    identical per-operation choices) and executes fallback operations.
    Strategy counters are incremented on the applier itself, keeping
    :class:`~repro.simulators.base.SimulationStats` identical across
    engines.
    """

    def __init__(
        self,
        package,
        num_qubits: int,
        applier,
        batch_min_width: int = DEFAULT_BATCH_MIN_WIDTH,
    ):
        self.package = package
        self.num_qubits = num_qubits
        self.applier = applier
        self.tolerance = package.tolerance
        self.scheme = package.scheme
        self.batch_min_width = batch_min_width
        self.stats = KernelStats()
        self._intern = _InternCache(package.complex_table)
        self._add_cache: Dict[tuple, Tuple[int, complex]] = {}
        self.state = SoAState(num_qubits)

    # ------------------------------------------------------------------
    # Edge ⇄ SoA conversion
    # ------------------------------------------------------------------

    def load(self, edge: Edge) -> None:
        """Convert an :class:`Edge`-rooted DD into the working SoA state."""
        state = self.state
        if edge.is_zero:
            state.root = -1
            state.root_weight = 0j
            return
        if is_terminal(edge.node):
            raise DDError("cannot load a terminal-only state into the kernel")
        if edge.node.var != self.num_qubits - 1:
            raise DDError(
                f"DD rooted at level {edge.node.var} is not a "
                f"{self.num_qubits}-qubit state"
            )
        rows: Dict[int, int] = {}

        # Iterative post-order DFS (deep registers exceed the default
        # recursion limit long before they exhaust memory).
        stack: List[Tuple] = [(edge.node, False)]
        while stack:
            node, expanded = stack.pop()
            if node.index in rows:
                continue
            if expanded:
                converted = []
                for child in node.edges:
                    if child.weight == 0:
                        converted.append(_ZERO)
                    elif is_terminal(child.node):
                        converted.append((0, child.weight))
                    else:
                        converted.append((rows[child.node.index], child.weight))
                (c0, w0), (c1, w1) = converted
                rows[node.index] = self.state.levels[node.var].intern_row(
                    c0, w0, c1, w1
                )
                continue
            stack.append((node, True))
            for child in node.edges:
                if child.weight != 0 and not is_terminal(child.node):
                    stack.append((child.node, False))
        state.root = rows[edge.node.index]
        state.root_weight = edge.weight

    def to_edge(self) -> Edge:
        """Convert the working state back to a canonical :class:`Edge` DD.

        Nodes are rebuilt through ``unique_table.get_node`` with the
        stored weights verbatim (the :meth:`DDPackage.compact` pattern) —
        no renormalisation, so the output is bit-identical to what the
        python engine would hold.
        """
        state = self.state
        if state.is_zero:
            return self.package.zero_edge
        get_node = self.package.unique_table.get_node
        reachable = state.reachable_rows()
        nodes: List[Dict[int, object]] = [{} for _ in state.levels]
        for var in range(state.num_qubits):
            level = state.levels[var]
            below = nodes[var - 1] if var > 0 else None
            for row in reachable[var]:
                edges = []
                for child, weight in (
                    (level.c0[row], level.w0[row]),
                    (level.c1[row], level.w1[row]),
                ):
                    if weight == 0:
                        edges.append(Edge(TERMINAL, 0j))
                    elif var == 0:
                        edges.append(Edge(TERMINAL, weight))
                    else:
                        edges.append(Edge(below[child], weight))
                nodes[var][row] = get_node(var, tuple(edges))
        root_node = nodes[state.num_qubits - 1][state.root]
        return Edge(root_node, state.root_weight)

    # ------------------------------------------------------------------
    # Gate application
    # ------------------------------------------------------------------

    def apply(self, op) -> None:
        """Apply one instruction to the working state (in place)."""
        applier = self.applier
        if op.max_qubit >= self.num_qubits:
            raise DDError(
                f"operation touches qubit {op.max_qubit} outside the "
                f"{self.num_qubits}-qubit register"
            )
        if self.state.root_weight == 0:
            return
        self.stats.gates += 1
        strategy = applier.classify(op)
        if strategy == "diagonal":
            applier.diagonal_applications += 1
            if isinstance(op, DiagonalOperation):
                for term in op.terms:
                    applier.diagonal_term_applications += 1
                    self._subspace_phase(
                        term.ones, term.zeros, cmath.exp(1j * term.angle)
                    )
            else:
                diag = np.diag(op.gate.array)
                for pattern, value in enumerate(diag):
                    value = complex(value)
                    if abs(value - 1.0) <= self.tolerance:
                        continue
                    ones = set(op.controls)
                    zeros = set(op.neg_controls)
                    for bit, qubit in enumerate(op.targets):
                        if (pattern >> bit) & 1:
                            ones.add(qubit)
                        else:
                            zeros.add(qubit)
                    self._subspace_phase(ones, zeros, value)
            return
        if strategy == "descent":
            applier.descent_applications += 1
            self._descent(op)
            return
        if strategy == "decompose":
            applier.decompose_applications += 1
            for kind, *payload in applier.decomposition_steps(op):
                if self.state.root_weight == 0:
                    return
                if kind == "op":
                    self._descent(payload[0])
                else:
                    ones, zeros, phase = payload
                    self._subspace_phase(ones, zeros, phase)
            return
        self._fallback(op)

    def _fallback(self, op) -> None:
        """Round-trip through the python engine for uncovered operations."""
        self.stats.fallbacks += 1
        session = _telemetry.active()
        if session is not None:
            session.registry.counter("kernel.fallbacks").inc()
        edge = self.to_edge()
        edge = self.applier.apply(edge, op)
        self.state = SoAState(self.num_qubits)
        self.load(edge)
        # Row indices changed wholesale; memoised results are stale.
        self._add_cache.clear()

    # ------------------------------------------------------------------
    # Exact-replay scalar primitives
    # ------------------------------------------------------------------

    def _scale_pair(self, c: int, w: complex, factor: complex) -> Tuple[int, complex]:
        """Replay of ``DDPackage.scale`` on an SoA edge."""
        raw = w * factor
        if raw == 0:
            return _ZERO
        intern_cache = self._intern
        product = intern_cache.fixed.get(raw)
        if product is None:
            product = intern_cache.intern(raw)
        if product == 0:
            return (c, raw)
        return (c, product)

    def _make_node(
        self,
        var: int,
        e0: Tuple[int, complex],
        e1: Tuple[int, complex],
    ) -> Tuple[int, complex]:
        """Replay of ``DDPackage.make_vector_node`` on SoA edges."""
        c0, w0 = e0
        c1, w1 = e1
        tolerance = self.tolerance
        intern = self._intern.intern
        if self.scheme is NormalizationScheme.L2:
            # Inline replay of normalize_weights(..., L2): same float
            # operation sequence, term order, and tolerance tests.
            a0 = abs(w0)
            if a0 > tolerance:
                magnitude = math.sqrt(a0**2 + abs(w1) ** 2)
                phase = w0 / a0
                factor = magnitude * phase
                n0 = complex(a0 / magnitude, 0.0)
                n1 = w1 / factor if abs(w1) > tolerance else 0j
            else:
                a1 = abs(w1)
                if a1 > tolerance:
                    magnitude = math.sqrt(a0**2 + a1**2)
                    phase = w1 / a1
                    factor = magnitude * phase
                    n0 = 0j
                    n1 = complex(a1 / magnitude, 0.0)
                else:
                    return _ZERO
        else:
            (n0, n1), factor = normalize_weights(
                (w0, w1), self.scheme, tolerance
            )
            if factor == 0:
                return _ZERO
        fixed_get = self._intern.fixed.get
        interned = fixed_get(factor)
        factor = interned if interned is not None else intern(factor)
        if factor == 0:
            return _ZERO
        interned = fixed_get(n0)
        n0 = interned if interned is not None else intern(n0)
        if n0 == 0:
            c0 = -1
        interned = fixed_get(n1)
        n1 = interned if interned is not None else intern(n1)
        if n1 == 0:
            c1 = -1
        row = self.state.levels[var].intern_row(c0, n0, c1, n1)
        return (row, factor)

    def _rebuild_row(self, var: int, row: int) -> Tuple[int, complex]:
        """Re-normalise a row against its own children, memoised.

        This is what the python engine does when a traversal leaves both
        children untouched; the result depends only on the row and the
        complex-table contents, so it is cached per table version.
        """
        level = self.state.levels[var]
        entry = level.rebuild.get(row)
        if entry is not None and entry[2] == self._intern.table.version:
            return (entry[0], entry[1])
        result = self._make_node(
            var,
            (level.c0[row], level.w0[row]),
            (level.c1[row], level.w1[row]),
        )
        level.rebuild[row] = (result[0], result[1], self._intern.table.version)
        return result

    def _terminal_add(self, wa: complex, wb: complex) -> Tuple[int, complex]:
        """Replay of ``DDPackage.terminal_edge(wa + wb)``."""
        value = wa + wb
        if value == 0:
            return _ZERO
        intern_cache = self._intern
        interned = intern_cache.fixed.get(value)
        if interned is None:
            interned = intern_cache.intern(value)
        if interned == 0:
            return (0, value)
        return (0, interned)

    def _add(
        self,
        var: int,
        a: Tuple[int, complex],
        b: Tuple[int, complex],
    ) -> Tuple[int, complex]:
        """Replay of ``DDPackage.add`` (zero shortcuts, cache, recursion)."""
        ca, wa = a
        cb, wb = b
        if wa == 0:
            return b
        if wb == 0:
            return a
        if var < 0:
            return self._terminal_add(wa, wb)
        ka = (ca, wa.real, wa.imag)
        kb = (cb, wb.real, wb.imag)
        if kb < ka:
            a, b, ka, kb = b, a, kb, ka
            ca, wa = a
            cb, wb = b
        key = (var,) + ka + kb
        cached = self._add_cache.get(key)
        if cached is not None:
            return cached
        level = self.state.levels[var]
        lc0 = level.c0
        lw0 = level.w0
        lc1 = level.c1
        lw1 = level.w1
        intern_cache = self._intern
        fixed_get = intern_cache.fixed.get
        intern = intern_cache.intern
        below = var - 1
        # The four child scalings, inlined (see _scale_pair): raw == 0
        # short-circuits to the zero edge, a canonical-zero snap keeps
        # the raw weight.
        raw = lw0[ca] * wa
        if raw == 0:
            sa0 = _ZERO
        else:
            product = fixed_get(raw)
            if product is None:
                product = intern(raw)
            sa0 = (lc0[ca], raw if product == 0 else product)
        raw = lw0[cb] * wb
        if raw == 0:
            sb0 = _ZERO
        else:
            product = fixed_get(raw)
            if product is None:
                product = intern(raw)
            sb0 = (lc0[cb], raw if product == 0 else product)
        e0 = self._add(below, sa0, sb0)
        raw = lw1[ca] * wa
        if raw == 0:
            sa1 = _ZERO
        else:
            product = fixed_get(raw)
            if product is None:
                product = intern(raw)
            sa1 = (lc1[ca], raw if product == 0 else product)
        raw = lw1[cb] * wb
        if raw == 0:
            sb1 = _ZERO
        else:
            product = fixed_get(raw)
            if product is None:
                product = intern(raw)
            sb1 = (lc1[cb], raw if product == 0 else product)
        e1 = self._add(below, sa1, sb1)
        result = self._make_node(var, e0, e1)
        self._add_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Subspace phase (diagonal strategy)
    # ------------------------------------------------------------------

    def _subspace_phase(self, ones, zeros, phase: complex) -> None:
        """Replay of ``GateApplier.apply_subspace_phase`` on the SoA state."""
        state = self.state
        ones = set(ones)
        zeros_set = set(zeros)
        if not ones and not zeros_set:
            state.root, state.root_weight = self._scale_pair(
                state.root, state.root_weight, phase
            )
            return
        lowest = min(ones) if not zeros_set else (
            min(zeros_set) if not ones else min(min(ones), min(zeros_set))
        )
        top = state.num_qubits - 1
        if (
            self.scheme is NormalizationScheme.L2
            # Stored width is a cheap upper bound on active width: only
            # when it clears the threshold is the frontier worth walking.
            and self._max_width(lowest, top) >= self.batch_min_width
        ):
            active = self._frontier(
                lowest, lambda var: _phase_select(var, ones, zeros_set)
            )
            if max(
                len(active[v]) for v in range(lowest, top + 1)
            ) >= self.batch_min_width and self._subspace_phase_batched(
                ones, zeros_set, lowest, phase, active
            ):
                return
        levels = state.levels
        memo: List[Dict[int, Tuple[int, complex]]] = [
            {} for _ in range(state.num_qubits)
        ]
        intern_cache = self._intern
        fixed_get = intern_cache.fixed.get
        intern = intern_cache.intern
        make_node = self._make_node
        rebuild_row = self._rebuild_row
        same_edge = _same_edge
        processed = 0

        def walk(c: int, w: complex, var: int) -> Tuple[int, complex]:
            nonlocal processed
            if w == 0:
                return (c, w)
            if var < lowest:
                # Inlined _scale_pair(c, w, phase).
                raw = w * phase
                if raw == 0:
                    return _ZERO
                product = fixed_get(raw)
                if product is None:
                    product = intern(raw)
                return (c, raw) if product == 0 else (c, product)
            cached = memo[var].get(c)
            if cached is not None:
                raw = cached[1] * w
                if raw == 0:
                    return _ZERO
                product = fixed_get(raw)
                if product is None:
                    product = intern(raw)
                return (cached[0], raw) if product == 0 else (cached[0], product)
            level = levels[var]
            processed += 1
            c0, w0 = level.c0[c], level.w0[c]
            c1, w1 = level.c1[c], level.w1[c]
            if var in ones:
                t1 = walk(c1, w1, var - 1)
                if same_edge(t1[0], t1[1], c1, w1):
                    result = rebuild_row(var, c)
                else:
                    result = make_node(var, (c0, w0), t1)
            elif var in zeros_set:
                t0 = walk(c0, w0, var - 1)
                if same_edge(t0[0], t0[1], c0, w0):
                    result = rebuild_row(var, c)
                else:
                    result = make_node(var, t0, (c1, w1))
            else:
                t0 = walk(c0, w0, var - 1)
                t1 = walk(c1, w1, var - 1)
                if same_edge(t0[0], t0[1], c0, w0) and same_edge(
                    t1[0], t1[1], c1, w1
                ):
                    result = rebuild_row(var, c)
                else:
                    result = make_node(var, t0, t1)
            memo[var][c] = result
            raw = result[1] * w
            if raw == 0:
                return _ZERO
            product = fixed_get(raw)
            if product is None:
                product = intern(raw)
            return (result[0], raw) if product == 0 else (result[0], product)

        state.root, state.root_weight = walk(state.root, state.root_weight, top)
        self.stats.levels_processed += processed

    # ------------------------------------------------------------------
    # Single-qubit descent strategy
    # ------------------------------------------------------------------

    def _descent(self, op) -> None:
        """Replay of ``GateApplier._apply_single_qubit_descent`` on SoA."""
        state = self.state
        target = op.targets[0]
        controls = op.controls
        neg_controls = op.neg_controls
        (u00, u01), (u10, u11) = op.gate.matrix
        levels = state.levels
        memo: List[Dict[int, Tuple[int, complex]]] = [
            {} for _ in range(state.num_qubits)
        ]
        intern_cache = self._intern
        fixed_get = intern_cache.fixed.get
        intern = intern_cache.intern
        make_node = self._make_node
        rebuild_row = self._rebuild_row
        scale_pair = self._scale_pair
        add = self._add
        same_edge = _same_edge
        processed = 0

        def walk(c: int, w: complex, var: int) -> Tuple[int, complex]:
            nonlocal processed
            if w == 0:
                return (c, w)
            cached = memo[var].get(c)
            if cached is not None:
                raw = cached[1] * w
                if raw == 0:
                    return _ZERO
                product = fixed_get(raw)
                if product is None:
                    product = intern(raw)
                return (cached[0], raw) if product == 0 else (cached[0], product)
            level = levels[var]
            processed += 1
            c0, w0 = level.c0[c], level.w0[c]
            c1, w1 = level.c1[c], level.w1[c]
            if var == target:
                below = var - 1
                n0 = add(
                    below,
                    scale_pair(c0, w0, u00),
                    scale_pair(c1, w1, u01),
                )
                n1 = add(
                    below,
                    scale_pair(c0, w0, u10),
                    scale_pair(c1, w1, u11),
                )
                result = make_node(var, n0, n1)
            elif var in controls:
                t1 = walk(c1, w1, var - 1)
                if same_edge(t1[0], t1[1], c1, w1):
                    result = rebuild_row(var, c)
                else:
                    result = make_node(var, (c0, w0), t1)
            elif var in neg_controls:
                t0 = walk(c0, w0, var - 1)
                if same_edge(t0[0], t0[1], c0, w0):
                    result = rebuild_row(var, c)
                else:
                    result = make_node(var, t0, (c1, w1))
            else:
                t0 = walk(c0, w0, var - 1)
                t1 = walk(c1, w1, var - 1)
                if same_edge(t0[0], t0[1], c0, w0) and same_edge(
                    t1[0], t1[1], c1, w1
                ):
                    result = rebuild_row(var, c)
                else:
                    result = make_node(var, t0, t1)
            memo[var][c] = result
            raw = result[1] * w
            if raw == 0:
                return _ZERO
            product = fixed_get(raw)
            if product is None:
                product = intern(raw)
            return (result[0], raw) if product == 0 else (result[0], product)

        state.root, state.root_weight = walk(
            state.root, state.root_weight, state.num_qubits - 1
        )
        self.stats.levels_processed += processed

    # ------------------------------------------------------------------
    # NumPy batched level sweep
    # ------------------------------------------------------------------

    def _max_width(self, base_var: int, top_var: int) -> int:
        """Widest stored level in the traversal range (cheap upper bound)."""
        levels = self.state.levels
        width = 0
        for var in range(base_var, top_var + 1):
            stored = len(levels[var].c0)
            if stored > width:
                width = stored
        return width

    def _frontier(
        self,
        base_var: int,
        select: Callable[[int], Tuple[bool, bool]],
    ) -> List[List[int]]:
        """Active rows per level from the root down to ``base_var``.

        ``select(var)`` returns which branches the traversal follows at
        ``var`` (walk0, walk1); rows are recorded in first-visit order,
        matching the python engine's memoisation granularity.
        """
        state = self.state
        levels = state.levels
        active: List[List[int]] = [[] for _ in range(state.num_qubits)]
        frontier = [state.root]
        for var in range(state.num_qubits - 1, base_var - 1, -1):
            active[var] = frontier
            if var == base_var:
                break
            level = levels[var]
            walk0, walk1 = select(var)
            seen = set()
            next_frontier: List[int] = []
            for row in frontier:
                if walk0:
                    child, weight = level.c0[row], level.w0[row]
                    if weight != 0 and child not in seen:
                        seen.add(child)
                        next_frontier.append(child)
                if walk1:
                    child, weight = level.c1[row], level.w1[row]
                    if weight != 0 and child not in seen:
                        seen.add(child)
                        next_frontier.append(child)
            frontier = next_frontier
        return active

    def _intern_array(self, raw: np.ndarray, intern) -> np.ndarray:
        """Intern every element of a complex array (snap-to-zero keeps raw).

        Replays ``DDPackage.scale``'s weight handling: a zero product is
        zero, a nonzero product that interns to zero keeps its raw value.
        Unique values are interned once each; ``intern`` is the gate's
        :class:`_GateIntern` resolver.
        """
        out = raw.copy()
        nonzero = raw != 0
        values = raw[nonzero]
        if values.size:
            unique, inverse = np.unique(values, return_inverse=True)
            interned = np.empty(unique.shape, dtype=np.complex128)
            for position, value in enumerate(unique):
                value = complex(value)
                canonical = intern(value)
                interned[position] = value if canonical == 0 else canonical
            out[nonzero] = interned[inverse]
        return out

    def _batched_rebuild(
        self,
        var: int,
        rows: List[int],
        t0c: np.ndarray,
        t0w: np.ndarray,
        t1c: np.ndarray,
        t1w: np.ndarray,
        intern,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised ``make_vector_node`` over one level's active rows.

        Returns per-active-row result rows and factors (row ``-1`` +
        factor ``0`` for all-zero results).  L2 only — the batched path
        is gated on the L2 scheme by :meth:`apply` routing (`classify`)
        plus the engine selection in the simulator.
        """
        tolerance = self.tolerance
        count = len(rows)
        t0r, t0i = t0w.real, t0w.imag
        t1r, t1i = t1w.real, t1w.imag
        # abs(complex) is hypot in the interpreter; np.abs on complex128
        # may take a SIMD sqrt path, so call hypot explicitly.
        a0 = np.hypot(t0r, t0i)
        a1 = np.hypot(t1r, t1i)
        live0 = a0 > tolerance
        live1 = a1 > tolerance
        pivot0 = live0
        pivot1 = (~live0) & live1
        dead = ~(live0 | live1)
        out_rows = np.full(count, -1, dtype=np.int64)
        out_factors = np.zeros(count, dtype=np.complex128)
        if dead.all():
            return out_rows, out_factors
        # Vectorised replay of normalize_weights(..., L2).  Dead rows are
        # guarded against zero division; their values are discarded.
        magnitude = np.sqrt(a0 * a0 + a1 * a1)
        safe_mag = np.where(dead, 1.0, magnitude)
        pivot_r = np.where(pivot0, t0r, t1r)
        pivot_i = np.where(pivot0, t0i, t1i)
        pivot_a = np.where(pivot0, a0, np.where(pivot1, a1, 1.0))
        pivot_phase = _cdiv_parts(pivot_r, pivot_i, pivot_a, 0.0)
        factor = _cmul_parts(safe_mag, 0.0, pivot_phase.real, pivot_phase.imag)
        safe_factor = np.where(dead, 1.0, factor)
        sfr, sfi = safe_factor.real, safe_factor.imag
        n0 = np.where(live0, _cdiv_parts(t0r, t0i, sfr, sfi), 0j)
        n1 = np.where(live1, _cdiv_parts(t1r, t1i, sfr, sfi), 0j)
        pivot_value = (pivot_a / safe_mag).astype(np.complex128)
        n0 = np.where(pivot0, pivot_value, n0)
        n1 = np.where(pivot1, pivot_value, n1)
        # Intern factors first (the reference engine's order); a factor
        # that interns to zero collapses the row to the zero edge and its
        # children are never interned.
        live_index = np.nonzero(~dead)[0]
        unique, inverse = np.unique(factor[live_index], return_inverse=True)
        interned_factors = np.empty(unique.shape, dtype=np.complex128)
        for position, value in enumerate(unique):
            interned_factors[position] = intern(complex(value))
        live_factor_values = interned_factors[inverse]
        alive = live_index[live_factor_values != 0]
        if alive.size == 0:
            return out_rows, out_factors
        out_factors[live_index] = live_factor_values
        # Intern normalised child weights over surviving rows (zeros stay
        # zero; a nonzero weight that interns to zero detaches the child).
        n0a = self._intern_weights(n0[alive], intern)
        n1a = self._intern_weights(n1[alive], intern)
        c0a = np.where(n0a == 0, -1, t0c[alive])
        c1a = np.where(n1a == 0, -1, t1c[alive])
        # Hash-based uniquing: np.unique over the flattened row keys,
        # then one dict probe per *unique* row against the level store.
        keys = np.empty((alive.size, 6), dtype=np.float64)
        keys[:, 0] = c0a
        keys[:, 1] = c1a
        keys[:, 2] = n0a.real
        keys[:, 3] = n0a.imag
        keys[:, 4] = n1a.real
        keys[:, 5] = n1a.imag
        level = self.state.levels[var]
        unique_keys, first, inverse_rows = np.unique(
            keys, axis=0, return_index=True, return_inverse=True
        )
        assigned = np.empty(unique_keys.shape[0], dtype=np.int64)
        for position in range(unique_keys.shape[0]):
            source = int(first[position])
            assigned[position] = level.intern_row(
                int(c0a[source]),
                complex(n0a[source]),
                int(c1a[source]),
                complex(n1a[source]),
            )
        out_rows[alive] = assigned[inverse_rows]
        zero_factor = out_rows == -1
        out_factors[zero_factor] = 0j
        return out_rows, out_factors

    def _intern_weights(self, weights: np.ndarray, intern) -> np.ndarray:
        """Intern normalised weights (zero stays zero, snaps become zero)."""
        out = weights.copy()
        nonzero = weights != 0
        values = weights[nonzero]
        if values.size:
            unique, inverse = np.unique(values, return_inverse=True)
            interned = np.empty(unique.shape, dtype=np.complex128)
            for position, value in enumerate(unique):
                interned[position] = intern(complex(value))
            out[nonzero] = interned[inverse]
        return out

    def _scale_array(
        self, c: np.ndarray, w: np.ndarray, factor: complex, intern
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`_scale_pair` (zero keeps zero, snaps keep raw)."""
        raw = _cmul_parts(w.real, w.imag, factor.real, factor.imag)
        out_c = np.where(raw == 0, -1, c)
        out_w = self._intern_array(raw, intern)
        return out_c, out_w

    def _subspace_phase_batched(
        self,
        ones: set,
        zeros_set: set,
        lowest: int,
        phase: complex,
        active: List[List[int]],
    ) -> bool:
        """Level-sweep implementation of the subspace phase.

        ``active`` is the precomputed frontier (the dispatcher walks it
        to measure the live width before committing to the sweep).
        Returns ``False`` — with the state untouched and nothing inserted
        into the complex table — when the sweep cannot prove it is
        independent of the reference engine's intern order; the caller
        then re-runs the gate on the scalar path.
        """
        state = self.state
        levels = state.levels
        gate_intern = _GateIntern(self._intern)
        intern = gate_intern.intern
        saved_levels = self.stats.levels_processed
        saved_batched = self.stats.batched_levels
        try:
            result = self._sweep(
                ones, zeros_set, lowest, phase, active, intern
            )
        except _UnsafeBatch:
            self.stats.levels_processed = saved_levels
            self.stats.batched_levels = saved_batched
            return False
        gate_intern.commit()
        state.root, state.root_weight = result
        return True

    def _sweep(
        self,
        ones: set,
        zeros_set: set,
        lowest: int,
        phase: complex,
        active: List[List[int]],
        intern,
    ) -> Tuple[int, complex]:
        """The level loop of :meth:`_subspace_phase_batched` (may raise)."""
        state = self.state
        levels = state.levels
        prev_rows: Optional[np.ndarray] = None
        prev_factors: Optional[np.ndarray] = None
        for var in range(lowest, state.num_qubits):
            rows = active[var]
            if not rows:
                prev_rows = prev_factors = None
                continue
            self.stats.levels_processed += len(rows)
            self.stats.batched_levels += 1
            level = levels[var]
            count = len(rows)
            index = np.asarray(rows, dtype=np.int64)
            # Gather only the active rows — the stored lists also hold
            # garbage rows from earlier gates, and converting them whole
            # would make each sweep O(stored) instead of O(live).
            lc0, lc1, lw0, lw1 = level.c0, level.c1, level.w0, level.w1
            c0 = np.fromiter((lc0[r] for r in rows), np.int64, count)
            c1 = np.fromiter((lc1[r] for r in rows), np.int64, count)
            w0 = np.fromiter((lw0[r] for r in rows), np.complex128, count)
            w1 = np.fromiter((lw1[r] for r in rows), np.complex128, count)
            walk0, walk1 = _phase_select(var, ones, zeros_set)

            def transform(
                c: np.ndarray, w: np.ndarray
            ) -> Tuple[np.ndarray, np.ndarray]:
                # Zero edges are returned verbatim, matching the walk.
                nonzero = w != 0
                if not nonzero.any() or (var > lowest and prev_rows is None):
                    return c, w
                if var == lowest:
                    # Below the lowest relevant qubit the python engine
                    # scales the child edge by the phase.
                    tc, tw = self._scale_array(c, w, phase, intern)
                else:
                    # Children map to their transformed result row, and
                    # replay scale(result, w): raw = result_factor * w.
                    safe = np.where(nonzero, c, 0)
                    mapped = prev_rows[safe]
                    pf = prev_factors[safe]
                    raw = _cmul_parts(pf.real, pf.imag, w.real, w.imag)
                    tc = np.where(raw == 0, -1, mapped)
                    tw = self._intern_array(raw, intern)
                return np.where(nonzero, tc, c), np.where(nonzero, tw, 0j)

            t0c, t0w = transform(c0, w0) if walk0 else (c0, w0)
            t1c, t1w = transform(c1, w1) if walk1 else (c1, w1)
            result_rows, result_factors = self._batched_rebuild(
                var, rows, t0c, t0w, t1c, t1w, intern
            )
            size = len(level)
            scatter_rows = np.full(size, -1, dtype=np.int64)
            scatter_factors = np.zeros(size, dtype=np.complex128)
            scatter_rows[index] = result_rows
            scatter_factors[index] = result_factors
            prev_rows, prev_factors = scatter_rows, scatter_factors
        root_factor = complex(prev_factors[state.root])
        root_row = int(prev_rows[state.root])
        raw = root_factor * state.root_weight
        if raw == 0:
            return _ZERO
        product = intern(raw)
        return (root_row, raw if product == 0 else product)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def compact(self) -> None:
        """Drop unreachable rows, rebuilding levels from the live set."""
        state = self.state
        if state.is_zero:
            fresh = SoAState(self.num_qubits)
            self.state = fresh
            self._add_cache.clear()
            return
        reachable = state.reachable_rows()
        fresh = SoAState(self.num_qubits)
        remap: List[Dict[int, int]] = [{} for _ in state.levels]
        for var in range(state.num_qubits):
            level = state.levels[var]
            below = remap[var - 1] if var > 0 else None
            target_level = fresh.levels[var]
            for row in reachable[var]:
                c0, w0 = level.c0[row], level.w0[row]
                c1, w1 = level.c1[row], level.w1[row]
                nc0 = -1 if w0 == 0 else (0 if var == 0 else below[c0])
                nc1 = -1 if w1 == 0 else (0 if var == 0 else below[c1])
                remap[var][row] = target_level.intern_row(nc0, w0, nc1, w1)
        fresh.root = remap[state.num_qubits - 1][state.root]
        fresh.root_weight = state.root_weight
        self.state = fresh
        self._add_cache.clear()
