"""Strong simulators: dense statevector (baseline) and decision diagram."""

from .base import SimulationStats, StrongSimulator
from .dd_simulator import DDSimulator
from .stabilizer import CLIFFORD_GATES, StabilizerSimulator, StabilizerState
from .statevector import (
    DEFAULT_MEMORY_CAP,
    StatevectorSimulator,
    apply_operation_dense,
)

__all__ = [
    "StrongSimulator",
    "SimulationStats",
    "StatevectorSimulator",
    "DDSimulator",
    "StabilizerSimulator",
    "StabilizerState",
    "CLIFFORD_GATES",
    "apply_operation_dense",
    "DEFAULT_MEMORY_CAP",
]
