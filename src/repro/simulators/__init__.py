"""Strong simulators: dense statevector (baseline), decision diagram,
stabilizer, and the density-matrix DD simulator for noisy runs."""

from .base import SimulationStats, StrongSimulator
from .dd_simulator import DDSimulator
from .density_simulator import DensityMatrixSimulator, compile_noisy_sampler
from .stabilizer import CLIFFORD_GATES, StabilizerSimulator, StabilizerState
from .statevector import (
    DEFAULT_MEMORY_CAP,
    StatevectorSimulator,
    apply_operation_dense,
)

__all__ = [
    "StrongSimulator",
    "SimulationStats",
    "StatevectorSimulator",
    "DDSimulator",
    "DensityMatrixSimulator",
    "compile_noisy_sampler",
    "StabilizerSimulator",
    "StabilizerState",
    "CLIFFORD_GATES",
    "apply_operation_dense",
    "DEFAULT_MEMORY_CAP",
]
