"""Strong simulation into a decision diagram.

The substrate of the paper's Section IV: gates are applied one at a time
to a vector DD, so memory tracks the DD size of the *intermediate* states
rather than ``2^n``.  The simulator records the peak node count, which is
the real memory driver for circuits whose intermediate states are larger
than their final state.
"""

from __future__ import annotations

import math
from typing import Optional

from .. import telemetry as _telemetry
from ..circuit.circuit import QuantumCircuit
from ..circuit.operations import Barrier, Measurement
from ..circuit.transforms import permute_instruction
from ..compile import optimize_circuit
from ..dd.apply import GateApplier
from ..dd.approximation import (
    DEFAULT_PRUNE_INTERVAL,
    ApproximationConfig,
    Approximator,
)
from ..dd.normalization import NormalizationScheme
from ..dd.package import DDPackage
from ..dd.reorder import (
    ReorderConfig,
    invert_permutation,
    is_identity_permutation,
    sift,
    unpermute_index,
)
from ..dd.vector_dd import VectorDD
from .base import SimulationStats, StrongSimulator

__all__ = ["DDSimulator"]

#: Cadence (applied gates) for the build-time ``node_limit`` guard.
#: Matches the approximation/probe interval so one O(size) traversal per
#: window serves all three consumers.
NODE_LIMIT_CHECK_INTERVAL = DEFAULT_PRUNE_INTERVAL


def _gate_label(instruction) -> str:
    """Short telemetry label for an instruction (gate name or block size)."""
    gate = getattr(instruction, "gate", None)
    if gate is not None:
        return gate.name
    terms = getattr(instruction, "terms", None)
    if terms is not None:
        return f"diagonal[{len(terms)}]"
    return type(instruction).__name__.lower()


class DDSimulator(StrongSimulator):
    """Decision-diagram strong simulator.

    ``scheme`` selects the edge-weight normalisation; the paper's L2
    scheme (the default) is what makes subsequent sampling trivial.
    ``track_peak`` counts nodes after every gate — useful diagnostics, but
    it adds an O(size) traversal per gate, so benchmarks disable it.
    ``telemetry`` attaches a :class:`repro.telemetry.Telemetry` session:
    every run is then traced (``compile``/``build`` spans, per-gate
    ``apply`` spans, periodic DD/RSS probes) and the run's counters are
    absorbed into the session's metrics registry.

    ``kernel`` selects the strong-simulation engine: ``"python"`` is the
    reference per-node recursion, ``"vector"`` the structure-of-arrays
    kernel (:mod:`repro.perf.kernel`), and ``"auto"`` (the default)
    picks the vector kernel under the L2 scheme and the python engine
    otherwise.  Both engines are bit-identical — same final DD weights,
    same compiled arrays, same samples at equal seed — so the choice is
    purely a performance knob.
    """

    KERNELS = ("auto", "vector", "python")

    def __init__(
        self,
        scheme: NormalizationScheme = NormalizationScheme.L2,
        package: Optional[DDPackage] = None,
        use_fast_paths: bool = True,
        track_peak: bool = False,
        auto_compact_threshold: int = 400_000,
        optimize: bool = True,
        telemetry: Optional["_telemetry.Telemetry"] = None,
        kernel: str = "auto",
        approximation: Optional[ApproximationConfig] = None,
        node_limit: Optional[int] = None,
        reorder: Optional[ReorderConfig] = None,
    ):
        if kernel not in self.KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of {self.KERNELS}"
            )
        if approximation is not None and not isinstance(
            approximation, ApproximationConfig
        ):
            approximation = ApproximationConfig.from_value(approximation)
        if approximation is not None and not approximation.enabled:
            # epsilon = 0 means "exact" everywhere in the stack.
            approximation = None
        if approximation is not None and kernel == "vector":
            raise ValueError(
                "approximation runs on the python engine (pruning needs the "
                "edge representation mid-build); kernel='vector' is unsupported"
            )
        if reorder is not None and not isinstance(reorder, ReorderConfig):
            reorder = ReorderConfig.from_value(reorder)
        if reorder is not None and not reorder.enabled:
            # A disabled config means "fixed order" everywhere in the stack.
            reorder = None
        if reorder is not None and kernel == "vector":
            raise ValueError(
                "reordering runs on the python engine (sifting needs the "
                "edge representation mid-build); kernel='vector' is unsupported"
            )
        if node_limit is not None and node_limit < 1:
            raise ValueError(f"node_limit must be >= 1, got {node_limit}")
        self.package = package if package is not None else DDPackage(scheme=scheme)
        self.kernel = kernel
        self.use_fast_paths = use_fast_paths
        self.track_peak = track_peak
        #: Run the compile pipeline (:mod:`repro.compile`) on every input
        #: circuit before simulation.  The rewrite is exactly equivalent;
        #: disable for apples-to-apples benchmarking of the raw circuit.
        self.optimize = optimize
        #: Garbage-collect the package when the unique table exceeds this
        #: many nodes (0 disables).  Long iterative circuits (Grover)
        #: otherwise retain every intermediate state ever built.
        self.auto_compact_threshold = auto_compact_threshold
        #: Optional telemetry session activated for the duration of every
        #: run (when ``None`` the simulator still honours a session that
        #: an outer caller — e.g. ``simulate_and_sample`` — activated).
        self.telemetry = telemetry
        #: Optional :class:`~repro.dd.approximation.ApproximationConfig`;
        #: when enabled, :meth:`run` interleaves pruning rounds with gate
        #: application and records the fidelity bound in :attr:`stats`.
        self.approximation = approximation
        #: Build-time node-count ceiling.  Exceeding it raises
        #: :class:`MemoryError` *during* the build (checked every
        #: ``NODE_LIMIT_CHECK_INTERVAL`` gates and at the end) so callers
        #: like the BuildScheduler can degrade before the peak lands.
        self.node_limit = node_limit
        #: Optional :class:`~repro.dd.reorder.ReorderConfig`; when
        #: enabled, :meth:`run` derives an initial qubit order from
        #: circuit connectivity (``static``) and/or interleaves sifting
        #: rounds with gate application (``dynamic``), recording the
        #: final level-to-qubit permutation in :attr:`stats`.
        self.reorder = reorder
        self._stats = SimulationStats()

    @property
    def stats(self) -> SimulationStats:
        """Statistics from the most recent :meth:`run`."""
        return self._stats

    def run(self, circuit: QuantumCircuit, initial_state: int = 0) -> VectorDD:
        """Simulate ``circuit`` from ``|initial_state⟩`` into a VectorDD.

        Measurements and barriers are skipped; the returned DD represents
        the full final state, ready for weak simulation.
        """
        with _telemetry.activate(self.telemetry):
            return self._run_traced(circuit, initial_state)

    def resolved_kernel(self) -> str:
        """The engine a :meth:`run` will use: ``"vector"`` or ``"python"``.

        ``"auto"`` resolves to the vector kernel under the L2 scheme
        (the batched sweeps replay L2 normalisation) and to the python
        reference otherwise.  Approximation and reordering always
        resolve to python: pruning and sifting need the edge
        representation mid-build.
        """
        if self.approximation is not None or self.reorder is not None:
            return "python"
        if self.kernel == "auto":
            scheme = getattr(self.package, "scheme", None)
            return "vector" if scheme is NormalizationScheme.L2 else "python"
        return self.kernel

    def _run_traced(self, circuit: QuantumCircuit, initial_state: int) -> VectorDD:
        """The :meth:`run` body, executed under the active telemetry (if any)."""
        package = self.package
        compile_stats: dict = {}
        if self.optimize:
            circuit, rewrite = optimize_circuit(
                circuit, tolerance=package.tolerance
            )
            compile_stats = rewrite.to_dict()
        if self.resolved_kernel() == "vector":
            return self._run_kernel(circuit, initial_state, compile_stats)
        reorder = self.reorder
        # ``initial_order[l]`` = original qubit at level ``l`` after the
        # static relabel; ``dyn_perm`` tracks dynamic sifting on top of
        # it (in relabelled space).  The composition lands in stats.
        initial_order = tuple(range(circuit.num_qubits))
        if reorder is not None and reorder.static:
            from ..compile import apply_initial_order

            with _telemetry.span("reorder.layout") as layout_span:
                circuit, initial_order = apply_initial_order(circuit)
                layout_span.set_attr(
                    "identity", is_identity_permutation(initial_order)
                )
        dyn_perm = list(range(circuit.num_qubits))
        sift_budget = reorder.budget if reorder is not None else 0
        applier = GateApplier(
            package, circuit.num_qubits, use_fast_paths=self.use_fast_paths
        )
        if not is_identity_permutation(initial_order) and initial_state:
            # Level l now holds original qubit initial_order[l], so the
            # initial basis index must be permuted into level space.
            initial_state = unpermute_index(
                initial_state, invert_permutation(initial_order)
            )
        state = package.basis_state(circuit.num_qubits, initial_state)
        self._stats = SimulationStats(num_qubits=circuit.num_qubits)
        self._stats.compile_stats = compile_stats
        approximator = (
            Approximator(
                self.approximation, circuit.num_operations, package=package
            )
            if self.approximation is not None
            else None
        )
        peak = package.node_count(state) if self.track_peak else 0
        # Single hot-path hook: the per-gate span and probe code run only
        # when a session is active; the disabled path is the plain loop.
        session = _telemetry.active()
        build_span = (
            session.span("build", num_qubits=circuit.num_qubits, backend="dd")
            if session is not None
            else _telemetry.NULL_SPAN
        )
        # ``qubit_to_level`` redirects gates onto the current dynamic
        # order; ``None`` while the order is untouched (the common case).
        qubit_to_level: Optional[list] = None
        with build_span:
            for instruction in circuit:
                if isinstance(instruction, (Measurement, Barrier)):
                    continue
                if qubit_to_level is not None:
                    instruction = permute_instruction(
                        instruction, qubit_to_level
                    )
                if session is not None:
                    with session.span("apply", gate=_gate_label(instruction)):
                        state = applier.apply(state, instruction)
                else:
                    state = applier.apply(state, instruction)
                self._stats.applied_operations += 1
                applied = self._stats.applied_operations
                if self.track_peak:
                    peak = max(peak, package.node_count(state))
                if approximator is not None and approximator.due(applied):
                    state = self._approx_round(
                        approximator, state, circuit.num_qubits, session
                    )
                if (
                    reorder is not None
                    and reorder.dynamic
                    and sift_budget > 0
                    and applied % reorder.interval == 0
                    and package.node_count(state) >= reorder.min_nodes
                ):
                    result = sift(
                        package,
                        state,
                        circuit.num_qubits,
                        budget=sift_budget,
                        level_to_qubit=dyn_perm,
                    )
                    state = result.edge
                    sift_budget -= result.swaps_attempted
                    if result.swaps_attempted:
                        self._stats.reorder_rounds += 1
                        self._stats.reorder_swaps += result.swaps_attempted
                        self._stats.reorder_swaps_kept += result.swaps_kept
                    if result.changed:
                        dyn_perm[:] = result.level_to_qubit
                        qubit_to_level = list(invert_permutation(dyn_perm))
                if (
                    self.node_limit is not None
                    and applied % NODE_LIMIT_CHECK_INTERVAL == 0
                    and package.node_count(state) > self.node_limit
                ):
                    raise MemoryError(
                        f"DD grew to {package.node_count(state)} nodes after "
                        f"{applied} gates, over the limit of {self.node_limit}"
                    )
                if session is not None and session.prober.due(applied):
                    session.prober.record(
                        session.tracer.clock(),
                        applied,
                        state_nodes=package.node_count(state),
                        unique_nodes=len(package.unique_table),
                    )
                if (
                    self.auto_compact_threshold
                    and len(package.unique_table) > self.auto_compact_threshold
                ):
                    state = package.compact([state])[0]
                    applier = GateApplier(
                        package, circuit.num_qubits, use_fast_paths=self.use_fast_paths
                    )
            if approximator is not None:
                state = self._approx_round(
                    approximator, state, circuit.num_qubits, session, final=True
                )
        self._stats.strategy_counts = applier.strategy_counts()
        self._stats.diagonal_term_applications = applier.diagonal_term_applications
        self._stats.final_dd_nodes = package.node_count(state)
        self._stats.peak_dd_nodes = max(peak, self._stats.final_dd_nodes)
        if approximator is not None:
            self._stats.approx_rounds = approximator.rounds
            self._stats.approx_removed_edges = approximator.removed_edges
            self._stats.approx_removed_mass = approximator.removed_mass
            self._stats.fidelity_bound = approximator.fidelity_bound
        if reorder is not None:
            # Compose static layout and dynamic sifting into one map
            # from final DD level to original circuit qubit.
            self._stats.level_to_qubit = tuple(
                initial_order[label] for label in dyn_perm
            )
        if (
            self.node_limit is not None
            and self._stats.final_dd_nodes > self.node_limit
        ):
            raise MemoryError(
                f"final DD has {self._stats.final_dd_nodes} nodes, over the "
                f"limit of {self.node_limit}"
            )
        if session is not None:
            build_span.set_attr("applied_operations", self._stats.applied_operations)
            build_span.set_attr("final_dd_nodes", self._stats.final_dd_nodes)
            if approximator is not None:
                build_span.set_attr("fidelity_bound", approximator.fidelity_bound)
            if reorder is not None:
                build_span.set_attr("reorder_rounds", self._stats.reorder_rounds)
                build_span.set_attr(
                    "reorder_swaps_kept", self._stats.reorder_swaps_kept
                )
            session.registry.record_build(self._stats)
            session.registry.record_dd_tables(package.stats())
        return VectorDD(package, state, circuit.num_qubits)

    def _approx_round(
        self,
        approximator: Approximator,
        edge,
        num_qubits: int,
        session,
        final: bool = False,
    ):
        """Run one pruning round on a raw root edge, under a span."""
        wrapped = VectorDD(self.package, edge, num_qubits)
        if session is None:
            return approximator.prune(wrapped, final=final).edge
        rounds_before = approximator.rounds
        with session.span("approx.prune", final=final) as span:
            pruned = approximator.prune(wrapped, final=final)
            span.set_attr("pruned", approximator.rounds > rounds_before)
            result = approximator.last_result
            if approximator.rounds > rounds_before and result is not None:
                span.set_attr("removed_edges", result.removed_edges)
                span.set_attr("removed_mass", result.removed_mass)
                span.set_attr("nodes_before", result.nodes_before)
                span.set_attr("nodes_after", result.nodes_after)
        return pruned.edge

    def _run_kernel(
        self, circuit: QuantumCircuit, initial_state: int, compile_stats: dict
    ) -> VectorDD:
        """The :meth:`run` body on the structure-of-arrays kernel.

        Mirrors the python loop: same spans, probes, peak tracking, and
        auto-compaction (on the SoA row count rather than the unique
        table, which the kernel only populates at conversion time).
        """
        from ..perf import kernel as kernel_mod

        package = self.package
        applier = GateApplier(
            package, circuit.num_qubits, use_fast_paths=self.use_fast_paths
        )
        # The threshold is read through the module attribute so tests can
        # force the batched (or scalar) level sweep for identity checks.
        engine = kernel_mod.KernelEngine(
            package,
            circuit.num_qubits,
            applier,
            batch_min_width=kernel_mod.DEFAULT_BATCH_MIN_WIDTH,
        )
        engine.load(package.basis_state(circuit.num_qubits, initial_state))
        self._stats = SimulationStats(num_qubits=circuit.num_qubits)
        self._stats.compile_stats = compile_stats
        self._stats.kernel = "vector"
        peak = engine.state.node_count() if self.track_peak else 0
        session = _telemetry.active()
        build_span = (
            session.span("build", num_qubits=circuit.num_qubits, backend="dd")
            if session is not None
            else _telemetry.NULL_SPAN
        )
        # The kernel span must be created *inside* the build span's
        # context: the tracer assigns parents at creation time.
        with build_span, (
            session.span("build.kernel", engine="vector")
            if session is not None
            else _telemetry.NULL_SPAN
        ) as kernel_span:
            for instruction in circuit:
                if isinstance(instruction, (Measurement, Barrier)):
                    continue
                if session is not None:
                    with session.span("apply", gate=_gate_label(instruction)):
                        engine.apply(instruction)
                else:
                    engine.apply(instruction)
                self._stats.applied_operations += 1
                if (
                    self.node_limit is not None
                    and self._stats.applied_operations
                    % NODE_LIMIT_CHECK_INTERVAL
                    == 0
                    and engine.state.node_count() > self.node_limit
                ):
                    raise MemoryError(
                        f"DD grew to {engine.state.node_count()} nodes after "
                        f"{self._stats.applied_operations} gates, over the "
                        f"limit of {self.node_limit}"
                    )
                if session is not None and session.prober.due(
                    self._stats.applied_operations
                ):
                    session.prober.record(
                        session.tracer.clock(),
                        self._stats.applied_operations,
                        state_nodes=engine.state.node_count(),
                        unique_nodes=engine.state.total_rows(),
                    )
                if self.track_peak:
                    peak = max(peak, engine.state.node_count())
                if (
                    self.auto_compact_threshold
                    and engine.state.total_rows() > self.auto_compact_threshold
                ):
                    engine.compact()
        state = engine.to_edge()
        self._stats.strategy_counts = applier.strategy_counts()
        self._stats.diagonal_term_applications = applier.diagonal_term_applications
        self._stats.kernel_fallbacks = engine.stats.fallbacks
        self._stats.kernel_levels = engine.stats.levels_processed
        self._stats.kernel_batched_levels = engine.stats.batched_levels
        self._stats.final_dd_nodes = package.node_count(state)
        self._stats.peak_dd_nodes = max(peak, self._stats.final_dd_nodes)
        if (
            self.node_limit is not None
            and self._stats.final_dd_nodes > self.node_limit
        ):
            raise MemoryError(
                f"final DD has {self._stats.final_dd_nodes} nodes, over the "
                f"limit of {self.node_limit}"
            )
        if session is not None:
            build_span.set_attr("applied_operations", self._stats.applied_operations)
            build_span.set_attr("final_dd_nodes", self._stats.final_dd_nodes)
            kernel_span.set_attr("fallbacks", engine.stats.fallbacks)
            kernel_span.set_attr("levels", engine.stats.levels_processed)
            session.registry.counter("kernel.levels").inc(
                engine.stats.levels_processed
            )
            session.registry.record_build(self._stats)
            session.registry.record_dd_tables(package.stats())
        return VectorDD(package, state, circuit.num_qubits)

    def run_iterated(
        self,
        init: QuantumCircuit,
        iteration: QuantumCircuit,
        repetitions: int,
        initial_state: int = 0,
    ) -> VectorDD:
        """Simulate ``init`` then ``repetitions`` x ``iteration``.

        The iteration sub-circuit is compiled into a single matrix DD once
        and applied by matrix-vector multiplication — the strategy of the
        paper's substrate ([12], [18]) for iterative algorithms such as
        Grover.  Because the *same* operator nodes are reused every round,
        the state's decision diagram stays canonical across hundreds of
        iterations; gate-by-gate application would let floating-point
        noise in the transient states defeat node sharing.
        """
        from ..dd.matrix_dd import circuit_dd

        if self.reorder is not None:
            raise ValueError(
                "reordering is unsupported for iterated simulation: the "
                "compiled iteration operator assumes a fixed qubit order"
            )
        if init.num_qubits != iteration.num_qubits:
            raise ValueError("init and iteration must act on the same register")
        package = self.package
        state = self.run(init, initial_state=initial_state)
        with _telemetry.activate(self.telemetry):
            if self.optimize:
                iteration, _ = optimize_circuit(iteration, tolerance=package.tolerance)
            operator = circuit_dd(package, iteration)
            edge = state.edge
            applied = self._stats.applied_operations
            session = _telemetry.active()
            with _telemetry.span("iterate", repetitions=repetitions):
                for index in range(repetitions):
                    edge = package.mat_vec(operator, edge)
                    applied += iteration.num_operations
                    if session is not None and session.prober.due(index + 1):
                        session.prober.record(
                            session.tracer.clock(),
                            applied,
                            state_nodes=package.node_count(edge),
                            unique_nodes=len(package.unique_table),
                        )
                    if (
                        self.auto_compact_threshold
                        and len(package.unique_table) > self.auto_compact_threshold
                    ):
                        edge, operator = package.compact([edge, operator])
        self._stats.applied_operations = applied
        # Hundreds of operator applications accumulate float drift in the
        # overall norm (each multiplication renormalises structure, not
        # the global factor); restore <psi|psi> = 1 exactly.
        norm_sq = package.norm_squared(edge)
        if abs(norm_sq - 1.0) > 1e-12 and norm_sq > 0.0:
            edge = package.scale(edge, 1.0 / math.sqrt(norm_sq))
        self._stats.final_dd_nodes = package.node_count(edge)
        return VectorDD(package, edge, init.num_qubits)

    def run_from_dd(self, circuit: QuantumCircuit, state: VectorDD) -> VectorDD:
        """Continue simulation from an existing DD state."""
        applier = GateApplier(
            self.package, circuit.num_qubits, use_fast_paths=self.use_fast_paths
        )
        edge = state.edge
        self._stats = SimulationStats(num_qubits=circuit.num_qubits)
        for op in circuit.operations:
            edge = applier.apply(edge, op)
            self._stats.applied_operations += 1
        self._stats.strategy_counts = applier.strategy_counts()
        self._stats.diagonal_term_applications = applier.diagonal_term_applications
        self._stats.final_dd_nodes = self.package.node_count(edge)
        return VectorDD(self.package, edge, circuit.num_qubits)
