"""Dense NumPy statevector simulator.

The baseline substrate of the paper's Section III: strong simulation that
materialises all ``2^n`` amplitudes.  Gate application reshapes the state
into an ``n``-axis tensor, slices out the control-satisfied block, and
contracts the gate over the target axes — no ``2^n x 2^n`` matrices are
ever built.

The simulator enforces a configurable memory cap and raises
:class:`~repro.exceptions.MemoryOutError` when the dense vector would not
fit.  This reproduces the "MO" failure mode of Table I.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import telemetry as _telemetry
from ..circuit.circuit import QuantumCircuit
from ..circuit.operations import Barrier, DiagonalOperation, Measurement, Operation
from ..compile import optimize_circuit
from ..dd.stats import vector_bytes
from ..exceptions import MemoryOutError, SimulationError
from .base import SimulationStats, StrongSimulator

__all__ = ["StatevectorSimulator", "apply_operation_dense", "DEFAULT_MEMORY_CAP"]

#: Default cap on the dense state vector: 4 GiB (2^28 amplitudes).  The
#: paper's machine had 32 GiB + 32 GiB swap and hit MO at 2^32; scaled
#: catalogs reproduce the MO pattern against this smaller cap.
DEFAULT_MEMORY_CAP = 4 * 1024**3


def apply_operation_dense(state: np.ndarray, op, num_qubits: int) -> None:
    """Apply ``op`` to ``state`` in place.

    ``state`` must be a contiguous complex array of ``2^num_qubits``
    entries; qubit ``k`` is bit ``k`` of the flat index (so axis
    ``num_qubits - 1 - k`` of the tensor view).  Accepts both plain
    operations and coalesced :class:`DiagonalOperation` blocks (applied
    as one in-place phase multiplication per term).
    """
    if op.max_qubit >= num_qubits:
        raise SimulationError(
            f"operation touches qubit {op.max_qubit} outside the register"
        )
    if isinstance(op, DiagonalOperation):
        view = state.reshape((2,) * num_qubits)
        for term in op.terms:
            slicer: list = [slice(None)] * num_qubits
            for qubit in term.ones:
                slicer[num_qubits - 1 - qubit] = 1
            for qubit in term.zeros:
                slicer[num_qubits - 1 - qubit] = 0
            view[tuple(slicer)] *= np.exp(1j * term.angle)
        return
    view = state.reshape((2,) * num_qubits)
    slicer: list = [slice(None)] * num_qubits
    for control in op.controls:
        slicer[num_qubits - 1 - control] = 1
    for control in op.neg_controls:
        slicer[num_qubits - 1 - control] = 0
    block = view[tuple(slicer)]

    excluded = op.controls | op.neg_controls
    remaining = [q for q in range(num_qubits - 1, -1, -1) if q not in excluded]
    target_axes = [remaining.index(t) for t in op.targets]

    k = op.gate.num_qubits
    gate_tensor = op.gate.array.reshape((2,) * (2 * k))
    # Column axis of gate bit b sits at position 2k-1-b; contract it with
    # the block axis of targets[b].
    col_axes = [2 * k - 1 - b for b in range(k)]
    contracted = np.tensordot(gate_tensor, block, axes=(col_axes, target_axes))
    # Result axes: row bits (k-1 .. 0) then the non-target axes of block in
    # their original relative order.  Move the row axes back to where the
    # target axes were.
    non_target_axes = [a for a in range(len(remaining)) if a not in target_axes]
    perm = [0] * len(remaining)
    for b, axis in enumerate(target_axes):
        perm[axis] = k - 1 - b
    for j, axis in enumerate(non_target_axes):
        perm[axis] = k + j
    view[tuple(slicer)] = np.transpose(contracted, perm)


class StatevectorSimulator(StrongSimulator):
    """Array-based strong simulator with memory-out detection."""

    def __init__(
        self,
        memory_cap_bytes: int = DEFAULT_MEMORY_CAP,
        optimize: bool = True,
        telemetry: "_telemetry.Telemetry" = None,
    ):
        self.memory_cap_bytes = memory_cap_bytes
        #: Run the compile pipeline on input circuits (see ``repro.compile``).
        self.optimize = optimize
        #: Optional telemetry session activated for the duration of runs.
        self.telemetry = telemetry
        self._stats = SimulationStats()

    @property
    def stats(self) -> SimulationStats:
        """Statistics from the most recent :meth:`run`."""
        return self._stats

    def initial_state(self, num_qubits: int, index: int = 0) -> np.ndarray:
        """Allocate ``|index⟩`` on ``num_qubits`` qubits (cap-checked)."""
        needed = vector_bytes(num_qubits)
        if needed > self.memory_cap_bytes:
            raise MemoryOutError(needed, self.memory_cap_bytes)
        state = np.zeros(2**num_qubits, dtype=np.complex128)
        if not 0 <= index < state.size:
            raise SimulationError(f"initial basis state {index} out of range")
        state[index] = 1.0
        return state

    def run(self, circuit: QuantumCircuit, initial_state: int = 0) -> np.ndarray:
        """Strong-simulate ``circuit`` and return the final state vector.

        Measurement instructions are ignored (weak simulation samples from
        the returned amplitudes instead); barriers are skipped.
        """
        with _telemetry.activate(self.telemetry):
            compile_stats: dict = {}
            if self.optimize:
                circuit, rewrite = optimize_circuit(circuit)
                compile_stats = rewrite.to_dict()
            state = self.initial_state(circuit.num_qubits, initial_state)
            self._stats = SimulationStats(num_qubits=circuit.num_qubits)
            self._stats.compile_stats = compile_stats
            # Single hot-path hook: per-gate spans only when a session is
            # active; the disabled loop is the plain pre-telemetry path.
            session = _telemetry.active()
            build_span = (
                session.span(
                    "build", num_qubits=circuit.num_qubits, backend="vector"
                )
                if session is not None
                else _telemetry.NULL_SPAN
            )
            with build_span:
                for instruction in circuit:
                    if isinstance(instruction, (Measurement, Barrier)):
                        continue
                    if session is not None:
                        gate = getattr(instruction, "gate", None)
                        label = gate.name if gate is not None else "diagonal"
                        with session.span("apply", gate=label):
                            apply_operation_dense(
                                state, instruction, circuit.num_qubits
                            )
                    else:
                        apply_operation_dense(state, instruction, circuit.num_qubits)
                    self._stats.applied_operations += 1
                    if session is not None and session.prober.due(
                        self._stats.applied_operations
                    ):
                        session.prober.record(
                            session.tracer.clock(),
                            self._stats.applied_operations,
                        )
            if session is not None:
                build_span.set_attr(
                    "applied_operations", self._stats.applied_operations
                )
                session.registry.record_build(self._stats)
            return state

    def run_from_vector(
        self, circuit: QuantumCircuit, state: Sequence[complex]
    ) -> np.ndarray:
        """Strong-simulate starting from an arbitrary state vector."""
        array = np.array(state, dtype=np.complex128)
        if array.size != 2**circuit.num_qubits:
            raise SimulationError("initial vector length does not match circuit")
        self._stats = SimulationStats(num_qubits=circuit.num_qubits)
        for op in circuit.operations:
            apply_operation_dense(array, op, circuit.num_qubits)
            self._stats.applied_operations += 1
        return array
