"""Stabilizer (CHP) simulation: weak simulation of Clifford circuits.

The paper's related work on weak simulation ([14] Van den Nest, [15]
Bravyi et al.) is rooted in the Gottesman-Knill theorem: circuits built
from {H, S, CNOT} (plus Paulis and measurement) can be weakly simulated
in polynomial time with the stabilizer formalism, no amplitudes at all.
This module implements the Aaronson-Gottesman CHP tableau so the
library covers that corner of the weak-simulation landscape, and the
test suite cross-validates it against the decision-diagram sampler on
random Clifford circuits — two entirely different algorithms, one
output distribution.

Tableau layout (Aaronson & Gottesman, PRA 70, 052328):
rows 0..n-1 are destabilizers, rows n..2n-1 stabilizers; row ``i`` has
binary vectors ``x[i]``, ``z[i]`` and sign bit ``r[i]`` representing the
Pauli ``(-1)^r  prod_q X_q^{x[i][q]} Z_q^{z[i][q]}``.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.operations import Barrier, Measurement, Operation
from ..core.results import SampleResult
from ..exceptions import SimulationError

__all__ = ["StabilizerState", "StabilizerSimulator", "CLIFFORD_GATES"]

#: Gate names the stabilizer backend accepts (single controls on x/z
#: make CX/CZ; ``swap`` is expanded to three CX).
CLIFFORD_GATES = {"id", "x", "y", "z", "h", "s", "sdg", "swap"}


def _as_rng(seed: Union[int, np.random.Generator, None]) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class StabilizerState:
    """An n-qubit stabilizer state as a CHP tableau."""

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise SimulationError("need at least one qubit")
        self.num_qubits = num_qubits
        n = num_qubits
        self.x = np.zeros((2 * n, n), dtype=np.uint8)
        self.z = np.zeros((2 * n, n), dtype=np.uint8)
        self.r = np.zeros(2 * n, dtype=np.uint8)
        # |0...0>: destabilizer i = X_i, stabilizer n+i = Z_i.
        for i in range(n):
            self.x[i, i] = 1
            self.z[n + i, i] = 1

    def copy(self) -> "StabilizerState":
        """Independent copy of the tableau."""
        clone = StabilizerState.__new__(StabilizerState)
        clone.num_qubits = self.num_qubits
        clone.x = self.x.copy()
        clone.z = self.z.copy()
        clone.r = self.r.copy()
        return clone

    # ------------------------------------------------------------------
    # Clifford gates
    # ------------------------------------------------------------------

    def apply_h(self, q: int) -> None:
        """Hadamard on ``qubit`` (X<->Z column swap)."""
        self.r ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = self.z[:, q].copy(), self.x[:, q].copy()

    def apply_s(self, q: int) -> None:
        """Phase gate S on ``qubit``."""
        self.r ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def apply_sdg(self, q: int) -> None:
        # S† = S Z.
        """S-dagger on ``qubit`` (S applied three times)."""
        self.apply_z(q)
        self.apply_s(q)

    def apply_x(self, q: int) -> None:
        """Pauli-X on ``qubit`` (phase flip on Z columns)."""
        self.r ^= self.z[:, q]

    def apply_z(self, q: int) -> None:
        """Pauli-Z on ``qubit`` (phase flip on X columns)."""
        self.r ^= self.x[:, q]

    def apply_y(self, q: int) -> None:
        """Pauli-Y on ``qubit`` (Z then X with phase)."""
        self.r ^= self.x[:, q] ^ self.z[:, q]

    def apply_cx(self, control: int, target: int) -> None:
        """CNOT from ``control`` to ``target`` (tableau update)."""
        self.r ^= (
            self.x[:, control]
            & self.z[:, target]
            & (self.x[:, target] ^ self.z[:, control] ^ 1)
        )
        self.x[:, target] ^= self.x[:, control]
        self.z[:, control] ^= self.z[:, target]

    def apply_cz(self, control: int, target: int) -> None:
        # CZ = (I x H) CX (I x H).
        """Controlled-Z via H-conjugated CNOT."""
        self.apply_h(target)
        self.apply_cx(control, target)
        self.apply_h(target)

    def apply_swap(self, a: int, b: int) -> None:
        """Exchange two qubits (three CNOTs)."""
        self.apply_cx(a, b)
        self.apply_cx(b, a)
        self.apply_cx(a, b)

    # ------------------------------------------------------------------
    # Row arithmetic (phase-tracking Pauli multiplication)
    # ------------------------------------------------------------------

    @staticmethod
    def _g(x1, z1, x2, z2):
        """Phase exponent contribution of multiplying single-qubit Paulis."""
        # Vectorised version of the CHP g function; returns values in
        # {-1, 0, 1} per qubit.  Case split on the first Pauli:
        # I -> 0;  Y -> z2 - x2;  X -> z2*(2*x2 - 1);  Z -> x2*(1 - 2*z2).
        x1 = x1.astype(np.int16)
        z1 = z1.astype(np.int16)
        x2 = x2.astype(np.int16)
        z2 = z2.astype(np.int16)
        is_y = x1 * z1
        is_x = x1 * (1 - z1)
        is_z = (1 - x1) * z1
        return (
            is_y * (z2 - x2)
            + is_x * z2 * (2 * x2 - 1)
            + is_z * x2 * (1 - 2 * z2)
        )

    def _rowsum(self, h: int, i: int) -> None:
        """Row h := row h * row i (Pauli product with sign tracking)."""
        phase = 2 * int(self.r[h]) + 2 * int(self.r[i]) + int(
            self._g(self.x[i], self.z[i], self.x[h], self.z[h]).sum()
        )
        self.r[h] = 1 if phase % 4 == 2 else 0
        self.x[h] ^= self.x[i]
        self.z[h] ^= self.z[i]

    def _rowsum_into(self, scratch_x, scratch_z, scratch_r, i: int):
        phase = 2 * int(scratch_r) + 2 * int(self.r[i]) + int(
            self._g(self.x[i], self.z[i], scratch_x, scratch_z).sum()
        )
        scratch_r = 1 if phase % 4 == 2 else 0
        scratch_x ^= self.x[i]
        scratch_z ^= self.z[i]
        return scratch_x, scratch_z, scratch_r

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def measure(self, q: int, rng: np.random.Generator) -> int:
        """Measure qubit ``q`` in the computational basis (collapsing)."""
        n = self.num_qubits
        # Random outcome iff some stabilizer anticommutes with Z_q.
        candidates = np.nonzero(self.x[n:, q])[0]
        if candidates.size:
            p = int(candidates[0]) + n
            for h in range(2 * n):
                if h != p and self.x[h, q]:
                    self._rowsum(h, p)
            # Destabilizer p-n becomes the old stabilizer p.
            self.x[p - n] = self.x[p]
            self.z[p - n] = self.z[p]
            self.r[p - n] = self.r[p]
            outcome = int(rng.integers(2))
            self.x[p] = 0
            self.z[p] = 0
            self.z[p, q] = 1
            self.r[p] = outcome
            return outcome
        # Deterministic: accumulate the destabilizer combination.
        scratch_x = np.zeros(n, dtype=np.uint8)
        scratch_z = np.zeros(n, dtype=np.uint8)
        scratch_r = 0
        for i in range(n):
            if self.x[i, q]:
                scratch_x, scratch_z, scratch_r = self._rowsum_into(
                    scratch_x, scratch_z, scratch_r, i + n
                )
        return int(scratch_r)

    def measure_all(self, rng: np.random.Generator) -> int:
        """Measure every qubit (most significant first); returns bits."""
        result = 0
        for q in range(self.num_qubits - 1, -1, -1):
            result |= self.measure(q, rng) << q
        return result

    def sample(
        self, shots: int, rng: Union[int, np.random.Generator, None] = None
    ) -> np.ndarray:
        """Draw ``shots`` full-register samples (tableau copied per shot)."""
        rng = _as_rng(rng)
        out = np.empty(shots, dtype=np.int64)
        for shot in range(shots):
            out[shot] = self.copy().measure_all(rng)
        return out

    def sample_result(
        self, shots: int, rng: Union[int, np.random.Generator, None] = None
    ) -> SampleResult:
        """Draw ``shots`` measurement records as a ``SampleResult``."""
        samples = self.sample(shots, rng)
        return SampleResult.from_samples(self.num_qubits, samples, method="stabilizer")

    def expectation_z(self, q: int) -> Optional[int]:
        """⟨Z_q⟩ when deterministic (+1/-1), else None (it is 0)."""
        n = self.num_qubits
        if np.any(self.x[n:, q]):
            return None
        scratch_x = np.zeros(n, dtype=np.uint8)
        scratch_z = np.zeros(n, dtype=np.uint8)
        scratch_r = 0
        for i in range(n):
            if self.x[i, q]:
                scratch_x, scratch_z, scratch_r = self._rowsum_into(
                    scratch_x, scratch_z, scratch_r, i + n
                )
        return -1 if scratch_r else 1


class StabilizerSimulator:
    """Runs Clifford circuits on the CHP tableau."""

    def __init__(self) -> None:
        self._mid_circuit_rng: Optional[np.random.Generator] = None

    def run(
        self,
        circuit: QuantumCircuit,
        seed: Union[int, np.random.Generator, None] = None,
    ) -> StabilizerState:
        """Simulate ``circuit``; terminal measurements are skipped (use
        :meth:`StabilizerState.sample`), mid-circuit measurement raises.
        """
        state = StabilizerState(circuit.num_qubits)
        instructions = list(circuit)
        for position, instruction in enumerate(instructions):
            if isinstance(instruction, Barrier):
                continue
            if isinstance(instruction, Measurement):
                remaining = instructions[position + 1 :]
                if any(isinstance(i, Operation) for i in remaining):
                    raise SimulationError(
                        "mid-circuit measurement is not supported by the "
                        "stabilizer backend; use ShotExecutor"
                    )
                continue
            self._apply(state, instruction)
        return state

    @staticmethod
    def _apply(state: StabilizerState, op: Operation) -> None:
        name = op.gate.name
        if op.neg_controls:
            raise SimulationError("anti-controls are not Clifford-representable here")
        if op.controls:
            if len(op.controls) != 1:
                raise SimulationError("multi-controlled gates are not Clifford")
            control = next(iter(op.controls))
            target = op.targets[0]
            if name == "x":
                state.apply_cx(control, target)
            elif name == "z":
                state.apply_cz(control, target)
            elif name == "y":
                # CY = S_t CX S_t^dagger.
                state.apply_sdg(target)
                state.apply_cx(control, target)
                state.apply_s(target)
            else:
                raise SimulationError(f"controlled {name!r} is not Clifford")
            return
        if name not in CLIFFORD_GATES:
            raise SimulationError(f"gate {name!r} is outside the Clifford set")
        if name == "id":
            return
        if name == "swap":
            state.apply_swap(op.targets[0], op.targets[1])
            return
        getattr(state, f"apply_{name}")(op.targets[0])
