"""Strong simulation into a density-matrix decision diagram.

The noisy sibling of :class:`~repro.simulators.dd_simulator.DDSimulator`:
gates conjugate the state (``U rho U†``), and after every gate the
configured :class:`~repro.noise.NoiseModel` channels are applied to each
qubit the gate touched.  Mid-circuit measurements become non-selective
dephasing (measure-and-forget), which is exactly their effect on the
ensemble state.  The result is a :class:`~repro.dd.density.DensityMatrixDD`
whose diagonal feeds the compiled sampling path
(:func:`compile_noisy_sampler`).

Two deliberate contract differences from the pure-state simulator:

* **The compile pipeline is bypassed.**  Gate-attached noise binds to
  the circuit *as written* — fusing or cancelling gates would move the
  noise locations and change the physics — so the optimizer's
  equivalence guarantee does not carry over and it is not run.
* **Python engine only.**  Superoperator application needs the edge
  representation (two matrix products plus Kraus sums per gate); the
  SoA vector kernel does not apply.  Mixed-state DDs can approach the
  square of the pure-state DD size, so this path is priced accordingly
  (see ``docs/noise.md``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import telemetry as _telemetry
from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import Gate
from ..circuit.operations import (
    Barrier,
    DiagonalOperation,
    Measurement,
    Operation,
)
from ..dd.density import (
    DensityMatrixDD,
    apply_kraus_dds,
    apply_superoperator,
    matrix_adjoint,
)
from ..dd.matrix_dd import OperationDDCache, operation_dd
from ..dd.node import Edge
from ..dd.package import DDPackage
from ..noise.channels import KrausChannel, dephasing
from ..noise.model import NoiseModel
from ..perf.compiled_dd import CompiledDD, compile_probability_edge
from .base import SimulationStats, StrongSimulator

__all__ = [
    "DENSITY_RELATIVE_TOLERANCE",
    "DENSITY_TOLERANCE",
    "DensityMatrixSimulator",
    "compile_noisy_sampler",
]

#: Cadence (applied gates) for the build-time ``node_limit`` guard.
#: Unlike the pure path's every-25-gates cadence, density builds check
#: after *every* gate: a mixed-state gate application costs two matrix
#: multiplies plus a Kraus sum — orders of magnitude more than the
#: O(nodes) count probe — and short circuits (a 20-qubit GHZ ladder is
#: ~21 gates) would otherwise never hit a sparser check before the
#: runaway build finishes or exhausts the machine.
NODE_LIMIT_CHECK_INTERVAL = 1

#: Weight-interning tolerance for the default density package — tighter
#: than the vector path's ``DEFAULT_TOLERANCE`` (1e-10).  A density
#: matrix squares the dynamic range of the underlying amplitudes, so
#: left-most normalisation routinely tops an edge with a coherence-scale
#: weight (|w| ~ 1e-8 for a 1e-8-scale rotation).  At that magnitude the
#: complex table's *absolute* snap window is a multi-percent *relative*
#: error, and the snapped top weight multiplies the O(1) normalised
#: subtree below it — the differential fuzzer's nearzero family turned a
#: 1e-10 snap into a 1e-2 trace error.  1e-14 keeps the snap relative
#: error below 1e-5 even for 1e-9-scale weights at the cost of ~15% more
#: nodes on mixed-state builds.
DENSITY_TOLERANCE = 1e-14

#: Relative interning guard for the default density package.  The
#: absolute window alone is not enough: a 1e-10-scale rotation tops an
#: edge with a ~5e-11 weight, and snapping *that* within a 1e-14
#: absolute window is still a ~2e-4 relative perturbation which the
#: normalised O(1) subtree below it amplifies into an O(1e-3)
#: distribution error (and a visibly non-unit trace).  With the relative
#: guard, nonzero weights only unify when they agree to ~1e-12 of their
#: own magnitude — same-value-different-route weights (equal to ~1e-16
#: relative) still intern, so node sharing is preserved, while snaps can
#: no longer move any weight by more than 1e-12 of itself.  Truly tiny
#: weights (under the absolute window) still snap to exact zero, which
#: drops the branch rather than rescaling it.
DENSITY_RELATIVE_TOLERANCE = 1e-12


def _freeze(matrix) -> Tuple[Tuple[complex, ...], ...]:
    """Nested-tuple form for ad-hoc (Kraus/readout) gate matrices."""
    return tuple(tuple(complex(value) for value in row) for row in matrix)


class DensityMatrixSimulator(StrongSimulator):
    """Density-matrix strong simulator with per-gate Kraus noise.

    ``noise`` accepts anything :meth:`repro.noise.NoiseModel.from_value`
    does; a disabled model (all strengths zero) is normalised to ``None``
    and the run is exact (but still in density form — use
    :class:`~repro.simulators.dd_simulator.DDSimulator` for exact *pure*
    simulation, which is strictly cheaper).  ``node_limit`` raises
    :class:`MemoryError` mid-build when the density DD outgrows it, the
    same degradation hook the BuildScheduler uses for the pure path.
    """

    def __init__(
        self,
        noise: Optional[NoiseModel] = None,
        package: Optional[DDPackage] = None,
        track_peak: bool = False,
        auto_compact_threshold: int = 400_000,
        telemetry: Optional["_telemetry.Telemetry"] = None,
        node_limit: Optional[int] = None,
    ):
        noise = NoiseModel.from_value(noise)
        if noise is not None and not noise.enabled:
            noise = None
        if node_limit is not None and node_limit < 1:
            raise ValueError(f"node_limit must be >= 1, got {node_limit}")
        self.noise = noise
        self.package = (
            package
            if package is not None
            else DDPackage(
                tolerance=DENSITY_TOLERANCE,
                relative_tolerance=DENSITY_RELATIVE_TOLERANCE,
            )
        )
        self.track_peak = track_peak
        self.auto_compact_threshold = auto_compact_threshold
        self.telemetry = telemetry
        self.node_limit = node_limit
        self._stats = SimulationStats()

    @property
    def stats(self) -> SimulationStats:
        """Statistics from the most recent :meth:`run`."""
        return self._stats

    def run(
        self, circuit: QuantumCircuit, initial_state: int = 0
    ) -> DensityMatrixDD:
        """Evolve ``|initial_state⟩⟨initial_state|`` through ``circuit``."""
        with _telemetry.activate(self.telemetry):
            return self._run_traced(circuit, initial_state)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _kraus_pairs(
        self,
        channel: KrausChannel,
        qubit: int,
        num_qubits: int,
        cache: Dict[Tuple[KrausChannel, int], List[Tuple[Edge, Edge]]],
    ) -> List[Tuple[Edge, Edge]]:
        """The ``(K, K†)`` operator-DD pairs of ``channel`` on ``qubit``."""
        key = (channel, qubit)
        pairs = cache.get(key)
        if pairs is None:
            pairs = []
            for index, kraus in enumerate(channel.arrays):
                gate = Gate(
                    name=f"{channel.name}[{index}]",
                    num_qubits=1,
                    matrix=_freeze(kraus),
                )
                operator = operation_dd(
                    self.package, Operation(gate, (qubit,)), num_qubits
                )
                pairs.append((operator, matrix_adjoint(self.package, operator)))
            cache[key] = pairs
        return pairs

    def _apply_channels(
        self,
        rho: Edge,
        channels,
        qubits,
        num_qubits: int,
        kraus_cache,
        session,
    ) -> Edge:
        """Apply each channel to each qubit, with telemetry accounting."""
        for channel in channels:
            for qubit in qubits:
                pairs = self._kraus_pairs(
                    channel, qubit, num_qubits, kraus_cache
                )
                if session is not None:
                    with session.span(
                        "noise.channel", channel=channel.name, qubit=qubit
                    ):
                        rho = apply_kraus_dds(self.package, rho, pairs)
                else:
                    rho = apply_kraus_dds(self.package, rho, pairs)
                self._stats.noise_channel_applications += 1
                self._stats.noise_kraus_applications += len(pairs)
        return rho

    def _run_traced(
        self, circuit: QuantumCircuit, initial_state: int
    ) -> DensityMatrixDD:
        package = self.package
        num_qubits = circuit.num_qubits
        rho = DensityMatrixDD.basis_state(
            package, num_qubits, initial_state
        ).edge
        self._stats = SimulationStats(num_qubits=num_qubits)
        channels = self.noise.gate_channels() if self.noise is not None else ()
        dephase = dephasing()
        op_cache = OperationDDCache(package, num_qubits)
        adjoint_cache: Dict[Tuple[int, complex], Edge] = {}
        kraus_cache: Dict[Tuple[KrausChannel, int], List[Tuple[Edge, Edge]]] = {}
        peak = package.node_count(rho) if self.track_peak else 0
        session = _telemetry.active()
        build_span = (
            session.span("build", num_qubits=num_qubits, backend="density")
            if session is not None
            else _telemetry.NULL_SPAN
        )
        with build_span:
            for instruction in circuit:
                if isinstance(instruction, Barrier):
                    continue
                if isinstance(instruction, Measurement):
                    measured = (
                        range(num_qubits)
                        if instruction.measures_all
                        else instruction.qubits
                    )
                    rho = self._apply_channels(
                        rho, (dephase,), measured, num_qubits,
                        kraus_cache, session,
                    )
                    continue
                lowered = (
                    instruction.to_operations()
                    if isinstance(instruction, DiagonalOperation)
                    else (instruction,)
                )
                for op in lowered:
                    operator = op_cache.get(op)
                    adjoint_key = (operator.node.index, operator.weight)
                    adjoint = adjoint_cache.get(adjoint_key)
                    if adjoint is None:
                        adjoint = matrix_adjoint(package, operator)
                        adjoint_cache[adjoint_key] = adjoint
                    if session is not None:
                        with session.span("apply", gate=op.gate.name):
                            rho = apply_superoperator(
                                package, rho, operator, adjoint
                            )
                    else:
                        rho = apply_superoperator(
                            package, rho, operator, adjoint
                        )
                    self._stats.applied_operations += 1
                    rho = self._apply_channels(
                        rho, channels, sorted(op.qubits), num_qubits,
                        kraus_cache, session,
                    )
                if self.track_peak:
                    peak = max(peak, package.node_count(rho))
                applied = self._stats.applied_operations
                if (
                    self.node_limit is not None
                    and applied % NODE_LIMIT_CHECK_INTERVAL == 0
                    and package.node_count(rho) > self.node_limit
                ):
                    raise MemoryError(
                        f"density DD grew to {package.node_count(rho)} nodes "
                        f"after {applied} gates, over the limit of "
                        f"{self.node_limit}"
                    )
                if session is not None and session.prober.due(applied):
                    session.prober.record(
                        session.tracer.clock(),
                        applied,
                        state_nodes=package.node_count(rho),
                        unique_nodes=len(package.unique_table),
                    )
                if (
                    self.auto_compact_threshold
                    and len(package.unique_table) > self.auto_compact_threshold
                ):
                    rho = package.compact([rho])[0]
                    # Cached operator DDs reference pre-compaction nodes;
                    # rebuild them lazily against the fresh unique table.
                    op_cache = OperationDDCache(package, num_qubits)
                    adjoint_cache.clear()
                    kraus_cache.clear()
            self._stats.final_dd_nodes = package.node_count(rho)
            self._stats.peak_dd_nodes = max(peak, self._stats.final_dd_nodes)
            if (
                self.node_limit is not None
                and self._stats.final_dd_nodes > self.node_limit
            ):
                raise MemoryError(
                    f"final density DD has {self._stats.final_dd_nodes} "
                    f"nodes, over the limit of {self.node_limit}"
                )
            if session is not None:
                build_span.set_attr(
                    "applied_operations", self._stats.applied_operations
                )
                build_span.set_attr(
                    "final_dd_nodes", self._stats.final_dd_nodes
                )
                build_span.set_attr(
                    "noise_channel_applications",
                    self._stats.noise_channel_applications,
                )
                session.registry.counter("noise.builds").inc()
                session.registry.counter("noise.channel_applications").inc(
                    self._stats.noise_channel_applications
                )
                session.registry.counter("noise.kraus_applications").inc(
                    self._stats.noise_kraus_applications
                )
                session.registry.record_build(self._stats)
                session.registry.record_dd_tables(package.stats())
        return DensityMatrixDD(package, rho, num_qubits)


def compile_noisy_sampler(
    rho: DensityMatrixDD, noise: Optional[NoiseModel] = None
) -> CompiledDD:
    """Flatten a density matrix into the standard sampling artifact.

    Extracts the diagonal as a probability vector DD, folds in the
    readout confusion matrix (one :func:`~repro.dd.matrix_dd.operation_dd`
    application per qubit) when the model has readout error, and
    compiles with
    :func:`~repro.perf.compiled_dd.compile_probability_edge`.  The
    result is a bona fide :class:`~repro.perf.compiled_dd.CompiledDD`:
    it serialises, caches, and samples exactly like an exact artifact.
    """
    package = rho.package
    num_qubits = rho.num_qubits
    session = _telemetry.active()
    span = (
        session.span("noise.diagonal", num_qubits=num_qubits)
        if session is not None
        else _telemetry.NULL_SPAN
    )
    with span:
        diagonal = rho.diagonal()
        noise = NoiseModel.from_value(noise)
        if noise is not None and noise.has_readout_error:
            gate = Gate(
                name="readout",
                num_qubits=1,
                matrix=_freeze(noise.readout_matrix()),
            )
            for qubit in range(num_qubits):
                confusion = operation_dd(
                    package, Operation(gate, (qubit,)), num_qubits
                )
                diagonal = package.mat_vec(confusion, diagonal)
        compiled = compile_probability_edge(diagonal, num_qubits)
        if session is not None:
            span.set_attr("compiled_nodes", compiled.size)
            session.registry.counter("noise.samplers_compiled").inc()
    return compiled
