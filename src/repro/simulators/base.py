"""Common interface for strong simulators.

A strong simulator consumes a circuit and produces a representation of the
final quantum state (dense array or decision diagram).  Weak simulation
(:mod:`repro.core`) then samples from that representation — the two-stage
flow of the paper's Fig. 2.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..circuit.circuit import QuantumCircuit

__all__ = ["StrongSimulator", "SimulationStats"]


@dataclass
class SimulationStats:
    """Bookkeeping collected during one strong-simulation run."""

    num_qubits: int = 0
    applied_operations: int = 0
    peak_dd_nodes: int = 0
    final_dd_nodes: int = 0
    strategy_counts: Dict[str, int] = field(default_factory=dict)
    #: Subspace-phase traversals performed inside coalesced diagonal
    #: blocks (each block counts once in ``strategy_counts["diagonal"]``).
    diagonal_term_applications: int = 0
    #: Rewrite counters from the compile pipeline (empty when the run
    #: was not optimised); see :meth:`repro.compile.CompileStats.to_dict`.
    compile_stats: Dict = field(default_factory=dict)
    #: Which strong-simulation engine executed the run: ``"python"``
    #: (reference per-node recursion) or ``"vector"`` (the SoA kernel,
    #: :mod:`repro.perf.kernel`).  Both are bit-identical.
    kernel: str = "python"
    #: Edge⇄SoA round trips through the python engine for operations the
    #: kernel does not cover (zero on python runs).
    kernel_fallbacks: int = 0
    #: SoA rows rebuilt by kernel gate application (zero on python runs).
    kernel_levels: int = 0
    #: NumPy level sweeps among those rebuilds (wide levels only).
    kernel_batched_levels: int = 0
    #: Approximation accounting (all zero / ``None`` on exact runs); see
    #: :mod:`repro.dd.approximation`.  ``fidelity_bound`` is the rigorous
    #: lower bound on the fidelity of the final approximated state.
    approx_rounds: int = 0
    approx_removed_edges: int = 0
    approx_removed_mass: float = 0.0
    fidelity_bound: Optional[float] = None
    #: Reordering accounting (all zero / ``None`` on fixed-order runs);
    #: see :mod:`repro.dd.reorder`.  ``level_to_qubit[l]`` is the
    #: original circuit qubit occupying DD level ``l`` at the end of the
    #: build — samples drawn from the DD are in level space and must be
    #: unpermuted through it before being reported.
    reorder_rounds: int = 0
    reorder_swaps: int = 0
    reorder_swaps_kept: int = 0
    level_to_qubit: Optional[Tuple[int, ...]] = None
    #: Noise accounting (all zero on noiseless runs); see
    #: :mod:`repro.noise` and :class:`repro.simulators.DensityMatrixSimulator`.
    #: ``noise_channel_applications`` counts single-qubit channel
    #: applications (including measurement dephasing);
    #: ``noise_kraus_applications`` counts the individual ``K rho K†``
    #: conjugations inside them.
    noise_channel_applications: int = 0
    noise_kraus_applications: int = 0


class StrongSimulator(abc.ABC):
    """Base class for circuit-to-state simulators."""

    @abc.abstractmethod
    def run(self, circuit: QuantumCircuit, initial_state: int = 0):
        """Simulate ``circuit`` from basis state ``initial_state``.

        Returns the backend-specific state representation (a NumPy array
        for the dense simulator, a :class:`~repro.dd.vector_dd.VectorDD`
        for the DD simulator).
        """

    @property
    @abc.abstractmethod
    def stats(self) -> SimulationStats:
        """Statistics from the most recent :meth:`run`."""
