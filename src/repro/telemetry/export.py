"""JSONL trace export and parsing.

A trace file is newline-delimited JSON with four record types, keyed by
``"type"``:

``header``
    First line.  ``format`` (``"repro-trace"``), ``version``,
    ``epoch_unix`` (Unix time of the session start), ``pid``.
``span``
    One finished span: ``id``, ``parent`` (``null`` for roots),
    ``name``, ``start``/``end`` (seconds since session start),
    ``duration``, ``attrs`` (free-form object).
``probe``
    One resource sample: ``t`` (same clock), ``ops_applied``,
    ``state_nodes``, ``unique_nodes``, ``rss_bytes`` (all nullable).
``metrics``
    Last line.  ``snapshot`` holds ``Registry.snapshot()`` verbatim
    (``counters``/``gauges``/``histograms``).

The format is append-only by design — a crashed run still leaves a
parseable prefix — and versioned so readers can reject drift.
:func:`read_trace` is the one parser both the report tool and the tests
use.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, IO, Iterable, List, Union

__all__ = ["TRACE_FORMAT", "TRACE_VERSION", "trace_records", "write_trace", "read_trace"]

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1


def trace_records(tracer, registry, prober=None) -> List[Dict[str, Any]]:
    """All trace records — header, spans, probes, metrics — in file order."""
    records: List[Dict[str, Any]] = [
        {
            "type": "header",
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "epoch_unix": round(tracer.epoch_unix, 6),
            "pid": os.getpid(),
        }
    ]
    spans = sorted(tracer.spans, key=lambda s: (s.start, s.span_id))
    records.extend(span.to_dict() for span in spans)
    if prober is not None:
        records.extend(prober.records)
    records.append({"type": "metrics", "snapshot": registry.snapshot()})
    return records


def write_trace(destination: Union[str, IO[str]], tracer, registry, prober=None) -> int:
    """Write a complete JSONL trace; returns the number of records.

    ``destination`` is a path or an open text handle (``"-"`` is *not*
    special-cased here — the CLIs handle stdout themselves).
    """
    records = trace_records(tracer, registry, prober)
    if hasattr(destination, "write"):
        _write_lines(destination, records)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            _write_lines(handle, records)
    return len(records)


def _write_lines(handle: IO[str], records: Iterable[Dict[str, Any]]) -> None:
    """Serialise records one per line (compact separators)."""
    for record in records:
        handle.write(json.dumps(record, separators=(",", ":")) + "\n")


def read_trace(source: Union[str, IO[str]]) -> Dict[str, Any]:
    """Parse a JSONL trace into ``{header, spans, probes, metrics}``.

    Raises ``ValueError`` on format/version drift or malformed lines, so
    schema regressions fail loudly in tests and in the report tool.
    """
    if hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    header: Dict[str, Any] = {}
    spans: List[Dict[str, Any]] = []
    probes: List[Dict[str, Any]] = []
    metrics: Dict[str, Any] = {}
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"line {number}: not valid JSON ({error})") from error
        kind = record.get("type")
        if kind == "header":
            if record.get("format") != TRACE_FORMAT:
                raise ValueError(f"line {number}: format must be {TRACE_FORMAT!r}")
            if record.get("version") != TRACE_VERSION:
                raise ValueError(
                    f"line {number}: unsupported trace version "
                    f"{record.get('version')!r} (expected {TRACE_VERSION})"
                )
            header = record
        elif kind == "span":
            spans.append(record)
        elif kind == "probe":
            probes.append(record)
        elif kind == "metrics":
            metrics = record.get("snapshot", {})
        else:
            raise ValueError(f"line {number}: unknown record type {kind!r}")
    if not header:
        raise ValueError("trace has no header record")
    return {"header": header, "spans": spans, "probes": probes, "metrics": metrics}
