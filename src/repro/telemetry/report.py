"""Trace summarizer: ``python -m repro.telemetry.report trace.jsonl``.

Reads a JSONL trace (see :mod:`repro.telemetry.export`) and renders

* a **per-phase breakdown** — root spans grouped by name with count,
  wall seconds, and share of the traced wall time, plus a coverage line
  (how much of the wall the phases explain),
* a **hot-spans table** — the most expensive nested span groups (e.g.
  per-gate ``apply`` spans grouped by gate name),
* a **DD growth summary** from the probe records (final/peak node
  counts, peak RSS),
* the headline **metrics** from the final snapshot.

All functions take parsed trace dicts so the example scripts and tests
can render in-memory sessions without touching the filesystem.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

from .export import read_trace

__all__ = [
    "phase_breakdown",
    "hot_spans",
    "format_phase_table",
    "render_report",
    "main",
]


def _wall_seconds(spans: List[Dict[str, Any]]) -> float:
    """End of the last span minus start of the first (0.0 when empty)."""
    timed = [s for s in spans if s.get("end") is not None]
    if not timed:
        return 0.0
    return max(s["end"] for s in timed) - min(s["start"] for s in timed)


def phase_breakdown(trace: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Root spans grouped by name: count, seconds, share of wall time.

    Returns one row per phase name, ordered by first occurrence, with a
    ``percent`` key relative to the traced wall time.
    """
    spans = trace["spans"]
    wall = _wall_seconds(spans)
    rows: List[Dict[str, Any]] = []
    by_name: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        if span.get("parent") is not None:
            continue
        row = by_name.get(span["name"])
        if row is None:
            row = by_name[span["name"]] = {
                "phase": span["name"],
                "count": 0,
                "seconds": 0.0,
            }
            rows.append(row)
        row["count"] += 1
        row["seconds"] += span.get("duration", 0.0)
    for row in rows:
        row["seconds"] = round(row["seconds"], 6)
        row["percent"] = round(100.0 * row["seconds"] / wall, 1) if wall else 0.0
    return rows


def hot_spans(trace: Dict[str, Any], top: int = 10) -> List[Dict[str, Any]]:
    """Nested spans grouped by (name, gate attr), heaviest first."""
    groups: Dict[str, Dict[str, Any]] = {}
    for span in trace["spans"]:
        if span.get("parent") is None:
            continue
        gate = (span.get("attrs") or {}).get("gate")
        label = f"{span['name']}[{gate}]" if gate else span["name"]
        row = groups.setdefault(label, {"span": label, "count": 0, "seconds": 0.0})
        row["count"] += 1
        row["seconds"] += span.get("duration", 0.0)
    ordered = sorted(groups.values(), key=lambda r: r["seconds"], reverse=True)
    for row in ordered:
        row["seconds"] = round(row["seconds"], 6)
    return ordered[:top]


def format_phase_table(trace: Dict[str, Any]) -> str:
    """The per-phase breakdown as an aligned text table with coverage."""
    rows = phase_breakdown(trace)
    wall = _wall_seconds(trace["spans"])
    lines = [f"{'phase':<28} {'count':>7} {'seconds':>12} {'% wall':>8}"]
    covered = 0.0
    for row in rows:
        covered += row["seconds"]
        lines.append(
            f"{row['phase']:<28} {row['count']:>7} "
            f"{row['seconds']:>12.6f} {row['percent']:>7.1f}%"
        )
    coverage = 100.0 * covered / wall if wall else 0.0
    lines.append(
        f"{'(traced wall)':<28} {'':>7} {wall:>12.6f} "
        f"{'':>3}cov {coverage:.1f}%"
    )
    return "\n".join(lines)


def _format_bytes(value: Optional[int]) -> str:
    """Human-readable byte count (``'?'`` when unknown)."""
    if value is None:
        return "?"
    size = float(value)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f} {unit}"
        size /= 1024
    return f"{size:.1f} GiB"  # pragma: no cover - unreachable


def _probe_summary(trace: Dict[str, Any]) -> List[str]:
    """DD growth and RSS lines from the probe records (may be empty)."""
    probes = trace["probes"]
    if not probes:
        return []
    node_values = [p["state_nodes"] for p in probes if p.get("state_nodes") is not None]
    rss_values = [p["rss_bytes"] for p in probes if p.get("rss_bytes") is not None]
    lines = [f"probes: {len(probes)} samples"]
    if node_values:
        lines.append(
            f"  state DD nodes: first {node_values[0]}, "
            f"peak {max(node_values)}, last {node_values[-1]}"
        )
    if rss_values:
        lines.append(f"  peak RSS: {_format_bytes(max(rss_values))}")
    return lines


def _metrics_summary(trace: Dict[str, Any], limit: int = 12) -> List[str]:
    """The most informative counters/gauges from the final snapshot."""
    snapshot = trace.get("metrics") or {}
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    lines: List[str] = []
    if counters:
        lines.append("counters:")
        for name, value in list(sorted(counters.items()))[:limit]:
            lines.append(f"  {name} = {value}")
        if len(counters) > limit:
            lines.append(f"  ... {len(counters) - limit} more")
    interesting = [
        name
        for name in sorted(gauges)
        if name.endswith("_hit_rate") or name.startswith("build.")
    ]
    if interesting:
        lines.append("gauges:")
        for name in interesting[:limit]:
            lines.append(f"  {name} = {gauges[name]}")
    return lines


def render_report(trace: Dict[str, Any], top: int = 10) -> str:
    """The full text report for one parsed trace."""
    lines = [
        f"trace: {len(trace['spans'])} spans, {len(trace['probes'])} probes "
        f"(format {trace['header']['format']} v{trace['header']['version']})",
        "",
        format_phase_table(trace),
    ]
    hot = hot_spans(trace, top=top)
    if hot:
        lines.append("")
        lines.append(f"{'hot spans':<34} {'count':>7} {'seconds':>12}")
        for row in hot:
            lines.append(f"{row['span']:<34} {row['count']:>7} {row['seconds']:>12.6f}")
    probe_lines = _probe_summary(trace)
    if probe_lines:
        lines.append("")
        lines.extend(probe_lines)
    metric_lines = _metrics_summary(trace)
    if metric_lines:
        lines.append("")
        lines.extend(metric_lines)
    return "\n".join(lines)


def _build_parser() -> argparse.ArgumentParser:
    """The report CLI's argument parser (importable for the docs checker)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report",
        description="Summarise a repro JSONL telemetry trace: per-phase "
        "time breakdown, hot spans, DD growth, metrics.",
    )
    parser.add_argument("trace_file", help="path to the JSONL trace")
    parser.add_argument(
        "--top", type=int, default=10, help="rows in the hot-spans table"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: parse a trace file and print the report."""
    args = _build_parser().parse_args(argv)
    try:
        trace = read_trace(args.trace_file)
    except (OSError, ValueError) as error:
        print(f"error: cannot read trace: {error}", file=sys.stderr)
        return 2
    print(render_report(trace, top=args.top))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
