"""Periodic resource probes: DD growth and process RSS over time.

Strong simulation's memory driver is the size of the *intermediate*
decision diagrams, not the final state (see ``DDSimulator.track_peak``).
A probe is one sample of that trajectory: taken every ``interval``
applied operations, it records the live state's node count, the unique
table's total size, and the process resident set.  Probes land in the
JSONL trace as ``{"type": "probe", ...}`` records, so
``repro.telemetry.report`` can show DD-growth-over-time next to the
phase breakdown.

RSS is read without dependencies: ``/proc/self/statm`` where available
(Linux), ``resource.getrusage`` otherwise, ``None`` when neither works.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

__all__ = ["read_rss_bytes", "Prober", "DEFAULT_PROBE_INTERVAL"]

#: Operations applied between two probes (keeps the O(size) node count
#: traversal off the per-gate path even with telemetry enabled).
DEFAULT_PROBE_INTERVAL = 25

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def read_rss_bytes() -> Optional[int]:
    """Resident set size of this process in bytes (``None`` if unknown)."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        # ru_maxrss is KiB on Linux, bytes on macOS; normalise to bytes.
        factor = 1 if usage.ru_maxrss > 1 << 32 else 1024
        return int(usage.ru_maxrss) * factor
    except (ImportError, ValueError, OSError):  # pragma: no cover - exotic OS
        return None


class Prober:
    """Collects probe records on a fixed applied-operation cadence."""

    def __init__(self, interval: int = DEFAULT_PROBE_INTERVAL):
        if interval < 1:
            raise ValueError("probe interval must be positive")
        self.interval = interval
        #: Probe records in capture order (JSONL-ready dicts).
        self.records: List[Dict[str, Any]] = []

    def due(self, ops_applied: int) -> bool:
        """Whether a probe should fire after ``ops_applied`` operations."""
        return ops_applied % self.interval == 0

    def record(
        self,
        clock: float,
        ops_applied: int,
        state_nodes: Optional[int] = None,
        unique_nodes: Optional[int] = None,
        **extra: Any,
    ) -> Dict[str, Any]:
        """Capture one probe at tracer time ``clock``; returns the record."""
        probe: Dict[str, Any] = {
            "type": "probe",
            "t": round(clock, 9),
            "ops_applied": ops_applied,
            "state_nodes": state_nodes,
            "unique_nodes": unique_nodes,
            "rss_bytes": read_rss_bytes(),
        }
        probe.update(extra)
        self.records.append(probe)
        return probe

    def peak(self, key: str) -> Optional[int]:
        """Largest non-``None`` value of ``key`` across records."""
        values = [r.get(key) for r in self.records if r.get(key) is not None]
        return max(values) if values else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Prober(interval={self.interval}, records={len(self.records)})"
