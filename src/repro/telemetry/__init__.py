"""Unified telemetry: trace spans, metrics, probes, JSONL export.

One :class:`Telemetry` object is one observability session — a
:class:`~repro.telemetry.trace.Tracer` for hierarchical timing spans, a
:class:`~repro.telemetry.metrics.Registry` unifying every counter the
simulator stack produces, and a :class:`~repro.telemetry.probes.Prober`
sampling DD size and process RSS during strong simulation.

Telemetry is **off by default** and activated explicitly::

    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    result = simulate_and_sample(circuit, 10_000, telemetry=telemetry)
    telemetry.export("trace.jsonl")
    print(telemetry.registry.snapshot()["counters"])

Instrumented code does not thread the session through every call —
inside an :meth:`Telemetry.activate` block the session is installed as
the process-wide active session, and hot paths reach it through
:func:`active` / :func:`span`, which cost a single ``None`` check when
telemetry is off.  Render a saved trace with::

    python -m repro.telemetry.report trace.jsonl

See ``docs/observability.md`` for the span/metric naming scheme and the
JSONL format.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator, Optional, Union

from .export import TRACE_FORMAT, TRACE_VERSION, read_trace, trace_records, write_trace
from .metrics import Counter, Gauge, Histogram, Registry
from .probes import DEFAULT_PROBE_INTERVAL, Prober, read_rss_bytes
from .trace import NULL_SPAN, NullSpan, Span, Tracer

__all__ = [
    "Telemetry",
    "active",
    "enabled",
    "span",
    "activate",
    "Tracer",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "Registry",
    "Counter",
    "Gauge",
    "Histogram",
    "Prober",
    "read_rss_bytes",
    "DEFAULT_PROBE_INTERVAL",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "read_trace",
    "trace_records",
    "write_trace",
]


class Telemetry:
    """One observability session: tracer + registry + prober.

    ``probe_interval`` sets how many applied operations pass between two
    DD/RSS probes during strong simulation (the probe itself costs an
    O(DD size) traversal, so the cadence matters).
    """

    def __init__(self, probe_interval: int = DEFAULT_PROBE_INTERVAL):
        self.tracer = Tracer()
        self.registry = Registry()
        self.prober = Prober(interval=probe_interval)

    def span(self, _name: str, **attrs: Any) -> Span:
        """Open a span on this session's tracer (see :meth:`Tracer.span`)."""
        return self.tracer.span(_name, **attrs)

    @contextlib.contextmanager
    def activate(self) -> Iterator["Telemetry"]:
        """Install this session as the process-wide active session.

        Re-entrant: nested activations (a CLI activating around a
        simulator that also received ``telemetry=``) restore the
        previous session on exit.
        """
        global _ACTIVE
        previous = _ACTIVE
        _ACTIVE = self
        try:
            yield self
        finally:
            _ACTIVE = previous

    def export(self, destination: Union[str, Any]) -> int:
        """Write the session as a JSONL trace; returns the record count."""
        return write_trace(destination, self.tracer, self.registry, self.prober)

    def records(self) -> list:
        """The session's trace records without writing them anywhere."""
        return trace_records(self.tracer, self.registry, self.prober)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Telemetry(spans={len(self.tracer.spans)}, "
            f"probes={len(self.prober.records)})"
        )


#: The process-wide active session (``None`` = telemetry off).
_ACTIVE: Optional[Telemetry] = None


def active() -> Optional[Telemetry]:
    """The currently active session, or ``None`` when telemetry is off."""
    return _ACTIVE


def enabled() -> bool:
    """Whether a telemetry session is currently active."""
    return _ACTIVE is not None


def span(_name: str, **attrs: Any) -> Union[Span, NullSpan]:
    """Open a span on the active session — or a shared no-op when off.

    This is the hot-path hook: with telemetry off it costs one ``None``
    check and returns the singleton :data:`NULL_SPAN`.
    """
    telemetry = _ACTIVE
    if telemetry is None:
        return NULL_SPAN
    return telemetry.tracer.span(_name, **attrs)


def activate(telemetry: Optional[Telemetry]):
    """Context manager activating ``telemetry`` (no-op for ``None``).

    The convenience form instrumented entry points use::

        with telemetry_module.activate(maybe_session):
            ...
    """
    if telemetry is None:
        return contextlib.nullcontext()
    return telemetry.activate()
