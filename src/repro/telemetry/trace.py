"""Hierarchical trace spans with wall-clock timing.

A :class:`Span` measures one named phase of work — ``build``, ``apply``,
``sampling`` — with a start/end offset on a monotonic clock and free-form
attributes (gate name, shot count, …).  Spans nest: the :class:`Tracer`
keeps a stack, so a span opened while another is active records that
span as its parent, and the exported trace reconstructs the full tree.

Design constraints (see ``docs/observability.md``):

* **Zero dependencies** — standard library only.
* **Cheap when disabled** — callers that might run without telemetry go
  through :func:`repro.telemetry.span`, which returns the shared
  :data:`NULL_SPAN` after a single ``None`` check; no allocation, no
  clock read.
* **Monotonic time** — offsets come from :func:`time.perf_counter`
  relative to the tracer's epoch, so spans are immune to wall-clock
  adjustments; the epoch itself is recorded once as Unix time for
  cross-referencing with logs.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

__all__ = ["Span", "NullSpan", "NULL_SPAN", "Tracer"]


class Span:
    """One timed, attributed phase of work; usable as a context manager."""

    __slots__ = ("tracer", "name", "span_id", "parent_id", "start", "end", "attrs")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attrs: Dict[str, Any],
    ):
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.start: float = 0.0
        self.end: Optional[float] = None

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set_attr(self, key: str, value: Any) -> None:
        """Attach or overwrite one attribute on the span."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self.start = self.tracer.clock()
        self.tracer._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = self.tracer.clock()
        stack = self.tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # pragma: no cover - defensive unwinding
            stack.remove(self)
        self.tracer.spans.append(self)

    def to_dict(self) -> Dict[str, Any]:
        """The span as one JSONL record (see ``docs/observability.md``)."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": round(self.start, 9),
            "end": round(self.end, 9) if self.end is not None else None,
            "duration": round(self.duration, 9),
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, id={self.span_id}, duration={self.duration:.6f})"


class NullSpan:
    """The do-nothing span returned when telemetry is inactive.

    Supports the same surface as :class:`Span` (context manager plus
    :meth:`set_attr`) so instrumented code needs no branching beyond the
    initial enabled check.
    """

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set_attr(self, key: str, value: Any) -> None:
        """Discard the attribute (telemetry is inactive)."""


#: Shared no-op span: one instance for the whole process.
NULL_SPAN = NullSpan()


class Tracer:
    """Collects finished spans for one telemetry session."""

    def __init__(self):
        #: Unix time of the session start (for log correlation only).
        self.epoch_unix = time.time()
        self._origin = time.perf_counter()
        #: Finished spans in completion order (children before parents).
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1

    def clock(self) -> float:
        """Monotonic seconds since the tracer was created."""
        return time.perf_counter() - self._origin

    def span(self, _name: str, **attrs: Any) -> Span:
        """Open a new span; nest it under the currently active span.

        The span name is positional-style (``_name``) so any attribute
        keyword — including ``name=`` — stays usable.
        """
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(self, _name, self._next_id, parent, attrs)
        self._next_id += 1
        return span

    @property
    def wall_seconds(self) -> float:
        """Span of recorded activity: last span end minus first start."""
        if not self.spans:
            return 0.0
        start = min(s.start for s in self.spans)
        end = max(s.end for s in self.spans if s.end is not None)
        return max(0.0, end - start)

    def roots(self) -> List[Span]:
        """Finished spans that have no parent, in start order."""
        return sorted(
            (s for s in self.spans if s.parent_id is None), key=lambda s: s.start
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(spans={len(self.spans)}, open={len(self._stack)})"
