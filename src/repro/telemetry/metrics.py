"""Metrics registry: counters, gauges, histograms, one snapshot.

Before this layer existed, the repo's counters were smeared across
``SimulationStats`` (compile passes, applier strategies),
``DDPackage.stats()`` (table sizes and hit rates), the compiled-DD cache,
and ad-hoc dicts in the bench harnesses.  The :class:`Registry` gives
them one home: instrumented subsystems *absorb* their counters into it
at natural boundaries (end of a build, end of a sampling call) and
``Registry.snapshot()`` returns everything as one plain dict, ready for
JSONL export or assertion in tests.

Metric names are dotted paths grouped by subsystem::

    compile.cancel.cancelled_pairs      rewrite-pass counters
    apply.strategy.diagonal             GateApplier routing counts
    dd.matvec_hit_rate                  ComputeTable hit rates
    sampler.compiled_cache.reuses       CompiledDD cache traffic
    shots.branches                      ShotExecutor outcome branches

The full naming scheme is documented in ``docs/observability.md``.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Union

__all__ = ["Counter", "Gauge", "Histogram", "Registry"]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time numeric measurement (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        """Record the current value of the measured quantity."""
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Streaming summary of observed values: count/total/min/max/mean.

    Deliberately bucket-free — the consumers here want "how many, how
    big, how spread" for quantities like per-segment DD sizes, not
    quantile estimation; raw distributions belong in the trace.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Union[int, float, None] = None
        self.max: Union[int, float, None] = None

    def observe(self, value: Union[int, float]) -> None:
        """Fold one observation into the summary."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def summary(self) -> Dict[str, Union[int, float, None]]:
        """The histogram as a plain dict (snapshot shape)."""
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "total": round(self.total, 9),
            "min": self.min,
            "max": self.max,
            "mean": round(mean, 9),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram({self.name!r}, count={self.count})"


class Registry:
    """Named metrics with get-or-create access and one-call snapshot."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get (or create) the counter called ``name``."""
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """Get (or create) the gauge called ``name``."""
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        """Get (or create) the histogram called ``name``."""
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # ------------------------------------------------------------------
    # Absorption of the pre-existing scattered counters
    # ------------------------------------------------------------------

    def record_build(self, stats: Any) -> None:
        """Absorb a ``SimulationStats`` (applied ops + applier strategy counts).

        Called by the simulators at the end of every run; ``stats`` is
        duck-typed so this module stays dependency-free.  Compile-pass
        counters are *not* read from here — the pipeline records them
        itself while it runs (:meth:`record_compile`), which avoids
        double counting.
        """
        self.counter("build.applied_operations").inc(stats.applied_operations)
        self.gauge("build.num_qubits").set(stats.num_qubits)
        self.gauge("build.final_dd_nodes").set(stats.final_dd_nodes)
        self.gauge("build.peak_dd_nodes").set(stats.peak_dd_nodes)
        for strategy, count in (stats.strategy_counts or {}).items():
            self.counter(f"apply.strategy.{strategy}").inc(count)
        self.counter("apply.diagonal_terms").inc(stats.diagonal_term_applications)
        # Approximation accounting (exact runs carry zeros / None).
        if getattr(stats, "approx_rounds", 0):
            self.counter("approx.rounds").inc(stats.approx_rounds)
            self.counter("approx.removed_edges").inc(stats.approx_removed_edges)
        fidelity_bound = getattr(stats, "fidelity_bound", None)
        if fidelity_bound is not None:
            self.gauge("approx.fidelity_bound").set(fidelity_bound)
            self.gauge("approx.removed_mass").set(stats.approx_removed_mass)

    def record_compile(self, compile_stats: Mapping[str, Any]) -> None:
        """Absorb compile-pipeline rewrite counters (``CompileStats.to_dict``)."""
        for key in ("input_operations", "output_operations", "operations_removed"):
            if key in compile_stats:
                self.counter(f"compile.{key}").inc(int(compile_stats[key]))
        if "iterations" in compile_stats:
            self.counter("compile.iterations").inc(int(compile_stats["iterations"]))
        for pass_name, counters in (compile_stats.get("passes") or {}).items():
            for key, value in counters.items():
                self.counter(f"compile.{pass_name}.{key}").inc(int(value))

    def record_dd_tables(self, package_stats: Mapping[str, Any]) -> None:
        """Absorb ``DDPackage.stats()`` (unique/compute-table traffic)."""
        for key, value in package_stats.items():
            self.gauge(f"dd.{key}").set(value)

    def record_compiled_cache(self, cache_stats: Mapping[str, Any]) -> None:
        """Absorb the CompiledDD cache counters (builds/reuses/evictions)."""
        for key, value in cache_stats.items():
            self.gauge(f"sampler.compiled_cache.{key}").set(value)

    def record_shots(self, executor_stats: Mapping[str, int]) -> None:
        """Absorb ShotExecutor branching counters (``ShotExecutor.stats``)."""
        for key, value in executor_stats.items():
            self.counter(f"shots.{key}").inc(int(value))

    def record_fuzz(self, fuzz_stats: Mapping[str, int]) -> None:
        """Absorb differential-fuzzing counters (``FuzzReport.stats()``)."""
        for key, value in fuzz_stats.items():
            self.counter(f"fuzz.{key}").inc(int(value))

    def record_service(self, service_stats: Mapping[str, Any]) -> None:
        """Absorb a ``SamplingService.stats()`` snapshot as gauges.

        The service's cumulative counters arrive as gauges (last snapshot
        wins) because the snapshot is already a running total — folding
        it into counters on every call would double count.  Nested
        sections (the store's own stats) flatten with a dotted prefix.
        The per-event ``service.*`` *counters* (cache hits, builds,
        request statuses) are incremented live by the service instead.
        """
        for key, value in service_stats.items():
            if isinstance(value, Mapping):
                for sub_key, sub_value in value.items():
                    self.gauge(f"service.{key}.{sub_key}").set(sub_value)
            else:
                self.gauge(f"service.{key}").set(value)

    def record_pool(self, pool_stats: Mapping[str, Any]) -> None:
        """Absorb a ``WorkerPool.stats()`` snapshot as gauges.

        Like :meth:`record_service`, the snapshot is already cumulative,
        so it lands as gauges.  Per-worker ``outstanding`` depths become
        indexed gauges; non-numeric sections (the per-worker stats
        lists) are skipped — the live ``service.pool.*`` counters and
        queue-depth gauges cover the per-event view.
        """
        for key, value in pool_stats.items():
            if key == "outstanding" and isinstance(value, (list, tuple)):
                for index, depth in enumerate(value):
                    self.gauge(
                        f"service.pool.queue_depth.worker{index}"
                    ).set(depth)
                continue
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self.gauge(f"service.pool.{key}").set(value)

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Everything the registry holds, as one JSON-ready dict."""
        return {
            "counters": {
                name: metric.value for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.value for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: metric.summary()
                for name, metric in sorted(self._histograms.items())
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Registry(counters={len(self._counters)}, gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )
