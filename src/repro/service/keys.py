"""Canonical cache keys for compiled sampling artifacts.

A persistent cache is only as sound as its key.  The key used by the
artifact store must change whenever *anything* that can change the
compiled flat arrays changes, and must be identical across processes for
semantically identical inputs.  Three layers feed it:

1. **The circuit** — :func:`circuit_fingerprint` hashes the exact
   instruction sequence: gate matrices bit-for-bit (``complex128``
   bytes, not names — a custom gate named ``h`` must not collide with
   Hadamard), target/control/anti-control wiring, diagonal phase blocks
   term by term, measurement and barrier placement (barriers fence the
   optimizer, so they can change the compiled circuit and hence the
   float-exact artifact).
2. **The build configuration** — normalisation scheme, optimizer on/off,
   initial state, and the approximation contract all change the produced
   DD.  An ε-approximated artifact must *never* be served for an exact
   request (or for a different ε), so an enabled
   :class:`~repro.dd.approximation.ApproximationConfig` is folded into
   the key; a disabled one (``epsilon = 0``) adds nothing, keeping every
   pre-existing exact key stable.
3. **The contract versions** — the package version and the
   :data:`~repro.perf.compiled_dd.ARTIFACT_VERSION` serialisation
   version, so upgrading the library invalidates old artifacts instead
   of misreading them (the version-mismatch tests in
   ``tests/test_service_store.py`` pin this behaviour).

Keys are hex SHA-256 digests — filesystem-safe, collision-resistant, and
stable across platforms and processes.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Optional

import numpy as np

from .. import __version__ as _package_version
from ..circuit.circuit import QuantumCircuit
from ..circuit.operations import (
    Barrier,
    DiagonalOperation,
    Measurement,
    Operation,
)
from ..dd.approximation import ApproximationConfig
from ..dd.normalization import NormalizationScheme
from ..dd.reorder import ReorderConfig
from ..exceptions import SamplingError
from ..noise.model import NoiseModel
from ..perf.compiled_dd import ARTIFACT_VERSION

__all__ = ["ARTIFACT_KEY_VERSION", "circuit_fingerprint", "cache_key"]

#: Bump when the fingerprint *encoding itself* changes (field order,
#: float representation, …); folded into every fingerprint.
ARTIFACT_KEY_VERSION = 1


def _hash_floats(hasher: "hashlib._Hash", values) -> None:
    """Feed IEEE-754 bytes — not reprs — so equality is bit-exact."""
    for value in values:
        hasher.update(struct.pack("<d", float(value)))


def _hash_qubits(hasher: "hashlib._Hash", label: bytes, qubits) -> None:
    hasher.update(label)
    ordered = sorted(int(q) for q in qubits)
    hasher.update(struct.pack("<i", len(ordered)))
    for qubit in ordered:
        hasher.update(struct.pack("<i", qubit))


def circuit_fingerprint(circuit: QuantumCircuit) -> str:
    """Canonical SHA-256 of a circuit's exact instruction sequence.

    Two circuits share a fingerprint iff they produce byte-identical
    simulation inputs: same register width, same instructions in the
    same order, with gates compared by their ``complex128`` matrices.
    Gate *names* and the circuit's display name are ignored.
    """
    hasher = hashlib.sha256()
    hasher.update(b"repro-circuit-fingerprint")
    hasher.update(struct.pack("<ii", ARTIFACT_KEY_VERSION, circuit.num_qubits))
    for instruction in circuit:
        if isinstance(instruction, Operation):
            hasher.update(b"op")
            matrix = np.ascontiguousarray(
                instruction.gate.array, dtype=np.complex128
            )
            hasher.update(struct.pack("<i", matrix.shape[0]))
            hasher.update(matrix.tobytes())
            hasher.update(struct.pack("<i", len(instruction.targets)))
            for target in instruction.targets:  # target order is semantic
                hasher.update(struct.pack("<i", int(target)))
            _hash_qubits(hasher, b"ctl", instruction.controls)
            _hash_qubits(hasher, b"neg", instruction.neg_controls)
        elif isinstance(instruction, DiagonalOperation):
            hasher.update(b"diag")
            hasher.update(struct.pack("<i", len(instruction.terms)))
            for term in instruction.terms:
                _hash_qubits(hasher, b"ones", term.ones)
                _hash_qubits(hasher, b"zeros", term.zeros)
                _hash_floats(hasher, (term.angle,))
        elif isinstance(instruction, Measurement):
            _hash_qubits(hasher, b"measure", instruction.qubits)
        elif isinstance(instruction, Barrier):
            _hash_qubits(hasher, b"barrier", instruction.qubits)
        else:  # pragma: no cover - append() already rejects these
            raise SamplingError(
                f"cannot fingerprint instruction {type(instruction).__name__}"
            )
    return hasher.hexdigest()


def cache_key(
    circuit: QuantumCircuit,
    scheme: NormalizationScheme = NormalizationScheme.L2,
    optimize: bool = True,
    initial_state: int = 0,
    package_version: Optional[str] = None,
    approximation: Optional[ApproximationConfig] = None,
    reorder: Optional[ReorderConfig] = None,
    noise: Optional[NoiseModel] = None,
) -> str:
    """The artifact-store key: circuit fingerprint + build config + versions.

    ``package_version`` defaults to ``repro.__version__``; tests override
    it to exercise version-mismatch invalidation.  An *enabled*
    ``approximation`` config (``epsilon > 0``) is hashed into the key —
    epsilon bit-exactly, plus the strategy knobs — so approximate
    artifacts live in a separate namespace from exact ones.  An *enabled*
    ``reorder`` config is folded the same way (budget, cadence, trigger
    knobs): a reordered artifact stores level-space arrays plus its
    qubit permutation, so it must never be served for a fixed-order
    request.  An *enabled* ``noise`` model is folded as its full
    canonical strength tuple (:meth:`~repro.noise.NoiseModel.strengths`,
    IEEE-754 bit-exact, readout rates included): a noisy artifact stores
    the *mixed-state* distribution and must never be served for an exact
    request, nor for a different noise model.  A ``None`` or disabled
    config leaves the digest byte-identical to the historic exact key.
    """
    hasher = hashlib.sha256()
    hasher.update(b"repro-artifact-key")
    hasher.update(circuit_fingerprint(circuit).encode("ascii"))
    hasher.update(scheme.value.encode("ascii"))
    hasher.update(b"opt" if optimize else b"raw")
    hasher.update(struct.pack("<q", int(initial_state)))
    hasher.update(struct.pack("<i", ARTIFACT_VERSION))
    version = package_version if package_version is not None else _package_version
    hasher.update(version.encode("utf-8"))
    if approximation is not None and approximation.enabled:
        hasher.update(b"approx")
        _hash_floats(hasher, (approximation.epsilon,))
        hasher.update(struct.pack("<i", approximation.interval))
        hasher.update(
            struct.pack(
                "<q",
                -1
                if approximation.node_budget is None
                else approximation.node_budget,
            )
        )
    if reorder is not None and reorder.enabled:
        hasher.update(b"reorder")
        hasher.update(struct.pack("<q", reorder.budget))
        hasher.update(struct.pack("<i", reorder.interval))
        hasher.update(struct.pack("<q", reorder.min_nodes))
        hasher.update(
            struct.pack("<i", (2 if reorder.static else 0) | (1 if reorder.dynamic else 0))
        )
    if noise is not None and noise.enabled:
        hasher.update(b"noise")
        _hash_floats(hasher, noise.strengths())
    return hasher.hexdigest()
