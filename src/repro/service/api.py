"""The service front door: submit requests, await seed-stable results.

:class:`SamplingService` ties the layers together: cache key
(:mod:`repro.service.keys`) → in-process hot cache → persistent
:class:`~repro.service.store.ArtifactStore` → coalescing
:class:`~repro.service.scheduler.BuildScheduler` → sampling.  The
contract that makes the cache *safe to use* is bit-identity: for
``method="dd"`` with an integer seed, a response is byte-for-byte the
same :class:`~repro.core.results.SampleResult` that
:func:`repro.core.weak_sim.simulate_and_sample` produces for the same
arguments — whether the artifact was just built, read back from disk, or
found hot in memory, and at any client concurrency.  That holds because
the artifact round-trip is float64-bit-exact and the warm path consumes
the RNG exactly like the cold path (same per-level draws, same
seed-stable chunking under ``workers``).

Requests that the compiled-artifact path cannot serve are still
answered, just without the cache (``cache="bypass"``): dense ``vector*``
methods, the non-default DD samplers (``dd-path`` …, which need the live
DD rather than the flattened tables), and measure-and-continue circuits
(routed through :class:`~repro.core.shot_executor.ShotExecutor`).

Telemetry: pass a :class:`repro.telemetry.Telemetry` session and the
service activates it for its lifetime.  Every request opens a
``service.request`` span; builds appear as the simulator's ``build``
spans under it (their *absence* on a warm hit is the observable proof
that strong simulation was skipped); counters land under ``service.*``
(see ``docs/serving.md``).
"""

from __future__ import annotations

import collections
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor, TimeoutError
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from .. import telemetry as _telemetry
from ..circuit.circuit import QuantumCircuit
from ..core.results import SampleResult
from ..core.shot_executor import ShotExecutor, circuit_has_mid_circuit_measurement
from ..core.weak_sim import (
    DD_METHODS,
    VECTOR_METHODS,
    sample_statevector,
    simulate_and_sample,
)
from ..dd.approximation import ApproximationConfig
from ..dd.normalization import NormalizationScheme
from ..dd.reorder import (
    ReorderConfig,
    is_identity_permutation,
    unpermute_samples,
)
from ..exceptions import DDError, MemoryOutError, NoiseError, ReproError
from ..noise.model import NoiseModel
from ..perf.compiled_dd import CompiledDD
from ..perf.parallel import DEFAULT_CHUNK_SHOTS, sample_chunked
from .keys import cache_key
from .scheduler import AdmissionError, BuildOutcome, BuildScheduler, ServicePolicy
from .store import DEFAULT_MAX_BYTES, ArtifactStore

__all__ = ["SamplingRequest", "SamplingResponse", "SamplingService"]

#: Default number of CompiledDD artifacts pinned in process memory.
DEFAULT_HOT_ENTRIES = 8


@dataclass(frozen=True)
class SamplingRequest:
    """One sampling job: a circuit, a shot count, and reproducibility knobs.

    ``deadline_seconds`` bounds how long the request will *wait for the
    build* (cache hits never wait); an expired deadline yields a
    ``deadline_exceeded`` response while the build keeps running and
    still lands in the cache for the retry.  ``workers`` enables
    seed-stable chunked sampling exactly as in ``simulate_and_sample``.
    ``kernel`` picks the strong-simulation engine for cold builds
    (``"auto"``/``"vector"``/``"python"``); the engines are bit-identical,
    so the artifact cache key deliberately ignores it — a cached artifact
    serves requests for either engine, and its metadata records which one
    actually built it.

    ``approximation`` opts into approximate weak simulation (DD methods
    only): an :class:`~repro.dd.approximation.ApproximationConfig`, a
    bare epsilon, or a ``{"epsilon": ...}`` mapping, exactly as in the
    JSONL/HTTP schema.  Unlike ``kernel``, the approximation contract IS
    part of the cache key — an ε-approximated artifact is never served
    for an exact request or for a different ε.  ``epsilon = 0`` (or
    ``None``) is the exact path, byte-identical to a request without the
    field.  The response reports the tracked fidelity lower bound.

    ``reorder`` opts into dynamic qubit reordering for the DD build
    (DD methods only): a :class:`~repro.dd.reorder.ReorderConfig`,
    ``True``, a swap budget, or a ``{"budget": ...}`` mapping.  Like the
    approximation contract it IS part of the cache key — a reordered
    artifact stores level-space arrays plus its qubit permutation, so it
    is never served for a fixed-order request (and vice versa).  The
    service unpermutes samples before reporting, so responses stay in
    the original qubit order and bit-identical to ``simulate_and_sample``
    with the same config.  ``False``/``None`` is the fixed-order path,
    byte-identical to a request without the field.

    ``noise_model`` opts into noisy weak simulation (``method="dd"``
    only): a :class:`~repro.noise.NoiseModel`, a bare depolarizing
    strength, or a mapping, exactly as in the JSONL/HTTP schema (see
    :meth:`~repro.noise.NoiseModel.from_value` and ``docs/noise.md``).
    The full canonical strength tuple IS part of the cache key — a noisy
    artifact (the mixed state's distribution) is never served for an
    exact request or a different model — while a disabled model (all
    strengths zero) is normalised away, leaving the key byte-identical
    to a request without the field.  Noisy builds bypass the optimizer
    (noise binds to the circuit as written) and have no degradation
    fallback; they compose with neither ``approximation`` nor
    ``reorder`` nor ``workers`` nor mid-circuit measurement (rejected,
    never silently dropped).
    """

    circuit: QuantumCircuit
    shots: int
    seed: Optional[int] = None
    method: str = "dd"
    workers: Optional[int] = None
    scheme: NormalizationScheme = NormalizationScheme.L2
    optimize: bool = True
    initial_state: int = 0
    deadline_seconds: Optional[float] = None
    request_id: Optional[str] = None
    kernel: str = "auto"
    approximation: Optional[Any] = None
    reorder: Optional[Any] = None
    noise_model: Optional[Any] = None


@dataclass
class SamplingResponse:
    """The service's answer; inspect ``status`` before ``result``.

    ``status`` is one of ``"ok"``, ``"rejected"`` (admission guard or
    invalid parameters — retrying unchanged cannot succeed),
    ``"deadline_exceeded"`` (retry later; the build continues), or
    ``"error"`` (the build failed).  ``cache`` says where the artifact
    came from: ``"memory"`` (hot in-process), ``"disk"`` (persistent
    store), ``"built"`` (cold), or ``"bypass"`` (request class outside
    the artifact cache).  ``backend`` is what actually sampled:
    ``"dd"``, ``"statevector"``, ``"stabilizer"``, or
    ``"shot-executor"``.
    """

    request_id: Optional[str]
    status: str
    result: Optional[SampleResult] = None
    backend: Optional[str] = None
    cache: Optional[str] = None
    key: Optional[str] = None
    error: Optional[str] = None
    degraded_reason: Optional[str] = None
    build_seconds: float = 0.0
    sampling_seconds: float = 0.0
    #: Rigorous lower bound on the fidelity of the state that was
    #: sampled; ``None`` for exact answers (see docs/approximation.md).
    fidelity_bound: Optional[float] = None
    #: The noise model the served artifact was built under (its
    #: canonical nonzero-strength dict); ``None`` for exact answers
    #: (see docs/noise.md).
    noise: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        """Whether the request produced a result."""
        return self.status == "ok"

    def to_dict(self, top: Optional[int] = None) -> Dict[str, Any]:
        """The JSONL response record (schema in ``docs/serving.md``).

        ``top`` caps the emitted counts at the most frequent ``top``
        outcomes (full counts by default).
        """
        record: Dict[str, Any] = {
            "request_id": self.request_id,
            "status": self.status,
            "backend": self.backend,
            "cache": self.cache,
            "key": self.key,
            "build_seconds": round(self.build_seconds, 9),
            "sampling_seconds": round(self.sampling_seconds, 9),
        }
        if self.error is not None:
            record["error"] = self.error
        if self.degraded_reason is not None:
            record["degraded_reason"] = self.degraded_reason
        if self.fidelity_bound is not None:
            record["fidelity_bound"] = self.fidelity_bound
        if self.noise is not None:
            record["noise"] = self.noise
        if self.result is not None:
            record["num_qubits"] = self.result.num_qubits
            record["shots"] = self.result.shots
            record["method"] = self.result.method
            counts = self.result.bitstring_counts()
            if top is not None and len(counts) > top:
                ranked = self.result.most_common(top)
                record["counts"] = dict(ranked)
                record["counts_truncated"] = len(counts) - top
            else:
                record["counts"] = counts
        return record


class SamplingService:
    """Request-oriented weak simulation with a persistent artifact cache.

    Usable as a context manager; :meth:`close` drains the worker pools.
    ``cache_dir=None`` runs without the persistent tier (hot cache and
    coalescing still apply).  A single service instance is thread-safe:
    concurrent :meth:`sample` calls from many client threads coalesce
    onto one build per distinct circuit.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        max_cache_bytes: int = DEFAULT_MAX_BYTES,
        policy: Optional[ServicePolicy] = None,
        build_workers: int = 2,
        request_workers: int = 4,
        hot_entries: int = DEFAULT_HOT_ENTRIES,
        telemetry: Optional[_telemetry.Telemetry] = None,
    ):
        self.policy = policy or ServicePolicy()
        self.telemetry = telemetry
        self.store = (
            ArtifactStore(cache_dir, max_bytes=max_cache_bytes)
            if cache_dir is not None
            else None
        )
        self.scheduler = BuildScheduler(
            store=self.store,
            policy=self.policy,
            workers=build_workers,
            telemetry=telemetry,
        )
        self._requests = ThreadPoolExecutor(
            max_workers=request_workers, thread_name_prefix="repro-request"
        )
        self._hot: "collections.OrderedDict[str, tuple]" = (
            collections.OrderedDict()
        )
        self._hot_entries = max(0, hot_entries)
        self._lock = threading.Lock()
        self._stats = {
            "requests": 0,
            "ok": 0,
            "rejected": 0,
            "deadline_exceeded": 0,
            "errors": 0,
            "cache_memory_hits": 0,
            "cache_disk_hits": 0,
            "cache_misses": 0,
            "bypass": 0,
        }
        self._closed = False
        self._activation = None
        if telemetry is not None:
            # Hold the session active for the service lifetime so spans
            # and counters from worker threads land in it too.
            self._activation = telemetry.activate()
            self._activation.__enter__()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(
        self, drain: bool = True, timeout: Optional[float] = None
    ) -> bool:
        """Drain the request and build pools; idempotent.

        ``drain=True`` waits for in-flight requests and builds
        (``timeout`` bounds the build-pool wait); ``drain=False``
        cancels queued work immediately.  Returns ``True`` when
        everything drained — see
        :meth:`BuildScheduler.close <repro.service.scheduler.BuildScheduler.close>`
        for what happens to builds that outlive the timeout.
        """
        if self._closed:
            return True
        self._closed = True
        self._requests.shutdown(wait=drain, cancel_futures=not drain)
        drained = self.scheduler.close(drain=drain, timeout=timeout)
        session = _telemetry.active()
        if session is not None:
            session.registry.record_service(self.stats())
        if self._activation is not None:
            self._activation.__exit__(None, None, None)
            self._activation = None
        return drained

    def __enter__(self) -> "SamplingService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Public request surface
    # ------------------------------------------------------------------

    def sample(self, request: SamplingRequest) -> SamplingResponse:
        """Serve one request synchronously (in the calling thread)."""
        return self._handle(request)

    def submit(self, request: SamplingRequest) -> "Future[SamplingResponse]":
        """Enqueue a request on the service's worker pool."""
        if self._closed:
            raise ReproError("SamplingService is closed")
        return self._requests.submit(self._handle, request)

    def sample_batch(
        self, requests: List[SamplingRequest]
    ) -> List[SamplingResponse]:
        """Serve many requests concurrently, preserving input order."""
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    def stats(self) -> Dict[str, Any]:
        """Service, scheduler, and store counters in one snapshot.

        ``builds`` (from the scheduler) counts actual strong
        simulations — the number the coalescing and warm-cache tests
        pin.  ``cache_hits`` is memory + disk hits.
        """
        with self._lock:
            snapshot: Dict[str, Any] = dict(self._stats)
            snapshot["hot_entries"] = len(self._hot)
        snapshot["cache_hits"] = (
            snapshot["cache_memory_hits"] + snapshot["cache_disk_hits"]
        )
        snapshot.update(self.scheduler.stats())
        if self.store is not None:
            snapshot["store"] = self.store.stats()
        return snapshot

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    def _handle(self, request: SamplingRequest) -> SamplingResponse:
        self._count("requests")
        with _telemetry.span(
            "service.request",
            method=request.method,
            shots=request.shots,
            request_id=request.request_id,
        ) as span:
            response = self._route(request)
            span.set_attr("status", response.status)
            span.set_attr("cache", response.cache)
            span.set_attr("backend", response.backend)
        self._record_outcome(response)
        return response

    def _route(self, request: SamplingRequest) -> SamplingResponse:
        problem = self._validate(request)
        if problem is not None:
            return self._reject(request, problem)
        if request.method in VECTOR_METHODS:
            return self._serve_bypass(request)
        if circuit_has_mid_circuit_measurement(request.circuit):
            return self._serve_shot_executor(request)
        if request.method != "dd":
            # dd-path / dd-multinomial / dd-collapse walk the live DD,
            # which the flat artifact deliberately does not preserve.
            return self._serve_bypass(request)
        return self._serve_compiled(request)

    @staticmethod
    def _approx_config(
        request: SamplingRequest,
    ) -> Optional[ApproximationConfig]:
        """The request's approximation contract; ``None`` when exact.

        Raises :class:`~repro.exceptions.DDError` for a malformed value
        (``_validate`` turns that into a rejection).
        """
        if request.approximation is None:
            return None
        config = ApproximationConfig.from_value(request.approximation)
        return config if config.enabled else None

    @staticmethod
    def _reorder_config(
        request: SamplingRequest,
    ) -> Optional[ReorderConfig]:
        """The request's reorder contract; ``None`` for fixed order.

        Raises :class:`~repro.exceptions.DDError` for a malformed value
        (``_validate`` turns that into a rejection).
        """
        if request.reorder is None:
            return None
        config = ReorderConfig.from_value(request.reorder)
        return config if config.enabled else None

    @staticmethod
    def _noise_config(request: SamplingRequest) -> Optional[NoiseModel]:
        """The request's noise model; ``None`` when exact.

        Raises :class:`~repro.exceptions.NoiseError` for a malformed or
        non-physical value (``_validate`` turns that into a rejection).
        """
        if request.noise_model is None:
            return None
        noise = NoiseModel.from_value(request.noise_model)
        return noise if noise is not None and noise.enabled else None

    def _validate(self, request: SamplingRequest) -> Optional[str]:
        if request.shots < 0:
            return f"shots must be non-negative, got {request.shots}"
        if request.method not in DD_METHODS + VECTOR_METHODS:
            return f"unknown sampling method {request.method!r}"
        if request.workers is not None and request.method != "dd":
            return "parallel chunked sampling requires method='dd'"
        if request.kernel not in ("auto", "vector", "python"):
            return (
                f"unknown kernel {request.kernel!r}; expected 'auto', "
                "'vector', or 'python'"
            )
        if request.deadline_seconds is not None and request.deadline_seconds <= 0:
            return "deadline_seconds must be positive"
        if (
            circuit_has_mid_circuit_measurement(request.circuit)
            and request.initial_state != 0
        ):
            return "mid-circuit measurement requires initial_state=0"
        try:
            approximation = self._approx_config(request)
        except DDError as error:
            return str(error)
        if approximation is not None:
            if request.method in VECTOR_METHODS:
                return (
                    "approximation applies to DD methods only; vector "
                    "methods are always exact"
                )
            if circuit_has_mid_circuit_measurement(request.circuit):
                return (
                    "approximation is not supported for mid-circuit "
                    "measurement (the shot executor re-simulates per shot)"
                )
        try:
            reorder = self._reorder_config(request)
        except DDError as error:
            return str(error)
        if reorder is not None:
            if request.method in VECTOR_METHODS:
                return (
                    "reordering applies to DD methods only; vector "
                    "methods use the natural order"
                )
            if circuit_has_mid_circuit_measurement(request.circuit):
                return (
                    "reordering is not supported for mid-circuit "
                    "measurement (collapses assume a fixed qubit order)"
                )
        try:
            noise = self._noise_config(request)
        except NoiseError as error:
            return str(error)
        if noise is not None:
            if request.method != "dd":
                return (
                    "noise requires method='dd' (samples come from the "
                    "compiled density diagonal)"
                )
            if approximation is not None:
                return (
                    "noise and approximation cannot be combined: the "
                    "fidelity-bound accounting assumes a pure state"
                )
            if reorder is not None:
                return (
                    "noise and reordering cannot be combined: sifting is "
                    "implemented for vector DDs only"
                )
            if request.workers is not None:
                return (
                    "parallel chunked sampling is not supported for "
                    "noisy requests"
                )
            if circuit_has_mid_circuit_measurement(request.circuit):
                return (
                    "noise is not supported for mid-circuit measurement "
                    "requests (the service serves those per shot, which "
                    "cannot apply density noise)"
                )
        return None

    def _reject(
        self,
        request: SamplingRequest,
        reason: str,
        key: Optional[str] = None,
    ) -> SamplingResponse:
        return SamplingResponse(
            request_id=request.request_id,
            status="rejected",
            key=key,
            error=reason,
        )

    def _error(
        self,
        request: SamplingRequest,
        reason: str,
        key: Optional[str] = None,
    ) -> SamplingResponse:
        return SamplingResponse(
            request_id=request.request_id,
            status="error",
            key=key,
            error=reason,
        )

    # ------------------------------------------------------------------
    # Serving paths
    # ------------------------------------------------------------------

    def _serve_bypass(self, request: SamplingRequest) -> SamplingResponse:
        """Non-cacheable methods: delegate to ``simulate_and_sample``."""
        if request.method in VECTOR_METHODS:
            dense_bytes = 16 * (2**request.circuit.num_qubits)
            if dense_bytes > self.policy.dense_memory_cap_bytes:
                return self._reject(
                    request,
                    f"dense state needs {dense_bytes} bytes, over the "
                    f"service cap of {self.policy.dense_memory_cap_bytes}",
                )
        start = time.perf_counter()
        approximation = self._approx_config(request)
        reorder = self._reorder_config(request)
        try:
            result = simulate_and_sample(
                request.circuit,
                request.shots,
                method=request.method,
                seed=request.seed,
                initial_state=request.initial_state,
                scheme=request.scheme,
                memory_cap_bytes=self.policy.dense_memory_cap_bytes,
                workers=request.workers,
                optimize=request.optimize,
                kernel=request.kernel,
                approximation=approximation,
                reorder=reorder,
            )
        except MemoryOutError as error:
            return self._reject(request, str(error))
        except ReproError as error:
            return self._error(request, str(error))
        elapsed = time.perf_counter() - start
        backend = (
            "statevector" if request.method in VECTOR_METHODS else "dd"
        )
        approx_meta = (result.metadata.get("build") or {}).get("approximation")
        return SamplingResponse(
            request_id=request.request_id,
            status="ok",
            result=result,
            backend=backend,
            cache="bypass",
            build_seconds=elapsed - result.sampling_seconds,
            sampling_seconds=result.sampling_seconds,
            fidelity_bound=(
                approx_meta.get("fidelity_bound") if approx_meta else None
            ),
        )

    def _serve_shot_executor(self, request: SamplingRequest) -> SamplingResponse:
        """Measure-and-continue circuits: per-shot semantics, no cache."""
        start = time.perf_counter()
        try:
            executor = ShotExecutor(
                request.circuit,
                scheme=request.scheme,
                optimize=request.optimize,
                kernel=request.kernel,
            )
            result = executor.run(request.shots, seed=request.seed)
        except ReproError as error:
            return self._error(request, str(error))
        elapsed = time.perf_counter() - start
        return SamplingResponse(
            request_id=request.request_id,
            status="ok",
            result=result,
            backend="shot-executor",
            cache="bypass",
            build_seconds=max(0.0, elapsed - result.sampling_seconds),
            sampling_seconds=result.sampling_seconds,
        )

    def _serve_compiled(self, request: SamplingRequest) -> SamplingResponse:
        """The cached path: key → hot → disk → coalesced build → sample."""
        approximation = self._approx_config(request)
        reorder = self._reorder_config(request)
        noise = self._noise_config(request)
        # Noisy builds bypass the optimizer (noise binds to the circuit
        # as written), so the flag is normalised out of the key — every
        # noisy request for the same circuit+model shares one artifact.
        optimize = request.optimize if noise is None else False
        key = cache_key(
            request.circuit,
            scheme=request.scheme,
            optimize=optimize,
            initial_state=request.initial_state,
            approximation=approximation,
            reorder=reorder,
            noise=noise,
        )
        compiled, hot_meta = self._hot_get(key)
        if compiled is not None:
            outcome = BuildOutcome(
                key=key,
                backend="dd",
                source="memory",
                compiled=compiled,
                meta=hot_meta or {},
            )
        else:
            try:
                future = self.scheduler.submit(
                    key,
                    request.circuit,
                    scheme=request.scheme,
                    optimize=optimize,
                    initial_state=request.initial_state,
                    kernel=request.kernel,
                    approximation=approximation,
                    reorder=reorder,
                    noise=noise,
                )
            except AdmissionError as error:
                return self._reject(request, str(error), key=key)
            self._set_queue_gauge()
            try:
                outcome = future.result(timeout=request.deadline_seconds)
            except TimeoutError:
                return SamplingResponse(
                    request_id=request.request_id,
                    status="deadline_exceeded",
                    key=key,
                    error=(
                        "build did not finish within "
                        f"{request.deadline_seconds} s (it continues in the "
                        "background and will be cached)"
                    ),
                )
            except (AdmissionError, MemoryOutError) as error:
                return self._reject(request, str(error), key=key)
            except ReproError as error:
                return self._error(request, str(error), key=key)
            except Exception as error:  # retried and still failing
                return self._error(request, str(error), key=key)
            finally:
                self._set_queue_gauge()
            if outcome.compiled is not None:
                # Keyed by outcome.key, NOT the request key: when the
                # ladder degrades an exact request to the approximate-DD
                # rung, the artifact lives under the ε-specific key — hot
                # caching it under the exact key would poison every later
                # exact hit with an approximated distribution.
                self._hot_put(outcome.key, outcome.compiled, outcome.meta)
        return self._sample_outcome(request, outcome)

    def _sample_outcome(
        self, request: SamplingRequest, outcome: BuildOutcome
    ) -> SamplingResponse:
        """Draw the shots from a build outcome, RNG-compatible with weak_sim."""
        rng = np.random.default_rng(request.seed)
        start = time.perf_counter()
        with _telemetry.span(
            "service.sample", shots=request.shots, backend=outcome.backend
        ):
            try:
                if outcome.backend == "dd":
                    compiled = outcome.compiled
                    if request.workers is None:
                        samples = compiled.sample(request.shots, rng)
                    else:
                        samples = sample_chunked(
                            compiled.sample,
                            request.shots,
                            rng,
                            workers=request.workers,
                            chunk_shots=DEFAULT_CHUNK_SHOTS,
                        )
                    # A reordered artifact samples in level space; its
                    # recorded permutation moves every draw back to the
                    # original qubit order (cold, disk, and hot hits all
                    # carry the permutation in the artifact meta, so the
                    # warm path stays bit-identical to the cold one).
                    level_to_qubit = ((outcome.meta or {}).get("reorder") or {}).get(
                        "level_to_qubit"
                    )
                    if level_to_qubit is not None and not is_identity_permutation(
                        level_to_qubit
                    ):
                        samples = unpermute_samples(samples, level_to_qubit)
                    result = SampleResult.from_samples(
                        compiled.num_qubits, samples, method="dd"
                    )
                elif outcome.backend == "statevector":
                    result = sample_statevector(
                        outcome.statevector,
                        request.shots,
                        method="vector",
                        seed=rng,
                    )
                else:
                    result = outcome.stabilizer_state.sample_result(
                        request.shots, rng
                    )
            except ReproError as error:
                return self._error(request, str(error), key=outcome.key)
        sampling_seconds = time.perf_counter() - start
        result.sampling_seconds = sampling_seconds
        result.precompute_seconds = outcome.build_seconds
        service_meta: Dict[str, Any] = {
            "key": outcome.key,
            "cache": outcome.source,
            "backend": outcome.backend,
            "attempts": outcome.attempts,
        }
        approx_meta = (outcome.meta or {}).get("approximation")
        fidelity_bound = None
        if approx_meta is not None:
            service_meta["approximation"] = approx_meta
            fidelity_bound = approx_meta.get("fidelity_bound")
        reorder_meta = (outcome.meta or {}).get("reorder")
        if reorder_meta is not None:
            service_meta["reorder"] = reorder_meta
        noise_meta = (outcome.meta or {}).get("noise")
        response_noise = None
        if noise_meta is not None:
            service_meta["noise"] = noise_meta
            response_noise = noise_meta.get("model")
        result.metadata["service"] = service_meta
        return SamplingResponse(
            request_id=request.request_id,
            status="ok",
            result=result,
            backend=outcome.backend,
            cache=outcome.source,
            key=outcome.key,
            degraded_reason=outcome.degraded_reason,
            build_seconds=outcome.build_seconds,
            sampling_seconds=sampling_seconds,
            fidelity_bound=fidelity_bound,
            noise=response_noise,
        )

    # ------------------------------------------------------------------
    # Hot in-process cache
    # ------------------------------------------------------------------

    def _hot_get(self, key: str):
        """``(compiled, meta)`` for a hot entry, ``(None, None)`` on miss.

        Meta travels with the artifact so a hot hit on an ε-keyed entry
        still reports its fidelity bound.
        """
        with self._lock:
            entry = self._hot.get(key)
            if entry is None:
                return None, None
            self._hot.move_to_end(key)
            return entry

    def _hot_put(
        self,
        key: str,
        compiled: CompiledDD,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        if self._hot_entries == 0:
            return
        with self._lock:
            self._hot[key] = (compiled, meta or {})
            self._hot.move_to_end(key)
            while len(self._hot) > self._hot_entries:
                self._hot.popitem(last=False)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._stats[name] += amount
        session = _telemetry.active()
        if session is not None and name == "requests":
            session.registry.counter("service.requests").inc(amount)

    def _set_queue_gauge(self) -> None:
        session = _telemetry.active()
        if session is not None:
            session.registry.gauge("service.queue_depth").set(
                self.scheduler.queue_depth()
            )

    def _record_outcome(self, response: SamplingResponse) -> None:
        status_counter = {
            "ok": "ok",
            "rejected": "rejected",
            "deadline_exceeded": "deadline_exceeded",
            "error": "errors",
        }[response.status]
        self._count(status_counter)
        cache_counter = {
            "memory": "cache_memory_hits",
            "disk": "cache_disk_hits",
            "built": "cache_misses",
            "bypass": "bypass",
        }.get(response.cache)
        if cache_counter is not None:
            self._count(cache_counter)
        session = _telemetry.active()
        if session is None:
            return
        registry = session.registry
        registry.counter(f"service.status.{response.status}").inc()
        if response.cache in ("memory", "disk"):
            registry.counter("service.cache.hits").inc()
        elif response.cache == "built":
            # service.builds is incremented by the scheduler (once per
            # actual strong simulation, not per coalesced waiter).
            registry.counter("service.cache.misses").inc()
        elif response.cache == "bypass":
            registry.counter("service.cache.bypass").inc()
        if response.degraded_reason is not None:
            registry.counter("service.degraded").inc()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cache = self.store.cache_dir if self.store is not None else None
        return f"SamplingService(cache_dir={cache!r})"
