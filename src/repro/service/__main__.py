"""``python -m repro.service``: batch JSONL sampling against the cache.

Reads one JSON request per line, answers with one JSON response per
line, in input order (schema in ``docs/serving.md``)::

    python -m repro.service --requests jobs.jsonl --out answers.jsonl \\
        --cache-dir ~/.cache/repro

A request line names a circuit either inline (``{"qasm": "..."}``), by
file (``{"qasm_file": "bell.qasm"}``), or by builtin name
(``"qft_16"``, ``"grover_8"``, ``"ghz_12"``, ``"bell"``,
``"supremacy_4x4_8"``)::

    {"request_id": "r1", "circuit": "qft_16", "shots": 100000, "seed": 7}

A malformed line produces a ``rejected`` response on its output line —
the batch never dies half-way.  ``--smoke`` runs the self-test used by
``make serve-smoke``: a cold pass and a warm pass over qft_16 and
grover_8 through a real JSONL round-trip, asserting that the warm pass
builds nothing and that both passes are bit-identical to
``simulate_and_sample`` at the same seed.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import tempfile
from typing import Any, Dict, List, Optional, TextIO

from ..circuit.circuit import QuantumCircuit
from ..exceptions import ReproError
from .api import SamplingRequest, SamplingResponse, SamplingService

__all__ = ["main", "resolve_circuit", "run_batch"]

_SUPREMACY_NAME = re.compile(r"^supremacy_(\d+)x(\d+)_(\d+)$")
_FAMILY_NAME = re.compile(r"^(qft|grover|ghz|w)_(\d+)$")


def resolve_circuit(spec: Any) -> QuantumCircuit:
    """Turn a request's ``circuit`` field into a :class:`QuantumCircuit`.

    Accepts a builtin name (string), ``{"name": ...}``,
    ``{"qasm": source}``, or ``{"qasm_file": path}``.  Builtin
    parameterised families use fixed seeds (``grover_N`` draws its
    marked element with seed 1, ``supremacy_*`` with seed 0) so the same
    name always means the same circuit — a requirement for the cache key
    to be meaningful across processes.
    """
    if isinstance(spec, dict):
        if "qasm" in spec:
            from ..circuit.qasm import parse_qasm

            return parse_qasm(spec["qasm"])
        if "qasm_file" in spec:
            from ..circuit.qasm import parse_qasm

            with open(spec["qasm_file"], "r", encoding="utf-8") as handle:
                return parse_qasm(handle.read())
        if "name" in spec:
            spec = spec["name"]
        else:
            raise ReproError(
                "circuit object needs one of 'qasm', 'qasm_file', 'name'"
            )
    if not isinstance(spec, str):
        raise ReproError(f"cannot resolve circuit from {type(spec).__name__}")
    if spec == "bell":
        from ..algorithms.states import bell_pair

        return bell_pair()
    match = _FAMILY_NAME.match(spec)
    if match:
        family, size = match.group(1), int(match.group(2))
        if family == "qft":
            from ..algorithms.qft import qft

            return qft(size)
        if family == "grover":
            from ..algorithms.grover import grover

            return grover(size, seed=1).circuit
        if family == "ghz":
            from ..algorithms.states import ghz

            return ghz(size)
        from ..algorithms.states import w_state

        return w_state(size)
    match = _SUPREMACY_NAME.match(spec)
    if match:
        from ..algorithms.supremacy import supremacy

        return supremacy(
            int(match.group(1)), int(match.group(2)), int(match.group(3)), seed=0
        )
    raise ReproError(
        f"unknown builtin circuit {spec!r} (expected bell, qft_N, grover_N, "
        "ghz_N, w_N, or supremacy_RxC_D)"
    )


def _request_from_record(
    record: Dict[str, Any], default_kernel: str = "auto"
) -> SamplingRequest:
    """Build a :class:`SamplingRequest` from one parsed JSONL record.

    ``default_kernel`` applies to records without a ``kernel`` field (the
    CLI's ``--kernel`` flag); an explicit per-request field wins.
    """
    if "circuit" not in record:
        raise ReproError("request is missing the 'circuit' field")
    if "shots" not in record:
        raise ReproError("request is missing the 'shots' field")
    circuit = resolve_circuit(record["circuit"])
    return SamplingRequest(
        circuit=circuit,
        shots=int(record["shots"]),
        seed=None if record.get("seed") is None else int(record["seed"]),
        method=str(record.get("method", "dd")),
        workers=(
            None if record.get("workers") is None else int(record["workers"])
        ),
        optimize=bool(record.get("optimize", True)),
        initial_state=int(record.get("initial_state", 0)),
        deadline_seconds=(
            None
            if record.get("deadline_seconds") is None
            else float(record["deadline_seconds"])
        ),
        request_id=(
            None
            if record.get("request_id") is None
            else str(record["request_id"])
        ),
        kernel=str(record.get("kernel", default_kernel)),
    )


def run_batch(
    service: SamplingService,
    source: TextIO,
    sink: TextIO,
    top: Optional[int] = None,
    default_kernel: str = "auto",
) -> int:
    """Stream JSONL requests through ``service``; returns the error count.

    Responses are written in input order.  Lines that fail to parse or
    resolve become ``rejected`` response records instead of killing the
    batch; the return value counts every non-``ok`` response.
    ``default_kernel`` is the build engine for requests that do not set
    their own ``kernel`` field.
    """
    slots: List[Optional[SamplingResponse]] = []
    futures = []
    for line_number, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ReproError("request line must be a JSON object")
            request = _request_from_record(record, default_kernel=default_kernel)
        except (ValueError, ReproError, OSError) as error:
            slots.append(
                SamplingResponse(
                    request_id=None,
                    status="rejected",
                    error=f"line {line_number}: {error}",
                )
            )
            continue
        slot = len(slots)
        slots.append(None)
        futures.append((slot, service.submit(request)))
    for slot, future in futures:
        slots[slot] = future.result()
    failures = 0
    for response in slots:
        assert response is not None
        if not response.ok:
            failures += 1
        sink.write(json.dumps(response.to_dict(top=top)) + "\n")
    sink.flush()
    return failures


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Batch weak-simulation sampling: JSONL requests in, "
        "JSONL responses out, compiled artifacts cached on disk.",
    )
    parser.add_argument(
        "--requests",
        metavar="FILE",
        default="-",
        help="JSONL request file ('-' for stdin, the default)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default="-",
        help="JSONL response file ('-' for stdout, the default)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persistent artifact cache directory (omit to run uncached)",
    )
    parser.add_argument(
        "--max-cache-bytes",
        type=int,
        default=None,
        metavar="N",
        help="size budget for the artifact cache (LRU-evicted beyond it)",
    )
    parser.add_argument(
        "--request-workers",
        type=int,
        default=4,
        metavar="N",
        help="concurrent request slots (default 4)",
    )
    parser.add_argument(
        "--build-workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrent strong-simulation builds (default 2)",
    )
    parser.add_argument(
        "--kernel",
        choices=("auto", "vector", "python"),
        default="auto",
        help="strong-simulation engine for cold builds (requests may "
        "override per line with a 'kernel' field; cached artifacts are "
        "engine-independent)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="N",
        help="emit only the N most frequent outcomes per response",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print service/cache counters to stderr when done",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a telemetry trace of the batch as JSONL to FILE",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the cold/warm self-test (used by 'make serve-smoke')",
    )
    return parser


def _smoke(cache_dir: Optional[str]) -> int:
    """Cold pass, warm pass, bit-identity: the serve-smoke gate."""
    from ..core.weak_sim import simulate_and_sample
    from ..telemetry import Telemetry

    cases = [
        {"request_id": "qft_16", "circuit": "qft_16", "shots": 100000, "seed": 7},
        {"request_id": "grover_8", "circuit": "grover_8", "shots": 20000, "seed": 11},
    ]
    references = {
        case["request_id"]: simulate_and_sample(
            resolve_circuit(case["circuit"]),
            case["shots"],
            method="dd",
            seed=case["seed"],
        ).counts
        for case in cases
    }

    def one_pass(directory: str, label: str) -> Dict[str, Any]:
        request_lines = "".join(json.dumps(case) + "\n" for case in cases)
        telemetry = Telemetry()
        with SamplingService(cache_dir=directory, telemetry=telemetry) as service:
            source = _io_stringio(request_lines)
            sink = _io_stringio("")
            failures = run_batch(service, source, sink)
            stats = service.stats()
        responses = [
            json.loads(line) for line in sink.getvalue().splitlines() if line
        ]
        build_spans = [
            span for span in telemetry.tracer.spans if span.name == "build"
        ]
        counters = telemetry.registry.snapshot()["counters"]
        if failures:
            raise ReproError(f"{label} pass had {failures} failed responses")
        for response in responses:
            expected = references[response["request_id"]]
            width = response["num_qubits"]
            got = {int(k, 2): v for k, v in response["counts"].items()}
            if got != expected:
                raise ReproError(
                    f"{label} pass: {response['request_id']} counts differ "
                    "from simulate_and_sample at the same seed"
                )
            if len(format(max(expected), "b")) > width:
                raise ReproError("response num_qubits narrower than counts")
        return {
            "builds": stats["builds"],
            "build_spans": len(build_spans),
            "cache_hits": counters.get("service.cache.hits", 0),
            "responses": responses,
        }

    def check(condition: bool, message: str) -> None:
        if not condition:
            raise ReproError(f"serve-smoke: {message}")

    with tempfile.TemporaryDirectory() as tmp:
        directory = cache_dir or tmp
        cold = one_pass(directory, "cold")
        check(cold["builds"] == len(cases), "cold pass must build every case")
        check(cold["build_spans"] >= len(cases), "cold pass must trace builds")
        warm = one_pass(directory, "warm")
        check(warm["builds"] == 0, "warm pass must not build")
        check(warm["build_spans"] == 0, "warm pass must not trace builds")
        check(
            warm["cache_hits"] == len(cases),
            "warm pass must answer every case from the cache",
        )
        for response in warm["responses"]:
            check(
                response["cache"] in ("disk", "memory"),
                f"warm response {response['request_id']} not from cache",
            )
    print(
        "serve-smoke ok: "
        f"{len(cases)} circuits, cold builds={cold['builds']}, "
        f"warm builds={warm['builds']}, warm cache hits={warm['cache_hits']}, "
        "bit-identical to weak_sim"
    )
    return 0


def _io_stringio(initial: str):
    import io

    buffer = io.StringIO(initial)
    buffer.seek(0)
    return buffer


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.service``; returns the exit code."""
    args = _build_parser().parse_args(argv)
    if args.smoke:
        try:
            return _smoke(args.cache_dir)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1

    session = None
    if args.trace:
        from ..telemetry import Telemetry

        session = Telemetry()

    service_kwargs: Dict[str, Any] = {
        "cache_dir": args.cache_dir,
        "build_workers": args.build_workers,
        "request_workers": args.request_workers,
        "telemetry": session,
    }
    if args.max_cache_bytes is not None:
        service_kwargs["max_cache_bytes"] = args.max_cache_bytes

    try:
        source = (
            sys.stdin
            if args.requests == "-"
            else open(args.requests, "r", encoding="utf-8")
        )
    except OSError as error:
        print(f"error: cannot read {args.requests}: {error}", file=sys.stderr)
        return 2
    try:
        sink = (
            sys.stdout
            if args.out == "-"
            else open(args.out, "w", encoding="utf-8")
        )
    except OSError as error:
        print(f"error: cannot write {args.out}: {error}", file=sys.stderr)
        if source is not sys.stdin:
            source.close()
        return 2

    try:
        with SamplingService(**service_kwargs) as service:
            failures = run_batch(
                service, source, sink, top=args.top, default_kernel=args.kernel
            )
            stats = service.stats()
    finally:
        if source is not sys.stdin:
            source.close()
        if sink is not sys.stdout:
            sink.close()

    if args.stats:
        print(json.dumps(stats, indent=2, sort_keys=True), file=sys.stderr)
    if session is not None:
        try:
            records = session.export(args.trace)
        except OSError as error:
            print(f"error: cannot write {args.trace}: {error}", file=sys.stderr)
            return 2
        print(
            f"trace: {records} records -> {args.trace}",
            file=sys.stderr,
        )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
