"""``python -m repro.service``: batch JSONL sampling, or the HTTP server.

Batch mode (the default) reads one JSON request per line, answers with
one JSON response per line, in input order (schema in
``docs/serving.md``)::

    python -m repro.service --requests jobs.jsonl --out answers.jsonl \\
        --cache-dir ~/.cache/repro

``--serve`` starts the network front door instead: a consistent-hash
sharded multi-process worker pool behind an asyncio HTTP server
(endpoints in ``docs/serving.md``), draining gracefully on SIGTERM::

    python -m repro.service --serve --port 8766 --pool-workers 4 \\
        --cache-dir ~/.cache/repro

A request line names a circuit either inline (``{"qasm": "..."}``), by
file (``{"qasm_file": "bell.qasm"}`` — local batch mode only; the
network server rejects file specs unless ``--allow-qasm-file DIR``
allow-lists a directory), or by builtin name
(``"qft_16"``, ``"grover_8"``, ``"ghz_12"``, ``"bell"``,
``"supremacy_4x4_8"``)::

    {"request_id": "r1", "circuit": "qft_16", "shots": 100000, "seed": 7}

A malformed line produces a ``rejected`` response on its output line —
the batch never dies half-way.  ``--smoke`` runs the self-test used by
``make serve-smoke``: a cold pass and a warm pass over qft_16 and
grover_8 through a real JSONL round-trip, asserting that the warm pass
builds nothing and that both passes are bit-identical to
``simulate_and_sample`` at the same seed.  ``--net-smoke`` is the
network-tier equivalent (``make serve-net-smoke``): a real HTTP server
over a 2-worker pool, 50 concurrent mixed clients with a deliberately
tiny dispatch window, asserting bit-identity, one build per unique
circuit pool-wide, observed 429 shedding, and a clean drain.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import tempfile
from typing import Any, Dict, List, Optional, TextIO

from ..circuit.circuit import QuantumCircuit
from ..exceptions import ReproError
from .api import SamplingRequest, SamplingResponse, SamplingService

__all__ = ["main", "resolve_circuit", "run_batch"]

_SUPREMACY_NAME = re.compile(r"^supremacy_(\d+)x(\d+)_(\d+)$")
_FAMILY_NAME = re.compile(r"^(qft|grover|ghz|w)_(\d+)$")


def resolve_circuit(spec: Any) -> QuantumCircuit:
    """Turn a request's ``circuit`` field into a :class:`QuantumCircuit`.

    Accepts a builtin name (string), ``{"name": ...}``,
    ``{"qasm": source}``, or ``{"qasm_file": path}``.  Builtin
    parameterised families use fixed seeds (``grover_N`` draws its
    marked element with seed 1, ``supremacy_*`` with seed 0) so the same
    name always means the same circuit — a requirement for the cache key
    to be meaningful across processes.
    """
    if isinstance(spec, dict):
        if "qasm" in spec:
            from ..circuit.qasm import parse_qasm

            return parse_qasm(spec["qasm"])
        if "qasm_file" in spec:
            from ..circuit.qasm import parse_qasm

            with open(spec["qasm_file"], "r", encoding="utf-8") as handle:
                return parse_qasm(handle.read())
        if "name" in spec:
            spec = spec["name"]
        else:
            raise ReproError(
                "circuit object needs one of 'qasm', 'qasm_file', 'name'"
            )
    if not isinstance(spec, str):
        raise ReproError(f"cannot resolve circuit from {type(spec).__name__}")
    if spec == "bell":
        from ..algorithms.states import bell_pair

        return bell_pair()
    match = _FAMILY_NAME.match(spec)
    if match:
        family, size = match.group(1), int(match.group(2))
        if family == "qft":
            from ..algorithms.qft import qft

            return qft(size)
        if family == "grover":
            from ..algorithms.grover import grover

            return grover(size, seed=1).circuit
        if family == "ghz":
            from ..algorithms.states import ghz

            return ghz(size)
        from ..algorithms.states import w_state

        return w_state(size)
    match = _SUPREMACY_NAME.match(spec)
    if match:
        from ..algorithms.supremacy import supremacy

        return supremacy(
            int(match.group(1)), int(match.group(2)), int(match.group(3)), seed=0
        )
    raise ReproError(
        f"unknown builtin circuit {spec!r} (expected bell, qft_N, grover_N, "
        "ghz_N, w_N, or supremacy_RxC_D)"
    )


def _request_from_record(
    record: Dict[str, Any], default_kernel: str = "auto"
) -> SamplingRequest:
    """Build a :class:`SamplingRequest` from one parsed JSONL record.

    ``default_kernel`` applies to records without a ``kernel`` field (the
    CLI's ``--kernel`` flag); an explicit per-request field wins.
    """
    if "circuit" not in record:
        raise ReproError("request is missing the 'circuit' field")
    if "shots" not in record:
        raise ReproError("request is missing the 'shots' field")
    circuit = resolve_circuit(record["circuit"])
    return SamplingRequest(
        circuit=circuit,
        shots=int(record["shots"]),
        seed=None if record.get("seed") is None else int(record["seed"]),
        method=str(record.get("method", "dd")),
        workers=(
            None if record.get("workers") is None else int(record["workers"])
        ),
        optimize=bool(record.get("optimize", True)),
        initial_state=int(record.get("initial_state", 0)),
        deadline_seconds=(
            None
            if record.get("deadline_seconds") is None
            else float(record["deadline_seconds"])
        ),
        request_id=(
            None
            if record.get("request_id") is None
            else str(record["request_id"])
        ),
        kernel=str(record.get("kernel", default_kernel)),
        # Passed through raw: the service validates and normalises these
        # (approximation: number or {"epsilon": ...}; reorder: bool,
        # budget, or {"budget": ...}; noise_model: number or a channel-
        # strength mapping), so malformed values become 'rejected'
        # responses, not crashes.
        approximation=record.get("approximation"),
        reorder=record.get("reorder"),
        noise_model=record.get("noise_model"),
    )


def run_batch(
    service: SamplingService,
    source: TextIO,
    sink: TextIO,
    top: Optional[int] = None,
    default_kernel: str = "auto",
) -> int:
    """Stream JSONL requests through ``service``; returns the error count.

    Responses are written in input order.  Lines that fail to parse or
    resolve become ``rejected`` response records instead of killing the
    batch; the return value counts every non-``ok`` response.
    ``default_kernel`` is the build engine for requests that do not set
    their own ``kernel`` field.
    """
    slots: List[Optional[SamplingResponse]] = []
    futures = []
    for line_number, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ReproError("request line must be a JSON object")
            request = _request_from_record(record, default_kernel=default_kernel)
        except (ValueError, ReproError, OSError) as error:
            slots.append(
                SamplingResponse(
                    request_id=None,
                    status="rejected",
                    error=f"line {line_number}: {error}",
                )
            )
            continue
        slot = len(slots)
        slots.append(None)
        futures.append((slot, service.submit(request)))
    for slot, future in futures:
        slots[slot] = future.result()
    failures = 0
    for response in slots:
        assert response is not None
        if not response.ok:
            failures += 1
        sink.write(json.dumps(response.to_dict(top=top)) + "\n")
    sink.flush()
    return failures


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Batch weak-simulation sampling: JSONL requests in, "
        "JSONL responses out, compiled artifacts cached on disk.",
    )
    parser.add_argument(
        "--requests",
        metavar="FILE",
        default="-",
        help="JSONL request file ('-' for stdin, the default)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default="-",
        help="JSONL response file ('-' for stdout, the default)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persistent artifact cache directory (omit to run uncached)",
    )
    parser.add_argument(
        "--max-cache-bytes",
        type=int,
        default=None,
        metavar="N",
        help="size budget for the artifact cache (LRU-evicted beyond it)",
    )
    parser.add_argument(
        "--request-workers",
        type=int,
        default=4,
        metavar="N",
        help="concurrent request slots (default 4)",
    )
    parser.add_argument(
        "--build-workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrent strong-simulation builds (default 2)",
    )
    parser.add_argument(
        "--kernel",
        choices=("auto", "vector", "python"),
        default="auto",
        help="strong-simulation engine for cold builds (requests may "
        "override per line with a 'kernel' field; cached artifacts are "
        "engine-independent)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="N",
        help="emit only the N most frequent outcomes per response",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print service/cache counters to stderr when done",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a telemetry trace of the batch as JSONL to FILE",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the cold/warm self-test (used by 'make serve-smoke')",
    )
    serving = parser.add_argument_group("network serving")
    serving.add_argument(
        "--serve",
        action="store_true",
        help="run the HTTP front door over a sharded worker pool instead "
        "of a JSONL batch (drains gracefully on SIGTERM)",
    )
    serving.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for --serve (default 127.0.0.1)",
    )
    serving.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="N",
        help="bind port for --serve (default 8766; 0 picks a free port)",
    )
    serving.add_argument(
        "--pool-workers",
        type=int,
        default=2,
        metavar="N",
        help="worker processes in the sharded pool (default 2)",
    )
    serving.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        metavar="N",
        help="outstanding requests per worker before new arrivals are "
        "shed as HTTP 429 (default 32)",
    )
    serving.add_argument(
        "--allow-qasm-file",
        metavar="DIR",
        default=None,
        help="permit {\"qasm_file\": ...} circuit specs under DIR in "
        "--serve mode; by default they are rejected over the network, "
        "since they make the server open a client-chosen local path",
    )
    serving.add_argument(
        "--drain-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="bound on the graceful drain after SIGTERM (default 60)",
    )
    serving.add_argument(
        "--net-smoke",
        action="store_true",
        help="run the HTTP/pool self-test (used by 'make serve-net-smoke')",
    )
    return parser


def _smoke(cache_dir: Optional[str]) -> int:
    """Cold pass, warm pass, bit-identity: the serve-smoke gate."""
    from ..core.weak_sim import simulate_and_sample
    from ..telemetry import Telemetry

    cases = [
        {"request_id": "qft_16", "circuit": "qft_16", "shots": 100000, "seed": 7},
        {"request_id": "grover_8", "circuit": "grover_8", "shots": 20000, "seed": 11},
    ]
    references = {
        case["request_id"]: simulate_and_sample(
            resolve_circuit(case["circuit"]),
            case["shots"],
            method="dd",
            seed=case["seed"],
        ).counts
        for case in cases
    }

    def one_pass(directory: str, label: str) -> Dict[str, Any]:
        request_lines = "".join(json.dumps(case) + "\n" for case in cases)
        telemetry = Telemetry()
        with SamplingService(cache_dir=directory, telemetry=telemetry) as service:
            source = _io_stringio(request_lines)
            sink = _io_stringio("")
            failures = run_batch(service, source, sink)
            stats = service.stats()
        responses = [
            json.loads(line) for line in sink.getvalue().splitlines() if line
        ]
        build_spans = [
            span for span in telemetry.tracer.spans if span.name == "build"
        ]
        counters = telemetry.registry.snapshot()["counters"]
        if failures:
            raise ReproError(f"{label} pass had {failures} failed responses")
        for response in responses:
            expected = references[response["request_id"]]
            width = response["num_qubits"]
            got = {int(k, 2): v for k, v in response["counts"].items()}
            if got != expected:
                raise ReproError(
                    f"{label} pass: {response['request_id']} counts differ "
                    "from simulate_and_sample at the same seed"
                )
            if len(format(max(expected), "b")) > width:
                raise ReproError("response num_qubits narrower than counts")
        return {
            "builds": stats["builds"],
            "build_spans": len(build_spans),
            "cache_hits": counters.get("service.cache.hits", 0),
            "responses": responses,
        }

    def check(condition: bool, message: str) -> None:
        if not condition:
            raise ReproError(f"serve-smoke: {message}")

    with tempfile.TemporaryDirectory() as tmp:
        directory = cache_dir or tmp
        cold = one_pass(directory, "cold")
        check(cold["builds"] == len(cases), "cold pass must build every case")
        check(cold["build_spans"] >= len(cases), "cold pass must trace builds")
        warm = one_pass(directory, "warm")
        check(warm["builds"] == 0, "warm pass must not build")
        check(warm["build_spans"] == 0, "warm pass must not trace builds")
        check(
            warm["cache_hits"] == len(cases),
            "warm pass must answer every case from the cache",
        )
        for response in warm["responses"]:
            check(
                response["cache"] in ("disk", "memory"),
                f"warm response {response['request_id']} not from cache",
            )
    print(
        "serve-smoke ok: "
        f"{len(cases)} circuits, cold builds={cold['builds']}, "
        f"warm builds={warm['builds']}, warm cache hits={warm['cache_hits']}, "
        "bit-identical to weak_sim"
    )
    return 0


def _io_stringio(initial: str):
    import io

    buffer = io.StringIO(initial)
    buffer.seek(0)
    return buffer


def _net_smoke(cache_dir: Optional[str]) -> int:
    """HTTP + pool self-test: the serve-net-smoke gate.

    Starts a real server (ephemeral port) over a 2-worker pool with a
    deliberately tiny dispatch window, fires 50 concurrent mixed
    clients that retry on 429/503, and asserts:

    * every request eventually answers ``ok`` with counts bit-identical
      to :func:`simulate_and_sample` at the same seed,
    * each circuit is served by exactly one worker (shard routing) and
      built exactly once pool-wide (L1/L2 reuse),
    * at least one request was shed as 429 (the window is sized so the
      50-client cold burst must overflow it),
    * the drain is clean and every worker exits with code 0.
    """
    import asyncio

    from ..core.weak_sim import simulate_and_sample
    from .net import HttpFrontDoor, http_request, post_json
    from .pool import PoolConfig, WorkerPool

    cases = [
        {"request_id": "qft_16", "circuit": "qft_16", "shots": 20000, "seed": 7},
        {"request_id": "grover_8", "circuit": "grover_8", "shots": 10000, "seed": 11},
        {"request_id": "ghz_20", "circuit": "ghz_20", "shots": 10000, "seed": 3},
    ]
    clients = 50
    references = {
        case["request_id"]: simulate_and_sample(
            resolve_circuit(case["circuit"]),
            case["shots"],
            method="dd",
            seed=case["seed"],
        ).counts
        for case in cases
    }

    def check(condition: bool, message: str) -> None:
        if not condition:
            raise ReproError(f"serve-net-smoke: {message}")

    async def run(pool: WorkerPool) -> Dict[str, Any]:
        front = HttpFrontDoor(pool, port=0)
        await front.start()
        status, _headers, body = await http_request(
            front.host, front.port, "GET", "/healthz"
        )
        check(status == 200, f"healthz answered {status}, expected 200")
        retries = 0

        async def client(slot: int) -> Any:
            nonlocal retries
            case = cases[slot % len(cases)]
            record = dict(case)
            record["request_id"] = f"{case['request_id']}#{slot}"
            for _attempt in range(600):
                status, payload = await post_json(
                    front.host, front.port, "/v1/sample", record
                )
                if status == 200:
                    return case["request_id"], payload
                if status in (429, 503):
                    # The shed path the window exists to exercise:
                    # back off a beat, then retry into the warm cache.
                    retries += 1
                    await asyncio.sleep(0.05)
                    continue
                raise ReproError(
                    f"serve-net-smoke: HTTP {status} for "
                    f"{record['request_id']}: {payload}"
                )
            raise ReproError(
                f"serve-net-smoke: {record['request_id']} never admitted"
            )

        answers = await asyncio.gather(*(client(i) for i in range(clients)))
        status, _headers, body = await http_request(
            front.host, front.port, "GET", "/stats"
        )
        check(status == 200, f"stats answered {status}, expected 200")
        stats = json.loads(body.decode("utf-8"))
        clean = await front.drain(pool_timeout=60.0)
        return {"answers": answers, "stats": stats, "clean": clean,
                "retries": retries}

    with tempfile.TemporaryDirectory() as tmp:
        directory = cache_dir or tmp
        pool = WorkerPool(
            workers=2,
            config=PoolConfig(cache_dir=directory, request_workers=2),
            max_queue_depth=4,
        )
        pool.start()
        try:
            outcome = asyncio.run(run(pool))
        finally:
            pool.close()

    check(len(outcome["answers"]) == clients, "lost client responses")
    served_by: Dict[str, set] = {}
    for case_id, payload in outcome["answers"]:
        check(
            payload.get("status") == "ok",
            f"{case_id} answered status {payload.get('status')!r}",
        )
        got = {int(k, 2): v for k, v in payload["counts"].items()}
        check(
            got == references[case_id],
            f"{case_id} counts differ from simulate_and_sample "
            "at the same seed",
        )
        served_by.setdefault(case_id, set()).add(payload.get("worker"))
    for case_id, workers in served_by.items():
        check(
            len(workers) == 1,
            f"{case_id} was served by workers {sorted(workers)}; shard "
            "routing must pin each circuit to one worker",
        )
    pool_stats = outcome["stats"]["pool"]
    check(
        pool_stats["totals"].get("builds") == len(cases),
        f"pool built {pool_stats['totals'].get('builds')} artifacts for "
        f"{len(cases)} unique circuits (must be exactly one each)",
    )
    check(
        pool_stats["shed"] >= 1 and outcome["retries"] >= 1,
        "the 50-client cold burst never overflowed the dispatch window; "
        "shedding path untested",
    )
    check(outcome["clean"], "drain was not clean")
    codes = pool.exit_codes()
    check(
        all(code == 0 for code in codes),
        f"worker exit codes {codes}; expected all 0",
    )
    print(
        "serve-net-smoke ok: "
        f"{clients} clients over {len(cases)} circuits, "
        f"builds={pool_stats['totals']['builds']}, "
        f"shed={pool_stats['shed']}, retries={outcome['retries']}, "
        "bit-identical to weak_sim, clean drain"
    )
    return 0


def _serve(args: argparse.Namespace) -> int:
    """The CLI's ``--serve`` mode: pool + front door until SIGTERM."""
    from .net import DEFAULT_PORT, serve_forever
    from .pool import DEFAULT_MAX_QUEUE_DEPTH, PoolConfig, WorkerPool

    session = None
    if args.trace:
        from ..telemetry import Telemetry

        session = Telemetry()
    config_kwargs: Dict[str, Any] = {
        "cache_dir": args.cache_dir,
        "kernel": args.kernel,
        "request_workers": args.request_workers,
        "build_workers": args.build_workers,
        "qasm_file_root": args.allow_qasm_file,
    }
    if args.max_cache_bytes is not None:
        config_kwargs["max_cache_bytes"] = args.max_cache_bytes
    pool = WorkerPool(
        workers=args.pool_workers,
        config=PoolConfig(**config_kwargs),
        max_queue_depth=(
            DEFAULT_MAX_QUEUE_DEPTH
            if args.max_queue_depth is None
            else args.max_queue_depth
        ),
    )
    pool.start()
    try:
        clean = serve_forever(
            pool,
            host=args.host,
            port=DEFAULT_PORT if args.port is None else args.port,
            top=args.top,
            telemetry=session,
            drain_timeout=args.drain_timeout,
        )
    finally:
        pool.close()
    if args.stats:
        print(
            json.dumps(
                pool.stats(include_workers=False), indent=2, sort_keys=True
            ),
            file=sys.stderr,
        )
    if session is not None:
        try:
            records = session.export(args.trace)
        except OSError as error:
            print(f"error: cannot write {args.trace}: {error}", file=sys.stderr)
            return 2
        print(f"trace: {records} records -> {args.trace}", file=sys.stderr)
    return 0 if clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.service``; returns the exit code."""
    args = _build_parser().parse_args(argv)
    if args.smoke:
        try:
            return _smoke(args.cache_dir)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    if args.net_smoke:
        try:
            return _net_smoke(args.cache_dir)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    if args.serve:
        return _serve(args)

    session = None
    if args.trace:
        from ..telemetry import Telemetry

        session = Telemetry()

    service_kwargs: Dict[str, Any] = {
        "cache_dir": args.cache_dir,
        "build_workers": args.build_workers,
        "request_workers": args.request_workers,
        "telemetry": session,
    }
    if args.max_cache_bytes is not None:
        service_kwargs["max_cache_bytes"] = args.max_cache_bytes

    try:
        source = (
            sys.stdin
            if args.requests == "-"
            else open(args.requests, "r", encoding="utf-8")
        )
    except OSError as error:
        print(f"error: cannot read {args.requests}: {error}", file=sys.stderr)
        return 2
    try:
        sink = (
            sys.stdout
            if args.out == "-"
            else open(args.out, "w", encoding="utf-8")
        )
    except OSError as error:
        print(f"error: cannot write {args.out}: {error}", file=sys.stderr)
        if source is not sys.stdin:
            source.close()
        return 2

    try:
        with SamplingService(**service_kwargs) as service:
            failures = run_batch(
                service, source, sink, top=args.top, default_kernel=args.kernel
            )
            stats = service.stats()
    finally:
        if source is not sys.stdin:
            source.close()
        if sink is not sys.stdout:
            sink.close()

    if args.stats:
        print(json.dumps(stats, indent=2, sort_keys=True), file=sys.stderr)
    if session is not None:
        try:
            records = session.export(args.trace)
        except OSError as error:
            print(f"error: cannot write {args.trace}: {error}", file=sys.stderr)
            return 2
        print(
            f"trace: {records} records -> {args.trace}",
            file=sys.stderr,
        )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
