"""Serving-performance harness: emits ``BENCH_serving.json``.

Measures the economics the service exists for — a build paid once, then
answered from cache:

* **cold vs warm latency** — per case, the first request on an empty
  cache (strong simulation + flatten + store) against the first request
  of a *fresh service instance* over the same cache directory (disk
  load + sample, the cross-process warm start) and a repeat request on
  a live service (hot in-memory artifact).  Each latency is split into
  its **startup** component (everything before sampling: build or
  artifact load) and the sampling itself, which is identical work in
  both regimes; ``warm_speedup`` is the startup ratio — the latency the
  cache actually removes — while ``end_to_end_speedup`` reports the
  whole-request ratio, which approaches the startup ratio as builds get
  more expensive relative to the shot count,
* **kernel on/off cold builds** — the cold request is additionally run
  with the python reference engine (``kernel="python"``) on a separate
  cache directory; the startup ratio is the cold-build speedup the SoA
  vector kernel delivers *through the service*, and the stored
  artifact's metadata must record which engine built it,
* **concurrent throughput** — N simultaneous clients asking for the
  same circuit must coalesce onto exactly one build and all receive
  bit-identical results,
* **bit-identity** — every response, cold (either engine) or warm, is
  compared against ``simulate_and_sample`` at the same seed.

Run it with::

    python -m repro.service.bench --out BENCH_serving.json
    python -m repro.service.bench --smoke        # toy sizes, seconds
    python -m repro.service.bench --validate BENCH_serving.json

Validation enforces the headline acceptance bar: warm-start latency at
least ``WARM_SPEEDUP_FLOOR``× better than cold (full sizes only — toy
smoke circuits build too fast for the ratio to be meaningful), one
build under concurrency, and universal bit-identity.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import Dict, List, Optional

from ..algorithms.grover import grover
from ..algorithms.qft import qft
from ..circuit.circuit import QuantumCircuit
from ..core.weak_sim import simulate_and_sample
from .api import SamplingRequest, SamplingService

__all__ = ["FORMAT", "VERSION", "run_harness", "validate_payload", "main"]

FORMAT = "repro-bench-serving"
VERSION = 2

#: The acceptance bar: a warm start (disk artifact, no strong
#: simulation) must be at least this many times faster than a cold one.
WARM_SPEEDUP_FLOOR = 5.0

_SCHEMA: Dict[str, List[str]] = {
    "cases": [
        "name",
        "num_qubits",
        "shots",
        "cold_seconds",
        "cold_python_seconds",
        "warm_seconds",
        "hot_seconds",
        "cold_startup_seconds",
        "cold_python_startup_seconds",
        "kernel_build_speedup",
        "engine",
        "warm_startup_seconds",
        "warm_speedup",
        "end_to_end_speedup",
        "bit_identical",
        "store_entries",
    ],
    "concurrency": [
        "circuit",
        "clients",
        "shots",
        "builds",
        "coalesced",
        "total_seconds",
        "throughput_rps",
        "bit_identical",
    ],
}


def _bench_case(
    name: str,
    circuit: QuantumCircuit,
    shots: int,
    seed: int,
    root: str,
) -> Dict:
    """Cold / hot / warm latency for one circuit, checked against weak_sim."""
    reference = simulate_and_sample(circuit, shots, method="dd", seed=seed)
    cache_dir = os.path.join(root, name)
    request = SamplingRequest(circuit, shots, seed=seed, request_id=name)

    with SamplingService(cache_dir=cache_dir) as service:
        start = time.perf_counter()
        cold = service.sample(request)
        cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        hot = service.sample(request)
        hot_seconds = time.perf_counter() - start
        stored = service.store.get(cold.key)
        engine = (stored.meta or {}).get("engine") if stored else None

    # The same cold request on the python reference engine, on its own
    # cache directory: the startup delta is the kernel's cold-build win
    # measured end to end through the service.
    with SamplingService(cache_dir=os.path.join(root, name + "-py")) as service:
        start = time.perf_counter()
        cold_python = service.sample(
            SamplingRequest(
                circuit, shots, seed=seed, request_id=name, kernel="python"
            )
        )
        cold_python_seconds = time.perf_counter() - start

    # A fresh service over the same directory is the cross-process warm
    # start: the artifact comes off disk, strong simulation never runs.
    with SamplingService(cache_dir=cache_dir) as service:
        start = time.perf_counter()
        warm = service.sample(request)
        warm_seconds = time.perf_counter() - start
        builds_warm = service.stats()["builds"]
        store_entries = service.stats()["store"]["entries"]

    bit_identical = all(
        response.ok and response.result.counts == reference.counts
        for response in (cold, cold_python, warm, hot)
    )
    # Sampling cost is common to both regimes; what the cache removes is
    # everything before it (strong simulation + flatten vs artifact load).
    cold_startup = max(cold_seconds - cold.sampling_seconds, 1e-9)
    cold_python_startup = max(
        cold_python_seconds - cold_python.sampling_seconds, 1e-9
    )
    warm_startup = max(warm_seconds - warm.sampling_seconds, 1e-9)
    return {
        "name": name,
        "num_qubits": circuit.num_qubits,
        "shots": shots,
        "cold_seconds": round(cold_seconds, 6),
        "cold_python_seconds": round(cold_python_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "hot_seconds": round(hot_seconds, 6),
        "cold_startup_seconds": round(cold_startup, 6),
        "cold_python_startup_seconds": round(cold_python_startup, 6),
        "kernel_build_speedup": round(cold_python_startup / cold_startup, 2),
        "engine": engine,
        "warm_startup_seconds": round(warm_startup, 6),
        "warm_speedup": round(cold_startup / warm_startup, 2),
        "end_to_end_speedup": round(cold_seconds / max(warm_seconds, 1e-9), 2),
        "warm_builds": builds_warm,
        "cold_cache": cold.cache,
        "warm_cache": warm.cache,
        "bit_identical": bit_identical,
        "store_entries": store_entries,
    }


def _bench_concurrency(
    circuit: QuantumCircuit,
    name: str,
    clients: int,
    shots: int,
    seed: int,
    root: str,
) -> Dict:
    """N simultaneous same-circuit clients: one build, identical answers."""
    reference = simulate_and_sample(circuit, shots, method="dd", seed=seed)
    cache_dir = os.path.join(root, f"{name}-concurrent")
    requests = [
        SamplingRequest(circuit, shots, seed=seed, request_id=f"client-{i}")
        for i in range(clients)
    ]
    with SamplingService(
        cache_dir=cache_dir, request_workers=clients
    ) as service:
        start = time.perf_counter()
        responses = service.sample_batch(requests)
        total_seconds = time.perf_counter() - start
        stats = service.stats()
    bit_identical = all(
        response.ok and response.result.counts == reference.counts
        for response in responses
    )
    return {
        "circuit": name,
        "clients": clients,
        "shots": shots,
        "builds": stats["builds"],
        "coalesced": stats["coalesced"] + stats["cache_memory_hits"],
        "total_seconds": round(total_seconds, 6),
        "throughput_rps": round(clients / max(total_seconds, 1e-9), 2),
        "bit_identical": bit_identical,
    }


def run_harness(
    shots: int = 100_000,
    clients: int = 4,
    seed: int = 7,
    smoke: bool = False,
) -> Dict:
    """Execute all harness sections and return the payload dict."""
    if smoke:
        shots = min(shots, 5_000)
    cases = (
        [("qft_8", qft(8)), ("grover_4", grover(4, seed=1).circuit)]
        if smoke
        else [("qft_16", qft(16)), ("grover_8", grover(8, seed=1).circuit)]
    )
    payload: Dict = {
        "format": FORMAT,
        "version": VERSION,
        "config": {
            "shots": shots,
            "clients": clients,
            "seed": seed,
            "smoke": smoke,
        },
        "cases": [],
    }
    with tempfile.TemporaryDirectory(prefix="repro-bench-serving-") as root:
        for name, circuit in cases:
            payload["cases"].append(
                _bench_case(name, circuit, shots, seed, root)
            )
        concurrency_name, concurrency_circuit = cases[0]
        payload["concurrency"] = _bench_concurrency(
            concurrency_circuit, concurrency_name, clients, shots, seed, root
        )
    return payload


def validate_payload(payload: Dict) -> None:
    """Raise ``ValueError`` when ``payload`` drifts from the schema."""
    if payload.get("format") != FORMAT:
        raise ValueError(f"format must be {FORMAT!r}")
    if payload.get("version") != VERSION:
        raise ValueError(f"version must be {VERSION}")
    if "config" not in payload:
        raise ValueError("missing section 'config'")
    for section, keys in _SCHEMA.items():
        if section not in payload:
            raise ValueError(f"missing section {section!r}")
        entries = payload[section]
        if section == "cases":
            if not isinstance(entries, list) or not entries:
                raise ValueError("'cases' must be a non-empty list")
        else:
            entries = [entries]
        for entry in entries:
            missing = [key for key in keys if key not in entry]
            if missing:
                raise ValueError(f"section {section!r} missing keys {missing}")
    smoke = bool(payload["config"].get("smoke"))
    for case in payload["cases"]:
        if not case["bit_identical"]:
            raise ValueError(
                f"case {case['name']!r} was not bit-identical to weak_sim"
            )
        if case.get("warm_builds", 0) != 0:
            raise ValueError(
                f"case {case['name']!r} rebuilt on the warm start"
            )
        if not smoke and case["warm_speedup"] < WARM_SPEEDUP_FLOOR:
            raise ValueError(
                f"case {case['name']!r} warm-start speedup "
                f"{case['warm_speedup']}x is below the "
                f"{WARM_SPEEDUP_FLOOR}x floor"
            )
        if not smoke and case["end_to_end_speedup"] <= 1.0:
            raise ValueError(
                f"case {case['name']!r} warm request was not faster than "
                "cold end to end"
            )
        if case["engine"] != "vector":
            raise ValueError(
                f"case {case['name']!r}: stored artifact metadata records "
                f"engine {case['engine']!r}, expected 'vector'"
            )
        if not smoke and case["kernel_build_speedup"] < 1.0:
            raise ValueError(
                f"case {case['name']!r}: kernel cold build was slower than "
                f"the python engine ({case['kernel_build_speedup']}x)"
            )
    concurrency = payload["concurrency"]
    if concurrency["clients"] < 4:
        raise ValueError("concurrency section must use >= 4 clients")
    if concurrency["builds"] != 1:
        raise ValueError(
            f"{concurrency['clients']} concurrent clients caused "
            f"{concurrency['builds']} builds (expected 1)"
        )
    if not concurrency["bit_identical"]:
        raise ValueError("concurrent responses were not bit-identical")


def _build_parser() -> argparse.ArgumentParser:
    """The bench CLI's argument parser (importable for the docs checker)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench-serving",
        description="Benchmark the sampling service's cold/warm cache "
        "economics and emit BENCH_serving.json.",
    )
    parser.add_argument(
        "--out", default="BENCH_serving.json", help="output JSON path"
    )
    parser.add_argument(
        "--shots", type=int, default=100_000, help="shots per request"
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=4,
        help="simultaneous clients in the concurrency section",
    )
    parser.add_argument("--seed", type=int, default=7, help="harness RNG seed")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="toy sizes: exercises every section in seconds",
    )
    parser.add_argument(
        "--validate",
        metavar="FILE",
        help="validate an existing payload against the schema and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.service.bench``."""
    args = _build_parser().parse_args(argv)

    if args.validate:
        with open(args.validate, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        try:
            validate_payload(payload)
        except ValueError as error:
            print(f"schema drift: {error}", file=sys.stderr)
            return 1
        print(f"{args.validate}: schema ok (version {payload['version']})")
        return 0

    payload = run_harness(
        shots=args.shots, clients=args.clients, seed=args.seed, smoke=args.smoke
    )
    validate_payload(payload)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    headline = payload["cases"][0]
    concurrency = payload["concurrency"]
    print(
        f"wrote {args.out}: {headline['name']} cold "
        f"{headline['cold_seconds']}s vs warm {headline['warm_seconds']}s "
        f"({headline['warm_speedup']}x); kernel cold build "
        f"{headline['kernel_build_speedup']}x vs python; "
        f"{concurrency['clients']} clients -> "
        f"{concurrency['builds']} build at "
        f"{concurrency['throughput_rps']} req/s"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
